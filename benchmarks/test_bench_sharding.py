"""C3 — sharded scatter-gather serving throughput.

Partitions a loaded LINEITEM into 1/2/4 shard catalogs, launches the
worker processes + router, and replays the standard mix closed-loop at
16 clients per shard count.  Queries are made I/O-bound with a
deterministic simulated per-heap-page disk wait (PR 5's fault
injector), so scatter across worker *processes* overlaps the waits and
completed-queries/s must rise monotonically with shard count.

C3 runs at its own small fixed scale factor rather than ``bench_sf``:
the simulated disk wait dominates the wall time, so data volume only
stretches the run without changing what is measured.
"""

from repro.bench.sharding import exp_shard_scaling

from conftest import bench_trace_log, run_once

SHARD_COUNTS = (1, 2, 4)
CLIENTS = 16


def test_bench_shard_scaling(benchmark):
    trace_log = bench_trace_log("C3")
    try:
        result = run_once(
            benchmark,
            exp_shard_scaling,
            shard_counts=SHARD_COUNTS,
            clients=CLIENTS,
            event_log=trace_log,
        )
    finally:
        trace_log.close()
    assert trace_log.stats()["written"] > 0  # trace artifact is non-empty
    for num_shards in SHARD_COUNTS:
        # queries_per_client=1: every client completes exactly one query.
        assert result.metric(f"completed_s{num_shards}") == CLIENTS
        assert result.metric(f"qps_s{num_shards}") > 0
    # C3 acceptance: throughput rises monotonically 1 -> 2 -> 4 shards
    # (byte-identity vs single-node is asserted inside the experiment).
    qps = [result.metric(f"qps_s{n}") for n in SHARD_COUNTS]
    assert qps[0] < qps[1] < qps[2], f"QPS not monotonic in shards: {qps}"
