"""E4 — the headline table: Query 1 scan vs SMA cold vs SMA warm."""

from repro.bench.experiments import exp_query1_speedup

from conftest import run_once


def test_bench_query1_speedup(benchmark, bench_sf):
    result = run_once(benchmark, exp_query1_speedup, scale_factor=bench_sf)
    # The paper's "two orders of magnitude" claim on the simulated clock.
    assert result.metric("speedup_warm") > 30
    assert result.metric("speedup_cold") > 3
    # Projection onto the paper's SF=1 absolute numbers.
    assert abs(result.metric("proj_scan_s") - 128) / 128 < 0.2
    assert abs(result.metric("proj_warm_s") - 1.9) / 1.9 < 0.4
