"""F5 — runtime vs ambivalent fraction; the ~25% break-even (Figure 5)."""

import math

from repro.bench.experiments import exp_breakeven_sweep

from conftest import run_once


def test_bench_breakeven_sweep(benchmark, bench_sf):
    result = run_once(benchmark, exp_breakeven_sweep, scale_factor=bench_sf)
    breakeven = result.metric("breakeven_fraction")
    assert not math.isnan(breakeven)
    assert 0.12 <= breakeven <= 0.40  # paper: "about 25%"
    assert result.metric("scan_flatness") < 1.05
    assert result.metric("sma_over_scan_at_max") < 1.4
