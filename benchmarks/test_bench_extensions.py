"""X1–X4 — extensions: Query 6, B+-tree pathology, hardware ablation,
projection-index comparison."""

from repro.bench.experiments import (
    exp_bitmap_vs_sma,
    exp_btree_uselessness,
    exp_modern_hardware,
    exp_projection_index,
    exp_query6,
    exp_scaling_linearity,
)

from conftest import run_once


def test_bench_query6(benchmark, bench_sf):
    result = run_once(benchmark, exp_query6, scale_factor=bench_sf)
    assert result.metric("speedup") > 2


def test_bench_btree_uselessness(benchmark, bench_sf):
    result = run_once(benchmark, exp_btree_uselessness, scale_factor=bench_sf / 2)
    assert result.metric("slowdown") > 5


def test_bench_modern_hardware(benchmark, bench_sf):
    result = run_once(benchmark, exp_modern_hardware, scale_factor=bench_sf)
    assert result.metric("speedup_1998") > 1
    assert result.metric("speedup_modern") > 1


def test_bench_projection_index(benchmark, bench_sf):
    result = run_once(benchmark, exp_projection_index, scale_factor=bench_sf / 2)
    assert result.metric("page_ratio") > 5


def test_bench_scaling_linearity(benchmark):
    result = run_once(benchmark, exp_scaling_linearity)
    assert result.metric("r2_scan") > 0.999


def test_bench_bitmap_vs_sma(benchmark, bench_sf):
    result = run_once(benchmark, exp_bitmap_vs_sma, scale_factor=bench_sf / 2)
    assert result.metric("sum_advantage") > 5


def test_bench_versatility(benchmark, bench_sf):
    from repro.bench.experiments import exp_versatility

    result = run_once(benchmark, exp_versatility, scale_factor=bench_sf / 2)
    assert result.metric("fraction_served") >= 0.75
