"""Micro-benchmarks for the hot paths (repeated-round measurements).

These are standard pytest-benchmark targets (many rounds, statistical
output): bucket grading, SMA-file scanning, heap-file bucket reads, and
vectorised predicate/expression evaluation — the operations whose
per-call cost determines whether the scan-speed evaluation holds up in
pure Python + numpy.
"""

import numpy as np
import pytest

from repro.core.grade import partition_column_const
from repro.lang.expr import col, const, mul, sub
from repro.lang.predicate import CmpOp, and_, cmp
from repro.tpcd.schema import LINEITEM


@pytest.fixture(scope="module")
def bounds():
    rng = np.random.default_rng(0)
    mins = np.sort(rng.integers(0, 100_000, size=200_000)).astype(np.int32)
    maxs = mins + rng.integers(1, 50, size=200_000).astype(np.int32)
    return mins, maxs


def test_grading_200k_buckets(benchmark, bounds):
    """Grade 200k buckets (≈ SF=1 LINEITEM) for one range predicate."""
    mins, maxs = bounds
    result = benchmark(
        partition_column_const, CmpOp.LE, 50_000, len(mins),
        mins=mins, maxs=maxs,
    )
    assert result.num_buckets == len(mins)


@pytest.fixture(scope="module")
def lineitem_batch():
    rng = np.random.default_rng(1)
    n = 32_768
    return LINEITEM.batch_from_columns(
        L_ORDERKEY=rng.integers(1, 10_000, n).astype(np.int32),
        L_PARTKEY=rng.integers(1, 10_000, n).astype(np.int32),
        L_SUPPKEY=rng.integers(1, 1000, n).astype(np.int32),
        L_LINENUMBER=np.ones(n, dtype=np.int32),
        L_QUANTITY=rng.integers(1, 51, n).astype(np.float64),
        L_EXTENDEDPRICE=rng.uniform(900, 105_000, n),
        L_DISCOUNT=rng.integers(0, 11, n) / 100.0,
        L_TAX=rng.integers(0, 9, n) / 100.0,
        L_RETURNFLAG=np.full(n, b"N", dtype="S1"),
        L_LINESTATUS=np.full(n, b"O", dtype="S1"),
        L_SHIPDATE=rng.integers(8000, 10_556, n).astype(np.int32),
        L_COMMITDATE=rng.integers(8000, 10_556, n).astype(np.int32),
        L_RECEIPTDATE=rng.integers(8000, 10_556, n).astype(np.int32),
        L_SHIPINSTRUCT=np.full(n, b"NONE", dtype="S25"),
        L_SHIPMODE=np.full(n, b"MAIL", dtype="S10"),
        L_COMMENT=np.full(n, b"x", dtype="S27"),
    )


def test_predicate_evaluation_32k_tuples(benchmark, lineitem_batch):
    """Query 6's conjunctive predicate over a 32k-tuple batch."""
    predicate = and_(
        cmp("L_SHIPDATE", ">=", 8766),
        cmp("L_SHIPDATE", "<", 9131),
        cmp("L_DISCOUNT", ">=", 0.05),
        cmp("L_DISCOUNT", "<=", 0.07),
        cmp("L_QUANTITY", "<", 24.0),
    ).bind(LINEITEM)
    mask = benchmark(predicate.evaluate, lineitem_batch)
    assert mask.dtype == bool


def test_expression_evaluation_32k_tuples(benchmark, lineitem_batch):
    """Query 1's charge expression over a 32k-tuple batch."""
    expr = mul(
        mul(col("L_EXTENDEDPRICE"), sub(const(1), col("L_DISCOUNT"))),
        sub(const(1), col("L_TAX")),
    ).bind(LINEITEM)
    values = benchmark(expr.evaluate, lineitem_batch)
    assert len(values) == len(lineitem_batch)


def test_bucket_read_throughput(benchmark, tmp_path):
    """Warm bucket reads through the pool (the ambivalent-fetch path)."""
    from repro.storage import BufferPool, HeapFile

    pool = BufferPool(capacity_pages=4096)
    heap = HeapFile.create(str(tmp_path / "t.heap"), LINEITEM, pool)
    rng = np.random.default_rng(2)

    batch = np.zeros(32 * 64, dtype=LINEITEM.record_dtype)
    batch["L_SHIPDATE"] = rng.integers(8000, 10_556, len(batch))
    heap.append_batch(batch)

    def read_all_buckets():
        total = 0
        for bucket_no in range(heap.num_buckets):
            total += len(heap.read_bucket(bucket_no))
        return total

    assert benchmark(read_all_buckets) == len(batch)
    heap.close()


# ----------------------------------------------------------------------
# per-bucket kernel breakdown: decode -> filter -> aggregate
#
# The scan inner loop costs one page decode (``frombuffer`` + header
# unpack, skipped on a decode-cache hit), one vectorised predicate
# evaluation, and one fused grouping-aggregation kernel per bucket.
# These three benchmarks price each stage on the same bucket-sized
# batch so a regression in any stage is attributable.
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def kernel_heap(tmp_path_factory):
    from repro.storage import BufferPool, HeapFile

    pool = BufferPool(capacity_pages=4096)
    heap = HeapFile.create(
        str(tmp_path_factory.mktemp("kernel") / "t.heap"), LINEITEM, pool
    )
    rng = np.random.default_rng(3)
    batch = np.zeros(64 * 64, dtype=LINEITEM.record_dtype)
    batch["L_SHIPDATE"] = rng.integers(8000, 10_556, len(batch))
    batch["L_QUANTITY"] = rng.integers(1, 51, len(batch)).astype(np.float64)
    batch["L_EXTENDEDPRICE"] = rng.uniform(900, 105_000, len(batch))
    batch["L_DISCOUNT"] = rng.integers(0, 11, len(batch)) / 100.0
    batch["L_TAX"] = rng.integers(0, 9, len(batch)) / 100.0
    flags = np.array([b"A", b"N", b"R"], dtype="S1")
    batch["L_RETURNFLAG"] = flags[rng.integers(0, 3, len(batch))]
    statuses = np.array([b"F", b"O"], dtype="S1")
    batch["L_LINESTATUS"] = statuses[rng.integers(0, 2, len(batch))]
    heap.append_batch(batch)
    heap.flush()
    yield heap
    heap.close()


def test_kernel_decode_per_bucket(benchmark, kernel_heap):
    """Page payload -> record array (the decode-cache *miss* cost)."""
    heap = kernel_heap
    records = heap.read_bucket(0)  # prime page + decode caches
    payload = heap._decode_cache[0][0][0]
    decoded = benchmark(heap._decode_page, payload)
    assert len(decoded) == len(records)


def test_kernel_decode_cache_hit(benchmark, kernel_heap):
    """Warm ``read_bucket``: pool hit + decode-cache hit (no decode)."""
    heap = kernel_heap
    heap.read_bucket(1)  # prime
    before = heap.decode_hits
    records = benchmark(heap.read_bucket, 1)
    assert len(records) > 0
    assert heap.decode_hits > before


def test_kernel_filter_per_bucket(benchmark, kernel_heap):
    """Vectorised range predicate over one bucket's records."""
    predicate = cmp("L_SHIPDATE", "<=", 9500).bind(LINEITEM)
    records = kernel_heap.read_bucket(0)
    mask = benchmark(predicate.evaluate, records)
    assert mask.dtype == bool


def test_kernel_aggregate_per_bucket(benchmark, kernel_heap):
    """Fused multi-group kernel: Query 1 aggregates over one bucket."""
    from repro.query.aggregation import AggregationState
    from repro.tpcd.queries import query1

    q1 = query1()
    records = kernel_heap.read_bucket(0)

    def consume():
        state = AggregationState(LINEITEM, q1.group_by, q1.aggregates)
        state.consume_batch(records)
        columns, rows = state.finalize()
        return len(rows)

    groups = benchmark(consume)
    assert groups >= 1


def test_sma_build_throughput(benchmark, tmp_path):
    """Accumulate the full Figure 4 SMA set over in-memory buckets."""
    from repro.core.builder import build_sma_set
    from repro.storage import Catalog
    from repro.tpcd.loader import load_lineitem
    from repro.tpcd.queries import query1_sma_definitions

    catalog = Catalog(str(tmp_path / "db"))
    loaded = load_lineitem(catalog, scale_factor=0.005, build_smas=False)

    counter = [0]

    def build():
        counter[0] += 1
        sma_set, _ = build_sma_set(
            loaded.table,
            query1_sma_definitions(),
            directory=str(tmp_path / f"smas{counter[0]}"),
            name=f"bench{counter[0]}",
        )
        return sma_set.num_files

    assert benchmark.pedantic(build, rounds=3, iterations=1) == 26
    catalog.close()
