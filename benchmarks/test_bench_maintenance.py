"""E9 — maintenance costs: bulk insert and tuple update (Section 2.1)."""

from repro.bench.experiments import exp_maintenance

from conftest import run_once


def test_bench_maintenance(benchmark, bench_sf):
    result = run_once(benchmark, exp_maintenance, scale_factor=bench_sf / 4)
    assert result.metric("sma_write_overhead") < 0.5
    assert result.metric("insert_writes_per_tuple") < 0.2
