"""E7 — hierarchical SMAs: first-level reads saved (Section 4)."""

from repro.bench.experiments import exp_hierarchical

from conftest import run_once


def test_bench_hierarchical(benchmark, bench_sf):
    result = run_once(benchmark, exp_hierarchical, scale_factor=bench_sf)
    assert result.metric("entries_saved_low") > 0
    assert result.metric("entries_saved_high") > 0
    # "the second level SMA is useful for rather high and rather low
    # selectivities": savings at the extremes beat the midpoint.
    assert result.metric("entries_saved_low") >= result.metric("entries_saved_mid")
