"""E10 — the Section 4 bucket-size trade-off."""

from repro.bench.experiments import exp_bucket_size

from conftest import run_once


def test_bench_bucket_size(benchmark, bench_sf):
    result = run_once(benchmark, exp_bucket_size, scale_factor=bench_sf)
    # Bigger buckets shrink SMA-files — the first half of the trade-off.
    assert result.metric("sma_pages_ppb_max") < result.metric("sma_pages_ppb1")
