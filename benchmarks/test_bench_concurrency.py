"""C1 — concurrent serving throughput at 1, 4 and 16 workers.

Workers share one buffer pool; the closed-loop driver keeps every
worker saturated.  Python's GIL bounds CPU parallelism, so the
assertion is that throughput *holds* as workers grow (shared pool and
admission control add no collapse), not that it scales linearly.
"""

from repro.bench.concurrency import exp_concurrency_throughput

from conftest import run_once

WORKER_COUNTS = (1, 4, 16)
QUERIES_PER_CLIENT = 4


def test_bench_concurrency_throughput(benchmark, bench_sf):
    result = run_once(
        benchmark,
        exp_concurrency_throughput,
        scale_factor=bench_sf,
        worker_counts=WORKER_COUNTS,
        queries_per_client=QUERIES_PER_CLIENT,
    )
    for workers in WORKER_COUNTS:
        assert result.metric(f"completed_w{workers}") == (
            workers * QUERIES_PER_CLIENT
        )
        assert result.metric(f"qps_w{workers}") > 0
        assert 0.0 <= result.metric(f"hit_rate_w{workers}") <= 1.0
    # Concurrency must not collapse throughput: 16 workers on the warm
    # shared pool should stay within 3x of single-worker throughput.
    assert result.metric("qps_w16") > result.metric("qps_w1") / 3
