"""C1/C2 — concurrency benchmarks over the shared striped buffer pool.

C1: concurrent serving throughput at 1, 4 and 16 workers.  Workers
share one buffer pool; the closed-loop driver keeps every worker
saturated.  Python's GIL bounds CPU parallelism, so the assertion is
that throughput *holds* as workers grow (shared pool and admission
control add no collapse), not that it scales linearly.

C2: intra-query scan parallelism across backends — Query 1 forced-scan
cold wall time on a simulated device (1 ms/page latency fault) and mix
throughput, at thread/process backends x 1/2/4/8 scan workers x 1/4/16
clients, with results verified byte-identical to serial inside the
experiment.  Speedup *floors* are asserted only when
``REPRO_BENCH_ASSERT_SPEEDUP=1`` (artifact-refresh runs): CI smoke runs
fail on result mismatch, never on timing.
"""

import os

from repro.bench.concurrency import (
    exp_concurrency_throughput,
    exp_ingest_concurrency,
    exp_scan_parallelism,
)

from conftest import bench_trace_log, run_once

WORKER_COUNTS = (1, 4, 16)
QUERIES_PER_CLIENT = 4

SCAN_BACKENDS = ("thread", "process")
SCAN_WORKER_COUNTS = (1, 2, 4, 8)
CLIENT_COUNTS = (1, 4, 16)

INGEST_RATES = (0, 4, 16)
INGEST_BATCH_ROWS = 64
INGEST_CLIENTS = 4

ASSERT_SPEEDUP = os.environ.get("REPRO_BENCH_ASSERT_SPEEDUP") == "1"


def test_bench_concurrency_throughput(benchmark, bench_sf):
    trace_log = bench_trace_log("C1")
    try:
        result = run_once(
            benchmark,
            exp_concurrency_throughput,
            scale_factor=bench_sf,
            worker_counts=WORKER_COUNTS,
            queries_per_client=QUERIES_PER_CLIENT,
            event_log=trace_log,
        )
    finally:
        trace_log.close()
    assert trace_log.stats()["written"] > 0  # trace artifact is non-empty
    for workers in WORKER_COUNTS:
        assert result.metric(f"completed_w{workers}") == (
            workers * QUERIES_PER_CLIENT
        )
        assert result.metric(f"qps_w{workers}") > 0
        assert 0.0 <= result.metric(f"hit_rate_w{workers}") <= 1.0
    # Concurrency must not collapse throughput: 16 workers on the warm
    # shared pool should stay within 3x of single-worker throughput.
    assert result.metric("qps_w16") > result.metric("qps_w1") / 3


def test_bench_scan_parallelism(benchmark, bench_sf):
    trace_log = bench_trace_log("C2")
    try:
        result = run_once(
            benchmark,
            exp_scan_parallelism,
            scale_factor=bench_sf,
            scan_worker_counts=SCAN_WORKER_COUNTS,
            client_counts=CLIENT_COUNTS,
            queries_per_client=2,
            repeats=2,
            backends=SCAN_BACKENDS,
            event_log=trace_log,
        )
    finally:
        trace_log.close()
    assert trace_log.stats()["written"] > 0  # trace artifact is non-empty
    # The experiment itself raises if any parallel result diverges from
    # serial or any query is lost; here we sanity-check the metrics.
    # Unprefixed metrics are the process backend (the headline), the
    # thread backend carries a "thread_" prefix.
    for prefix in ("", "thread_"):
        for scan_workers in SCAN_WORKER_COUNTS:
            assert result.metric(f"scan_wall_{prefix}sw{scan_workers}") > 0
            assert result.metric(f"scan_speedup_{prefix}sw{scan_workers}") > 0
            for clients in CLIENT_COUNTS:
                assert result.metric(f"qps_{prefix}sw{scan_workers}_c{clients}") > 0
        assert result.metric(f"scan_speedup_{prefix}sw1") == 1.0
    # Timing floors only on artifact-refresh runs: a loaded CI box must
    # fail on wrong results, not on a slow scheduler.
    if ASSERT_SPEEDUP:
        # Device waits overlap across processes: 4 workers must clear
        # the PR 7 acceptance floor on the simulated cold device.
        assert result.metric("scan_speedup_sw4") >= 2.5
        # Thread morsels overlap sleeping preads too; floor is looser
        # because the GIL serializes the Python between preads.
        assert result.metric("scan_speedup_thread_sw4") > 1.5
    else:
        # Even unasserted, dispatch overhead must never collapse the
        # scan below half of serial.
        assert result.metric("scan_speedup_sw4") > 0.5


def test_bench_ingest_concurrency(benchmark, bench_sf):
    trace_log = bench_trace_log("C4")
    try:
        result = run_once(
            benchmark,
            exp_ingest_concurrency,
            scale_factor=bench_sf,
            ingest_rates=INGEST_RATES,
            batch_rows=INGEST_BATCH_ROWS,
            clients=INGEST_CLIENTS,
            queries_per_client=4,
            event_log=trace_log,
        )
    finally:
        trace_log.close()
    assert trace_log.stats()["written"] > 0  # trace artifact is non-empty
    # The experiment raises on lost reads, failed ingest batches, row
    # counts not matching applied batches, or SMA/scan divergence; here
    # we sanity-check the emitted metrics.
    for rate in INGEST_RATES:
        assert result.metric(f"read_p95_r{rate}_s") > 0
        assert result.metric(f"read_qps_r{rate}") > 0
        batches = result.metric(f"ingest_batches_r{rate}")
        assert result.metric(f"ingest_rows_r{rate}") == (
            batches * INGEST_BATCH_ROWS
        )
        # Every applied batch bumps the epoch exactly once.
        assert result.metric(f"ingest_epoch_r{rate}") == batches
        if rate == 0:
            assert batches == 0
    # A non-zero paced writer must actually land batches.
    assert result.metric(f"ingest_batches_r{INGEST_RATES[-1]}") > 0
    assert result.metric("p95_degradation_ratio") > 0
