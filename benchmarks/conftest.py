"""Shared configuration for the benchmark suite.

Scale is controlled by the ``REPRO_BENCH_SF`` environment variable
(default 0.02 ≈ 120k LINEITEM tuples, a few seconds per experiment).
Every paper table/figure has one benchmark; each prints its paper-style
result table (visible with ``pytest benchmarks/ --benchmark-only -s``).

Every experiment run through :func:`run_once` additionally writes a
machine-readable ``BENCH_<exp_id>.json`` next to the repo root (or into
``REPRO_BENCH_OUT`` when set): metric name/value/unit triples plus the
run configuration and git revision, so CI can archive benchmark results
as artifacts and compare across commits.
"""

import json
import os
import subprocess
from pathlib import Path

import pytest


@pytest.fixture(scope="session")
def bench_sf() -> float:
    return float(os.environ.get("REPRO_BENCH_SF", "0.02"))


def _git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
    except Exception:  # noqa: BLE001 - best effort; not in a checkout, no git
        return "unknown"


def _metric_unit(name: str) -> str:
    """Canonical unit for a metric name (see :func:`repro.bench.harness.metric_unit`)."""
    from repro.bench.harness import metric_unit

    return metric_unit(name)


def write_bench_json(result, config: dict) -> Path:
    """Serialize one ExperimentResult to ``BENCH_<exp_id>.json``."""
    out_dir = Path(
        os.environ.get("REPRO_BENCH_OUT", Path(__file__).resolve().parent.parent)
    )
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{result.exp_id}.json"
    document = {
        "experiment": result.exp_id,
        "title": result.title,
        "git_rev": _git_rev(),
        "config": {
            key: value
            for key, value in sorted(config.items())
            if isinstance(value, (int, float, str, bool, list, tuple))
        },
        "metrics": [
            {"name": name, "value": value, "unit": _metric_unit(name)}
            for name, value in sorted(result.metrics.items())
        ],
    }
    path.write_text(json.dumps(document, indent=2, default=list) + "\n")
    return path


def bench_trace_log(exp_id: str):
    """An EventLog writing ``TRACE_<exp_id>.jsonl`` beside the BENCH json.

    The caller must close it; closing prints nothing, the file is the
    artifact (archived by CI together with the ``BENCH_*.json`` files).
    """
    from repro.obs import EventLog

    out_dir = Path(
        os.environ.get("REPRO_BENCH_OUT", Path(__file__).resolve().parent.parent)
    )
    out_dir.mkdir(parents=True, exist_ok=True)
    return EventLog(str(out_dir / f"TRACE_{exp_id}.jsonl"))


def run_once(benchmark, experiment, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    Prints the paper-style table and writes ``BENCH_<exp_id>.json``.
    """
    result = benchmark.pedantic(
        lambda: experiment(**kwargs), rounds=1, iterations=1
    )
    print()
    print(result.render())
    written = write_bench_json(result, kwargs)
    print(f"wrote {written}")
    return result
