"""Shared configuration for the benchmark suite.

Scale is controlled by the ``REPRO_BENCH_SF`` environment variable
(default 0.02 ≈ 120k LINEITEM tuples, a few seconds per experiment).
Every paper table/figure has one benchmark; each prints its paper-style
result table (visible with ``pytest benchmarks/ --benchmark-only -s``).
"""

import os

import pytest


@pytest.fixture(scope="session")
def bench_sf() -> float:
    return float(os.environ.get("REPRO_BENCH_SF", "0.02"))


def run_once(benchmark, experiment, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    result = benchmark.pedantic(
        lambda: experiment(**kwargs), rounds=1, iterations=1
    )
    print()
    print(result.render())
    return result
