"""E2/E3/E5 — space comparisons: SMAs vs relation, B+-tree, data cube."""

from repro.bench.experiments import (
    exp_datacube_space,
    exp_sma_file_ratio,
    exp_space_overhead,
)

from conftest import run_once


def test_bench_space_overhead(benchmark, bench_sf):
    result = run_once(benchmark, exp_space_overhead, scale_factor=bench_sf)
    assert result.metric("sma_fraction") < 0.08
    assert result.metric("btree_fraction") > result.metric("sma_fraction")


def test_bench_datacube_space(benchmark):
    result = run_once(benchmark, exp_datacube_space, scale_factor=0.005)
    assert result.metric("formula_matches") == 1.0
    assert result.metric("cube3_over_sma") > 10_000


def test_bench_sma_file_ratio(benchmark, bench_sf):
    result = run_once(benchmark, exp_sma_file_ratio, scale_factor=bench_sf)
    assert 0.0008 <= result.metric("ratio") <= 0.0012
