"""E8 — semi-join input reduction via SMAs (Section 4)."""

from repro.bench.experiments import exp_semijoin

from conftest import run_once


def test_bench_semijoin(benchmark, bench_sf):
    result = run_once(benchmark, exp_semijoin, scale_factor=bench_sf / 2)
    assert result.metric("reduction") > 0.5
