"""F2 — diagonal data distribution and the clustering payoff."""

from repro.bench.experiments import exp_diagonal_distribution

from conftest import run_once


def test_bench_diagonal_distribution(benchmark, bench_sf):
    result = run_once(
        benchmark, exp_diagonal_distribution, scale_factor=bench_sf / 2
    )
    assert result.metric("correlation") > 0.99
    assert result.metric("amb_toc") < 0.2
    assert result.metric("amb_uniform") > 0.9
