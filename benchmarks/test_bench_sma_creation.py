"""E1 — SMA creation time and size (Section 2.4, first table)."""

from repro.bench.experiments import exp_sma_creation

from conftest import run_once


def test_bench_sma_creation(benchmark, bench_sf):
    result = run_once(benchmark, exp_sma_creation, scale_factor=bench_sf)
    assert len(result.rows) == 8
    assert 0.9 <= result.metric("pages_per_1k_buckets_min") <= 1.5
