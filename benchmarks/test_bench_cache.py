"""C5 — plan-fingerprint result cache under the zipf dashboard mix.

Cache off vs on at 4 and 16 closed-loop clients plus a cache-on cell
with a paced INSERT writer.  Correctness (cached results byte-identical
to uncached replays; no result spans an epoch boundary) is gated inside
the experiment on every run; the ≥2x speedup and ≥50% hit-rate *floors*
are asserted only when ``REPRO_BENCH_ASSERT_SPEEDUP=1`` (artifact
refresh and the cache-smoke CI job), so ordinary CI never fails on
timing.
"""

import os

from repro.bench.caching import exp_result_cache

from conftest import bench_trace_log, run_once

CLIENT_COUNTS = (4, 16)
QUERIES_PER_CLIENT = 6
DISTINCT_PLANS = 16

ASSERT_SPEEDUP = os.environ.get("REPRO_BENCH_ASSERT_SPEEDUP") == "1"


def test_bench_result_cache(benchmark, bench_sf):
    trace_log = bench_trace_log("C5")
    try:
        result = run_once(
            benchmark,
            exp_result_cache,
            scale_factor=bench_sf,
            client_counts=CLIENT_COUNTS,
            queries_per_client=QUERIES_PER_CLIENT,
            distinct=DISTINCT_PLANS,
            event_log=trace_log,
        )
    finally:
        trace_log.close()
    assert trace_log.stats()["written"] > 0  # trace artifact is non-empty
    top = CLIENT_COUNTS[-1]
    for clients in CLIENT_COUNTS:
        assert result.metric(f"qps_cache_off_c{clients}") > 0
        assert result.metric(f"qps_cache_on_c{clients}") > 0
        assert 0.0 <= result.metric(f"hit_rate_cache_on_c{clients}") <= 1.0
    # The experiment itself gates byte-identity; here we only require
    # that caching never *hurts* materially (within 30% of baseline)
    # and that the skewed mix actually produced repeats to serve.
    assert result.metric(f"cache_speedup_c{top}") > 0.7
    assert result.metric(f"hit_rate_cache_on_c{top}") > 0.0
    assert result.metric(f"qps_cache_dml_c{top}") > 0
    if ASSERT_SPEEDUP:
        assert result.metric(f"cache_speedup_c{top}") >= 2.0
        assert result.metric(f"hit_rate_cache_on_c{top}") >= 0.5
