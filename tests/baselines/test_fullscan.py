"""Tests for the raw sequential-scan helpers."""

import datetime


from repro.baselines.fullscan import scan_collect, scan_count
from repro.lang import cmp
from repro.storage.types import date_to_int

from tests.conftest import BASE_DATE


class TestScanCount:
    def test_counts_matching_tuples(self, sales_table):
        cutoff = BASE_DATE + datetime.timedelta(days=10)
        count = scan_count(sales_table, cmp("ship", "<=", cutoff))
        everything = sales_table.read_all()
        assert count == (everything["ship"] <= date_to_int(cutoff)).sum()

    def test_charges_every_tuple_and_bucket(self, catalog, sales_table):
        catalog.reset_stats()
        scan_count(sales_table, cmp("qty", "=", 0.0))
        assert catalog.stats.tuples_scanned == sales_table.num_records
        assert catalog.stats.buckets_fetched == sales_table.num_buckets


class TestScanCollect:
    def test_collects_matching_tuples(self, sales_table):
        collected = scan_collect(sales_table, cmp("flag", "=", "A"))
        assert (collected["flag"] == b"A").all()
        assert len(collected) == 1000

    def test_empty_result(self, sales_table):
        collected = scan_collect(sales_table, cmp("qty", "=", 1e9))
        assert len(collected) == 0
        assert collected.dtype == sales_table.schema.record_dtype
