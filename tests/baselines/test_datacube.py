"""Tests for the data-cube baseline and the paper's space arithmetic."""

import pytest

from repro.baselines.datacube import (
    CubeMissError,
    DataCube,
    cube_bytes,
    cube_cells,
    paper_cube_comparison,
)
from repro.core.aggregates import average, count_star, total
from repro.errors import ReproError
from repro.lang.expr import col
from repro.query.query import OutputAggregate


class TestSpaceModel:
    def test_cells_is_product(self):
        assert cube_cells([10, 4, 3]) == 120

    def test_zero_cardinality_rejected(self):
        with pytest.raises(ReproError):
            cube_cells([10, 0])

    def test_paper_one_date_dimension(self):
        # "479.25 KB = 2556^1 * 4 * 48 B"
        assert cube_bytes([2556, 4]) == 2556 * 4 * 48
        assert cube_bytes([2556, 4]) / 1024 == pytest.approx(479.25)

    def test_paper_two_date_dimensions(self):
        # "1196.25 MB = 2556^2 * 4 * 48 B"
        assert cube_bytes([2556, 2556, 4]) / 1024**2 == pytest.approx(
            1196.25, rel=1e-3
        )

    def test_paper_three_date_dimensions(self):
        # "2985.95 GB = 2556^3 * 4 * 48 B"
        assert cube_bytes([2556] * 3 + [4]) / 1024**3 == pytest.approx(
            2985.95, rel=1e-3
        )

    def test_paper_comparison_sequence(self):
        reports = paper_cube_comparison()
        assert len(reports) == 3
        assert reports[0].total_bytes < reports[1].total_bytes < reports[2].total_bytes
        assert "KB" in reports[0].human or "KiB" in reports[0].human


class TestMaterializedCube:
    @pytest.fixture
    def cube(self, sales_table):
        return DataCube.build(
            sales_table,
            ("flag",),
            (
                OutputAggregate("s", total(col("qty"))),
                OutputAggregate("n", count_star()),
            ),
        )

    def test_rollup_matches_brute_force(self, cube, sales_table):
        columns, rows = cube.query(("flag",))
        everything = sales_table.read_all()
        assert columns == ["flag", "s", "n"]
        for flag, qty_sum, count in rows:
            mask = everything["flag"] == flag.encode()
            assert qty_sum == pytest.approx(everything["qty"][mask].sum())
            assert count == mask.sum()

    def test_slice(self, cube, sales_table):
        _, rows = cube.query((), slice_equals={"flag": "A"})
        everything = sales_table.read_all()
        mask = everything["flag"] == b"A"
        assert rows[0][1] == mask.sum()

    def test_unforeseen_dimension_raises(self, cube):
        # The paper's inflexibility argument, as an exception.
        with pytest.raises(CubeMissError, match="not a cube dimension"):
            cube.query(("flag",), slice_equals={"ship": 0})

    def test_unknown_group_by_raises(self, cube):
        with pytest.raises(CubeMissError):
            cube.query(("qty",))

    def test_allocated_bytes_match_formula(self, cube):
        assert cube.allocated_bytes == cube_bytes(
            cube.dimension_cardinalities(), cube.entry_bytes
        )

    def test_avg_must_not_be_materialized(self, sales_table):
        with pytest.raises(ReproError):
            DataCube(
                ("flag",), (OutputAggregate("a", average(col("qty"))),)
            )

    def test_needs_dimensions(self):
        with pytest.raises(ReproError):
            DataCube((), (OutputAggregate("n", count_star()),))

    def test_entry_bytes_default(self, cube):
        assert cube.entry_bytes == 16  # two aggregates x 8 bytes
