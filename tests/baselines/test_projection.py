"""Tests for the projection-index baseline."""

import datetime

import numpy as np
import pytest

from repro.baselines.projection import ProjectionIndex
from repro.lang import cmp
from repro.storage.types import date_to_int

from tests.conftest import BASE_DATE


@pytest.fixture
def index(catalog, sales_table, tmp_path):
    return ProjectionIndex.build(
        sales_table, "ship", str(tmp_path / "ship.proj")
    )


class TestBuild:
    def test_one_value_per_tuple(self, index, sales_table):
        assert index.num_entries == sales_table.num_records

    def test_values_in_physical_order(self, index, sales_table):
        np.testing.assert_array_equal(
            index.values(charge=False), sales_table.read_all()["ship"]
        )

    def test_size_is_tuples_times_width(self, index, sales_table):
        assert index.size_bytes == sales_table.num_records * 4

    def test_build_charges_scan_and_writes(self, catalog, sales_table, tmp_path):
        catalog.reset_stats()
        built = ProjectionIndex.build(
            sales_table, "qty", str(tmp_path / "qty.proj")
        )
        assert catalog.stats.tuples_built == sales_table.num_records
        assert catalog.stats.page_writes >= built.num_pages


class TestQuerying:
    def test_matching_positions(self, index, sales_table):
        cutoff = BASE_DATE + datetime.timedelta(days=10)
        predicate = cmp("ship", "<=", cutoff).bind(sales_table.schema)
        positions = index.matching_positions(predicate)
        everything = sales_table.read_all()
        expected = np.flatnonzero(everything["ship"] <= date_to_int(cutoff))
        np.testing.assert_array_equal(positions, expected)

    def test_wrong_column_rejected(self, index, sales_table):
        predicate = cmp("qty", "=", 1.0).bind(sales_table.schema)
        with pytest.raises(ValueError):
            index.matching_positions(predicate)

    def test_scan_charges_index_pages_only(self, catalog, index, sales_table):
        catalog.go_cold()
        catalog.reset_stats()
        index.values()
        # Index pages are ~1/30 of the relation pages for 4-byte values.
        assert catalog.stats.page_reads == index.num_pages
        assert index.num_pages < sales_table.num_pages

    def test_sma_is_coarser_than_projection(self, index, sales_sma_set):
        """The generalization relationship: one SMA entry per *bucket*,
        one projection entry per *tuple*."""
        min_file = sales_sma_set.files_of("smin")[()]
        assert min_file.num_entries < index.num_entries
        assert min_file.size_bytes < index.size_bytes

    def test_delete_files(self, index):
        import os

        index.delete_files()
        assert not os.path.exists(index.path)
