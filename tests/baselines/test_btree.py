"""Tests for the bulk-loaded B+-tree baseline."""

import datetime

import numpy as np
import pytest

from repro.baselines.btree import BPlusTree, make_rid, rid_bucket, rid_slot
from repro.errors import StorageError
from repro.lang.predicate import CmpOp
from repro.storage.types import date_to_int

from tests.conftest import BASE_DATE


@pytest.fixture
def tree(catalog, sales_table):
    return BPlusTree.build("ship_idx", sales_table, "ship", catalog.pool)


def cutoff_int(offset):
    return date_to_int(BASE_DATE + datetime.timedelta(days=offset))


class TestRids:
    def test_rid_round_trip(self):
        rid = make_rid(12345, 678)
        assert rid_bucket(rid) == 12345
        assert rid_slot(rid) == 678


class TestBuild:
    def test_all_entries_indexed(self, tree, sales_table):
        assert tree.num_entries == sales_table.num_records

    def test_height_and_pages_consistent(self, tree):
        assert tree.height >= 1
        assert tree.num_pages == sum(tree.level_pages())
        assert tree.level_pages()[-1] == 1  # single root

    def test_fill_factor_controls_size(self, catalog, sales_table):
        full = BPlusTree.build(
            "full", sales_table, "ship", catalog.pool, fill_factor=1.0
        )
        loose = BPlusTree.build(
            "loose", sales_table, "ship", catalog.pool, fill_factor=0.5
        )
        assert loose.num_pages > full.num_pages

    def test_build_charges_scan_sort_and_writes(self, catalog, sales_table):
        catalog.reset_stats()
        tree = BPlusTree.build("t2", sales_table, "ship", catalog.pool)
        stats = catalog.stats
        assert stats.tuples_built == sales_table.num_records
        assert stats.page_writes >= tree.num_pages

    def test_bad_fill_factor(self, catalog, sales_table):
        with pytest.raises(StorageError):
            BPlusTree.build(
                "bad", sales_table, "ship", catalog.pool, fill_factor=0.01
            )


class TestSearch:
    def test_range_matches_brute_force(self, tree, sales_table):
        everything = sales_table.read_all()
        low, high = cutoff_int(5), cutoff_int(25)
        rids = tree.search_range(low, high)
        expected = ((everything["ship"] >= low) & (everything["ship"] <= high)).sum()
        assert len(rids) == expected

    @pytest.mark.parametrize("op", list(CmpOp))
    def test_operator_search(self, tree, sales_table, op):
        if op is CmpOp.NE:
            with pytest.raises(StorageError):
                tree.search_cmp(op, cutoff_int(10))
            return
        everything = sales_table.read_all()
        compare = {
            CmpOp.EQ: np.equal, CmpOp.LT: np.less, CmpOp.LE: np.less_equal,
            CmpOp.GT: np.greater, CmpOp.GE: np.greater_equal,
        }[op]
        rids = tree.search_cmp(op, cutoff_int(10))
        assert len(rids) == compare(everything["ship"], cutoff_int(10)).sum()

    def test_search_eq_absent_key(self, tree):
        assert len(tree.search_eq(cutoff_int(10_000))) == 0

    def test_search_charges_node_reads(self, catalog, tree):
        catalog.go_cold()
        catalog.reset_stats()
        tree.search_eq(cutoff_int(10))
        assert catalog.stats.page_reads >= tree.height

    def test_empty_table(self, catalog):
        from tests.conftest import SALES_SCHEMA

        empty = catalog.create_table("EMPTY", SALES_SCHEMA)
        tree = BPlusTree.build("e", empty, "ship", catalog.pool)
        assert len(tree.search_range(None, None)) == 0


class TestFetch:
    def test_fetch_returns_matching_tuples(self, tree, sales_table):
        rids = tree.search_cmp(CmpOp.LE, cutoff_int(8))
        fetched = tree.fetch(sales_table, rids)
        assert len(fetched) == len(rids)
        assert (fetched["ship"] <= cutoff_int(8)).all()

    def test_fetch_empty(self, tree, sales_table):
        fetched = tree.fetch(sales_table, np.zeros(0, dtype=np.int64))
        assert len(fetched) == 0

    def test_unclustered_fetch_is_random_heavy(self, tmp_path):
        """On shuffled data (and a buffer far smaller than the table, as
        at warehouse scale), rid-order fetch degenerates to random I/O —
        the paper's Section 1 argument."""
        from repro.storage import Catalog
        from tests.conftest import SALES_SCHEMA, sales_rows

        catalog = Catalog(str(tmp_path / "tinybuf"), buffer_pages=4)
        rng = np.random.default_rng(0)
        rows = sales_rows(8000)
        shuffled = [rows[i] for i in rng.permutation(len(rows))]
        table = catalog.create_table("SHUFFLED", SALES_SCHEMA)
        table.append_rows(shuffled)
        tree = BPlusTree.build("s_idx", table, "ship", catalog.pool)
        rids = tree.search_cmp(CmpOp.LE, cutoff_int(159))  # ~high selectivity

        catalog.go_cold()
        catalog.reset_stats()
        tree.fetch(table, rids)
        random_ish = (
            catalog.stats.random_page_reads + catalog.stats.skip_page_reads
        )
        # Far more page movements than the table has pages: the index
        # turned one sequential pass into thrashing.
        assert random_ish > table.num_pages
        catalog.close()
