"""Tests for the bitmap-index baseline."""

import numpy as np
import pytest

from repro.baselines.bitmap import BitmapIndex
from repro.errors import StorageError
from repro.lang.predicate import CmpOp


@pytest.fixture
def index(catalog, sales_table, tmp_path):
    return BitmapIndex.build(
        sales_table, "flag", str(tmp_path / "flag.bmp")
    )


class TestBuild:
    def test_one_bitmap_per_value(self, index):
        assert index.cardinality == 2
        assert sorted(index.values) == [b"A", b"R"]

    def test_bit_per_tuple_per_value(self, index, sales_table):
        expected = index.cardinality * ((sales_table.num_records + 7) // 8)
        assert index.size_bytes == expected

    def test_build_charges_scan(self, catalog, sales_table, tmp_path):
        catalog.reset_stats()
        BitmapIndex.build(sales_table, "flag", str(tmp_path / "b2.bmp"))
        assert catalog.stats.tuples_built == sales_table.num_records

    def test_high_cardinality_refused(self, catalog, sales_table, tmp_path):
        with pytest.raises(StorageError, match="distinct"):
            BitmapIndex.build(
                sales_table, "id", str(tmp_path / "id.bmp"),
                max_cardinality=16,
            )

    def test_empty_table(self, catalog, tmp_path):
        from tests.conftest import SALES_SCHEMA

        empty = catalog.create_table("EMPTY", SALES_SCHEMA)
        index = BitmapIndex.build(empty, "flag", str(tmp_path / "e.bmp"))
        assert index.count(CmpOp.EQ, b"A") == 0


class TestQueries:
    def test_count_equality(self, index, sales_table):
        everything = sales_table.read_all()
        assert index.count(CmpOp.EQ, b"A") == (everything["flag"] == b"A").sum()

    def test_count_never_touches_relation(self, catalog, index):
        catalog.go_cold()
        catalog.reset_stats()
        index.count(CmpOp.EQ, b"A")
        assert catalog.stats.buckets_fetched == 0
        assert catalog.stats.tuples_scanned == 0

    @pytest.mark.parametrize("op", list(CmpOp))
    def test_all_operators_match_brute_force(self, index, sales_table, op):
        everything = sales_table.read_all()
        compare = {
            CmpOp.EQ: np.equal, CmpOp.NE: np.not_equal, CmpOp.LT: np.less,
            CmpOp.LE: np.less_equal, CmpOp.GT: np.greater,
            CmpOp.GE: np.greater_equal,
        }[op]
        assert index.count(op, b"A") == compare(everything["flag"], b"A").sum()

    def test_positions(self, index, sales_table):
        positions = index.positions(CmpOp.EQ, b"R")
        everything = sales_table.read_all()
        np.testing.assert_array_equal(
            positions, np.flatnonzero(everything["flag"] == b"R")
        )

    def test_absent_value(self, index):
        assert index.count(CmpOp.EQ, b"Z") == 0

    def test_reads_charged_per_value_bitmap(self, catalog, index):
        catalog.go_cold()
        catalog.reset_stats()
        index.count(CmpOp.EQ, b"A")
        single = catalog.stats.page_reads
        catalog.go_cold()
        catalog.reset_stats()
        index.count(CmpOp.NE, b"Z")  # touches both bitmaps
        assert catalog.stats.page_reads >= single

    def test_delete_files(self, index):
        import os

        index.delete_files()
        assert not os.path.exists(index.path)
