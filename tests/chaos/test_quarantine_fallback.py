"""Acceptance #4, end to end: bit-flipped SMA → detect on load →
transparent heap fallback (correct answer) → quarantine event + metrics
+ Prometheus counter → ``verify --repair`` rebuilds → SMA path verifies
clean and serves again.
"""

from __future__ import annotations

import os

from repro.core.verify import verify_catalog
from repro.obs import EventLog, render_prometheus
from repro.query.session import Session, assert_same_result
from repro.server import QueryService
from repro.storage import Catalog

from tests.chaos.conftest import CHAOS_QUERIES, build_sales_db

#: The grouped-aggregation query: needs the sqty (SUM) and cnt (COUNT)
#: SMA rollups, so corrupting sqty forces a genuine heap fallback.
AGG_QUERY = CHAOS_QUERIES[0]


def _flip_byte(path: str, offset: int = 11) -> None:
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ 0x40]))


def test_quarantine_fallback_repair_cycle(tmp_path, oracle_results):
    root = str(tmp_path / "db")
    build_sales_db(root)
    _flip_byte(os.path.join(root, "SALES.smas", "sqty__A.sma"))

    catalog = Catalog.discover(root)
    events_path = tmp_path / "events.jsonl"
    event_log = EventLog(str(events_path))
    oracle = oracle_results[0]
    try:
        with QueryService(catalog, workers=2, events=event_log) as service:
            result = service.execute(AGG_QUERY)
            # Degraded but CORRECT: the heap is ground truth.
            assert_same_result(result, oracle)
            # The damaged definition is out of service ...
            quarantined = {
                name
                for sma_set in catalog.sma_sets("SALES")
                for name in sma_set.quarantined
            }
            assert "sqty" in quarantined
            assert catalog.integrity.quarantine_count >= 1
            # ... and every telemetry surface saw it.
            snapshot = service.metrics.snapshot()
            assert snapshot["integrity"]["sma_quarantined"] >= 1
            assert snapshot["integrity"]["by_table"].get("SALES", 0) >= 1
            text = render_prometheus(snapshot)
            sample = next(
                line
                for line in text.splitlines()
                if line.startswith("repro_sma_quarantined_total ")
            )
            assert float(sample.split()[-1]) >= 1
        event_log.close()
        assert "sma_quarantined" in events_path.read_text()

        # verify flags it; --repair rebuilds from the heap.
        report = verify_catalog(catalog)
        assert not report.ok
        repaired = verify_catalog(catalog, repair=True)
        assert repaired.ok
        assert catalog.integrity.snapshot()["sma_repaired"] >= 1

        # The SMA path is back: quarantine lifted, clean verify, same
        # answer, and the plan uses SMAs again.
        assert not any(
            sma_set.quarantined for sma_set in catalog.sma_sets("SALES")
        )
        assert verify_catalog(catalog).ok
        session = Session(catalog)
        healed = session.sql(AGG_QUERY)
        assert_same_result(healed, oracle)
        assert healed.plan.sma_set_name == oracle.plan.sma_set_name
        assert healed.plan.sma_set_name is not None
    finally:
        catalog.close()


def test_fallback_strategy_differs_until_repair(tmp_path, oracle_results):
    """The fallback is a genuinely different (heap) plan, not luck."""
    root = str(tmp_path / "db")
    build_sales_db(root)
    _flip_byte(os.path.join(root, "SALES.smas", "sqty__A.sma"))
    catalog = Catalog.discover(root)
    try:
        session = Session(catalog)
        degraded = session.sql(AGG_QUERY)
        assert_same_result(degraded, oracle_results[0])
        # The oracle plan binds the SMA set; the degraded plan lost its
        # aggregate coverage and runs off the heap alone.
        assert oracle_results[0].plan.sma_set_name is not None
        assert degraded.plan.sma_set_name is None
    finally:
        catalog.close()
