"""Retry accounting under concurrency (satellite d).

16 readers hammer a pool whose loader injects transient faults.  The
invariant from :meth:`BufferPool.note_retry`: the pool's cumulative
``counters().retries`` must equal the *sum* of every window's
``read_retries`` — exactly, even for loads that exhaust their retry
budget and fail — and the hit/miss partition must likewise reconcile.
"""

from __future__ import annotations

import threading

from repro.errors import TransientIOError
from repro.storage.buffer import BufferPool
from repro.storage.faults import FaultInjector, FaultSpec, RetryPolicy
from repro.storage.stats import IoStats

WORKERS = 16
READS_PER_WORKER = 200
DISTINCT_PAGES = 33
PAGE_PAYLOAD = b"\xab" * 128


def test_concurrent_retries_reconcile_exactly():
    pool = BufferPool(capacity_pages=64, stats=IoStats())
    pool.retry_policy = RetryPolicy(max_attempts=8, base_backoff_s=0.0)
    injector = FaultInjector(
        seed=42,
        specs=(FaultSpec("transient", path="data", probability=0.4),),
    )

    windows = [IoStats() for _ in range(WORKERS)]
    failures = [0] * WORKERS
    start = threading.Barrier(WORKERS)
    baseline = pool.counters()

    def loader_for(page_no: int):
        def loader() -> bytes:
            # The injection point lives in the file layer in production;
            # here the loader itself plays that role so the pool's
            # retry loop is exercised directly.
            injector.before_read("data.heap", page_no)
            return PAGE_PAYLOAD

        return loader

    def worker(idx: int) -> None:
        start.wait()
        with pool.query_context(windows[idx]):
            for i in range(READS_PER_WORKER):
                page = (idx * 7 + i) % DISTINCT_PAGES
                try:
                    payload = pool.read_page(
                        "data.heap", page, loader_for(page)
                    )
                except TransientIOError:
                    # Retry budget exhausted: the load failed, but its
                    # retries were already charged to this window.
                    failures[idx] += 1
                else:
                    assert payload == PAGE_PAYLOAD

    threads = [
        threading.Thread(target=worker, args=(idx,)) for idx in range(WORKERS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    delta = pool.counters() - baseline
    # The schedule must actually have injected faults and retried.
    assert injector.fired_count() > 0
    assert delta.retries > 0

    # Exact reconciliation: pool-lifetime counters partition into the
    # per-query windows with nothing lost and nothing double-charged.
    assert delta.retries == sum(w.read_retries for w in windows)
    assert delta.misses == sum(w.page_reads for w in windows)
    assert delta.hits == sum(w.buffer_hits for w in windows)

    # Every read is accounted for: each either completed (hit or miss)
    # or failed after exhausting retries.
    total_reads = WORKERS * READS_PER_WORKER
    assert delta.hits + delta.misses + sum(failures) == total_reads
