"""Harness for the chaos/differential suite.

The core idea: build two byte-identical catalogs, run the same query
battery against both — one fault-free (the oracle), one under a seeded
fault schedule — and demand that every faulted execution either matches
the oracle byte-for-byte, raises a typed :class:`~repro.errors.
StorageError`, or degrades through a *recorded* quarantine.  Silently
wrong answers are the one outcome that must never happen.

Fault schedules are pure functions of their seed and the access
sequence (the injector keys on file basenames, not absolute paths), so
every run of this suite sees the exact same faults — no flakes, and a
failing seed reproduces forever.
"""

from __future__ import annotations

import pytest

from repro.query.session import Session
from repro.storage import Catalog

from tests.conftest import SALES_SCHEMA, sales_rows

#: Query-1-style battery over the SALES fixture schema: grouped
#: aggregation with a range predicate (the paper's headline query
#: shape), ungrouped aggregates, full-group rollups, and raw scans.
CHAOS_QUERIES = [
    "SELECT flag, SUM(qty) AS s, COUNT(*) AS n FROM SALES "
    "WHERE ship <= DATE '1997-01-21' GROUP BY flag ORDER BY flag",
    "SELECT COUNT(*) AS n FROM SALES WHERE ship <= DATE '1997-02-01'",
    "SELECT flag, COUNT(*) AS n FROM SALES GROUP BY flag ORDER BY flag",
    "SELECT MIN(ship) AS lo, MAX(ship) AS hi FROM SALES",
    "SELECT SUM(qty) AS s FROM SALES WHERE ship > DATE '1997-02-10'",
    "SELECT id, qty FROM SALES WHERE ship = DATE '1997-01-05'",
]


def build_sales_db(root: str) -> None:
    """Build one persisted SALES catalog (table + min/max/count/sum SMAs).

    Deterministic: identical inputs, identical file basenames — so two
    builds in different temp directories see identical fault schedules.
    """
    from repro.core import (
        SmaDefinition,
        build_sma_set,
        count_star,
        maximum,
        minimum,
        total,
    )
    from repro.lang import col

    catalog = Catalog(root)
    table = catalog.create_table("SALES", SALES_SCHEMA, clustered_on="ship")
    table.append_rows(sales_rows())
    definitions = [
        SmaDefinition("smin", "SALES", minimum(col("ship"))),
        SmaDefinition("smax", "SALES", maximum(col("ship"))),
        SmaDefinition("cnt", "SALES", count_star(), ("flag",)),
        SmaDefinition("sqty", "SALES", total(col("qty")), ("flag",)),
    ]
    sma_set, _ = build_sma_set(
        table, definitions, directory=catalog.sma_dir("SALES")
    )
    catalog.register_sma_set("SALES", sma_set)
    catalog.close()


@pytest.fixture(scope="session")
def oracle_results(tmp_path_factory):
    """Fault-free answers for CHAOS_QUERIES over the standard catalog."""
    root = str(tmp_path_factory.mktemp("oracle") / "db")
    build_sales_db(root)
    catalog = Catalog.discover(root)
    session = Session(catalog)
    results = [session.sql(q) for q in CHAOS_QUERIES]
    yield results
    catalog.close()
