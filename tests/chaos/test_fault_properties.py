"""Property tests: checksum codec laws and fault-schedule determinism.

Hypothesis drives random payloads and access sequences through the two
foundations the chaos layer rests on:

* the checksum codec must be deterministic and must detect every
  single-bit flip (a CRC-32 guarantee, for both polynomials we ship);
* a :class:`~repro.storage.faults.FaultInjector` must produce the exact
  same schedule for the same seed regardless of directory prefixes or
  payload identity — determinism is what makes differential testing
  reproducible.
"""

from __future__ import annotations

import os
import tempfile

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sma_file import SmaFile
from repro.storage.buffer import BufferPool
from repro.storage.checksum import ALGORITHMS, checksum, crc32c_py
from repro.storage.faults import FaultInjector, FaultSpec
from repro.storage.stats import IoStats


class TestChecksumCodec:
    @given(data=st.binary(max_size=512), algo=st.sampled_from(ALGORITHMS))
    def test_deterministic(self, data, algo):
        assert checksum(data, algo) == checksum(data, algo)
        assert 0 <= checksum(data, algo) <= 0xFFFFFFFF

    @given(
        data=st.binary(min_size=1, max_size=256),
        position=st.integers(min_value=0),
        bit=st.integers(min_value=0, max_value=7),
        algo=st.sampled_from(ALGORITHMS),
    )
    def test_single_bit_flip_always_detected(self, data, position, bit, algo):
        """CRC-32 (either polynomial) catches every 1-bit error."""
        flipped = bytearray(data)
        flipped[position % len(data)] ^= 1 << bit
        assert checksum(bytes(flipped), algo) != checksum(data, algo)

    @given(data=st.binary(max_size=128))
    def test_crc32c_incremental_matches_one_shot(self, data):
        """Feeding bytes one at a time equals hashing the whole buffer."""
        rolling = 0
        for i in range(len(data)):
            rolling = crc32c_py(data[i : i + 1], rolling)
        assert rolling == crc32c_py(data)

    def test_crc32c_known_vector(self):
        # RFC 3720 test vector: 32 zero bytes.
        assert crc32c_py(b"\x00" * 32) == 0x8A9136AA


#: Deterministic access-sequence strategy: (basename, page) pairs.
_ACCESSES = st.lists(
    st.tuples(
        st.sampled_from(["a.heap", "b.heap", "x.sma"]),
        st.integers(min_value=0, max_value=7),
    ),
    max_size=48,
)


def _replay(seed: int, accesses) -> list[dict]:
    """Drive one injector through *accesses*, collecting its firing log."""
    injector = FaultInjector(
        seed=seed,
        specs=(
            FaultSpec("bit_flip", path=".heap", probability=0.5),
            FaultSpec("short_read", path=".sma", probability=0.3, skip=1),
            FaultSpec("latency", probability=0.2, latency_s=0.0),
        ),
    )
    payload = bytes(range(64))
    for name, page in accesses:
        injector.before_read(os.path.join("/anywhere", name), page)
        injector.filter_read(os.path.join("/anywhere", name), page, payload)
    return injector.fired_events()


class TestInjectorDeterminism:
    @given(seed=st.integers(min_value=0, max_value=2**16), accesses=_ACCESSES)
    def test_same_seed_same_schedule(self, seed, accesses):
        assert _replay(seed, accesses) == _replay(seed, accesses)

    @given(seed=st.integers(min_value=0, max_value=2**16), accesses=_ACCESSES)
    def test_schedule_ignores_directory_prefix(self, seed, accesses):
        """Decisions key on basenames: temp dirs don't change schedules."""
        injector_a = FaultInjector(
            seed=seed, specs=(FaultSpec("bit_flip", probability=0.5),)
        )
        injector_b = FaultInjector(
            seed=seed, specs=(FaultSpec("bit_flip", probability=0.5),)
        )
        payload = b"\x5a" * 32
        for name, page in accesses:
            injector_a.filter_read(os.path.join("/tmp/one", name), page, payload)
            injector_b.filter_read(os.path.join("/var/two", name), page, payload)
        assert injector_a.fired_events() == injector_b.fired_events()

    @given(seed_a=st.integers(0, 2**16), seed_b=st.integers(0, 2**16))
    def test_bit_flip_payload_transform_is_pure(self, seed_a, seed_b):
        """The flipped payload depends only on (seed, file, page)."""
        payload = bytes(range(256))
        flips = []
        for seed in (seed_a, seed_b):
            injector = FaultInjector(
                seed=seed, specs=(FaultSpec("bit_flip"),)
            )
            flips.append(injector.filter_read("f.heap", 3, payload))
        if seed_a == seed_b:
            assert flips[0] == flips[1]
        for flipped in flips:
            # Always exactly one bit of damage.
            delta = [a ^ b for a, b in zip(flipped, payload)]
            assert sum(bin(d).count("1") for d in delta) == 1


class TestSmaRoundTrip:
    """Write/reopen/verify over random value arrays (satellite b)."""

    @settings(max_examples=25, deadline=None)
    @given(
        values=st.lists(
            st.integers(min_value=-(2**31), max_value=2**31 - 1),
            min_size=1,
            max_size=64,
        ),
        with_validity=st.booleans(),
        flip_at=st.integers(min_value=0),
    )
    def test_build_reopen_then_bitflip_detected(
        self, values, with_validity, flip_at
    ):
        pool = BufferPool(capacity_pages=16, stats=IoStats())
        array = np.asarray(values, dtype=np.int64)
        valid = None
        if with_validity:
            valid = np.asarray(
                [i % 3 != 0 for i in range(len(values))], dtype=bool
            )
            if valid.all():  # builder semantics: all-valid drops the vector
                valid[0] = False
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "probe.sma")
            SmaFile.build(path, array, pool, valid=valid, page_size=256)

            clean = SmaFile.open(path, pool)
            assert not clean.is_corrupt
            assert np.array_equal(clean.values(charge=False), array)
            if valid is not None:
                assert np.array_equal(clean.valid_mask(), valid)

            size = os.path.getsize(path)
            offset = flip_at % size
            with open(path, "r+b") as handle:
                handle.seek(offset)
                byte = handle.read(1)
                handle.seek(offset)
                handle.write(bytes([byte[0] ^ 0x01]))

            damaged = SmaFile.open(path, pool)
            assert damaged.is_corrupt
            assert "checksum mismatch" in damaged.corrupt_reason
