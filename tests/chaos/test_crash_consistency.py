"""Crash consistency of SMA maintenance appends (satellite c).

:meth:`SmaFile.append_entries` writes the body before the meta sidecar,
so a crash between the two — simulated with an injected torn write —
leaves the old checksum against a new, partial body.  The contract: the
reopened catalog *detects* the damage (never serves it), ``repro verify``
flags it, and ``--repair`` rebuilds the tail from the heap so SMAs and
heap agree again.
"""

from __future__ import annotations

import datetime

import pytest

from repro.core import SmaMaintainer
from repro.core.verify import verify_catalog
from repro.errors import TornWriteError
from repro.query.session import Session
from repro.storage import Catalog
from repro.storage.faults import FaultInjector, FaultSpec

from tests.conftest import BASE_DATE, SALES_SCHEMA, sales_rows


def _fresh_rows(n: int, *, start_id: int = 90_000):
    return SALES_SCHEMA.batch_from_rows(
        [
            (
                start_id + i,
                BASE_DATE + datetime.timedelta(days=300 + i // 50),
                float(i % 5),
                "AR"[i % 2],
            )
            for i in range(n)
        ]
    )


def test_torn_append_is_detected_flagged_and_repaired(
    catalog, sales_table, sales_sma_set, tmp_path
):
    maintainer = SmaMaintainer(sales_table, [sales_sma_set])
    injector = FaultInjector(
        seed=5,
        specs=(FaultSpec("torn_write", path="sqty", max_count=1),),
    )
    catalog.install_fault_injector(injector)

    inserted = _fresh_rows(600)
    with pytest.raises(TornWriteError):
        maintainer.insert(inserted)
    assert injector.fired_count() == 1

    # "Reboot": stop injecting, flush, reopen the catalog from disk.
    catalog.install_fault_injector(None)
    catalog.close()
    root = catalog.root_dir
    reopened = Catalog.discover(root)
    try:
        # The heap took the full insert; the torn SMA must be *detected*,
        # and the other definitions must either agree with the new heap
        # or be flagged too — nothing may silently serve stale entries.
        report = verify_catalog(reopened)
        assert not report.ok
        assert any("sqty" in issue.target for issue in report.issues)
        assert all(issue.repairable for issue in report.issues)

        repaired = verify_catalog(reopened, repair=True)
        assert repaired.ok
        assert repaired.repaired_count == len(repaired.issues)
        assert verify_catalog(reopened).ok

        # Agreement, end to end: the SMA-served aggregate equals a
        # brute-force recompute over base rows + the applied insert.
        expected: dict[str, float] = {}
        for row in sales_rows():
            expected[row[3]] = expected.get(row[3], 0.0) + row[2]
        for i in range(len(inserted)):
            flag = "AR"[i % 2]
            expected[flag] = expected.get(flag, 0.0) + float(i % 5)
        result = Session(reopened).sql(
            "SELECT flag, SUM(qty) AS s FROM SALES GROUP BY flag ORDER BY flag"
        )
        got = {row[0]: row[1] for row in result.rows}
        assert set(got) == set(expected)
        for flag, total in expected.items():
            assert got[flag] == pytest.approx(total)
    finally:
        reopened.close()


def test_torn_write_leaves_prefix_on_disk(catalog, sales_table, sales_sma_set):
    """The tear genuinely persists a prefix — recovery has real damage."""
    import os

    maintainer = SmaMaintainer(sales_table, [sales_sma_set])
    files = sales_sma_set.files_of("sqty")
    injector = FaultInjector(
        seed=9, specs=(FaultSpec("torn_write", path="sqty", max_count=1),)
    )
    catalog.install_fault_injector(injector)
    with pytest.raises(TornWriteError) as excinfo:
        maintainer.insert(_fresh_rows(600))
    catalog.install_fault_injector(None)
    torn_path = excinfo.value.path
    torn_sma = next(
        sma for sma in files.values() if sma.path == torn_path
    )
    # The in-memory array was already extended when the write tore, so
    # the bytes on disk are a strict prefix of the intended body.
    assert os.path.getsize(torn_path) < torn_sma.size_bytes
