"""Differential chaos: seeded fault schedules vs the fault-free oracle.

Acceptance: across every schedule, zero silently-wrong results.  Each
query either matches the oracle byte-for-byte
(:func:`~repro.query.session.assert_same_result`), raises a typed
:class:`~repro.errors.StorageError`, or degrades through a recorded SMA
quarantine — and degraded answers still match the oracle, because the
heap is ground truth.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import StorageError
from repro.query.session import Session, assert_same_result
from repro.storage import Catalog
from repro.storage.faults import FaultInjector, FaultSpec

from tests.chaos.conftest import CHAOS_QUERIES, build_sales_db

#: name -> (seed, specs).  All decisions are deterministic in the seed,
#: so these schedules replay identically on every machine.
SCHEDULES = {
    "transient-only": (
        11,
        (
            FaultSpec("transient", path=".heap", probability=0.35),
            FaultSpec("transient", path=".sma", probability=0.2, max_count=4),
        ),
    ),
    "bit-flip-only": (
        23,
        (
            FaultSpec("bit_flip", path=".sma", max_count=2),
            FaultSpec("bit_flip", path=".heap", probability=0.04),
        ),
    ),
    "mixed": (
        37,
        (
            FaultSpec("transient", path=".heap", probability=0.25),
            FaultSpec("latency", path=".heap", probability=0.1,
                      latency_s=0.0002),
            FaultSpec("bit_flip", path=".sma", max_count=1),
            FaultSpec("short_read", path=".heap", probability=0.03),
        ),
    ),
}


def _run_battery(session, oracle_results):
    """One pass over the battery; returns (ok, typed_error) counts.

    Any completed query must equal the oracle — a mismatch raises
    straight out of the test.
    """
    ok = errors = 0
    for sql, expected in zip(CHAOS_QUERIES, oracle_results):
        try:
            result = session.sql(sql)
        except StorageError:
            errors += 1
            continue
        assert_same_result(result, expected)
        ok += 1
    return ok, errors


@pytest.mark.parametrize("schedule", sorted(SCHEDULES))
def test_schedule_never_silently_wrong(schedule, oracle_results, tmp_path):
    seed, specs = SCHEDULES[schedule]
    root = str(tmp_path / "db")
    build_sales_db(root)
    injector = FaultInjector(seed=seed, specs=specs)
    catalog = Catalog.discover(root, fault_injector=injector)
    try:
        session = Session(catalog)
        ok1, err1 = _run_battery(session, oracle_results)
        assert ok1 + err1 == len(CHAOS_QUERIES)
        # Second pass: transient schedules re-roll, previously failed
        # pages usually load — and still nothing may be silently wrong.
        ok2, err2 = _run_battery(session, oracle_results)
        assert ok2 >= ok1 or err2 <= err1
        # The schedule must have actually exercised something, and some
        # queries must have survived (else the test proves nothing).
        assert injector.fired_count() > 0
        assert ok1 + ok2 > 0
        # Degradation is recorded, never silent: if a bit flip corrupted
        # an SMA body at open, the planner must have quarantined it on
        # first use (bit-flip schedules hit .sma with max_count >= 1).
        if any(s.kind == "bit_flip" and s.path == ".sma" for s in specs):
            assert catalog.integrity.quarantine_count >= 1
            quarantined = {
                name
                for sma_set in catalog.sma_sets("SALES")
                for name in sma_set.quarantined
            }
            assert quarantined
        # The firing log doubles as the CI chaos artifact.
        artifact = tmp_path / f"faults-{schedule}.jsonl"
        count = injector.write_jsonl(str(artifact))
        assert count == injector.fired_count()
        lines = artifact.read_text().splitlines()
        assert len(lines) == count
        assert all("kind" in json.loads(line) for line in lines[:5])
    finally:
        catalog.close()


@pytest.mark.parametrize("schedule", sorted(SCHEDULES))
def test_schedule_is_deterministic(schedule, tmp_path):
    """Two catalogs, two directories, same seed: identical fault log."""
    seed, specs = SCHEDULES[schedule]
    logs = []
    for sub in ("a", "b"):
        root = str(tmp_path / sub / "db")
        build_sales_db(root)
        injector = FaultInjector(seed=seed, specs=specs)
        catalog = Catalog.discover(root, fault_injector=injector)
        try:
            session = Session(catalog)
            for sql in CHAOS_QUERIES:
                try:
                    session.sql(sql)
                except StorageError:
                    pass
        finally:
            catalog.close()
        logs.append(injector.fired_events())
    assert logs[0] == logs[1]
