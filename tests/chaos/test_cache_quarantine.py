"""Chaos: SMA quarantine mid-flight vs the result cache & shared scans.

Extends the quarantine-fallback cycle to the PR-10 serving layers: a
torn/corrupted SMA that quarantines while the service is running must

* evict every cached entry of the affected table (a fingerprint keyed
  at the pre-quarantine SMA universe may no longer be reproduced), and
* poison pending shared-scan groups, detaching their consumers onto a
  solo heap-fallback execution — degraded, never wrong.

The fault is deterministic (one flipped byte in the ``sqty`` SMA file),
so the sequence reproduces forever.
"""

from __future__ import annotations

import os
import threading

from repro.obs import EventLog
from repro.query.session import assert_same_result
from repro.server import QueryService
from repro.storage import Catalog

from tests.chaos.conftest import CHAOS_QUERIES, build_sales_db

#: Needs the corrupted sqty (SUM) rollup → forces the quarantine.
AGG_QUERY = CHAOS_QUERIES[0]
#: Same shape, different literal: a distinct plan fingerprint.
AGG_VARIANT = AGG_QUERY.replace("1997-01-21", "1997-01-28")


def _flip_byte(path: str, offset: int = 11) -> None:
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ 0x40]))


def test_quarantine_evicts_cache_and_detaches_shared_scans(
    tmp_path, oracle_results
):
    root = str(tmp_path / "db")
    build_sales_db(root)
    _flip_byte(os.path.join(root, "SALES.smas", "sqty__A.sma"))

    catalog = Catalog.discover(root)
    events_path = tmp_path / "events.jsonl"
    event_log = EventLog(str(events_path))
    oracle = oracle_results[0]
    try:
        with QueryService(
            catalog,
            workers=3,
            events=event_log,
            result_cache=True,
            shared_scans=True,
        ) as service:
            # Prime: the aggregate runs as a shared heap pass (auto-mode
            # aggregates never touch SMA files while sharing is on), so
            # the corrupted SMA stays untouched and the result caches.
            primed = service.execute(AGG_QUERY)
            assert_same_result(primed, oracle)
            hit = service.execute(AGG_QUERY)
            assert hit.plan.strategy == "result_cache"
            assert service.result_cache.snapshot()["entries"] >= 1

            # Open a wide gather window and park a fresh shared-scan
            # leader in it, so a group is *pending* when the quarantine
            # lands.
            service.shared_scans.gather_window_s = 0.5
            pending: dict = {}
            started = threading.Event()

            def lead_pending():
                started.set()
                pending["result"] = service.execute(AGG_VARIANT)

            leader = threading.Thread(target=lead_pending)
            leader.start()
            started.wait()

            # Forcing the SMA path (mode="sma" bypasses scan sharing)
            # loads the corrupted rollup: quarantine fires mid-flight.
            # Auto mode would degrade to the heap transparently; forced
            # SMA mode cannot, so the probe either answers correctly or
            # fails *typed* — silent wrong bytes are the one outcome
            # that must never happen.
            from repro.errors import PlanningError

            try:
                degraded = service.execute(AGG_QUERY, mode="sma")
                assert_same_result(degraded, oracle)
            except PlanningError:
                pass
            assert catalog.integrity.quarantine_count >= 1

            leader.join()
            # The parked consumer was detached and re-executed solo —
            # same bytes as the fault-free oracle of that variant.
            from repro.query.session import Session

            solo = Session(catalog).sql(AGG_VARIANT)
            assert_same_result(pending["result"], solo)
            assert service.shared_scans.snapshot()["detaches"] >= 1

            # Cache entries of the table were evicted: the old hit is
            # a miss again, and the snapshot counted invalidations.
            snapshot = service.result_cache.snapshot()
            assert snapshot["invalidations"] >= 1
            after = service.execute(AGG_QUERY)
            assert after.plan.strategy != "result_cache"
            assert_same_result(after, oracle)

            observed = service.observed_snapshot()
            assert observed["integrity"]["sma_quarantined"] >= 1
        event_log.close()
        text = events_path.read_text()
        assert "sma_quarantined" in text
        assert "cache_invalidate" in text
        assert "shared_scan_poison" in text
        assert "shared_scan_detach" in text
    finally:
        catalog.close()
