"""Rule-by-rule unit tests for the Section 3.1 grading functions."""

import numpy as np
import pytest

from repro.core.grade import (
    partition_column_column,
    partition_column_const,
    partition_count_sma,
)
from repro.errors import SmaStateError
from repro.lang.predicate import CmpOp

# Three buckets: values [0..9], [10..19], [20..29].
MINS = np.array([0, 10, 20])
MAXS = np.array([9, 19, 29])


def grades(p):
    return ["qda"[0 if p.qualifying[i] else 1 if p.disqualifying[i] else 2]
            for i in range(p.num_buckets)]


class TestColumnConstRules:
    def test_le_rule(self):
        # A <= c: q when max <= c; d when min > c.
        p = partition_column_const(CmpOp.LE, 15, 3, mins=MINS, maxs=MAXS)
        assert grades(p) == ["q", "a", "d"]

    def test_le_boundary_inclusive(self):
        p = partition_column_const(CmpOp.LE, 9, 3, mins=MINS, maxs=MAXS)
        assert grades(p) == ["q", "d", "d"]

    def test_lt_rule(self):
        p = partition_column_const(CmpOp.LT, 10, 3, mins=MINS, maxs=MAXS)
        assert grades(p) == ["q", "d", "d"]

    def test_ge_rule(self):
        p = partition_column_const(CmpOp.GE, 10, 3, mins=MINS, maxs=MAXS)
        assert grades(p) == ["d", "q", "q"]

    def test_gt_rule(self):
        p = partition_column_const(CmpOp.GT, 19, 3, mins=MINS, maxs=MAXS)
        assert grades(p) == ["d", "d", "q"]

    def test_eq_rule(self):
        # d when c < min or c > max; else ambivalent.
        p = partition_column_const(CmpOp.EQ, 15, 3, mins=MINS, maxs=MAXS)
        assert grades(p) == ["d", "a", "d"]

    def test_eq_constant_bucket_qualifies(self):
        # Our documented refinement: min == max == c ⇒ every tuple is c.
        p = partition_column_const(
            CmpOp.EQ, 7, 3, mins=np.array([7, 0, 8]), maxs=np.array([7, 9, 8])
        )
        assert grades(p) == ["q", "a", "d"]

    def test_ne_rule(self):
        p = partition_column_const(
            CmpOp.NE, 7, 3, mins=np.array([7, 0, 8]), maxs=np.array([7, 9, 8])
        )
        assert grades(p) == ["d", "a", "q"]

    def test_only_max_available(self):
        # With max only, A <= c can prove q but never d.
        p = partition_column_const(CmpOp.LE, 15, 3, maxs=MAXS)
        assert grades(p) == ["q", "a", "a"]

    def test_only_min_available(self):
        p = partition_column_const(CmpOp.LE, 15, 3, mins=MINS)
        assert grades(p) == ["a", "a", "d"]

    def test_no_bounds_rejected(self):
        with pytest.raises(SmaStateError):
            partition_column_const(CmpOp.LE, 15, 3)

    def test_undefined_entries_are_ambivalent(self):
        # "The else case is also applied if the max/min aggregates are
        # not defined."
        valid = np.array([True, False, True])
        p = partition_column_const(
            CmpOp.LE, 15, 3, mins=MINS, maxs=MAXS, valid=valid
        )
        assert grades(p) == ["q", "a", "d"]

    def test_empty_buckets_disqualify(self):
        empty = np.array([False, True, False])
        p = partition_column_const(
            CmpOp.LE, 15, 3, mins=MINS, maxs=MAXS, empty=empty
        )
        assert grades(p) == ["q", "d", "d"]

    def test_length_mismatch_rejected(self):
        with pytest.raises(SmaStateError):
            partition_column_const(CmpOp.LE, 15, 4, mins=MINS, maxs=MAXS)

    def test_bytes_domain(self):
        mins = np.array([b"aa", b"mm"], dtype="S2")
        maxs = np.array([b"ll", b"zz"], dtype="S2")
        # b"lz" >= every value of bucket 0; below bucket 1's minimum.
        p = partition_column_const(CmpOp.LE, b"lz", 2, mins=mins, maxs=maxs)
        assert grades(p) == ["q", "d"]
        # b"pp" sits inside bucket 1's range: ambivalent.
        p = partition_column_const(CmpOp.LE, b"pp", 2, mins=mins, maxs=maxs)
        assert grades(p) == ["q", "a"]


class TestColumnColumnRules:
    # Per-bucket bounds for attributes A and B of the same relation.
    A_MIN = np.array([0, 10, 5])
    A_MAX = np.array([4, 14, 25])
    B_MIN = np.array([5, 0, 0])
    B_MAX = np.array([9, 5, 4])

    def test_le_rule(self):
        # q when max(A) <= min(B); d when min(A) > max(B).  Bucket 2's
        # A range [5, 25] lies entirely above B's [0, 4]: disqualify.
        p = partition_column_column(
            CmpOp.LE, 3,
            mins_a=self.A_MIN, maxs_a=self.A_MAX,
            mins_b=self.B_MIN, maxs_b=self.B_MAX,
        )
        assert grades(p) == ["q", "d", "d"]

    def test_le_overlap_is_ambivalent(self):
        p = partition_column_column(
            CmpOp.LE, 1,
            mins_a=np.array([5]), maxs_a=np.array([25]),
            mins_b=np.array([0]), maxs_b=np.array([40]),
        )
        assert grades(p) == ["a"]

    def test_lt_rule_strictness(self):
        a_min = np.array([0]); a_max = np.array([5])
        b_min = np.array([5]); b_max = np.array([9])
        le = partition_column_column(
            CmpOp.LE, 1, mins_a=a_min, maxs_a=a_max, mins_b=b_min, maxs_b=b_max
        )
        lt = partition_column_column(
            CmpOp.LT, 1, mins_a=a_min, maxs_a=a_max, mins_b=b_min, maxs_b=b_max
        )
        assert grades(le) == ["q"]
        assert grades(lt) == ["a"]

    def test_ge_gt_flipped(self):
        # Bucket 2 has min(A)=5 >= max(B)=4, so it qualifies for A >= B.
        p = partition_column_column(
            CmpOp.GE, 3,
            mins_a=self.A_MIN, maxs_a=self.A_MAX,
            mins_b=self.B_MIN, maxs_b=self.B_MAX,
        )
        assert grades(p) == ["d", "q", "q"]

    def test_eq_disjoint_ranges_disqualify(self):
        # All three buckets have disjoint A/B ranges: no tuple can have
        # A = B anywhere.
        p = partition_column_column(
            CmpOp.EQ, 3,
            mins_a=self.A_MIN, maxs_a=self.A_MAX,
            mins_b=self.B_MIN, maxs_b=self.B_MAX,
        )
        assert grades(p) == ["d", "d", "d"]

    def test_eq_overlapping_ranges_ambivalent(self):
        p = partition_column_column(
            CmpOp.EQ, 1,
            mins_a=np.array([0]), maxs_a=np.array([9]),
            mins_b=np.array([5]), maxs_b=np.array([14]),
        )
        assert grades(p) == ["a"]

    def test_eq_all_constant_qualifies(self):
        p = partition_column_column(
            CmpOp.EQ, 1,
            mins_a=np.array([3]), maxs_a=np.array([3]),
            mins_b=np.array([3]), maxs_b=np.array([3]),
        )
        assert grades(p) == ["q"]

    def test_ne_rule(self):
        p = partition_column_column(
            CmpOp.NE, 2,
            mins_a=np.array([0, 3]), maxs_a=np.array([4, 3]),
            mins_b=np.array([5, 3]), maxs_b=np.array([9, 3]),
        )
        assert grades(p) == ["q", "d"]

    def test_partial_bounds_give_partial_knowledge(self):
        # Only max(A) and min(B): the q-rule of <= still fires.
        p = partition_column_column(
            CmpOp.LE, 1, maxs_a=np.array([4]), mins_b=np.array([5])
        )
        assert grades(p) == ["q"]

    def test_no_vectors_rejected(self):
        with pytest.raises(SmaStateError):
            partition_column_column(CmpOp.LE, 2)


class TestCountSmaRules:
    def test_qualify_when_all_present_values_satisfy(self):
        counts = {
            1: np.array([2, 0, 1]),
            5: np.array([3, 0, 0]),
            9: np.array([0, 4, 1]),
        }
        p = partition_count_sma(CmpOp.LE, 5, 3, counts)
        # bucket0: values {1,5} all <= 5 -> q; bucket1: only 9 -> d;
        # bucket2: {1,9} mixed -> a.
        assert grades(p) == ["q", "d", "a"]

    def test_equality_predicate(self):
        counts = {1: np.array([2, 0]), 2: np.array([0, 3])}
        p = partition_count_sma(CmpOp.EQ, 2, 2, counts)
        assert grades(p) == ["d", "q"]

    def test_empty_bucket_disqualifies(self):
        counts = {1: np.array([0]), 2: np.array([0])}
        p = partition_count_sma(CmpOp.LE, 5, 1, counts)
        assert grades(p) == ["d"]

    def test_ne_predicate(self):
        counts = {3: np.array([1, 0]), 4: np.array([0, 2])}
        p = partition_count_sma(CmpOp.NE, 3, 2, counts)
        assert grades(p) == ["d", "q"]

    def test_length_mismatch_rejected(self):
        with pytest.raises(SmaStateError):
            partition_count_sma(CmpOp.LE, 5, 3, {1: np.array([1, 2])})
