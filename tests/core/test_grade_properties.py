"""Property-based soundness tests for the grading rules (E6).

The fundamental invariant of Section 3.1: whatever the data and
predicate, a bucket graded *qualifying* contains only satisfying tuples
and a bucket graded *disqualifying* contains none.  We generate random
bucketized integer data and random predicates and check the grading
against tuple-level ground truth.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.grade import (
    partition_column_column,
    partition_column_const,
    partition_count_sma,
)
from repro.lang.predicate import CmpOp

OPS = st.sampled_from(list(CmpOp))


def _buckets(values, bucket_size):
    return [
        values[i : i + bucket_size]
        for i in range(0, len(values), bucket_size)
    ]


@st.composite
def bucketized(draw, max_buckets=12, max_bucket_size=8, lo=-20, hi=20):
    bucket_size = draw(st.integers(1, max_bucket_size))
    num = draw(st.integers(1, max_buckets)) * bucket_size
    values = np.array(draw(
        st.lists(st.integers(lo, hi), min_size=num, max_size=num)
    ))
    return values, bucket_size


def _evaluate(op, a, b):
    return {
        CmpOp.EQ: a == b, CmpOp.NE: a != b, CmpOp.LT: a < b,
        CmpOp.LE: a <= b, CmpOp.GT: a > b, CmpOp.GE: a >= b,
    }[op]


@given(data=bucketized(), op=OPS, constant=st.integers(-25, 25))
@settings(max_examples=200)
def test_column_const_grading_is_sound(data, op, constant):
    values, bucket_size = data
    buckets = _buckets(values, bucket_size)
    mins = np.array([b.min() for b in buckets])
    maxs = np.array([b.max() for b in buckets])
    partitioning = partition_column_const(
        op, constant, len(buckets), mins=mins, maxs=maxs
    )
    for i, bucket in enumerate(buckets):
        satisfied = _evaluate(op, bucket, constant)
        if partitioning.qualifying[i]:
            assert satisfied.all()
        if partitioning.disqualifying[i]:
            assert not satisfied.any()


@given(data=bucketized(), op=OPS, constant=st.integers(-25, 25))
@settings(max_examples=150)
def test_one_sided_bounds_are_sound(data, op, constant):
    """Grading with only a min (or only a max) SMA must stay sound."""
    values, bucket_size = data
    buckets = _buckets(values, bucket_size)
    mins = np.array([b.min() for b in buckets])
    maxs = np.array([b.max() for b in buckets])
    for kwargs in ({"mins": mins}, {"maxs": maxs}):
        partitioning = partition_column_const(
            op, constant, len(buckets), **kwargs
        )
        for i, bucket in enumerate(buckets):
            satisfied = _evaluate(op, bucket, constant)
            if partitioning.qualifying[i]:
                assert satisfied.all()
            if partitioning.disqualifying[i]:
                assert not satisfied.any()


@given(data_a=bucketized(max_buckets=8), op=OPS, seed=st.integers(0, 2**32 - 1))
@settings(max_examples=150)
def test_column_column_grading_is_sound(data_a, op, seed):
    values_a, bucket_size = data_a
    rng = np.random.default_rng(seed)
    values_b = rng.integers(-20, 21, size=len(values_a))
    buckets_a = _buckets(values_a, bucket_size)
    buckets_b = _buckets(values_b, bucket_size)
    partitioning = partition_column_column(
        op,
        len(buckets_a),
        mins_a=np.array([b.min() for b in buckets_a]),
        maxs_a=np.array([b.max() for b in buckets_a]),
        mins_b=np.array([b.min() for b in buckets_b]),
        maxs_b=np.array([b.max() for b in buckets_b]),
    )
    for i, (ba, bb) in enumerate(zip(buckets_a, buckets_b)):
        satisfied = _evaluate(op, ba, bb)
        if partitioning.qualifying[i]:
            assert satisfied.all()
        if partitioning.disqualifying[i]:
            assert not satisfied.any()


@given(data=bucketized(lo=0, hi=6), op=OPS, constant=st.integers(-2, 8))
@settings(max_examples=150)
def test_count_sma_grading_is_sound_and_maximal(data, op, constant):
    """Count-SMA grading is sound — and *exact*: a bucket stays
    ambivalent only when it genuinely mixes satisfying and
    non-satisfying tuples."""
    values, bucket_size = data
    buckets = _buckets(values, bucket_size)
    domain = np.unique(values)
    value_counts = {
        int(v): np.array([(b == v).sum() for b in buckets]) for v in domain
    }
    partitioning = partition_count_sma(op, constant, len(buckets), value_counts)
    for i, bucket in enumerate(buckets):
        satisfied = _evaluate(op, bucket, constant)
        if partitioning.qualifying[i]:
            assert satisfied.all() and len(bucket)
        if partitioning.disqualifying[i]:
            assert not satisfied.any()
        # Exactness: per-value counts give complete knowledge, so the
        # only buckets left ambivalent are the genuinely mixed ones
        # (some tuples satisfy, some do not — those must be fetched).
        if partitioning.ambivalent[i]:
            assert satisfied.any() and not satisfied.all()


@given(data=bucketized(), op=OPS, constant=st.integers(-25, 25))
@settings(max_examples=100)
def test_negation_duality(data, op, constant):
    """grade(not p) == grade(p) with q and d swapped."""
    values, bucket_size = data
    buckets = _buckets(values, bucket_size)
    mins = np.array([b.min() for b in buckets])
    maxs = np.array([b.max() for b in buckets])
    straight = partition_column_const(op, constant, len(buckets), mins=mins, maxs=maxs)
    negated = partition_column_const(
        op.negated, constant, len(buckets), mins=mins, maxs=maxs
    )
    # Inverting the straight partitioning must be sound for the negated
    # predicate; it may know *less* than direct grading but never more
    # than ground truth allows.
    inverted = straight.invert()
    for i, bucket in enumerate(buckets):
        satisfied = _evaluate(op.negated, bucket, constant)
        if inverted.qualifying[i]:
            assert satisfied.all()
        if inverted.disqualifying[i]:
            assert not satisfied.any()
        if negated.qualifying[i]:
            assert satisfied.all()
        if negated.disqualifying[i]:
            assert not satisfied.any()
