"""Unit tests for SMA definitions and the paper's restrictions."""

import pytest

from repro.core.aggregates import average, count_star, maximum, total
from repro.core.definition import SmaDefinition
from repro.errors import SmaDefinitionError
from repro.lang.expr import col
from repro.storage.schema import Schema
from repro.storage.types import DATE, FLOAT64, char

SCHEMA = Schema.of(("ship", DATE), ("qty", FLOAT64), ("flag", char(1)))


class TestRestrictions:
    def test_avg_rejected(self):
        # The paper allows only min, max, sum, count in SMA definitions.
        with pytest.raises(SmaDefinitionError):
            SmaDefinition("bad", "T", average(col("qty")))

    def test_duplicate_group_by_rejected(self):
        with pytest.raises(SmaDefinitionError):
            SmaDefinition("bad", "T", count_star(), ("flag", "flag"))

    def test_invalid_name_rejected(self):
        with pytest.raises(SmaDefinitionError):
            SmaDefinition("not a name", "T", count_star())

    def test_keywordish_names_allowed(self):
        # The paper itself names SMAs min/max/count.
        SmaDefinition("min", "T", maximum(col("ship")))


class TestValidation:
    def test_valid_definition(self):
        SmaDefinition("qty", "T", total(col("qty")), ("flag",)).validate(SCHEMA)

    def test_unknown_aggregate_column(self):
        with pytest.raises(Exception):
            SmaDefinition("x", "T", total(col("ghost"))).validate(SCHEMA)

    def test_unknown_group_column(self):
        with pytest.raises(Exception):
            SmaDefinition("x", "T", count_star(), ("ghost",)).validate(SCHEMA)

    def test_sum_of_date_rejected(self):
        with pytest.raises(SmaDefinitionError):
            SmaDefinition("x", "T", total(col("ship"))).validate(SCHEMA)


class TestMatching:
    def test_exact_match(self):
        definition = SmaDefinition("qty", "T", total(col("qty")), ("flag",))
        assert definition.matches(total(col("qty")), ("flag",))

    def test_grouping_must_match(self):
        definition = SmaDefinition("qty", "T", total(col("qty")), ("flag",))
        assert not definition.matches(total(col("qty")), ())

    def test_aggregate_must_match(self):
        definition = SmaDefinition("qty", "T", total(col("qty")))
        assert not definition.matches(maximum(col("qty")), ())

    def test_grouped_flag(self):
        assert SmaDefinition("a", "T", count_star(), ("flag",)).grouped
        assert not SmaDefinition("b", "T", count_star()).grouped


class TestRendering:
    def test_sql_round_trip_text(self):
        definition = SmaDefinition("qty", "LINEITEM", total(col("L_QUANTITY")),
                                   ("L_RETURNFLAG", "L_LINESTATUS"))
        text = definition.sql()
        assert text.splitlines() == [
            "define sma qty",
            "select sum(L_QUANTITY)",
            "from LINEITEM",
            "group by L_RETURNFLAG, L_LINESTATUS",
        ]

    def test_sql_parses_back(self):
        from repro.sql import parse_statement

        definition = SmaDefinition("qty", "LINEITEM", total(col("L_QUANTITY")),
                                   ("L_RETURNFLAG",))
        assert parse_statement(definition.sql()) == definition
