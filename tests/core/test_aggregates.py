"""Unit tests for aggregate specs."""

import numpy as np
import pytest

from repro.core.aggregates import (
    AggregateKind,
    AggregateSpec,
    average,
    check_materializable,
    count_star,
    maximum,
    minimum,
    total,
)
from repro.errors import SmaDefinitionError
from repro.lang.expr import col, const, mul, sub
from repro.storage.schema import Schema
from repro.storage.types import DATE, FLOAT64, INT32, char

SCHEMA = Schema.of(("d", DATE), ("x", FLOAT64), ("n", INT32), ("s", char(3)))


class TestConstruction:
    def test_count_star_takes_no_argument(self):
        assert count_star().argument is None
        with pytest.raises(SmaDefinitionError):
            AggregateSpec(AggregateKind.COUNT, col("x"))

    def test_other_kinds_require_argument(self):
        with pytest.raises(SmaDefinitionError):
            AggregateSpec(AggregateKind.SUM, None)

    def test_structural_equality(self):
        expr = mul(col("x"), sub(const(1), col("x")))
        assert total(expr) == total(mul(col("x"), sub(const(1), col("x"))))
        assert total(expr) != total(col("x"))
        assert minimum(col("d")) != maximum(col("d"))


class TestValidation:
    def test_sum_requires_numeric(self):
        total(col("x")).validate(SCHEMA)
        with pytest.raises(SmaDefinitionError):
            total(col("d")).validate(SCHEMA)
        with pytest.raises(SmaDefinitionError):
            average(col("s")).validate(SCHEMA)

    def test_minmax_require_orderable(self):
        minimum(col("d")).validate(SCHEMA)
        minimum(col("s")).validate(SCHEMA)  # CHAR is orderable

    def test_avg_not_materializable(self):
        with pytest.raises(SmaDefinitionError):
            check_materializable(average(col("x")))

    def test_others_materializable(self):
        for spec in (minimum(col("d")), maximum(col("d")), total(col("x")), count_star()):
            check_materializable(spec)


class TestValueDtype:
    def test_count_is_4_bytes(self):
        # "For counts and dates, 4 bytes are needed."
        assert count_star().value_dtype(SCHEMA).itemsize == 4

    def test_date_minmax_is_4_bytes(self):
        assert minimum(col("d")).value_dtype(SCHEMA).itemsize == 4

    def test_sums_are_8_bytes(self):
        # "For all other aggregate values we used 8 bytes."
        assert total(col("x")).value_dtype(SCHEMA).itemsize == 8
        assert total(col("n")).value_dtype(SCHEMA).itemsize == 8

    def test_integer_sum_promotes_to_int64(self):
        assert total(col("n")).value_dtype(SCHEMA).kind == "i"
        assert total(col("x")).value_dtype(SCHEMA).kind == "f"

    def test_char_minmax_keeps_width(self):
        assert minimum(col("s")).value_dtype(SCHEMA) == np.dtype("S3")

    def test_avg_has_no_dtype(self):
        with pytest.raises(SmaDefinitionError):
            average(col("x")).value_dtype(SCHEMA)


class TestCompute:
    def test_min_max_sum_count(self):
        values = np.array([3.0, 1.0, 2.0])
        assert minimum(col("x")).compute(values) == 1.0
        assert maximum(col("x")).compute(values) == 3.0
        assert total(col("x")).compute(values) == 6.0
        assert count_star().compute(values) == 3

    def test_integer_sum_uses_int64(self):
        values = np.array([2**30, 2**30, 2**30], dtype=np.int32)
        assert total(col("n")).compute(values) == 3 * 2**30

    def test_empty_min_rejected(self):
        with pytest.raises(SmaDefinitionError):
            minimum(col("x")).compute(np.array([]))

    def test_count_of_empty_is_zero(self):
        assert count_star().compute(np.array([])) == 0

    def test_str_rendering(self):
        assert str(count_star()) == "count(*)"
        assert str(total(col("x"))) == "sum(x)"
