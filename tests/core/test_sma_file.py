"""Unit tests for SMA-files: layout, persistence, charging, maintenance."""

import numpy as np
import pytest

from repro.core.sma_file import SmaFile
from repro.errors import SmaStateError, StorageError
from repro.storage.buffer import BufferPool


@pytest.fixture
def pool():
    return BufferPool(capacity_pages=64)


def build(tmp_path, pool, values, valid=None, page_size=4096, name="f.sma"):
    return SmaFile.build(
        str(tmp_path / name), np.asarray(values), pool,
        valid=valid, page_size=page_size,
    )


class TestGeometry:
    def test_page_count_from_value_width(self, tmp_path, pool):
        # 1024 four-byte entries fill exactly one 4 KB page.
        sma = build(tmp_path, pool, np.zeros(1024, dtype="<i4"))
        assert sma.num_pages == 1
        assert sma.entries_per_page == 1024
        sma2 = build(tmp_path, pool, np.zeros(1025, dtype="<i4"), name="g.sma")
        assert sma2.num_pages == 2

    def test_paper_thousandth_ratio(self, tmp_path, pool):
        # 4-byte entries, one per 4 KB bucket: the SMA-file is ~1/1000
        # of the data (Section 2.1).
        sma = build(tmp_path, pool, np.zeros(10_000, dtype="<i4"))
        data_bytes = 10_000 * 4096
        assert sma.size_bytes / data_bytes == pytest.approx(1 / 1024)

    def test_validity_adds_one_byte_per_entry(self, tmp_path, pool):
        bare = build(tmp_path, pool, np.zeros(100, dtype="<i4"))
        masked = build(
            tmp_path, pool, np.zeros(100, dtype="<i4"),
            valid=np.ones(100, dtype=bool), name="g.sma",
        )
        assert masked.size_bytes == bare.size_bytes + 100

    def test_empty_file(self, tmp_path, pool):
        sma = build(tmp_path, pool, np.zeros(0, dtype="<i4"))
        assert sma.num_pages == 0
        assert len(sma.values(charge=False)) == 0

    def test_build_refuses_overwrite(self, tmp_path, pool):
        build(tmp_path, pool, np.zeros(4, dtype="<i4"))
        with pytest.raises(StorageError):
            build(tmp_path, pool, np.zeros(4, dtype="<i4"))


class TestPersistence:
    def test_round_trip_values(self, tmp_path, pool):
        values = np.arange(100, dtype="<i8") * 3
        sma = build(tmp_path, pool, values)
        reopened = SmaFile.open(sma.path, pool)
        np.testing.assert_array_equal(reopened.values(charge=False), values)
        assert reopened.valid_mask() is None

    def test_round_trip_validity(self, tmp_path, pool):
        values = np.arange(10, dtype="<f8")
        valid = np.array([True] * 9 + [False])
        sma = build(tmp_path, pool, values, valid=valid)
        reopened = SmaFile.open(sma.path, pool)
        np.testing.assert_array_equal(reopened.valid_mask(), valid)

    def test_round_trip_bytes_dtype(self, tmp_path, pool):
        values = np.array([b"aa", b"zz"], dtype="S2")
        sma = build(tmp_path, pool, values)
        reopened = SmaFile.open(sma.path, pool)
        np.testing.assert_array_equal(reopened.values(charge=False), values)

    def test_delete_files(self, tmp_path, pool):
        import os

        sma = build(tmp_path, pool, np.zeros(4, dtype="<i4"))
        sma.delete_files()
        assert not os.path.exists(sma.path)


class TestCharging:
    def test_full_scan_charges_pages_and_entries(self, tmp_path, pool):
        sma = build(tmp_path, pool, np.zeros(2048, dtype="<i4"))  # 2 pages
        pool.clear()
        pool.stats.reset()
        sma.values()
        assert pool.stats.page_reads == 2
        assert pool.stats.sma_entries_read == 2048

    def test_warm_scan_hits_buffer(self, tmp_path, pool):
        sma = build(tmp_path, pool, np.zeros(2048, dtype="<i4"))
        pool.clear()
        sma.values()
        pool.stats.reset()
        sma.values()
        assert pool.stats.page_reads == 0
        assert pool.stats.buffer_hits == 2

    def test_uncharged_read(self, tmp_path, pool):
        sma = build(tmp_path, pool, np.zeros(2048, dtype="<i4"))
        pool.clear()
        pool.stats.reset()
        sma.values(charge=False)
        assert pool.stats.page_reads == 0
        assert pool.stats.sma_entries_read == 0

    def test_value_at_charges_single_page(self, tmp_path, pool):
        sma = build(tmp_path, pool, np.arange(2048, dtype="<i4"))
        pool.clear()
        pool.stats.reset()
        assert sma.value_at(1500) == 1500
        assert pool.stats.page_reads == 1
        assert pool.stats.sma_entries_read == 1

    def test_read_range_charges_spanned_pages(self, tmp_path, pool):
        sma = build(tmp_path, pool, np.arange(3072, dtype="<i4"))  # 3 pages
        pool.clear()
        pool.stats.reset()
        chunk = sma.read_range(1000, 1100)
        np.testing.assert_array_equal(chunk, np.arange(1000, 1101))
        assert pool.stats.page_reads == 2  # entries span pages 0 and 1

    def test_values_view_is_readonly(self, tmp_path, pool):
        sma = build(tmp_path, pool, np.zeros(8, dtype="<i4"))
        with pytest.raises(ValueError):
            sma.values(charge=False)[0] = 1


class TestMaintenanceWrites:
    def test_set_entry_updates_value_and_disk(self, tmp_path, pool):
        sma = build(tmp_path, pool, np.arange(10, dtype="<i4"))
        sma.set_entry(3, 99)
        assert sma.value_at(3, charge=False) == 99
        reopened = SmaFile.open(sma.path, pool)
        assert reopened.value_at(3, charge=False) == 99

    def test_set_entry_charges_one_page_write(self, tmp_path, pool):
        sma = build(tmp_path, pool, np.arange(10, dtype="<i4"))
        pool.stats.reset()
        sma.set_entry(3, 99)
        assert pool.stats.page_writes == 1

    def test_set_entry_can_invalidate(self, tmp_path, pool):
        sma = build(tmp_path, pool, np.arange(10, dtype="<i4"))
        sma.set_entry(2, 0, valid=False)
        valid = sma.valid_mask()
        assert valid is not None and not valid[2] and valid[3]

    def test_set_entry_out_of_range(self, tmp_path, pool):
        sma = build(tmp_path, pool, np.arange(4, dtype="<i4"))
        with pytest.raises(SmaStateError):
            sma.set_entry(4, 0)

    def test_append_entries(self, tmp_path, pool):
        sma = build(tmp_path, pool, np.arange(5, dtype="<i4"))
        sma.append_entries(np.array([10, 11], dtype="<i4"))
        assert sma.num_entries == 7
        reopened = SmaFile.open(sma.path, pool)
        np.testing.assert_array_equal(
            reopened.values(charge=False), [0, 1, 2, 3, 4, 10, 11]
        )

    def test_append_creates_validity_when_needed(self, tmp_path, pool):
        sma = build(tmp_path, pool, np.arange(3, dtype="<i4"))
        sma.append_entries(
            np.array([7], dtype="<i4"), valid=np.array([False])
        )
        valid = sma.valid_mask()
        np.testing.assert_array_equal(valid, [True, True, True, False])

    def test_append_dtype_mismatch(self, tmp_path, pool):
        sma = build(tmp_path, pool, np.arange(3, dtype="<i4"))
        with pytest.raises(SmaStateError):
            sma.append_entries(np.array([1.5]))
