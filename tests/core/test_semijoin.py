"""Tests for semi-join SMAs (Section 4)."""

import datetime

import numpy as np
import pytest

from repro.core.semijoin import collect_bounds, reduction_predicate, semijoin
from repro.errors import PlanningError
from repro.lang.predicate import CmpOp
from repro.storage import DATE, Schema
from repro.storage.types import date_to_int

from tests.conftest import BASE_DATE


@pytest.fixture
def s_table(catalog):
    table = catalog.create_table("S", Schema.of(("b", DATE)))
    table.append_rows(
        [(BASE_DATE + datetime.timedelta(days=k),) for k in range(10, 20)]
    )
    return table


class TestBounds:
    def test_min_max_collected(self, s_table):
        bounds = collect_bounds(s_table, "b")
        assert bounds.low == BASE_DATE + datetime.timedelta(days=10)
        assert bounds.high == BASE_DATE + datetime.timedelta(days=19)
        assert bounds.tuples_seen == 10
        assert bounds.values is None

    def test_values_kept_on_request(self, s_table):
        bounds = collect_bounds(s_table, "b", keep_values=True)
        assert bounds.values is not None
        assert len(bounds.values) == 10

    def test_empty_relation(self, catalog):
        table = catalog.create_table("EMPTY", Schema.of(("b", DATE)))
        bounds = collect_bounds(table, "b")
        assert bounds.is_empty


class TestReductionPredicate:
    def test_lt_uses_max(self, s_table):
        bounds = collect_bounds(s_table, "b")
        predicate = reduction_predicate("a", "<", bounds)
        assert str(predicate) == "a < DATE '1997-01-20'"

    def test_ge_uses_min(self, s_table):
        bounds = collect_bounds(s_table, "b")
        predicate = reduction_predicate("a", CmpOp.GE, bounds)
        assert "1997-01-11" in str(predicate)

    def test_eq_uses_range(self, s_table):
        bounds = collect_bounds(s_table, "b")
        predicate = reduction_predicate("a", "=", bounds)
        assert ">=" in str(predicate) and "<=" in str(predicate)

    def test_ne_rejected(self, s_table):
        bounds = collect_bounds(s_table, "b")
        with pytest.raises(PlanningError):
            reduction_predicate("a", "<>", bounds)

    def test_empty_bounds_rejected(self, catalog):
        table = catalog.create_table("EMPTY", Schema.of(("b", DATE)))
        with pytest.raises(PlanningError, match="empty"):
            reduction_predicate("a", "<", collect_bounds(table, "b"))


class TestSemiJoin:
    @pytest.mark.parametrize("op", ["<", "<=", ">", ">=", "="])
    def test_matches_brute_force(
        self, sales_table, sales_sma_set, s_table, op
    ):
        reduced, _ = semijoin(
            sales_table, "ship", op, s_table, "b", sma_set=sales_sma_set
        )
        everything = sales_table.read_all()
        s_values = s_table.read_all()["b"]
        compare = {
            "<": np.less, "<=": np.less_equal, ">": np.greater,
            ">=": np.greater_equal, "=": np.equal,
        }[op]
        expected = compare(
            everything["ship"][:, None], s_values[None, :]
        ).any(axis=1)
        assert len(reduced) == int(expected.sum())

    def test_sma_reduction_skips_buckets(
        self, catalog, sales_table, sales_sma_set, s_table
    ):
        catalog.reset_stats()
        semijoin(sales_table, "ship", "<", s_table, "b", sma_set=sales_sma_set)
        with_sma = catalog.stats.snapshot()
        catalog.reset_stats()
        semijoin(sales_table, "ship", "<", s_table, "b")
        without = catalog.stats.snapshot()
        assert with_sma.buckets_fetched < without.buckets_fetched
        assert with_sma.buckets_skipped > 0

    def test_empty_s_gives_empty_result(self, catalog, sales_table):
        empty = catalog.create_table("EMPTY", Schema.of(("b", DATE)))
        result, _ = semijoin(sales_table, "ship", "<", empty, "b")
        assert len(result) == 0

    def test_eq_does_exact_membership(self, sales_table, sales_sma_set, catalog):
        # S holds a date that is inside LINEITEM's range but with gaps:
        # range reduction alone would overmatch.
        sparse = catalog.create_table("SPARSE", Schema.of(("b", DATE)))
        sparse.append_rows(
            [
                (BASE_DATE + datetime.timedelta(days=2),),
                (BASE_DATE + datetime.timedelta(days=30),),
            ]
        )
        result, _ = semijoin(
            sales_table, "ship", "=", sparse, "b", sma_set=sales_sma_set
        )
        everything = sales_table.read_all()
        expected = np.isin(
            everything["ship"],
            [
                date_to_int(BASE_DATE + datetime.timedelta(days=2)),
                date_to_int(BASE_DATE + datetime.timedelta(days=30)),
            ],
        ).sum()
        assert len(result) == expected
