"""Hierarchies attached to an SmaSet: transparent, equivalent, cheaper."""

import datetime

import pytest

from repro.errors import SmaStateError
from repro.lang import and_, cmp

from tests.conftest import BASE_DATE, brute_force_partition_check


def mid(offset=20):
    return BASE_DATE + datetime.timedelta(days=offset)


class TestAttachment:
    def test_build_and_lookup(self, sales_table, sales_sma_set):
        hierarchy = sales_sma_set.build_hierarchy("ship", entries_per_block=3)
        assert sales_sma_set.hierarchy_for("ship") is hierarchy
        assert sales_sma_set.hierarchy_for("qty") is None

    def test_requires_ungrouped_minmax(self, sales_table, sales_sma_set):
        with pytest.raises(SmaStateError, match="min and max"):
            sales_sma_set.build_hierarchy("qty")

    def test_drop(self, sales_table, sales_sma_set):
        sales_sma_set.build_hierarchy("ship", entries_per_block=3)
        sales_sma_set.drop_hierarchy("ship")
        assert sales_sma_set.hierarchy_for("ship") is None


class TestEquivalence:
    @pytest.mark.parametrize("op", ["<=", "<", ">=", ">", "=", "<>"])
    def test_partition_unchanged_by_hierarchy(
        self, sales_table, sales_sma_set, op
    ):
        predicate = cmp("ship", op, mid())
        flat = sales_sma_set.partition(predicate, charge=False)
        sales_sma_set.build_hierarchy("ship", entries_per_block=3)
        hier = sales_sma_set.partition(predicate, charge=False)
        assert flat == hier
        sales_sma_set.drop_hierarchy("ship")

    def test_soundness_with_hierarchy(self, sales_table, sales_sma_set):
        sales_sma_set.build_hierarchy("ship", entries_per_block=4)
        brute_force_partition_check(
            sales_table, sales_sma_set,
            and_(cmp("ship", ">=", mid(3)), cmp("ship", "<=", mid(30))),
        )

    def test_mixed_atoms(self, sales_table, sales_sma_set):
        """Hierarchy column + flat column in one predicate."""
        sales_sma_set.build_hierarchy("ship", entries_per_block=4)
        brute_force_partition_check(
            sales_table, sales_sma_set,
            and_(cmp("ship", "<=", mid()), cmp("id", ">=", 0)),
        )


class TestIoSaving:
    def test_partition_reads_fewer_entries(
        self, catalog, sales_table, sales_sma_set
    ):
        predicate = cmp("ship", "<=", mid(2))
        catalog.go_cold()
        catalog.reset_stats()
        sales_sma_set.partition(predicate)
        flat_entries = catalog.stats.sma_entries_read

        sales_sma_set.build_hierarchy("ship", entries_per_block=3)
        catalog.go_cold()
        catalog.reset_stats()
        sales_sma_set.partition(predicate)
        hier_entries = catalog.stats.sma_entries_read
        assert hier_entries < flat_entries


class TestMaintenanceInvalidation:
    def test_dml_drops_stale_hierarchies(self, sales_table, sales_sma_set):
        from repro.core import SmaMaintainer
        from tests.conftest import SALES_SCHEMA

        sales_sma_set.build_hierarchy("ship", entries_per_block=3)
        maintainer = SmaMaintainer(sales_table, [sales_sma_set])
        fresh = SALES_SCHEMA.batch_from_rows(
            [(50_000, mid(500), 1.0, "A")]
        )
        maintainer.insert(fresh)
        assert sales_sma_set.hierarchy_for("ship") is None
        # Grading after the insert is still exact without the hierarchy.
        brute_force_partition_check(
            sales_table, sales_sma_set, cmp("ship", ">=", mid(400))
        )

    def test_rebuild_after_dml_is_consistent(self, sales_table, sales_sma_set):
        from repro.core import SmaMaintainer

        maintainer = SmaMaintainer(sales_table, [sales_sma_set])
        maintainer.delete_where(cmp("ship", "<=", mid(2)))
        sales_sma_set.build_hierarchy("ship", entries_per_block=3)
        brute_force_partition_check(
            sales_table, sales_sma_set, cmp("ship", "<=", mid(5))
        )
