"""Tests for SmaSet: grading integration, lookup, persistence."""

import datetime

import pytest

from repro.core import (
    SmaDefinition,
    SmaSet,
    build_sma_set,
    count_star,
    maximum,
    minimum,
    total,
)
from repro.errors import CatalogError
from repro.lang import and_, cmp, col, or_

from tests.conftest import BASE_DATE, brute_force_partition_check


def mid(offset=20):
    return BASE_DATE + datetime.timedelta(days=offset)


class TestPartitionAtoms:
    @pytest.mark.parametrize("op", ["=", "<>", "<", "<=", ">", ">="])
    def test_every_operator_is_sound(self, sales_table, sales_sma_set, op):
        brute_force_partition_check(
            sales_table, sales_sma_set, cmp("ship", op, mid())
        )

    def test_clustered_data_has_few_ambivalent(self, sales_table, sales_sma_set):
        partitioning = brute_force_partition_check(
            sales_table, sales_sma_set, cmp("ship", "<=", mid())
        )
        assert partitioning.num_ambivalent <= 1
        assert partitioning.num_qualifying > 0
        assert partitioning.num_disqualifying > 0

    def test_unindexed_column_is_all_ambivalent(
        self, sales_table, sales_sma_set
    ):
        partitioning = sales_sma_set.partition(
            cmp("id", "<=", 100), charge=False
        )
        assert partitioning.num_ambivalent == partitioning.num_buckets

    def test_column_column_atom(self, sales_table, sales_sma_set):
        # ship vs ship is trivially 'qty <= qty'... use ship <= ship via
        # the generic path: soundness check only (all ambivalent is OK
        # because only one column has bounds materialized per atom side).
        brute_force_partition_check(
            sales_table, sales_sma_set, cmp("ship", "<=", col("ship"))
        )


class TestPartitionBoolean:
    def test_and_combination(self, sales_table, sales_sma_set):
        predicate = and_(
            cmp("ship", ">=", mid(5)), cmp("ship", "<=", mid(30))
        )
        partitioning = brute_force_partition_check(
            sales_table, sales_sma_set, predicate
        )
        assert partitioning.num_disqualifying > 0

    def test_or_combination(self, sales_table, sales_sma_set):
        predicate = or_(
            cmp("ship", "<=", mid(3)), cmp("ship", ">=", mid(37))
        )
        brute_force_partition_check(sales_table, sales_sma_set, predicate)

    def test_not_combination(self, sales_table, sales_sma_set):
        from repro.lang.predicate import Not

        brute_force_partition_check(
            sales_table, sales_sma_set, Not(cmp("ship", "<=", mid()))
        )

    def test_true_predicate_all_qualify(self, sales_table, sales_sma_set):
        from repro.lang.predicate import TruePredicate

        partitioning = sales_sma_set.partition(TruePredicate(), charge=False)
        assert partitioning.num_qualifying == partitioning.num_buckets

    def test_mixed_indexed_and_unindexed(self, sales_table, sales_sma_set):
        predicate = and_(cmp("ship", "<=", mid()), cmp("id", "<", 10**9))
        partitioning = brute_force_partition_check(
            sales_table, sales_sma_set, predicate
        )
        # The unindexed atom blocks qualification but disqualification
        # from the date atom still prunes.
        assert partitioning.num_qualifying == 0
        assert partitioning.num_disqualifying > 0


class TestCountSmaGrading:
    def test_count_sma_on_flag(self, catalog, sales_table, tmp_path):
        definitions = [
            SmaDefinition("flag_cnt", "SALES", count_star(), ("flag",)),
        ]
        sma_set, _ = build_sma_set(
            sales_table, definitions, directory=str(tmp_path / "cnt")
        )
        partitioning = brute_force_partition_check(
            sales_table, sma_set, cmp("flag", "=", "A")
        )
        # Every bucket mixes A and R rows in this dataset -> ambivalent
        # everywhere, but sound.
        assert partitioning.num_buckets == sales_table.num_buckets

    def test_count_sma_prunes_single_valued_buckets(
        self, catalog, tmp_path
    ):
        from tests.conftest import SALES_SCHEMA

        table = catalog.create_table("SEGREGATED", SALES_SCHEMA)
        rows = [(i, BASE_DATE, 1.0, "A") for i in range(300)]
        rows += [(i, BASE_DATE, 1.0, "R") for i in range(300)]
        table.append_rows(rows)
        sma_set, _ = build_sma_set(
            table,
            [SmaDefinition("fc", "SEGREGATED", count_star(), ("flag",))],
            directory=str(tmp_path / "seg"),
        )
        partitioning = brute_force_partition_check(
            table, sma_set, cmp("flag", "=", "A")
        )
        # All-A buckets qualify, all-R disqualify; only the straddling
        # bucket is ambivalent.
        assert partitioning.num_ambivalent <= 1


class TestGroupedBounds:
    def test_grouped_minmax_reduction(self, catalog, sales_table, tmp_path):
        definitions = [
            SmaDefinition("gmin", "SALES", minimum(col("ship")), ("flag",)),
            SmaDefinition("gmax", "SALES", maximum(col("ship")), ("flag",)),
        ]
        sma_set, _ = build_sma_set(
            sales_table, definitions, directory=str(tmp_path / "grp")
        )
        partitioning = brute_force_partition_check(
            sales_table, sma_set, cmp("ship", "<=", mid())
        )
        assert partitioning.num_qualifying > 0

    def test_grouped_matches_ungrouped_bounds(
        self, catalog, sales_table, sales_sma_set, tmp_path
    ):
        definitions = [
            SmaDefinition("gmin", "SALES", minimum(col("ship")), ("flag",)),
            SmaDefinition("gmax", "SALES", maximum(col("ship")), ("flag",)),
        ]
        grouped_set, _ = build_sma_set(
            sales_table, definitions, directory=str(tmp_path / "grp2"),
            name="grouped",
        )
        predicate = cmp("ship", "<=", mid())
        from_grouped = grouped_set.partition(predicate, charge=False)
        from_ungrouped = sales_sma_set.partition(predicate, charge=False)
        assert from_grouped == from_ungrouped


class TestAggregateLookup:
    def test_exact_match(self, sales_sma_set):
        files = sales_sma_set.aggregate_files(total(col("qty")), ("flag",))
        assert files is not None and set(files) == {("A",), ("R",)}

    def test_grouping_mismatch_returns_none(self, sales_sma_set):
        assert sales_sma_set.aggregate_files(total(col("qty")), ()) is None

    def test_expression_mismatch_returns_none(self, sales_sma_set):
        assert sales_sma_set.aggregate_files(total(col("id")), ("flag",)) is None

    def test_find_definition(self, sales_sma_set):
        found = sales_sma_set.find_definition(count_star(), ("flag",))
        assert found is not None and found.name == "cnt"

    def test_inventory(self, sales_sma_set, sales_table):
        assert sales_sma_set.num_files == 6  # 2 ungrouped + 2x2 grouped
        assert sales_sma_set.total_pages >= 6
        assert sales_sma_set.total_bytes > 0
        assert sales_sma_set.definition_pages("smin") >= 1

    def test_unknown_definition(self, sales_sma_set):
        with pytest.raises(CatalogError):
            sales_sma_set.files_of("ghost")


class TestPersistence:
    def test_save_open_round_trip(self, sales_table, sales_sma_set):
        reopened = SmaSet.open(sales_sma_set.directory, sales_table)
        assert set(reopened.definitions) == set(sales_sma_set.definitions)
        predicate = cmp("ship", "<=", mid())
        assert reopened.partition(predicate, charge=False) == (
            sales_sma_set.partition(predicate, charge=False)
        )

    def test_open_for_wrong_table_rejected(
        self, catalog, sales_table, sales_sma_set
    ):
        other = catalog.create_table(
            "OTHER", sales_table.schema
        )
        with pytest.raises(CatalogError, match="belongs to table"):
            SmaSet.open(sales_sma_set.directory, other)

    def test_add_duplicate_definition_rejected(self, sales_table, sales_sma_set):
        definition = sales_sma_set.definitions["smin"]
        with pytest.raises(CatalogError, match="already"):
            sales_sma_set.add_materialized(definition, {})


class TestCharging:
    def test_partition_charges_each_file_once(
        self, catalog, sales_table, sales_sma_set
    ):
        catalog.go_cold()
        catalog.reset_stats()
        predicate = and_(
            cmp("ship", "<=", mid()), cmp("ship", ">=", mid(1))
        )
        sales_sma_set.partition(predicate)
        # min and max files are one page each: exactly two page reads
        # even though two atoms reference the same column.
        assert catalog.stats.page_reads == 2
        min_entries = sales_sma_set.files_of("smin")[()].num_entries
        assert catalog.stats.sma_entries_read == 2 * min_entries

    def test_uncharged_partition(self, catalog, sales_table, sales_sma_set):
        catalog.go_cold()
        catalog.reset_stats()
        sales_sma_set.partition(cmp("ship", "<=", mid()), charge=False)
        assert catalog.stats.page_reads == 0
