"""Tests for two-level (hierarchical) SMAs."""

import datetime

import numpy as np
import pytest

from repro.core import HierarchicalMinMax
from repro.errors import SmaStateError
from repro.lang import cmp

from tests.conftest import BASE_DATE


@pytest.fixture
def hierarchy(catalog, sales_table, sales_sma_set, tmp_path):
    return HierarchicalMinMax.build(
        "ship",
        sales_sma_set.files_of("smin")[()],
        sales_sma_set.files_of("smax")[()],
        catalog.pool,
        str(tmp_path / "hier"),
        entries_per_block=3,
    )


def predicate(offset, op="<="):
    return cmp("ship", op, BASE_DATE + datetime.timedelta(days=offset))


class TestEquivalence:
    @pytest.mark.parametrize("offset", [-5, 0, 3, 17, 20, 39, 100])
    @pytest.mark.parametrize("op", ["<=", "<", ">=", ">", "=", "<>"])
    def test_identical_to_flat_grading(
        self, hierarchy, sales_table, offset, op
    ):
        bound = predicate(offset, op).bind(sales_table.schema)
        flat = hierarchy.flat_partition(bound, sales_table.num_buckets)
        hier = hierarchy.partition(bound, sales_table.num_buckets)
        assert flat == hier

    def test_identical_after_deletions(
        self, catalog, sales_table, sales_sma_set, tmp_path
    ):
        from repro.core import SmaMaintainer

        maintainer = SmaMaintainer(sales_table, [sales_sma_set])
        maintainer.delete_where(predicate(4))
        hierarchy = HierarchicalMinMax.build(
            "ship",
            sales_sma_set.files_of("smin")[()],
            sales_sma_set.files_of("smax")[()],
            catalog.pool,
            str(tmp_path / "hier2"),
            entries_per_block=3,
        )
        for offset in (2, 6, 20):
            bound = predicate(offset).bind(sales_table.schema)
            assert hierarchy.partition(bound, sales_table.num_buckets) == (
                hierarchy.flat_partition(bound, sales_table.num_buckets)
            )


class TestIoSavings:
    def test_settled_blocks_skip_level1(
        self, catalog, hierarchy, sales_table
    ):
        bound = predicate(3).bind(sales_table.schema)  # low selectivity
        catalog.go_cold()
        catalog.reset_stats()
        hierarchy.partition(bound, sales_table.num_buckets)
        hier_entries = catalog.stats.sma_entries_read

        catalog.go_cold()
        catalog.reset_stats()
        hierarchy.flat_partition(bound, sales_table.num_buckets)
        flat_entries = catalog.stats.sma_entries_read

        assert hier_entries < flat_entries

    def test_level2_is_small(self, hierarchy, sales_sma_set):
        level1_pages = (
            sales_sma_set.files_of("smin")[()].num_pages
            + sales_sma_set.files_of("smax")[()].num_pages
        )
        assert hierarchy.level2_pages <= level1_pages


class TestConstruction:
    def test_block_values_are_block_extrema(self, hierarchy, sales_sma_set):
        mins = sales_sma_set.files_of("smin")[()].values(charge=False)
        level2 = hierarchy.level2_min.values(charge=False)
        block = hierarchy.entries_per_block
        for i, value in enumerate(level2):
            assert value == mins[i * block : (i + 1) * block].min()

    def test_default_block_is_one_page_of_entries(
        self, catalog, sales_table, sales_sma_set, tmp_path
    ):
        hierarchy = HierarchicalMinMax.build(
            "ship",
            sales_sma_set.files_of("smin")[()],
            sales_sma_set.files_of("smax")[()],
            catalog.pool,
            str(tmp_path / "hier3"),
        )
        assert hierarchy.entries_per_block == (
            sales_sma_set.files_of("smin")[()].entries_per_page
        )

    def test_wrong_column_rejected(self, hierarchy, sales_table):
        bound = cmp("qty", "<=", 3.0).bind(sales_table.schema)
        with pytest.raises(SmaStateError, match="indexes"):
            hierarchy.partition(bound, sales_table.num_buckets)

    def test_wrong_bucket_count_rejected(self, hierarchy, sales_table):
        bound = predicate(5).bind(sales_table.schema)
        with pytest.raises(SmaStateError):
            hierarchy.partition(bound, sales_table.num_buckets + 1)

    def test_mismatched_levels_rejected(
        self, catalog, sales_table, sales_sma_set, tmp_path
    ):
        import numpy as np

        from repro.core.sma_file import SmaFile

        short = SmaFile.build(
            str(tmp_path / "short.sma"), np.zeros(3, dtype="<i4"), catalog.pool
        )
        with pytest.raises(SmaStateError, match="disagree"):
            HierarchicalMinMax.build(
                "ship", sales_sma_set.files_of("smin")[()], short,
                catalog.pool, str(tmp_path / "h"),
            )

    def test_delete_files(self, hierarchy):
        import os

        hierarchy.delete_files()
        assert not os.path.exists(hierarchy.level2_min.path)
