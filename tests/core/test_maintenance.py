"""Tests for incremental SMA maintenance under insert/update/delete."""

import datetime

import numpy as np
import pytest

from repro.core import SmaMaintainer
from repro.errors import SmaStateError
from repro.lang import cmp

from tests.conftest import BASE_DATE, SALES_SCHEMA, brute_force_partition_check


@pytest.fixture
def maintainer(sales_table, sales_sma_set):
    return SmaMaintainer(sales_table, [sales_sma_set])


def fresh_rows(n, *, day_offset=200, flag="A", qty=3.0, start_id=90_000):
    return SALES_SCHEMA.batch_from_rows(
        [
            (
                start_id + i,
                BASE_DATE + datetime.timedelta(days=day_offset + i // 50),
                qty,
                flag,
            )
            for i in range(n)
        ]
    )


def assert_consistent(table, sma_set):
    """Every SMA entry equals a recomputation from the base data."""
    from repro.core.maintenance import compute_bucket_entry

    for definition in sma_set.definitions.values():
        files = sma_set.files_of(definition.name)
        for sma in files.values():
            assert sma.num_entries == table.num_buckets
        for bucket_no in range(table.num_buckets):
            records = table.read_bucket(bucket_no)
            expected = compute_bucket_entry(definition, records, table.schema)
            for key, sma in files.items():
                valid = sma.valid_mask()
                defined = valid is None or bool(valid[bucket_no])
                if key in expected:
                    value, _ = expected[key]
                    assert defined, (definition.name, key, bucket_no)
                    got = sma.value_at(bucket_no, charge=False)
                    assert got == pytest.approx(value), (
                        definition.name, key, bucket_no,
                    )
                else:
                    # Group absent from this bucket: count/sum must read
                    # as zero, min/max must be undefined.
                    if sma.values(charge=False).dtype.kind in "if":
                        if defined:
                            assert sma.value_at(bucket_no, charge=False) == 0


class TestInsert:
    def test_appends_rows_and_extends_smas(self, maintainer, sales_table, sales_sma_set):
        before = sales_table.num_records
        maintainer.insert(fresh_rows(500))
        assert sales_table.num_records == before + 500
        assert_consistent(sales_table, sales_sma_set)

    def test_small_insert_tops_up_trailing_bucket(
        self, maintainer, sales_table, sales_sma_set
    ):
        buckets_before = sales_table.num_buckets
        maintainer.insert(fresh_rows(3))
        assert sales_table.num_buckets == buckets_before
        assert_consistent(sales_table, sales_sma_set)

    def test_new_group_creates_new_sma_files(
        self, maintainer, sales_table, sales_sma_set
    ):
        assert ("X",) not in sales_sma_set.files_of("cnt")
        maintainer.insert(fresh_rows(400, flag="X"))
        assert ("X",) in sales_sma_set.files_of("cnt")
        assert ("X",) in sales_sma_set.files_of("sqty")
        assert_consistent(sales_table, sales_sma_set)

    def test_grading_stays_sound_after_insert(
        self, maintainer, sales_table, sales_sma_set
    ):
        maintainer.insert(fresh_rows(700))
        brute_force_partition_check(
            sales_table, sales_sma_set,
            cmp("ship", ">=", BASE_DATE + datetime.timedelta(days=200)),
        )

    def test_empty_insert_is_noop(self, maintainer, sales_table):
        buckets = sales_table.num_buckets
        maintainer.insert(SALES_SCHEMA.empty_batch())
        assert sales_table.num_buckets == buckets

    def test_successive_inserts(self, maintainer, sales_table, sales_sma_set):
        for step in range(4):
            maintainer.insert(fresh_rows(137, day_offset=200 + step))
        assert_consistent(sales_table, sales_sma_set)


class TestUpdate:
    def test_update_recomputes_touched_buckets(
        self, maintainer, sales_table, sales_sma_set
    ):
        touched = maintainer.update_where(cmp("qty", "=", 3.0), {"qty": 4.0})
        assert touched > 0
        assert_consistent(sales_table, sales_sma_set)

    def test_update_on_clustered_column(self, maintainer, sales_table, sales_sma_set):
        target = BASE_DATE + datetime.timedelta(days=5)
        replacement = BASE_DATE + datetime.timedelta(days=500)
        touched = maintainer.update_where(
            cmp("ship", "=", target), {"ship": replacement}
        )
        assert touched > 0
        assert_consistent(sales_table, sales_sma_set)
        brute_force_partition_check(
            sales_table, sales_sma_set, cmp("ship", "<=", target)
        )

    def test_no_match_update(self, maintainer, sales_table, sales_sma_set):
        assert maintainer.update_where(cmp("qty", "=", 999.0), {"qty": 1.0}) == 0


class TestDelete:
    def test_delete_recomputes(self, maintainer, sales_table, sales_sma_set):
        removed = maintainer.delete_where(cmp("qty", "=", 3.0))
        assert removed > 0
        assert_consistent(sales_table, sales_sma_set)

    def test_delete_whole_group(self, maintainer, sales_table, sales_sma_set):
        maintainer.insert(fresh_rows(300, flag="X"))
        removed = maintainer.delete_where(cmp("flag", "=", "X"))
        assert removed == 300
        # The X counts must read as zero everywhere now.
        for sma in (sales_sma_set.files_of("cnt")[("X",)],):
            assert sma.values(charge=False).sum() == 0
        assert_consistent(sales_table, sales_sma_set)

    def test_emptied_buckets_disqualify(self, maintainer, sales_table, sales_sma_set):
        # Empty an entire date range; its buckets must grade d not a.
        cutoff = BASE_DATE + datetime.timedelta(days=5)
        maintainer.delete_where(cmp("ship", "<=", cutoff))
        partitioning = brute_force_partition_check(
            sales_table, sales_sma_set, cmp("ship", "<=", cutoff)
        )
        counts = np.asarray(sales_table.heap.bucket_counts())
        assert bool(partitioning.disqualifying[counts == 0].all())

    def test_delete_everything(self, maintainer, sales_table, sales_sma_set):
        removed = maintainer.delete_where(cmp("id", ">=", 0))
        assert removed == 2000
        assert sales_table.num_records == 0
        assert_consistent(sales_table, sales_sma_set)


class TestGuards:
    def test_wrong_table_rejected(self, catalog, sales_table, sales_sma_set):
        other = catalog.create_table("OTHER", SALES_SCHEMA)
        with pytest.raises(SmaStateError):
            SmaMaintainer(other, [sales_sma_set])

    def test_update_cost_bounded(self, catalog, maintainer, sales_table):
        """One updated tuple: bucket read+write plus at most one page
        write per SMA-file touched (the paper's bound)."""
        catalog.reset_stats()
        maintainer.update_where(cmp("id", "=", 42), {"qty": 9.0})
        num_files = 6  # smin smax cnt(A,R) sqty(A,R)
        pages_per_bucket = sales_table.layout.pages_per_bucket
        assert catalog.stats.page_writes <= pages_per_bucket + num_files
