"""Tests for bulkloading SMA sets: correctness against brute force."""

import numpy as np
import pytest

from repro.core import (
    SmaDefinition,
    build_sma_set,
    count_star,
    maximum,
    minimum,
    total,
)
from repro.errors import SmaDefinitionError
from repro.lang.expr import col, const, mul, sub


def definitions():
    return [
        SmaDefinition("smin", "SALES", minimum(col("ship"))),
        SmaDefinition("smax", "SALES", maximum(col("ship"))),
        SmaDefinition("cnt", "SALES", count_star(), ("flag",)),
        SmaDefinition("sqty", "SALES", total(col("qty")), ("flag",)),
        SmaDefinition(
            "derived", "SALES",
            total(mul(col("qty"), sub(const(1), col("qty")))), ("flag",),
        ),
    ]


@pytest.fixture
def built(catalog, sales_table, tmp_path):
    sma_set, reports = build_sma_set(
        sales_table, definitions(), directory=str(tmp_path / "smas")
    )
    return sales_table, sma_set, reports


class TestCorrectness:
    def test_ungrouped_minmax_per_bucket(self, built):
        table, sma_set, _ = built
        mins = sma_set.files_of("smin")[()].values(charge=False)
        maxs = sma_set.files_of("smax")[()].values(charge=False)
        for bucket_no in range(table.num_buckets):
            records = table.read_bucket(bucket_no)
            assert mins[bucket_no] == records["ship"].min()
            assert maxs[bucket_no] == records["ship"].max()

    def test_grouped_counts_per_bucket(self, built):
        table, sma_set, _ = built
        for key, sma in sma_set.files_of("cnt").items():
            counts = sma.values(charge=False)
            for bucket_no in range(table.num_buckets):
                records = table.read_bucket(bucket_no)
                expected = int((records["flag"] == key[0].encode()).sum())
                assert counts[bucket_no] == expected

    def test_grouped_sums_per_bucket(self, built):
        table, sma_set, _ = built
        for key, sma in sma_set.files_of("sqty").items():
            sums = sma.values(charge=False)
            for bucket_no in range(table.num_buckets):
                records = table.read_bucket(bucket_no)
                mask = records["flag"] == key[0].encode()
                assert sums[bucket_no] == pytest.approx(records["qty"][mask].sum())

    def test_derived_expression_sums(self, built):
        table, sma_set, _ = built
        files = sma_set.files_of("derived")
        total_sma = sum(f.values(charge=False).sum() for f in files.values())
        everything = table.read_all()
        expected = (everything["qty"] * (1 - everything["qty"])).sum()
        assert total_sma == pytest.approx(expected)

    def test_one_file_per_group(self, built):
        _, sma_set, _ = built
        assert set(sma_set.files_of("cnt")) == {("A",), ("R",)}
        assert set(sma_set.files_of("smin")) == {()}

    def test_entry_count_equals_bucket_count(self, built):
        table, sma_set, _ = built
        for sma in sma_set.all_files():
            assert sma.num_entries == table.num_buckets

    def test_sum_and_count_files_have_no_validity(self, built):
        _, sma_set, _ = built
        for name in ("cnt", "sqty", "derived"):
            for sma in sma_set.files_of(name).values():
                assert sma.valid_mask() is None


class TestReports:
    def test_one_report_per_definition(self, built):
        _, sma_set, reports = built
        assert [r.definition_name for r in reports] == [d.name for d in definitions()]

    def test_report_sizes_match_files(self, built):
        _, sma_set, reports = built
        for report in reports:
            files = sma_set.files_of(report.definition_name)
            assert report.num_files == len(files)
            assert report.pages == sum(f.num_pages for f in files.values())

    def test_shared_scan_flag(self, built):
        _, _, reports = built
        assert all(r.shared_scan for r in reports)


class TestSeparateScans:
    def test_separate_scans_build_identical_files(
        self, catalog, sales_table, tmp_path
    ):
        together, _ = build_sma_set(
            sales_table, definitions(), directory=str(tmp_path / "a")
        )
        separate, reports = build_sma_set(
            sales_table, definitions(), directory=str(tmp_path / "b"),
            separate_scans=True,
        )
        for name in ("smin", "smax", "cnt", "sqty"):
            for key in together.files_of(name):
                np.testing.assert_array_equal(
                    together.files_of(name)[key].values(charge=False),
                    separate.files_of(name)[key].values(charge=False),
                )
        assert not any(r.shared_scan for r in reports)

    def test_separate_scans_charge_one_pass_each(
        self, catalog, sales_table, tmp_path
    ):
        catalog.reset_stats()
        _, reports = build_sma_set(
            sales_table, definitions()[:2], directory=str(tmp_path / "c"),
            separate_scans=True,
        )
        for report in reports:
            assert report.stats.tuples_built == sales_table.num_records


class TestValidationErrors:
    def test_empty_definitions_rejected(self, catalog, sales_table, tmp_path):
        with pytest.raises(SmaDefinitionError):
            build_sma_set(sales_table, [], directory=str(tmp_path / "x"))

    def test_duplicate_names_rejected(self, catalog, sales_table, tmp_path):
        dupes = [definitions()[0], definitions()[0]]
        with pytest.raises(SmaDefinitionError, match="duplicate"):
            build_sma_set(sales_table, dupes, directory=str(tmp_path / "x"))

    def test_wrong_table_rejected(self, catalog, sales_table, tmp_path):
        wrong = SmaDefinition("m", "OTHER", minimum(col("ship")))
        with pytest.raises(SmaDefinitionError, match="OTHER"):
            build_sma_set(sales_table, [wrong], directory=str(tmp_path / "x"))

    def test_unknown_column_rejected(self, catalog, sales_table, tmp_path):
        bad = SmaDefinition("m", "SALES", minimum(col("ghost")))
        with pytest.raises(Exception):
            build_sma_set(sales_table, [bad], directory=str(tmp_path / "x"))
