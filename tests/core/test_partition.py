"""Unit tests for the bucket-partitioning algebra of Section 3.1."""

import numpy as np
import pytest

from repro.core.partition import BucketPartitioning, Grade
from repro.errors import SmaStateError


def part(q, d):
    return BucketPartitioning(np.array(q, dtype=bool), np.array(d, dtype=bool))


class TestConstruction:
    def test_counts(self):
        p = part([1, 0, 0, 0], [0, 1, 1, 0])
        assert p.num_qualifying == 1
        assert p.num_disqualifying == 2
        assert p.num_ambivalent == 1
        assert p.fraction_ambivalent == 0.25

    def test_overlap_rejected(self):
        with pytest.raises(SmaStateError):
            part([1, 0], [1, 0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(SmaStateError):
            BucketPartitioning(np.zeros(2, bool), np.zeros(3, bool))

    def test_constructors(self):
        assert BucketPartitioning.all_qualifying(3).num_qualifying == 3
        assert BucketPartitioning.all_disqualifying(3).num_disqualifying == 3
        assert BucketPartitioning.all_ambivalent(3).num_ambivalent == 3

    def test_grade(self):
        p = part([1, 0, 0], [0, 1, 0])
        assert p.grade(0) is Grade.QUALIFIES
        assert p.grade(1) is Grade.DISQUALIFIES
        assert p.grade(2) is Grade.AMBIVALENT
        with pytest.raises(SmaStateError):
            p.grade(3)

    def test_fraction_of_empty(self):
        assert BucketPartitioning.all_ambivalent(0).fraction_ambivalent == 0.0


class TestAlgebra:
    """The paper's table: and → (q∩q, d∪d); or → (q∪q, d∩d); not → swap."""

    def test_and(self):
        p1 = part([1, 1, 0, 0], [0, 0, 1, 0])
        p2 = part([1, 0, 0, 0], [0, 1, 0, 0])
        combined = p1 & p2
        np.testing.assert_array_equal(combined.qualifying, [1, 0, 0, 0])
        np.testing.assert_array_equal(combined.disqualifying, [0, 1, 1, 0])

    def test_or(self):
        p1 = part([1, 0, 0, 0], [0, 1, 1, 0])
        p2 = part([0, 1, 0, 0], [1, 0, 1, 0])
        combined = p1 | p2
        np.testing.assert_array_equal(combined.qualifying, [1, 1, 0, 0])
        np.testing.assert_array_equal(combined.disqualifying, [0, 0, 1, 0])

    def test_invert(self):
        p = part([1, 0, 0], [0, 1, 0])
        inverted = p.invert()
        assert inverted.grade(0) is Grade.DISQUALIFIES
        assert inverted.grade(1) is Grade.QUALIFIES
        assert inverted.grade(2) is Grade.AMBIVALENT

    def test_double_invert_is_identity(self):
        p = part([1, 0, 0], [0, 1, 0])
        assert p.invert().invert() == p

    def test_and_with_true_is_identity(self):
        p = part([1, 0, 0], [0, 1, 0])
        assert (p & BucketPartitioning.all_qualifying(3)) == p

    def test_or_with_false_is_identity(self):
        p = part([1, 0, 0], [0, 1, 0])
        assert (p | BucketPartitioning.all_disqualifying(3)) == p

    def test_length_mismatch_rejected(self):
        with pytest.raises(SmaStateError):
            part([1], [0]) & part([1, 0], [0, 0])


class TestRefine:
    def test_knowledge_accumulates(self):
        from_min = part([0, 0, 0], [1, 0, 0])
        from_max = part([0, 1, 0], [0, 0, 0])
        refined = from_min.refine(from_max)
        assert refined.grade(0) is Grade.DISQUALIFIES
        assert refined.grade(1) is Grade.QUALIFIES
        assert refined.grade(2) is Grade.AMBIVALENT

    def test_conflict_detected(self):
        with pytest.raises(SmaStateError, match="out of sync"):
            part([1, 0], [0, 0]).refine(part([0, 0], [1, 0]))

    def test_refine_with_ambivalent_is_identity(self):
        p = part([1, 0, 0], [0, 1, 0])
        assert p.refine(BucketPartitioning.all_ambivalent(3)) == p
