"""Tests for the experiment harness utilities."""

import pytest

from repro.bench.harness import (
    ExperimentResult,
    ScratchCatalog,
    format_table,
    human_bytes,
    human_seconds,
)


class TestHumanRendering:
    def test_bytes_units(self):
        assert human_bytes(512) == "512.00 B"
        assert human_bytes(4096) == "4.00 KiB"
        assert human_bytes(33.776 * 2**20).endswith("MiB")
        assert human_bytes(3 * 2**40).endswith("TiB")

    def test_seconds_units(self):
        assert human_seconds(128) == "128 s"
        assert human_seconds(4.9) == "4.90 s"
        assert human_seconds(0.0019) == "1.90 ms"


class TestFormatTable:
    def test_aligned_output(self):
        text = format_table(
            ["name", "pages"], [("min", 184), ("count", 736)]
        )
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "184" in lines[2]

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text


class TestExperimentResult:
    def test_render_contains_everything(self):
        result = ExperimentResult(
            exp_id="E0",
            title="demo",
            headers=["k", "v"],
            rows=[("x", 1)],
            paper_reference="Section 0",
            notes=["a note"],
            metrics={"speed": 2.0},
        )
        rendered = result.render()
        for piece in ("E0", "demo", "Section 0", "a note", "speed"):
            assert piece in rendered

    def test_metric_lookup(self):
        result = ExperimentResult("E0", "t", ["a"], [], metrics={"m": 1.5})
        assert result.metric("m") == 1.5
        with pytest.raises(KeyError, match="have"):
            result.metric("missing")


class TestScratchCatalog:
    def test_creates_and_cleans_up(self):
        import os

        with ScratchCatalog() as catalog:
            root = catalog.root_dir
            assert os.path.isdir(root)
        assert not os.path.exists(root)
