"""Shape assertions for every paper experiment, at CI-friendly scale.

These tests run the actual experiment functions (smaller SF / fewer
sweep points than the bench defaults) and assert the *shapes* the paper
reports: who wins, by roughly what factor, where crossovers fall.
"""

import math

import pytest

from repro.bench import experiments as exps


@pytest.fixture(scope="module")
def query1_result():
    return exps.exp_query1_speedup(scale_factor=0.02)


class TestE1Creation:
    def test_sizes_normalize_to_paper(self):
        result = exps.exp_sma_creation(scale_factor=0.01)
        # Paper at SF=1: min/max 184 pages per 187.7k buckets ≈ 0.98
        # pages per 1k buckets; count ≈ 3.92; 8-byte sums ≈ 7.82.  Small
        # scale rounds per-file pages up, so allow generous headroom.
        assert 0.9 <= result.metric("pages_per_1k_buckets_min") <= 1.5
        assert 3.9 <= result.metric("pages_per_1k_buckets_count") <= 5.0
        assert 7.8 <= result.metric("pages_per_1k_buckets_qty") <= 9.5

    def test_one_row_per_figure4_sma(self):
        result = exps.exp_sma_creation(scale_factor=0.01)
        assert len(result.rows) == 8


class TestE2Space:
    def test_sma_fraction_matches_papers_4_percent(self):
        result = exps.exp_space_overhead(scale_factor=0.01)
        assert 0.03 <= result.metric("sma_fraction") <= 0.06

    def test_btree_much_bigger_than_smas(self):
        result = exps.exp_space_overhead(scale_factor=0.01)
        assert result.metric("btree_fraction") > 3 * result.metric("sma_fraction")

    def test_btree_build_costs_more(self):
        result = exps.exp_space_overhead(scale_factor=0.01)
        assert result.metric("btree_build_sim_s") > result.metric("sma_build_sim_s") / 8


class TestE3Cube:
    def test_paper_arithmetic_and_contrast(self):
        result = exps.exp_datacube_space(scale_factor=0.002)
        assert result.metric("cube1_bytes") == 2556 * 4 * 48
        assert result.metric("formula_matches") == 1.0
        # Three-date cube vs SMAs: four-plus orders of magnitude.
        assert result.metric("cube3_over_sma") > 10_000


class TestE4Query1:
    def test_two_orders_of_magnitude_warm(self, query1_result):
        # Paper: 128 s vs 1.9 s ≈ 67x.
        assert query1_result.metric("speedup_warm") > 30

    def test_cold_speedup_large(self, query1_result):
        assert query1_result.metric("speedup_cold") > 3

    def test_projection_matches_paper_scale(self, query1_result):
        # Projected to SF=1 the absolute numbers should land near the
        # paper's 128 / 4.9 / 1.9 seconds.
        assert query1_result.metric("proj_scan_s") == pytest.approx(128, rel=0.15)
        assert query1_result.metric("proj_cold_s") == pytest.approx(4.9, rel=0.35)
        assert query1_result.metric("proj_warm_s") == pytest.approx(1.9, rel=0.35)

    def test_sorted_data_has_almost_no_ambivalence(self, query1_result):
        assert query1_result.metric("fraction_ambivalent") < 0.01

    def test_wall_clock_also_wins(self, query1_result):
        # The fused filter+aggregate bucket kernel sped up the full-scan
        # baseline (the denominator), so the SMA wall advantage is
        # smaller than the original >5x — but must stay decisive.
        assert query1_result.metric("wall_speedup_warm") > 3


class TestF5Breakeven:
    @pytest.fixture(scope="class")
    def sweep(self):
        return exps.exp_breakeven_sweep(
            scale_factor=0.01,
            fractions=(0.0, 0.1, 0.2, 0.3, 0.4, 0.5),
        )

    def test_breakeven_near_25_percent(self, sweep):
        breakeven = sweep.metric("breakeven_fraction")
        assert not math.isnan(breakeven)
        assert 0.12 <= breakeven <= 0.40

    def test_scan_line_is_flat(self, sweep):
        assert sweep.metric("scan_flatness") < 1.05

    def test_sma_overhead_bounded_past_breakeven(self, sweep):
        # Paper: even when SMAs are erroneously applied the overhead
        # stays small (they quote <2% at full scan work; our sweep tops
        # out below ~25% overhead at 50% planted).
        assert sweep.metric("sma_over_scan_at_max") < 1.35


class TestF2Diagonal:
    def test_clustering_ordering(self):
        result = exps.exp_diagonal_distribution(scale_factor=0.005)
        assert result.metric("correlation") > 0.99
        assert result.metric("amb_sorted") <= result.metric("amb_toc")
        assert result.metric("amb_toc") < 0.2
        assert result.metric("amb_uniform") > 0.9


class TestE5Ratio:
    def test_about_one_thousandth(self):
        result = exps.exp_sma_file_ratio(scale_factor=0.005)
        assert result.metric("ratio") == pytest.approx(1 / 1024, rel=0.15)


class TestE7Hierarchy:
    def test_savings_at_extremes(self):
        result = exps.exp_hierarchical(scale_factor=0.02)
        assert result.metric("entries_saved_low") > 0
        assert result.metric("entries_saved_high") > 0
        assert result.metric("entries_saved_low") >= result.metric(
            "entries_saved_mid"
        )


class TestE8Semijoin:
    def test_big_reduction(self):
        result = exps.exp_semijoin(scale_factor=0.005)
        assert result.metric("reduction") > 0.5
        assert result.metric("buckets_fetched_sma") < result.metric(
            "buckets_fetched_scan"
        )


class TestE9Maintenance:
    def test_insert_overhead_small(self):
        result = exps.exp_maintenance(scale_factor=0.005)
        # SMA writes amortize far below one per data page.
        assert result.metric("sma_write_overhead") < 0.5
        assert result.metric("insert_writes_per_tuple") < 0.2


class TestE10BucketSize:
    def test_sma_pages_shrink_with_bucket_size(self):
        result = exps.exp_bucket_size(
            scale_factor=0.01, pages_per_bucket=(1, 4, 16)
        )
        assert result.metric("sma_pages_ppb_max") < result.metric("sma_pages_ppb1")


class TestExtensions:
    def test_query6_speedup(self):
        result = exps.exp_query6(scale_factor=0.01)
        assert result.metric("speedup") > 2

    def test_btree_uselessness(self):
        result = exps.exp_btree_uselessness(scale_factor=0.005)
        assert result.metric("selectivity") > 0.9
        assert result.metric("slowdown") > 5

    def test_modern_hardware_keeps_the_win(self):
        result = exps.exp_modern_hardware(scale_factor=0.01)
        assert result.metric("speedup_1998") > 1
        assert result.metric("speedup_modern") > 1

    def test_projection_index_costs_more_io(self):
        result = exps.exp_projection_index(scale_factor=0.005)
        assert result.metric("page_ratio") > 5

    def test_versatility_one_set_many_queries(self):
        result = exps.exp_versatility(scale_factor=0.01, num_queries=8)
        assert result.metric("fraction_served") >= 0.75
        assert result.metric("geomean_speedup") > 2

    def test_bitmap_vs_sma(self):
        result = exps.exp_bitmap_vs_sma(scale_factor=0.005)
        # Counts tie (within 2x), sums strongly favor SMAs.
        assert 0.4 <= result.metric("count_parity") <= 2.5
        assert result.metric("sum_advantage") > 5

    def test_scaling_is_linear(self):
        result = exps.exp_scaling_linearity(scale_factors=(0.005, 0.01, 0.02))
        # The Section 2.4 claim that justifies all SF=1 projections.
        assert result.metric("r2_scan") > 0.999
        assert result.metric("r2_build") > 0.999
        assert result.metric("r2_sma") > 0.99
