"""Unit tests for schemas and record batches."""

import datetime

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.storage.schema import Column, Schema
from repro.storage.types import DATE, FLOAT64, INT32, char


@pytest.fixture
def schema():
    return Schema.of(
        ("id", INT32), ("ship", DATE), ("qty", FLOAT64), ("flag", char(2))
    )


class TestConstruction:
    def test_record_width_is_packed(self, schema):
        assert schema.record_width == 4 + 4 + 8 + 2

    def test_names_in_order(self, schema):
        assert schema.names == ("id", "ship", "qty", "flag")

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of(("a", INT32), ("a", INT32))

    def test_invalid_column_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("bad name", INT32)
        with pytest.raises(SchemaError):
            Column("", INT32)

    def test_underscored_names_allowed(self):
        Column("L_SHIPDATE", DATE)  # must not raise

    def test_equality_and_hash(self, schema):
        other = Schema.of(
            ("id", INT32), ("ship", DATE), ("qty", FLOAT64), ("flag", char(2))
        )
        assert schema == other
        assert hash(schema) == hash(other)
        assert schema != Schema.of(("id", INT32))

    def test_contains_and_len(self, schema):
        assert "qty" in schema
        assert "missing" not in schema
        assert len(schema) == 4


class TestLookup:
    def test_column_lookup(self, schema):
        assert schema.column("qty").dtype == FLOAT64

    def test_unknown_column_raises_with_candidates(self, schema):
        with pytest.raises(SchemaError, match="qty"):
            schema.column("QTY")

    def test_position(self, schema):
        assert schema.position("ship") == 1

    def test_dtype_of(self, schema):
        assert schema.dtype_of("flag") == char(2)

    def test_project_orders_and_subsets(self, schema):
        projected = schema.project(["qty", "id"])
        assert projected.names == ("qty", "id")
        assert projected.record_width == 12


class TestBatches:
    def test_batch_from_rows_coerces(self, schema):
        batch = schema.batch_from_rows(
            [(1, datetime.date(1970, 1, 5), 2.5, "AB")]
        )
        assert batch["id"][0] == 1
        assert batch["ship"][0] == 4
        assert batch["qty"][0] == 2.5
        assert batch["flag"][0] == b"AB"

    def test_batch_from_rows_wrong_arity(self, schema):
        with pytest.raises(SchemaError, match="row 0"):
            schema.batch_from_rows([(1, 2)])

    def test_batch_from_columns(self, schema):
        batch = schema.batch_from_columns(
            id=np.arange(3, dtype=np.int32),
            ship=np.zeros(3, dtype=np.int32),
            qty=np.ones(3),
            flag=np.array([b"A", b"B", b"C"], dtype="S2"),
        )
        assert len(batch) == 3
        assert batch["qty"].sum() == 3.0

    def test_batch_from_columns_missing(self, schema):
        with pytest.raises(SchemaError, match="missing"):
            schema.batch_from_columns(id=np.arange(3, dtype=np.int32))

    def test_batch_from_columns_extra(self, schema):
        with pytest.raises(SchemaError, match="unknown"):
            schema.batch_from_columns(
                id=np.arange(1, dtype=np.int32),
                ship=np.zeros(1, dtype=np.int32),
                qty=np.ones(1),
                flag=np.array([b"A"], dtype="S2"),
                bogus=np.ones(1),
            )

    def test_batch_from_columns_length_mismatch(self, schema):
        with pytest.raises(SchemaError, match="lengths"):
            schema.batch_from_columns(
                id=np.arange(2, dtype=np.int32),
                ship=np.zeros(3, dtype=np.int32),
                qty=np.ones(3),
                flag=np.array([b"A"] * 3, dtype="S2"),
            )

    def test_empty_batch(self, schema):
        assert len(schema.empty_batch()) == 0
        assert len(schema.empty_batch(5)) == 5


class TestSerde:
    def test_round_trip(self, schema):
        rebuilt = Schema.from_dict(schema.to_dict())
        assert rebuilt == schema
        assert rebuilt.record_width == schema.record_width
