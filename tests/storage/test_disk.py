"""Unit tests for the calibrated 1998 disk model."""

import pytest

from repro.storage.disk import DiskModel, MODERN_DISK, PAPER_DISK
from repro.storage.stats import IoStats


class TestPageTimes:
    def test_sequential_page_time(self):
        # 4096 B at 11.3 MB/s ≈ 0.3625 ms per page.
        assert PAPER_DISK.sequential_page_s == pytest.approx(4096 / 11.3e6)

    def test_random_slower_than_skip_slower_than_sequential(self):
        assert (
            PAPER_DISK.sequential_page_s
            < PAPER_DISK.skip_page_s
            < PAPER_DISK.random_page_s
        )

    def test_modern_disk_much_faster(self):
        assert MODERN_DISK.sequential_page_s < PAPER_DISK.sequential_page_s / 100


class TestCalibration:
    """The constants must reproduce the paper's Section 2.4 anchors."""

    def test_full_scan_of_sf1_lineitem_is_about_128s(self):
        pages = 187_733
        tuples = 6_001_215
        seconds = PAPER_DISK.scan_seconds(pages, tuples)
        assert seconds == pytest.approx(128, rel=0.05)

    def test_warm_sma_run_is_about_1_9s(self):
        # 26 SMA entries per bucket over 187.7k buckets, CPU only.
        entries = 26 * 187_733
        stats = IoStats(sma_entries_read=entries)
        assert PAPER_DISK.seconds(stats) == pytest.approx(1.9, rel=0.05)

    def test_cold_sma_run_is_about_4_9s(self):
        entries = 26 * 187_733
        stats = IoStats(sma_entries_read=entries, sequential_page_reads=8444)
        assert PAPER_DISK.seconds(stats) == pytest.approx(4.9, rel=0.1)

    def test_sma_build_pass_is_about_100_120s(self):
        stats = IoStats(sequential_page_reads=187_733, tuples_built=6_001_215)
        assert 90 <= PAPER_DISK.seconds(stats) <= 125


class TestCostAccounting:
    def test_cost_components(self):
        stats = IoStats(
            sequential_page_reads=100,
            skip_page_reads=10,
            random_page_reads=1,
            page_writes=5,
            tuples_scanned=1000,
            sma_entries_read=5000,
        )
        cost = PAPER_DISK.cost(stats)
        assert cost.sequential_io_s == pytest.approx(
            100 * PAPER_DISK.sequential_page_s
        )
        assert cost.skip_io_s == pytest.approx(10 * PAPER_DISK.skip_page_s)
        assert cost.random_io_s == pytest.approx(PAPER_DISK.random_page_s)
        assert cost.write_io_s == pytest.approx(5 * PAPER_DISK.sequential_page_s)
        assert cost.cpu_s == pytest.approx(
            (1000 * 10.5 + 5000 * 0.39) / 1e6
        )
        assert cost.total_s == PAPER_DISK.seconds(stats)

    def test_build_cpu_charged_separately(self):
        scan = PAPER_DISK.seconds(IoStats(tuples_scanned=1_000_000))
        build = PAPER_DISK.seconds(IoStats(tuples_built=1_000_000))
        assert build < scan  # no predicate to evaluate during builds

    def test_sma_seconds_closed_form(self):
        value = PAPER_DISK.sma_seconds(
            sma_pages=100, sma_entries=10_000,
            fetch_seq_pages=50, fetch_skip_pages=5, fetch_tuples=2000,
        )
        expected = (
            150 * PAPER_DISK.sequential_page_s
            + 5 * PAPER_DISK.skip_page_s
            + 10_000 * 0.39e-6
            + 2000 * 10.5e-6
        )
        assert value == pytest.approx(expected)

    def test_scaled_override(self):
        faster = PAPER_DISK.scaled(sequential_mb_per_s=22.6)
        assert faster.sequential_page_s == pytest.approx(
            PAPER_DISK.sequential_page_s / 2
        )
        assert isinstance(faster, DiskModel)
