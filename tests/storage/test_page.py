"""Unit + property tests for page/bucket geometry."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import StorageError
from repro.storage.page import BucketLayout, DEFAULT_PAGE_HEADER, DEFAULT_PAGE_SIZE


class TestLayoutArithmetic:
    def test_paper_lineitem_geometry(self):
        # 124-byte LINEITEM records: 32 tuples per 4 KB page, as in the
        # paper's 733 MB / 6 M tuples accounting.
        layout = BucketLayout(record_width=124)
        assert layout.tuples_per_page == 32
        assert layout.tuples_per_bucket == 32

    def test_page_payload(self):
        layout = BucketLayout(record_width=10)
        assert layout.page_payload == DEFAULT_PAGE_SIZE - DEFAULT_PAGE_HEADER

    def test_multi_page_bucket(self):
        layout = BucketLayout(record_width=100, pages_per_bucket=4)
        assert layout.tuples_per_bucket == layout.tuples_per_page * 4
        assert layout.bucket_bytes == 4 * DEFAULT_PAGE_SIZE

    def test_buckets_for(self):
        layout = BucketLayout(record_width=124)
        assert layout.buckets_for(0) == 0
        assert layout.buckets_for(1) == 1
        assert layout.buckets_for(32) == 1
        assert layout.buckets_for(33) == 2

    def test_pages_and_bytes_for(self):
        layout = BucketLayout(record_width=124, pages_per_bucket=2)
        assert layout.tuples_per_bucket == 64
        assert layout.pages_for(64) == 2  # one bucket of two pages
        assert layout.pages_for(65) == 4  # spills into a second bucket
        assert layout.bytes_for(65) == 4 * DEFAULT_PAGE_SIZE

    def test_negative_records_rejected(self):
        with pytest.raises(StorageError):
            BucketLayout(record_width=8).buckets_for(-1)

    def test_with_pages_per_bucket(self):
        layout = BucketLayout(record_width=8)
        wider = layout.with_pages_per_bucket(8)
        assert wider.pages_per_bucket == 8
        assert wider.record_width == 8


class TestValidation:
    def test_record_must_fit_page(self):
        with pytest.raises(StorageError):
            BucketLayout(record_width=DEFAULT_PAGE_SIZE)

    def test_positive_record_width(self):
        with pytest.raises(StorageError):
            BucketLayout(record_width=0)

    def test_positive_pages_per_bucket(self):
        with pytest.raises(StorageError):
            BucketLayout(record_width=8, pages_per_bucket=0)

    def test_page_size_exceeds_header(self):
        with pytest.raises(StorageError):
            BucketLayout(record_width=8, page_size=32, page_header=32)


class TestProperties:
    @given(
        record_width=st.integers(1, 512),
        pages_per_bucket=st.integers(1, 8),
        num_records=st.integers(0, 100_000),
    )
    def test_capacity_invariants(self, record_width, pages_per_bucket, num_records):
        layout = BucketLayout(
            record_width=record_width, pages_per_bucket=pages_per_bucket
        )
        buckets = layout.buckets_for(num_records)
        # Enough capacity for every record ...
        assert buckets * layout.tuples_per_bucket >= num_records
        # ... but never a whole spare bucket.
        if buckets:
            assert (buckets - 1) * layout.tuples_per_bucket < num_records

    @given(record_width=st.integers(1, 512))
    def test_records_never_span_pages(self, record_width):
        layout = BucketLayout(record_width=record_width)
        assert layout.tuples_per_page * record_width <= layout.page_payload
