"""Concurrency tests for the thread-safe buffer pool and query contexts.

The load-bearing property (ISSUE satellite): with every thread running
inside its own ``query_context``, the per-query :class:`IoStats` deltas
*partition* the pool's cumulative counters — their sum equals the growth
of the pool-lifetime hit/miss counts exactly, no charge lost or
double-counted under contention.
"""

import threading

import pytest

from repro.errors import QueryCancelledError, QueryTimeoutError
from repro.storage.buffer import BufferPool
from repro.storage.stats import IoStats


def payload_for(file_id, page_no) -> bytes:
    return f"{file_id}:{page_no}".encode()


def loader_for(file_id, page_no):
    return lambda: payload_for(file_id, page_no)


class TestQueryContextResolution:
    def test_stats_property_resolves_binding(self):
        pool = BufferPool(capacity_pages=4)
        default = pool.stats
        window = IoStats()
        with pool.query_context(window) as bound:
            assert bound is window
            assert pool.stats is window
        assert pool.stats is default
        assert pool.default_stats is default

    def test_context_makes_fresh_stats_when_omitted(self):
        pool = BufferPool(capacity_pages=4)
        with pool.query_context() as window:
            pool.read_page("f", 0, loader_for("f", 0))
            assert window.page_reads == 1
        assert pool.default_stats.page_reads == 0

    def test_contexts_nest_and_restore(self):
        pool = BufferPool(capacity_pages=4)
        outer, inner = IoStats(), IoStats()
        with pool.query_context(outer):
            with pool.query_context(inner):
                assert pool.stats is inner
            assert pool.stats is outer

    def test_reset_sequence_tracking_scoped_to_binding(self):
        pool = BufferPool(capacity_pages=8)
        pool.read_page("f", 0, loader_for("f", 0))  # shared tracker at 0
        with pool.query_context() as window:
            pool.reset_sequence_tracking()  # resets only the (empty) binding
            pool.read_page("g", 0, loader_for("g", 0))
            assert window.random_page_reads == 1
        # The shared tracker survived the context's reset.
        pool.read_page("f", 1, loader_for("f", 1))
        assert pool.default_stats.sequential_page_reads == 1


class TestCooperativeCancellation:
    def test_cancel_event_raises_on_next_read(self):
        pool = BufferPool(capacity_pages=4)
        cancel = threading.Event()
        with pool.query_context(cancel_event=cancel):
            pool.read_page("f", 0, loader_for("f", 0))
            cancel.set()
            with pytest.raises(QueryCancelledError):
                pool.read_page("f", 1, loader_for("f", 1))

    def test_past_deadline_raises_timeout(self):
        pool = BufferPool(capacity_pages=4)
        with pool.query_context(deadline=0.0):  # monotonic 0 is long past
            with pytest.raises(QueryTimeoutError):
                pool.read_page("f", 0, loader_for("f", 0))

    def test_timeout_is_a_cancellation(self):
        assert issubclass(QueryTimeoutError, QueryCancelledError)


class TestCumulativeCounters:
    def test_counters_track_hits_misses_evictions_writes(self):
        pool = BufferPool(capacity_pages=2)
        pool.read_page("f", 0, loader_for("f", 0))
        pool.read_page("f", 0, loader_for("f", 0))
        pool.read_page("f", 1, loader_for("f", 1))
        pool.read_page("f", 2, loader_for("f", 2))  # evicts page 0
        pool.note_write("f", 3, b"w")               # evicts page 1
        counters = pool.counters()
        assert counters.hits == 1
        assert counters.misses == 3
        assert counters.evictions == 2
        assert counters.writes == 1
        assert counters.accesses == 4
        assert counters.hit_rate == pytest.approx(0.25)

    def test_counters_diff(self):
        pool = BufferPool(capacity_pages=4)
        pool.read_page("f", 0, loader_for("f", 0))
        before = pool.counters()
        pool.read_page("f", 0, loader_for("f", 0))
        delta = pool.counters() - before
        assert (delta.hits, delta.misses) == (1, 0)

    def test_hit_rate_idle_pool(self):
        assert BufferPool(capacity_pages=1).counters().hit_rate == 0.0


class TestConcurrentPartitioning:
    """The satellite property test: per-query deltas sum to pool counters."""

    THREADS = 8
    ROUNDS = 40

    def _worker(self, pool, barrier, thread_no, windows, payload_errors):
        window = IoStats()
        windows[thread_no] = window
        with pool.query_context(window):
            barrier.wait()
            # Each thread scans its own file sequentially (forcing misses
            # and evictions) and re-reads a shared file (forcing hits and
            # contention on the same LRU entries).
            own = f"file-{thread_no}"
            for page in range(self.ROUNDS):
                got = pool.read_page(own, page, loader_for(own, page))
                if got != payload_for(own, page):
                    payload_errors.append((own, page, got))
                got = pool.read_page("shared", page % 4,
                                     loader_for("shared", page % 4))
                if got != payload_for("shared", page % 4):
                    payload_errors.append(("shared", page % 4, got))

    def test_per_query_deltas_sum_to_pool_counters(self):
        pool = BufferPool(capacity_pages=64)
        # Pre-warm the shared pages so they mostly hit.
        for page in range(4):
            pool.read_page("shared", page, loader_for("shared", page))
        before = pool.counters()

        barrier = threading.Barrier(self.THREADS)
        windows = [None] * self.THREADS
        payload_errors: list = []
        threads = [
            threading.Thread(
                target=self._worker,
                args=(pool, barrier, i, windows, payload_errors),
            )
            for i in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not payload_errors, payload_errors[:5]
        delta = pool.counters() - before
        total_hits = sum(w.buffer_hits for w in windows)
        total_misses = sum(w.page_reads for w in windows)
        assert total_hits == delta.hits
        assert total_misses == delta.misses
        # Every logical access accounted for, exactly once.
        assert total_hits + total_misses == 2 * self.THREADS * self.ROUNDS
        # The LRU never overflows its capacity under contention.
        assert len(pool) <= pool.capacity_pages

    def test_sequence_isolation_under_interleaving(self):
        """Interleaved physical reads of two queries must not turn each
        other's sequential streams into phantom random I/O."""
        pool = BufferPool(capacity_pages=1)  # every read is physical
        steps = 10
        turn = threading.Semaphore(1)
        other_turn = threading.Semaphore(0)
        windows = {"a": IoStats(), "b": IoStats()}

        def scanner(name, pages, mine, theirs):
            with pool.query_context(windows[name]):
                for page in pages:
                    mine.acquire()
                    pool.read_page("f", page, loader_for("f", page))
                    theirs.release()

        # a scans 0..9 sequentially; b jumps around the same file.
        a = threading.Thread(
            target=scanner, args=("a", list(range(steps)), turn, other_turn)
        )
        b = threading.Thread(
            target=scanner,
            args=("b", [100 * (i + 1) for i in range(steps)], other_turn, turn),
        )
        a.start(); b.start()
        a.join(); b.join()

        # a: first read positions (random), the rest stream sequentially.
        assert windows["a"].sequential_page_reads == steps - 1
        assert windows["a"].random_page_reads == 1
        # b: forward jumps are skips after the initial positioning.
        assert windows["b"].random_page_reads == 1
        assert windows["b"].skip_page_reads == steps - 1
