"""Unit tests for file-backed heap files."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.storage.buffer import BufferPool
from repro.storage.heapfile import HeapFile
from repro.storage.schema import Schema
from repro.storage.types import FLOAT64, INT32, char


@pytest.fixture
def schema():
    return Schema.of(("k", INT32), ("v", FLOAT64), ("tag", char(4)))


@pytest.fixture
def pool():
    return BufferPool(capacity_pages=64)


@pytest.fixture
def heap(tmp_path, schema, pool):
    with HeapFile.create(str(tmp_path / "t.heap"), schema, pool) as h:
        yield h


def make_batch(schema, n, start=0):
    return schema.batch_from_columns(
        k=np.arange(start, start + n, dtype=np.int32),
        v=np.arange(start, start + n, dtype=np.float64) * 0.5,
        tag=np.array([b"tag"] * n, dtype="S4"),
    )


class TestCreateOpen:
    def test_new_file_is_empty(self, heap):
        assert heap.num_buckets == 0
        assert heap.num_records == 0
        assert heap.num_pages == 0
        assert heap.size_bytes == 0

    def test_create_refuses_overwrite(self, tmp_path, schema, pool, heap):
        with pytest.raises(StorageError):
            HeapFile.create(heap.path, schema, pool)

    def test_open_restores_everything(self, tmp_path, schema, pool):
        path = str(tmp_path / "persist.heap")
        with HeapFile.create(path, schema, pool) as heap:
            heap.append_batch(make_batch(schema, 777))
            records = heap.num_records
            buckets = heap.num_buckets
        reopened = HeapFile.open(path, BufferPool(capacity_pages=64))
        assert reopened.num_records == records
        assert reopened.num_buckets == buckets
        assert reopened.schema == schema
        np.testing.assert_array_equal(
            reopened.read_all()["k"], np.arange(777, dtype=np.int32)
        )
        reopened.close()

    def test_open_missing_raises(self, tmp_path, pool):
        with pytest.raises(StorageError, match="metadata"):
            HeapFile.open(str(tmp_path / "nope.heap"), pool)


class TestAppendRead:
    def test_dense_packing(self, heap, schema):
        per_bucket = heap.layout.tuples_per_bucket
        heap.append_batch(make_batch(schema, per_bucket * 2 + 3))
        assert heap.num_buckets == 3
        assert heap.bucket_count(0) == per_bucket
        assert heap.bucket_count(1) == per_bucket
        assert heap.bucket_count(2) == 3

    def test_append_tops_up_trailing_bucket(self, heap, schema):
        per_bucket = heap.layout.tuples_per_bucket
        heap.append_batch(make_batch(schema, 3))
        heap.append_batch(make_batch(schema, per_bucket, start=3))
        assert heap.num_buckets == 2
        assert heap.bucket_count(0) == per_bucket
        # Physical order preserved across the two appends.
        np.testing.assert_array_equal(
            heap.read_all()["k"], np.arange(per_bucket + 3, dtype=np.int32)
        )

    def test_read_bucket_contents(self, heap, schema):
        heap.append_batch(make_batch(schema, 10))
        bucket = heap.read_bucket(0)
        assert len(bucket) == 10
        assert bucket["v"][4] == 2.0
        assert bucket["tag"][0] == b"tag"

    def test_read_bucket_out_of_range(self, heap, schema):
        heap.append_batch(make_batch(schema, 1))
        with pytest.raises(StorageError, match="out of range"):
            heap.read_bucket(1)

    def test_empty_append_is_noop(self, heap, schema):
        heap.append_batch(schema.empty_batch())
        assert heap.num_buckets == 0

    def test_wrong_dtype_rejected(self, heap):
        with pytest.raises(StorageError, match="dtype"):
            heap.append_batch(np.zeros(3, dtype=np.int32))

    def test_iter_buckets_in_order(self, heap, schema):
        per_bucket = heap.layout.tuples_per_bucket
        heap.append_batch(make_batch(schema, per_bucket * 3))
        seen = [bucket_no for bucket_no, _ in heap.iter_buckets()]
        assert seen == [0, 1, 2]

    def test_append_rows_convenience(self, heap):
        heap.append_rows([(1, 0.5, "ab"), (2, 1.5, "cd")])
        batch = heap.read_all()
        assert list(batch["k"]) == [1, 2]


class TestMultiPageBuckets:
    def test_records_split_across_pages(self, tmp_path, schema, pool):
        with HeapFile.create(
            str(tmp_path / "m.heap"), schema, pool, pages_per_bucket=3
        ) as heap:
            per_bucket = heap.layout.tuples_per_bucket
            assert per_bucket == heap.layout.tuples_per_page * 3
            heap.append_batch(make_batch(schema, per_bucket + 5))
            assert heap.num_buckets == 2
            np.testing.assert_array_equal(
                heap.read_bucket(0)["k"], np.arange(per_bucket, dtype=np.int32)
            )
            assert len(heap.read_bucket(1)) == 5


class TestWriteBucket:
    def test_replace_contents(self, heap, schema):
        heap.append_batch(make_batch(schema, 20))
        replacement = make_batch(schema, 5, start=100)
        heap.write_bucket(0, replacement)
        assert heap.bucket_count(0) == 5
        np.testing.assert_array_equal(
            heap.read_bucket(0)["k"], np.arange(100, 105, dtype=np.int32)
        )

    def test_capacity_enforced(self, heap, schema):
        heap.append_batch(make_batch(schema, 1))
        too_big = make_batch(schema, heap.layout.tuples_per_bucket + 1)
        with pytest.raises(StorageError, match="capacity"):
            heap.write_bucket(0, too_big)

    def test_empty_bucket_allowed(self, heap, schema):
        heap.append_batch(make_batch(schema, 10))
        heap.write_bucket(0, schema.empty_batch())
        assert heap.bucket_count(0) == 0
        assert len(heap.read_bucket(0)) == 0


class TestAccounting:
    def test_cold_read_charges_pages(self, heap, schema, pool):
        heap.append_batch(make_batch(schema, heap.layout.tuples_per_bucket * 2))
        pool.clear()
        pool.stats.reset()
        heap.read_bucket(0)
        heap.read_bucket(1)
        assert pool.stats.page_reads == 2
        heap.read_bucket(1)
        assert pool.stats.buffer_hits == 1

    def test_append_charges_writes(self, heap, schema, pool):
        pool.stats.reset()
        heap.append_batch(make_batch(schema, heap.layout.tuples_per_bucket * 3))
        assert pool.stats.page_writes == 3

    def test_bucket_counts_view_is_readonly(self, heap, schema):
        heap.append_batch(make_batch(schema, 5))
        counts = heap.bucket_counts()
        with pytest.raises(ValueError):
            counts[0] = 99

    def test_delete_files(self, tmp_path, schema, pool):
        import os

        path = str(tmp_path / "gone.heap")
        heap = HeapFile.create(path, schema, pool)
        heap.append_batch(make_batch(schema, 5))
        heap.delete_files()
        assert not os.path.exists(path)
        assert not os.path.exists(path + ".meta.json")
