"""Unit tests for I/O counters and cost breakdowns."""

from repro.storage.stats import CostBreakdown, IoStats


class TestIoStats:
    def test_page_reads_sums_three_classes(self):
        stats = IoStats(
            sequential_page_reads=5, skip_page_reads=2, random_page_reads=3
        )
        assert stats.page_reads == 10

    def test_page_accesses_include_hits(self):
        stats = IoStats(sequential_page_reads=5, buffer_hits=7)
        assert stats.page_accesses == 12

    def test_add(self):
        total = IoStats(tuples_scanned=3) + IoStats(tuples_scanned=4, buffer_hits=1)
        assert total.tuples_scanned == 7
        assert total.buffer_hits == 1

    def test_sub_gives_window_delta(self):
        before = IoStats(sequential_page_reads=10, tuples_scanned=100)
        after = IoStats(sequential_page_reads=25, tuples_scanned=160)
        delta = after - before
        assert delta.sequential_page_reads == 15
        assert delta.tuples_scanned == 60

    def test_snapshot_is_independent(self):
        stats = IoStats(tuples_scanned=1)
        snap = stats.snapshot()
        stats.tuples_scanned = 99
        assert snap.tuples_scanned == 1

    def test_reset(self):
        stats = IoStats(tuples_scanned=5, page_writes=2)
        stats.reset()
        assert stats.tuples_scanned == 0
        assert stats.page_writes == 0

    def test_merge_in_place(self):
        stats = IoStats(buffer_hits=1)
        stats.merge(IoStats(buffer_hits=2, page_writes=3))
        assert stats.buffer_hits == 3
        assert stats.page_writes == 3


class TestCostBreakdown:
    def test_total_sums_components(self):
        cost = CostBreakdown(
            sequential_io_s=1.0, skip_io_s=0.5, random_io_s=0.25,
            write_io_s=0.125, cpu_s=0.0625,
        )
        assert cost.total_s == 1.9375

    def test_str_contains_components(self):
        rendered = str(CostBreakdown(cpu_s=1.0))
        assert "cpu" in rendered and "seq" in rendered
