"""Striped buffer pool: single-flight loads, striping, races (ISSUE PR 2).

Covers the tentpole's concurrency contract:

* single-flight — concurrent readers of one missing page coalesce onto
  exactly one physical load: one miss charged to the leader, a buffer
  hit to every follower, and the loader runs once;
* per-query IoStats windows *partition* the cumulative counters under
  16 threads on an explicitly striped pool (property-tested over random
  access patterns);
* eviction pressure — capacity far below the working set deadlocks
  nothing and every stripe stays within its LRU bound;
* invalidate/note_write racing an in-flight load can never resurrect
  stale bytes (the generation guard).
"""

import random
import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import StorageError
from repro.storage.buffer import (
    MAX_AUTO_STRIPES,
    PAGES_PER_AUTO_STRIPE,
    BufferPool,
)
from repro.storage.stats import IoStats


def payload_for(file_id, page_no) -> bytes:
    return f"{file_id}:{page_no}".encode()


def loader_for(file_id, page_no):
    return lambda: payload_for(file_id, page_no)


class TestStriping:
    def test_explicit_stripes_partition_capacity(self):
        pool = BufferPool(capacity_pages=10, stripes=4)
        assert pool.num_stripes == 4
        capacities = pool.stripe_capacities()
        assert sum(capacities) == 10
        assert max(capacities) - min(capacities) <= 1
        assert all(c >= 1 for c in capacities)

    def test_auto_striping_scales_with_capacity(self):
        # Tiny pools keep one stripe — exact global LRU for unit tests.
        assert BufferPool(capacity_pages=2).num_stripes == 1
        assert BufferPool(capacity_pages=PAGES_PER_AUTO_STRIPE - 1).num_stripes == 1
        assert BufferPool(capacity_pages=4 * PAGES_PER_AUTO_STRIPE).num_stripes == 4
        # The paper's default 2048-page pool stripes fully.
        assert BufferPool(capacity_pages=2048).num_stripes == MAX_AUTO_STRIPES

    def test_stripes_clamped_to_capacity(self):
        pool = BufferPool(capacity_pages=3, stripes=8)
        assert pool.num_stripes == 3
        assert pool.stripe_capacities() == [1, 1, 1]

    def test_invalid_stripes_rejected(self):
        with pytest.raises(StorageError):
            BufferPool(capacity_pages=4, stripes=0)

    def test_consecutive_pages_round_robin_across_stripes(self):
        pool = BufferPool(capacity_pages=64, stripes=4)
        for page in range(8):
            pool.read_page("f", page, loader_for("f", page))
        # 8 consecutive pages over 4 stripes: exactly 2 pages per stripe.
        assert pool.stripe_lengths() == [2, 2, 2, 2]

    def test_contains_len_and_counters_across_stripes(self):
        pool = BufferPool(capacity_pages=64, stripes=4)
        for page in range(6):
            pool.read_page("f", page, loader_for("f", page))
        pool.read_page("f", 0, loader_for("f", 0))
        assert len(pool) == 6
        assert ("f", 3) in pool and ("f", 99) not in pool
        counters = pool.counters()
        assert (counters.hits, counters.misses) == (1, 6)


class TestSingleFlight:
    THREADS = 8

    def test_concurrent_readers_coalesce_onto_one_load(self):
        """ISSUE satellite: exactly one miss + one physical load is
        charged for N concurrent readers of one missing page; the other
        N-1 accesses are buffer hits."""
        pool = BufferPool(capacity_pages=64, stripes=4)
        load_calls = []
        started = threading.Event()
        release = threading.Event()

        def slow_loader():
            load_calls.append(threading.current_thread().name)
            started.set()
            assert release.wait(timeout=30)
            return b"the-page"

        windows = [IoStats() for _ in range(self.THREADS)]
        results = [None] * self.THREADS

        def reader(i):
            with pool.query_context(windows[i]):
                results[i] = pool.read_page("f", 7, slow_loader)

        threads = [
            threading.Thread(target=reader, args=(i,)) for i in range(self.THREADS)
        ]
        for t in threads:
            t.start()
        assert started.wait(timeout=30)
        # Give the remaining readers time to coalesce as followers, then
        # let the leader finish.  (Late arrivals hit the cache instead —
        # either way the loader must run exactly once.)
        release.set()
        for t in threads:
            t.join(timeout=30)
            assert not t.is_alive()

        assert results == [b"the-page"] * self.THREADS
        assert len(load_calls) == 1
        counters = pool.counters()
        assert counters.misses == 1
        assert counters.hits == self.THREADS - 1
        # The one physical read landed on exactly one window; every other
        # window saw a pure hit.
        assert sum(w.page_reads for w in windows) == 1
        assert sum(w.buffer_hits for w in windows) == self.THREADS - 1
        assert all(w.page_reads + w.buffer_hits == 1 for w in windows)

    def test_follower_retries_after_leader_failure(self):
        pool = BufferPool(capacity_pages=8)
        started = threading.Event()
        release = threading.Event()
        follower_ready = threading.Event()

        def failing_loader():
            started.set()
            assert release.wait(timeout=30)
            raise StorageError("disk fell over")

        leader_error = []

        def leader():
            try:
                pool.read_page("f", 0, failing_loader)
            except StorageError as exc:
                leader_error.append(exc)

        follower_result = []

        def follower():
            follower_ready.set()
            follower_result.append(pool.read_page("f", 0, loader_for("f", 0)))

        a = threading.Thread(target=leader)
        a.start()
        assert started.wait(timeout=30)  # leader owns the in-flight load
        b = threading.Thread(target=follower)
        b.start()
        assert follower_ready.wait(timeout=30)
        release.set()
        a.join(timeout=30)
        b.join(timeout=30)
        assert not a.is_alive() and not b.is_alive()

        # The leader surfaced its error; the follower retried the load
        # itself (possibly becoming the new leader) and succeeded.
        assert len(leader_error) == 1
        assert follower_result == [payload_for("f", 0)]
        assert ("f", 0) in pool

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_sixteen_thread_partition_property(self, seed):
        """Property (ISSUE satellite): under 16 threads with random page
        access patterns on an explicitly striped pool, the per-query
        window deltas partition the cumulative counters exactly."""
        threads_n, accesses = 16, 60
        pool = BufferPool(capacity_pages=48, stripes=8)
        rng = random.Random(seed)
        patterns = [
            [
                (f"file-{rng.randrange(4)}", rng.randrange(24))
                for _ in range(accesses)
            ]
            for _ in range(threads_n)
        ]
        before = pool.counters()
        barrier = threading.Barrier(threads_n)
        windows = [IoStats() for _ in range(threads_n)]
        bad: list = []

        def worker(i):
            with pool.query_context(windows[i]):
                barrier.wait()
                for file_id, page in patterns[i]:
                    got = pool.read_page(file_id, page, loader_for(file_id, page))
                    if got != payload_for(file_id, page):
                        bad.append((file_id, page, got))

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(threads_n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
            assert not t.is_alive(), "worker deadlocked"

        assert not bad, bad[:5]
        delta = pool.counters() - before
        assert sum(w.buffer_hits for w in windows) == delta.hits
        assert sum(w.page_reads for w in windows) == delta.misses
        assert delta.hits + delta.misses == threads_n * accesses
        assert len(pool) <= pool.capacity_pages


class TestEvictionPressure:
    def test_capacity_below_working_set_no_deadlock(self):
        """ISSUE satellite: 8 threads stream working sets far larger
        than the pool; nothing deadlocks, payloads stay correct, and
        every stripe respects its own LRU bound throughout."""
        pool = BufferPool(capacity_pages=16, stripes=4)
        threads_n, pages = 8, 120
        barrier = threading.Barrier(threads_n)
        bad: list = []
        bounds_violations: list = []

        def worker(i):
            own = f"file-{i}"
            barrier.wait()
            for page in range(pages):
                got = pool.read_page(own, page, loader_for(own, page))
                if got != payload_for(own, page):
                    bad.append((own, page))
                # Shared pages keep all stripes contended.
                pool.read_page("shared", page % 8, loader_for("shared", page % 8))
                lengths = pool.stripe_lengths()
                caps = pool.stripe_capacities()
                if any(n > c for n, c in zip(lengths, caps)):
                    bounds_violations.append((page, lengths))

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(threads_n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
            assert not t.is_alive(), "eviction-pressure worker deadlocked"

        assert not bad, bad[:5]
        assert not bounds_violations, bounds_violations[:3]
        assert len(pool) <= pool.capacity_pages
        counters = pool.counters()
        assert counters.evictions > 0  # pressure actually happened
        assert counters.accesses == threads_n * pages * 2


class TestInvalidationRaces:
    def test_invalidate_during_inflight_load_is_not_resurrected(self):
        """ISSUE satellite: an invalidate that lands while a load is in
        flight wins — the loaded payload is returned to the reader but
        never installed in the cache."""
        pool = BufferPool(capacity_pages=8)
        started = threading.Event()
        release = threading.Event()

        def slow_loader():
            started.set()
            assert release.wait(timeout=30)
            return b"stale"

        result = []
        t = threading.Thread(
            target=lambda: result.append(pool.read_page("f", 0, slow_loader))
        )
        t.start()
        assert started.wait(timeout=30)
        pool.invalidate("f", 0)  # races the in-flight load
        release.set()
        t.join(timeout=30)
        assert not t.is_alive()

        assert result == [b"stale"]  # the reader still gets its bytes...
        assert ("f", 0) not in pool  # ...but the cache was not repopulated
        # The next read goes back to disk and sees the new contents.
        assert pool.read_page("f", 0, lambda: b"fresh") == b"fresh"
        assert pool.read_page("f", 0, loader_for("f", 0)) == b"fresh"

    def test_write_during_inflight_load_keeps_written_bytes(self):
        pool = BufferPool(capacity_pages=8)
        started = threading.Event()
        release = threading.Event()

        def slow_loader():
            started.set()
            assert release.wait(timeout=30)
            return b"pre-write"

        result = []
        t = threading.Thread(
            target=lambda: result.append(pool.read_page("f", 0, slow_loader))
        )
        t.start()
        assert started.wait(timeout=30)
        pool.note_write("f", 0, b"post-write")
        release.set()
        t.join(timeout=30)
        assert not t.is_alive()

        assert result == [b"pre-write"]
        # The write-through contents survive; the stale load never
        # overwrote them.
        assert pool.read_page("f", 0, lambda: b"unexpected-io") == b"post-write"

    def test_clear_during_inflight_load(self):
        pool = BufferPool(capacity_pages=8)
        pool.read_page("g", 0, loader_for("g", 0))
        started = threading.Event()
        release = threading.Event()

        def slow_loader():
            started.set()
            assert release.wait(timeout=30)
            return b"stale"

        t = threading.Thread(target=lambda: pool.read_page("f", 0, slow_loader))
        t.start()
        assert started.wait(timeout=30)
        pool.clear()
        release.set()
        t.join(timeout=30)
        assert not t.is_alive()
        assert len(pool) == 0  # cold means cold: nothing reappeared
