"""Unit tests for column data types and value coercion."""

import datetime

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.storage.types import (
    BOOL,
    DATE,
    DataType,
    FLOAT64,
    INT32,
    INT64,
    TypeKind,
    char,
    coerce_value,
    date_to_int,
    int_to_date,
    python_value,
)


class TestDataTypeBasics:
    def test_fixed_widths(self):
        assert INT32.width == 4
        assert INT64.width == 8
        assert FLOAT64.width == 8
        assert DATE.width == 4  # the paper stores dates in 32 bits
        assert BOOL.width == 1

    def test_char_width_is_its_length(self):
        assert char(25).width == 25
        assert char(1).width == 1

    def test_numpy_dtypes(self):
        assert np.dtype(INT32.numpy_dtype).itemsize == 4
        assert np.dtype(DATE.numpy_dtype).kind == "i"
        assert np.dtype(char(10).numpy_dtype) == np.dtype("S10")

    def test_char_requires_positive_length(self):
        with pytest.raises(SchemaError):
            char(0)
        with pytest.raises(SchemaError):
            char(-3)

    def test_fixed_types_reject_length(self):
        with pytest.raises(SchemaError):
            DataType(TypeKind.INT32, 4)

    def test_numeric_classification(self):
        assert INT32.is_numeric and INT64.is_numeric and FLOAT64.is_numeric
        assert not DATE.is_numeric
        assert not char(5).is_numeric
        assert not BOOL.is_numeric

    def test_orderable_classification(self):
        assert DATE.is_orderable and char(3).is_orderable and INT32.is_orderable
        assert not BOOL.is_orderable

    def test_str_rendering(self):
        assert str(INT32) == "INT32"
        assert str(char(7)) == "CHAR(7)"

    def test_equality_and_hash(self):
        assert char(5) == char(5)
        assert char(5) != char(6)
        assert len({INT32, DataType(TypeKind.INT32)}) == 1


class TestDates:
    def test_epoch(self):
        assert date_to_int(datetime.date(1970, 1, 1)) == 0

    def test_round_trip(self):
        for date in (
            datetime.date(1992, 1, 1),
            datetime.date(1998, 12, 1),
            datetime.date(1969, 12, 31),
            datetime.date(2026, 7, 7),
        ):
            assert int_to_date(date_to_int(date)) == date

    def test_ordering_preserved(self):
        early = date_to_int(datetime.date(1995, 6, 17))
        late = date_to_int(datetime.date(1995, 6, 18))
        assert early + 1 == late

    def test_paper_date_range(self):
        # "a range of seven years or 2556 days" — the TPC-D window.
        span = date_to_int(datetime.date(1998, 12, 31)) - date_to_int(
            datetime.date(1992, 1, 1)
        )
        assert span == 2556


class TestCoerceValue:
    def test_date_from_date(self):
        assert coerce_value(DATE, datetime.date(1970, 1, 2)) == 1

    def test_date_from_int(self):
        assert coerce_value(DATE, 10) == 10

    def test_date_from_iso_string(self):
        assert coerce_value(DATE, "1970-01-03") == 2

    def test_date_rejects_float(self):
        with pytest.raises(SchemaError):
            coerce_value(DATE, 1.5)

    def test_char_pads_and_encodes(self):
        assert coerce_value(char(5), "ab") == b"ab"
        assert coerce_value(char(5), b"abc") == b"abc"

    def test_char_rejects_overflow(self):
        with pytest.raises(SchemaError):
            coerce_value(char(2), "abc")

    def test_char_rejects_non_string(self):
        with pytest.raises(SchemaError):
            coerce_value(char(2), 5)

    def test_int_accepts_numpy_integers(self):
        assert coerce_value(INT32, np.int64(7)) == 7

    def test_int_rejects_bool(self):
        with pytest.raises(SchemaError):
            coerce_value(INT32, True)

    def test_int_rejects_float(self):
        with pytest.raises(SchemaError):
            coerce_value(INT64, 1.5)

    def test_float_accepts_int(self):
        assert coerce_value(FLOAT64, 3) == 3.0

    def test_bool(self):
        assert coerce_value(BOOL, True) is True
        with pytest.raises(SchemaError):
            coerce_value(BOOL, "yes")


class TestPythonValue:
    def test_date_back_to_date(self):
        assert python_value(DATE, 0) == datetime.date(1970, 1, 1)

    def test_char_strips_padding(self):
        assert python_value(char(5), b"ab\x00\x00\x00") == "ab"

    def test_numerics(self):
        assert python_value(INT32, np.int32(5)) == 5
        assert python_value(FLOAT64, np.float64(2.5)) == 2.5
        assert isinstance(python_value(INT64, np.int64(5)), int)

    def test_bool(self):
        assert python_value(BOOL, np.bool_(True)) is True
