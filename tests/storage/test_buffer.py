"""Unit tests for the LRU buffer pool and its read classification."""

import pytest

from repro.errors import StorageError
from repro.storage.buffer import BufferPool
from repro.storage.stats import IoStats


def loader(payload=b"x"):
    return lambda: payload


class TestCaching:
    def test_miss_then_hit(self):
        pool = BufferPool(capacity_pages=4)
        pool.read_page("f", 0, loader(b"a"))
        assert pool.stats.page_reads == 1
        got = pool.read_page("f", 0, loader(b"SHOULD NOT LOAD"))
        assert got == b"a"
        assert pool.stats.buffer_hits == 1
        assert pool.stats.page_reads == 1

    def test_lru_eviction(self):
        pool = BufferPool(capacity_pages=2)
        pool.read_page("f", 0, loader())
        pool.read_page("f", 1, loader())
        pool.read_page("f", 2, loader())  # evicts page 0
        assert ("f", 0) not in pool
        assert ("f", 1) in pool and ("f", 2) in pool

    def test_hit_refreshes_recency(self):
        pool = BufferPool(capacity_pages=2)
        pool.read_page("f", 0, loader())
        pool.read_page("f", 1, loader())
        pool.read_page("f", 0, loader())  # page 0 is now MRU
        pool.read_page("f", 2, loader())  # evicts page 1
        assert ("f", 0) in pool
        assert ("f", 1) not in pool

    def test_capacity_must_be_positive(self):
        with pytest.raises(StorageError):
            BufferPool(capacity_pages=0)

    def test_clear_is_the_cold_switch(self):
        pool = BufferPool(capacity_pages=4)
        pool.read_page("f", 0, loader())
        pool.clear()
        pool.read_page("f", 0, loader())
        assert pool.stats.page_reads == 2
        assert pool.stats.buffer_hits == 0

    def test_invalidate_single_page(self):
        pool = BufferPool(capacity_pages=4)
        pool.read_page("f", 0, loader(b"old"))
        pool.invalidate("f", 0)
        assert pool.read_page("f", 0, loader(b"new")) == b"new"

    def test_invalidate_whole_file(self):
        pool = BufferPool(capacity_pages=8)
        pool.read_page("f", 0, loader())
        pool.read_page("f", 1, loader())
        pool.read_page("g", 0, loader())
        pool.invalidate("f")
        assert ("f", 0) not in pool and ("f", 1) not in pool
        assert ("g", 0) in pool


class TestClassification:
    def test_first_read_is_random(self):
        pool = BufferPool(capacity_pages=4)
        pool.read_page("f", 3, loader())
        assert pool.stats.random_page_reads == 1

    def test_next_page_is_sequential(self):
        pool = BufferPool(capacity_pages=4)
        pool.read_page("f", 3, loader())
        pool.read_page("f", 4, loader())
        assert pool.stats.sequential_page_reads == 1

    def test_forward_gap_is_skip(self):
        pool = BufferPool(capacity_pages=4)
        pool.read_page("f", 3, loader())
        pool.read_page("f", 7, loader())
        assert pool.stats.skip_page_reads == 1

    def test_backward_jump_is_random(self):
        pool = BufferPool(capacity_pages=4)
        pool.read_page("f", 5, loader())
        pool.read_page("f", 2, loader())
        assert pool.stats.random_page_reads == 2

    def test_files_tracked_independently(self):
        pool = BufferPool(capacity_pages=8)
        pool.read_page("f", 0, loader())
        pool.read_page("g", 5, loader())
        pool.read_page("f", 1, loader())  # still sequential for f
        assert pool.stats.sequential_page_reads == 1
        assert pool.stats.random_page_reads == 2

    def test_reset_sequence_tracking(self):
        pool = BufferPool(capacity_pages=8)
        pool.read_page("f", 0, loader())
        pool.reset_sequence_tracking()
        pool.clear()
        pool.read_page("f", 1, loader())  # would be sequential otherwise
        assert pool.stats.random_page_reads == 2


class TestWrites:
    def test_note_write_charges_and_caches(self):
        pool = BufferPool(capacity_pages=4)
        pool.note_write("f", 0, b"payload")
        assert pool.stats.page_writes == 1
        got = pool.read_page("f", 0, loader(b"SHOULD NOT LOAD"))
        assert got == b"payload"
        assert pool.stats.buffer_hits == 1

    def test_note_write_respects_capacity(self):
        pool = BufferPool(capacity_pages=2)
        for page in range(5):
            pool.note_write("f", page, b"p")
        assert len(pool) == 2

    def test_shared_stats_instance(self):
        stats = IoStats()
        pool = BufferPool(capacity_pages=2, stats=stats)
        pool.read_page("f", 0, loader())
        assert stats.page_reads == 1
