"""Unit tests for the catalog."""

import pytest

from repro.errors import CatalogError
from repro.storage import Catalog, Schema, INT32

from tests.conftest import SALES_SCHEMA, sales_rows


class TestTables:
    def test_create_and_lookup(self, catalog):
        table = catalog.create_table("T", SALES_SCHEMA)
        assert catalog.table("T") is table
        assert catalog.has_table("T")
        assert not catalog.has_table("U")

    def test_duplicate_name_rejected(self, catalog):
        catalog.create_table("T", SALES_SCHEMA)
        with pytest.raises(CatalogError, match="already exists"):
            catalog.create_table("T", SALES_SCHEMA)

    def test_unknown_table(self, catalog):
        with pytest.raises(CatalogError, match="unknown table"):
            catalog.table("NOPE")

    def test_tables_iteration(self, catalog):
        catalog.create_table("A", SALES_SCHEMA)
        catalog.create_table("B", Schema.of(("x", INT32)))
        assert {t.name for t in catalog.tables()} == {"A", "B"}

    def test_drop_table_removes_files(self, catalog, tmp_path):
        import os

        table = catalog.create_table("T", SALES_SCHEMA)
        path = table.heap.path
        table.append_rows(sales_rows(10))
        catalog.drop_table("T")
        assert not catalog.has_table("T")
        assert not os.path.exists(path)

    def test_open_table_roundtrip(self, tmp_path):
        root = str(tmp_path / "db")
        with Catalog(root) as cat:
            table = cat.create_table("T", SALES_SCHEMA)
            table.append_rows(sales_rows(100))
        with Catalog(root) as cat2:
            reopened = cat2.open_table("T", clustered_on="ship")
            assert reopened.num_records == 100
            assert reopened.clustered_on == "ship"

    def test_open_unknown_table(self, catalog):
        with pytest.raises(CatalogError, match="no heap file"):
            catalog.open_table("GHOST")

    def test_open_already_open(self, catalog):
        catalog.create_table("T", SALES_SCHEMA)
        with pytest.raises(CatalogError, match="already open"):
            catalog.open_table("T")


class TestSmaRegistry:
    def test_register_and_lookup(self, catalog, sales_table, sales_sma_set):
        assert catalog.sma_set("SALES", "default") is sales_sma_set
        assert catalog.sma_sets("SALES") == [sales_sma_set]

    def test_duplicate_registration_rejected(
        self, catalog, sales_table, sales_sma_set
    ):
        with pytest.raises(CatalogError, match="already registered"):
            catalog.register_sma_set("SALES", sales_sma_set)

    def test_unknown_set(self, catalog, sales_table):
        with pytest.raises(CatalogError, match="no SMA set"):
            catalog.sma_set("SALES", "ghost")

    def test_drop_sma_set(self, catalog, sales_table, sales_sma_set):
        catalog.drop_sma_set("SALES", "default")
        assert catalog.sma_sets("SALES") == []

    def test_drop_table_drops_its_sets(self, catalog, sales_table, sales_sma_set):
        catalog.drop_table("SALES")
        assert not catalog.has_table("SALES")


class TestStatsAndCold:
    def test_go_cold_empties_pool(self, catalog, sales_table):
        sales_table.read_bucket(0)
        catalog.reset_stats()
        sales_table.read_bucket(0)  # warm hit
        assert catalog.stats.buffer_hits == 1
        catalog.go_cold()
        catalog.reset_stats()
        sales_table.read_bucket(0)
        assert catalog.stats.page_reads >= 1
        assert catalog.stats.buffer_hits == 0

    def test_reset_stats_returns_snapshot(self, catalog, sales_table):
        catalog.go_cold()  # otherwise the load left this bucket cached
        sales_table.read_bucket(0)
        snapshot = catalog.reset_stats()
        assert snapshot.page_reads >= 1
        assert catalog.stats.page_reads == 0

    def test_sma_dir_created(self, catalog, sales_table):
        import os

        assert os.path.isdir(catalog.sma_dir("SALES"))
