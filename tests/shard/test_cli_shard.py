"""CLI surface: shard-init, EXPLAIN routing, serve --shards, metrics port."""

import json
import re
import urllib.request

import pytest

from repro.cli import main
from repro.obs import MetricsServer


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


@pytest.fixture(scope="module")
def cli_env(tmp_path_factory):
    """A loaded catalog + a 2-shard root, built through the CLI."""
    root = tmp_path_factory.mktemp("cli-shard")
    db = str(root / "db")
    sharded = str(root / "db-sharded")
    assert main(["load", "--db", db, "--sf", "0.002"]) == 0
    assert main([
        "shard-init", "--db", db, "--out", sharded, "--shards", "2",
    ]) == 0
    return db, sharded


SQL = (
    "SELECT L_RETURNFLAG, COUNT(*) AS n, SUM(L_QUANTITY) AS q FROM LINEITEM "
    "WHERE L_SHIPDATE <= DATE '1998-09-02' GROUP BY L_RETURNFLAG"
)


class TestShardInit:
    def test_prints_ranges(self, tmp_path, capsys):
        db = str(tmp_path / "db")
        run(capsys, "load", "--db", db, "--sf", "0.002")
        code, out, _ = run(
            capsys, "shard-init", "--db", db,
            "--out", str(tmp_path / "sharded"), "--shards", "2",
        )
        assert code == 0
        assert "2 shards" in out
        assert re.search(r"LINEITEM: \[0, \d+\), \[\d+, \d+\)", out)

    def test_refuses_reinit(self, cli_env, capsys):
        db, sharded = cli_env
        with pytest.raises(Exception, match="refusing to re-init"):
            run(capsys, "shard-init", "--db", db,
                "--out", sharded, "--shards", "2")


class TestExplainRouting:
    def test_routing_section_shape(self, cli_env, capsys):
        _, sharded = cli_env
        code, out, _ = run(capsys, "explain", "--db", sharded, SQL)
        assert code == 0
        assert "Routing: scatter_gather across 2 shards" in out
        assert "partitioning=contiguous-bucket-ranges" in out
        # one line per shard: id, directory, bucket range, strategy
        shard_lines = re.findall(
            r"shard (\d+) \(shard-\d{4}\): buckets \[(\d+), (\d+)\) -> (\S+)",
            out,
        )
        assert [line[0] for line in shard_lines] == ["0", "1"]
        assert shard_lines[0][2] == shard_lines[1][1]  # contiguous
        assert "Gather: merge partial aggregation states in shard order" in out

    def test_scan_gather_is_concatenation(self, cli_env, capsys):
        _, sharded = cli_env
        code, out, _ = run(
            capsys, "explain", "--db", sharded,
            "SELECT L_ORDERKEY FROM LINEITEM "
            "WHERE L_SHIPDATE >= DATE '1998-09-01'",
        )
        assert code == 0
        assert "Gather: concatenate shard rows in shard order" in out

    def test_plain_catalog_unaffected(self, cli_env, capsys):
        db, _ = cli_env
        code, out, _ = run(capsys, "explain", "--db", db, SQL)
        assert code == 0
        assert "Routing:" not in out
        assert "physical plan:" in out


class TestServeSharded:
    def test_scatter_gather_workload(self, cli_env, capsys, tmp_path):
        _, sharded = cli_env
        events_dir = str(tmp_path / "shard-events")
        code, out, _ = run(
            capsys, "serve", "--db", sharded, "--shards", "2",
            "--workers", "2", "--clients", "2", "--queries", "6",
            "--report", "--shard-events", events_dir,
        )
        assert code == 0
        assert "shard 0: up" in out and "shard 1: up" in out
        assert "6 completed" in out
        assert "fan-out: 6 scattered, 12 subqueries" in out
        assert "scatter_gather[" in out
        for shard_id in (0, 1):
            lines = open(
                f"{events_dir}/shard-{shard_id}.jsonl", encoding="utf-8"
            ).readlines()
            kinds = {json.loads(line)["event"] for line in lines}
            assert "shard_worker_start" in kinds
            assert "query_finish" in kinds

    def test_shard_count_mismatch_rejected(self, cli_env, capsys):
        _, sharded = cli_env
        code, _, err = run(
            capsys, "serve", "--db", sharded, "--shards", "3",
        )
        assert code == 1
        assert "holds 2 shard(s), not 3" in err

    def test_plain_catalog_rejected(self, cli_env, capsys):
        db, _ = cli_env
        from repro.errors import ShardError

        with pytest.raises(ShardError, match="not a sharded root"):
            run(capsys, "serve", "--db", db, "--shards", "2")


class TestMetricsServerEphemeralPort:
    def test_port_zero_binds_and_reports(self, caplog):
        import logging

        with caplog.at_level(logging.INFO, logger="repro.obs"):
            server = MetricsServer(lambda: {"queries": {}}, port=0)
            with server as started:
                assert started is server  # start() returns the server
                assert server.port > 0  # a real bound port, not 0
                assert f":{server.port}" in server.url
                # bound address is reported in the startup log
                assert any(
                    server.url in record.getMessage()
                    for record in caplog.records
                )
                with urllib.request.urlopen(server.url + "/healthz") as reply:
                    assert json.loads(reply.read())["status"] == "ok"
