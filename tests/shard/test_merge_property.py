"""Hypothesis: AggregationState.merge is associative + order-preserving.

The scatter-gather guarantee reduces to one algebraic fact: for any
contiguous split of a bucket range's contribution sequence into chunks,
building a partial state per chunk and merging them back *in range
order* — under any merge tree shape — finalizes bit-identically to the
serial state built from the whole sequence.  Shards are exactly such
chunks, so this is the property that makes the router's gather safe.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregates import count_star, maximum, minimum, total
from repro.lang import col
from repro.query.aggregation import AggregationState
from repro.query.query import OutputAggregate

#: One aggregate of every kind; shared so states compare merge-equal.
AGGREGATES = (
    OutputAggregate("s", total(col("x"))),
    OutputAggregate("a_min", minimum(col("x"))),
    OutputAggregate("a_max", maximum(col("x"))),
    OutputAggregate("n", count_star()),
)
GROUP_BY = ("flag",)
NOT_DATE = [False] * len(AGGREGATES)

finite_floats = st.floats(allow_nan=False, allow_infinity=False, width=64)

#: One bucket's contribution: (group key, count, SUM part, MIN, MAX).
contribution = st.tuples(
    st.sampled_from([("A",), ("B",), ("C",)]),
    st.integers(min_value=1, max_value=50),
    finite_floats,
    finite_floats,
    finite_floats,
)


def build_state(contributions) -> AggregationState:
    """Advance a fresh state through *contributions* in sequence order."""
    state = AggregationState(
        None, GROUP_BY, AGGREGATES, is_date_result=NOT_DATE
    )
    for key, count, part, low, high in contributions:
        state.advance_count(key, count)
        state.advance_sum(key, 0, part)
        state.advance_min(key, 1, low)
        state.advance_max(key, 2, high)
    return state


def split_at(contributions, cuts):
    """Contiguous chunks of *contributions* at sorted cut offsets."""
    bounds = [0, *sorted(cuts), len(contributions)]
    return [
        contributions[lo:hi] for lo, hi in zip(bounds, bounds[1:])
    ]


def finalized(state: AggregationState) -> str:
    columns, rows = state.finalize()
    return repr((columns, rows))  # repr equality = float bit equality


@settings(max_examples=200, deadline=None)
@given(
    contributions=st.lists(contribution, min_size=1, max_size=40),
    data=st.data(),
)
def test_contiguous_split_merges_to_serial(contributions, data):
    """Any shard split, merged in range order, equals single-node."""
    cuts = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=len(contributions)),
            max_size=6,
        )
    )
    serial = build_state(contributions)
    merged = build_state([])
    for chunk in split_at(contributions, cuts):
        merged.merge(build_state(chunk))
    assert finalized(merged) == finalized(serial)


@settings(max_examples=200, deadline=None)
@given(
    left=st.lists(contribution, max_size=15),
    middle=st.lists(contribution, max_size=15),
    right=st.lists(contribution, max_size=15),
)
def test_merge_associative(left, middle, right):
    """(L + M) + R == L + (M + R), bit for bit."""
    left_first = build_state([])
    left_first.merge(build_state(left))
    left_first.merge(build_state(middle))
    left_first.merge(build_state(right))

    right_first = build_state(left)
    tail = build_state(middle)
    tail.merge(build_state(right))
    right_first.merge(tail)

    assert finalized(left_first) == finalized(right_first)


@settings(max_examples=100, deadline=None)
@given(
    chunk_a=st.lists(contribution, min_size=1, max_size=15),
    chunk_b=st.lists(contribution, min_size=1, max_size=15),
)
def test_merge_preserves_contribution_order(chunk_a, chunk_b):
    """Merging [A then B] equals serially consuming A ++ B — the
    bucket-major order invariant the router's shard-order gather relies
    on (float addition is not commutative, so order is load-bearing)."""
    merged = build_state(chunk_a)
    merged.merge(build_state(chunk_b))
    assert finalized(merged) == finalized(build_state(chunk_a + chunk_b))
