"""End-to-end scatter-gather: byte-identical to single-node.

The tentpole acceptance: the full TPC-D mix (Query-1-style grouped
aggregations at three selectivities + a range scan), executed through
the router over 1, 2 and 4 shard workers, must produce results
*byte-identical* to single-node execution — across forced access paths
too, since each shard plans its slice independently.
"""

import pytest

from repro.query.session import Session, assert_same_result
from repro.server.workload import default_mix
from repro.storage.catalog import Catalog
from repro.tpcd.queries import query1
from tests.shard.conftest import SHARD_COUNTS


@pytest.fixture(scope="module")
def reference(shard_env):
    """Single-node results for the full mix + forced-mode variants."""
    out = {}
    with Catalog.discover(shard_env.source, buffer_pages=8192) as catalog:
        session = Session(catalog)
        for entry in default_mix("LINEITEM"):
            out[entry.name] = session.execute(
                entry.query, mode=entry.mode, sma_set=entry.sma_set
            )
        for mode in ("auto", "sma", "scan"):
            out[f"q1_{mode}"] = session.execute(query1(delta=90), mode=mode)
    return out


@pytest.mark.parametrize("num_shards", SHARD_COUNTS)
def test_mix_byte_identical(shard_env, cluster_factory, reference, num_shards):
    with cluster_factory(shard_env.sharded[num_shards]) as cluster:
        for entry in default_mix("LINEITEM"):
            ticket = cluster.router.submit(
                entry.query, mode=entry.mode, sma_set=entry.sma_set
            )
            assert_same_result(ticket.result(), reference[entry.name])


@pytest.mark.parametrize("num_shards", SHARD_COUNTS)
def test_forced_modes_byte_identical(
    shard_env, cluster_factory, reference, num_shards
):
    """Shards may take any access path; the gather must not care."""
    with cluster_factory(shard_env.sharded[num_shards]) as cluster:
        for mode in ("auto", "sma", "scan"):
            ticket = cluster.router.submit(query1(delta=90), mode=mode)
            result = ticket.result()
            assert_same_result(result, reference[f"q1_{mode}"])
            assert result.plan.strategy.startswith("scatter_gather[")


def test_sql_string_accepted(shard_env, cluster_factory, reference):
    with cluster_factory(shard_env.sharded[2]) as cluster:
        ticket = cluster.router.submit(
            "SELECT L_ORDERKEY, L_SHIPDATE, L_QUANTITY FROM LINEITEM "
            "WHERE L_SHIPDATE >= DATE '1998-09-01' "
            "AND L_SHIPDATE <= DATE '1998-10-31'"
        )
        assert_same_result(ticket.result(), reference["range_scan"])


def test_health_and_fanout_counters(shard_env, cluster_factory):
    with cluster_factory(shard_env.sharded[2]) as cluster:
        health = cluster.router.health()
        assert set(health) == {0, 1}
        assert all(info["up"] for info in health.values())
        total_buckets = sum(
            info["tables"]["LINEITEM"] for info in health.values()
        )
        lo, hi = cluster.manifest.bucket_range("LINEITEM", 1)
        assert total_buckets == hi  # ranges concatenate to the source

        cluster.router.submit(query1(delta=90)).result()
        snapshot = cluster.router.observed_snapshot()
        shard = snapshot["shard"]
        assert shard["fanout"]["scatter_queries"] == 1
        assert shard["fanout"]["subqueries_sent"] == 2
        assert shard["fanout"]["gather_merges"] == 1
        for shard_id in ("0", "1"):
            per_shard = shard["shards"][shard_id]
            assert per_shard["up"] is True
            assert per_shard["requests"] >= 1
            assert per_shard["failures"] == 0


def test_io_stats_gathered_across_shards(shard_env, cluster_factory):
    """Router stats are the sum of shard IoStats — reads don't vanish."""
    with Catalog.discover(shard_env.source, buffer_pages=8192) as catalog:
        single = Session(catalog).execute(query1(delta=90), mode="scan")
    with cluster_factory(shard_env.sharded[4]) as cluster:
        sharded = cluster.router.submit(query1(delta=90), mode="scan").result()
    # Forced scan reads every bucket exactly once in both worlds.
    assert sharded.stats.tuples_scanned == single.stats.tuples_scanned
    assert sharded.stats.buckets_fetched == single.stats.buckets_fetched
