"""Wire framing + partial-state serde fidelity."""

import datetime
import json
import socket
import struct

import pytest

from repro.errors import ShardProtocolError
from repro.query.session import Session
from repro.shard.protocol import (
    MAX_FRAME_BYTES,
    recv_message,
    send_message,
)
from repro.shard.state_serde import (
    rows_from_wire,
    rows_to_wire,
    state_from_wire,
    state_to_wire,
    stats_from_wire,
    stats_to_wire,
)
from repro.storage.catalog import Catalog
from repro.storage.stats import IoStats
from repro.tpcd.queries import query1


@pytest.fixture
def pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


class TestFraming:
    def test_round_trip(self, pair):
        a, b = pair
        message = {"op": "execute", "values": [1, 2.5, "x", None, True]}
        send_message(a, message)
        assert recv_message(b) == message

    def test_multiple_frames_keep_boundaries(self, pair):
        a, b = pair
        send_message(a, {"n": 1})
        send_message(a, {"n": 2})
        assert recv_message(b) == {"n": 1}
        assert recv_message(b) == {"n": 2}

    def test_clean_eof_returns_none(self, pair):
        a, b = pair
        a.close()
        assert recv_message(b) is None

    def test_mid_frame_eof_raises(self, pair):
        a, b = pair
        payload = json.dumps({"op": "ping"}).encode()
        a.sendall(struct.pack(">I", len(payload)) + payload[:3])
        a.close()
        with pytest.raises(ShardProtocolError, match="mid-frame"):
            recv_message(b)

    def test_oversized_header_rejected(self, pair):
        a, b = pair
        a.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
        with pytest.raises(ShardProtocolError, match="cap"):
            recv_message(b)

    def test_undecodable_payload_rejected(self, pair):
        a, b = pair
        a.sendall(struct.pack(">I", 3) + b"{{{")
        with pytest.raises(ShardProtocolError, match="undecodable"):
            recv_message(b)

    def test_float_bits_survive_the_wire(self, pair):
        a, b = pair
        values = [0.1 + 0.2, 1e300, -4.9e-324, 2.0 ** 53 + 2]
        send_message(a, values)
        got = recv_message(b)
        assert [repr(v) for v in got] == [repr(v) for v in values]


class TestStateSerde:
    @pytest.fixture
    def partial(self, shard_env):
        """A real un-finalized Q1 partial state off the source catalog."""
        with Catalog.discover(shard_env.source) as catalog:
            session = Session(catalog)
            result = session.execute_partial(query1(delta=90))
        return result.state

    def test_round_trip_finalizes_identically(self, partial):
        wire = json.loads(json.dumps(state_to_wire(partial)))
        rebuilt = state_from_wire(wire)
        want_columns, want_rows = partial.finalize()
        got_columns, got_rows = rebuilt.finalize()
        assert got_columns == want_columns
        assert len(got_rows) == len(want_rows)
        for got, want in zip(got_rows, want_rows):
            assert repr(got) == repr(want)  # repr equality = bit equality

    def test_rebuilt_states_merge(self, partial):
        """Two wire reconstructions are structurally merge-compatible."""
        one = state_from_wire(state_to_wire(partial))
        two = state_from_wire(state_to_wire(partial))
        one.merge(two)  # must not raise 'different queries'
        assert one.num_groups == partial.num_groups

    def test_malformed_state_rejected(self):
        with pytest.raises(ShardProtocolError, match="malformed"):
            state_from_wire({"aggregates": [], "groups": "nope"})


class TestStatsAndRows:
    def test_stats_round_trip(self):
        stats = IoStats(
            sequential_page_reads=3, random_page_reads=1, buffer_hits=7,
            tuples_scanned=100, buckets_skipped=4,
        )
        rebuilt = stats_from_wire(json.loads(json.dumps(stats_to_wire(stats))))
        assert rebuilt == stats

    def test_stats_derived_keys_dropped(self):
        """as_dict() derived totals must not hit the constructor."""
        wire = stats_to_wire(IoStats(sequential_page_reads=2, buffer_hits=1))
        assert "page_reads" in wire  # derived key present on the wire
        rebuilt = stats_from_wire(wire)
        assert rebuilt.page_reads == 2  # recomputed, not double-counted

    def test_rows_round_trip_with_dates(self):
        rows = [
            (1, "R", datetime.date(1998, 9, 2), 0.1 + 0.2, None),
            (2, "A", datetime.date(1992, 1, 1), -0.0, True),
        ]
        got = rows_from_wire(json.loads(json.dumps(rows_to_wire(rows))))
        assert repr(got) == repr(rows)
