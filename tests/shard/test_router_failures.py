"""Degradation: dead shards, typed remote errors, partial-result refusal."""

import pytest

from repro.errors import (
    CatalogError,
    PlanningError,
    ShardError,
    ShardUnavailableError,
)
from repro.shard.router import ShardClient, ShardEndpoint, _map_remote_error
from repro.storage.faults import RetryPolicy
from repro.tpcd.queries import query1


def test_dead_shard_refuses_partial_results(shard_env, cluster_factory):
    """One dead shard fails the whole query — never a partial relation."""
    with cluster_factory(shard_env.sharded[2]) as cluster:
        cluster.router.submit(query1(delta=90)).result()  # cluster healthy
        cluster.workers[1].close()
        with pytest.raises(ShardUnavailableError) as excinfo:
            cluster.router.submit(query1(delta=90)).result()
        assert excinfo.value.shard_id == 1
        shard = cluster.router.observed_snapshot()["shard"]
        assert shard["shards"]["1"]["up"] is False
        assert shard["shards"]["1"]["failures"] >= 1
        assert shard["shards"]["0"]["up"] is True
        health = cluster.router.health()
        assert health[0]["up"] is True
        assert health[1]["up"] is False


def test_unreachable_endpoint_retries_then_raises():
    """Connection faults retry under the policy, then raise typed."""
    client = ShardClient(
        ShardEndpoint(3, "127.0.0.1", 1),  # nothing listens on port 1
        retry_policy=RetryPolicy(max_attempts=2, base_backoff_s=0.0),
        connect_timeout_s=0.2,
    )
    with pytest.raises(ShardUnavailableError, match="after 2 attempts"):
        client.request({"op": "ping"})
    client.close()


def test_remote_errors_map_to_typed_exceptions(shard_env, cluster_factory):
    """Worker-side app errors surface as the matching error class."""
    with cluster_factory(shard_env.sharded[1]) as cluster:
        with pytest.raises(CatalogError, match="shard 0"):
            cluster.router.submit(query1(table="NO_SUCH_TABLE")).result()


def test_explain_statement_rejected_by_router(shard_env, cluster_factory):
    with cluster_factory(shard_env.sharded[1]) as cluster:
        with pytest.raises(PlanningError, match="EXPLAIN"):
            cluster.router.submit("EXPLAIN SELECT COUNT(*) AS n FROM LINEITEM")


def test_error_mapper_falls_back_to_shard_error():
    mapped = _map_remote_error({"type": "ValueError", "message": "boom"}, 2)
    assert isinstance(mapped, ShardError)
    assert "shard 2" in str(mapped)
    mapped = _map_remote_error(
        {"type": "PlanningError", "message": "no table"}, 0
    )
    assert isinstance(mapped, PlanningError)
