"""Partitioner + manifest: ranges, shard catalogs, SMA slices."""

import numpy as np
import pytest

from repro.errors import ShardError
from repro.shard.manifest import ShardManifest
from repro.shard.partitioner import shard_init, shard_ranges
from repro.storage.catalog import Catalog


class TestShardRanges:
    def test_cover_contiguously(self):
        for buckets in (0, 1, 7, 383):
            for shards in (1, 2, 3, 4, 7):
                spans = shard_ranges(buckets, shards)
                assert len(spans) == shards
                assert spans[0][0] == 0
                assert spans[-1][1] == buckets
                for (_, hi), (lo, _) in zip(spans, spans[1:]):
                    assert hi == lo  # contiguous, no gap, no overlap

    def test_balanced(self):
        spans = shard_ranges(383, 4)
        sizes = [hi - lo for lo, hi in spans]
        assert max(sizes) - min(sizes) <= 1

    def test_more_shards_than_buckets(self):
        spans = shard_ranges(2, 4)
        sizes = [hi - lo for lo, hi in spans]
        assert sum(sizes) == 2
        assert all(size in (0, 1) for size in sizes)

    def test_zero_shards_rejected(self):
        with pytest.raises(ShardError):
            shard_ranges(10, 0)


class TestManifest:
    def test_round_trip(self, shard_env):
        manifest = ShardManifest.load(shard_env.sharded[2])
        assert manifest.num_shards == 2
        assert manifest.shard_dirs == ("shard-0000", "shard-0001")
        spans = manifest.tables["LINEITEM"]
        assert spans[0][0] == 0
        assert spans[0][1] == spans[1][0]

    def test_exists(self, shard_env, tmp_path):
        assert ShardManifest.exists(shard_env.sharded[1])
        assert not ShardManifest.exists(str(tmp_path))

    def test_load_rejects_plain_directory(self, tmp_path):
        with pytest.raises(ShardError, match="not a sharded root"):
            ShardManifest.load(str(tmp_path))

    def test_unknown_table_rejected(self, shard_env):
        manifest = ShardManifest.load(shard_env.sharded[2])
        with pytest.raises(ShardError, match="not in shard manifest"):
            manifest.bucket_range("NOPE", 0)


class TestShardCatalogs:
    def test_refuses_reinit(self, shard_env):
        with pytest.raises(ShardError, match="refusing to re-init"):
            shard_init(shard_env.source, shard_env.sharded[2], 2)

    def test_buckets_partition_the_table(self, shard_env):
        manifest = ShardManifest.load(shard_env.sharded[4])
        with Catalog.discover(shard_env.source) as source:
            table = source.table("LINEITEM")
            total_buckets = table.num_buckets
            total_records = table.num_records
        seen_buckets = 0
        seen_records = 0
        for shard_id in range(4):
            lo, hi = manifest.bucket_range("LINEITEM", shard_id)
            with Catalog.discover(
                manifest.shard_path(shard_env.sharded[4], shard_id)
            ) as shard_catalog:
                shard_table = shard_catalog.table("LINEITEM")
                assert shard_table.num_buckets == hi - lo
                seen_buckets += shard_table.num_buckets
                seen_records += shard_table.num_records
        assert seen_buckets == total_buckets
        assert seen_records == total_records

    def test_bucket_contents_identical(self, shard_env):
        """Shard bucket b-lo is byte-for-byte source bucket b."""
        manifest = ShardManifest.load(shard_env.sharded[2])
        lo, hi = manifest.bucket_range("LINEITEM", 1)
        with Catalog.discover(shard_env.source) as source, Catalog.discover(
            manifest.shard_path(shard_env.sharded[2], 1)
        ) as shard_catalog:
            source_table = source.table("LINEITEM")
            shard_table = shard_catalog.table("LINEITEM")
            for bucket_no in (lo, (lo + hi) // 2, hi - 1):
                want = source_table.read_bucket(bucket_no)
                got = shard_table.read_bucket(bucket_no - lo)
                assert np.array_equal(want, got)

    def test_sma_files_are_slices(self, shard_env):
        """Shard SMA entry b-lo equals source SMA entry b for every def."""
        manifest = ShardManifest.load(shard_env.sharded[4])
        with Catalog.discover(shard_env.source) as source:
            source_set = source.sma_set("LINEITEM", "q1")
            for shard_id in range(4):
                lo, hi = manifest.bucket_range("LINEITEM", shard_id)
                with Catalog.discover(
                    manifest.shard_path(shard_env.sharded[4], shard_id)
                ) as shard_catalog:
                    shard_set = shard_catalog.sma_set("LINEITEM", "q1")
                    assert (
                        shard_set.definitions.keys()
                        == source_set.definitions.keys()
                    )
                    for name in source_set.definitions:
                        source_files = source_set.files_of(name)
                        shard_files = shard_set.files_of(name)
                        assert shard_files.keys() == source_files.keys()
                        for group_key, sma in source_files.items():
                            want = sma.values(charge=False)[lo:hi]
                            got = shard_files[group_key].values(charge=False)
                            assert np.array_equal(want, got)
