"""Fixtures for the sharded serving tier.

One session-scoped TPC-D LINEITEM catalog (SF=0.002, sorted, stock
``q1`` SMA set) is partitioned into 1-, 2- and 4-shard roots once;
tests open in-process :class:`ShardWorker` instances over the shard
catalogs (real sockets, real wire protocol — just no subprocess spawn)
and drive them through a real :class:`ShardRouter`.
"""

from __future__ import annotations

import contextlib
from types import SimpleNamespace

import pytest

from repro.shard.manifest import ShardManifest
from repro.shard.partitioner import shard_init
from repro.shard.router import ShardEndpoint, ShardRouter
from repro.shard.worker import ShardWorker
from repro.storage.catalog import Catalog

SHARD_COUNTS = (1, 2, 4)


@pytest.fixture(scope="session")
def shard_env(tmp_path_factory):
    """Source catalog dir + {num_shards: sharded_root} map (read-only)."""
    from repro.tpcd.loader import load_lineitem

    root = tmp_path_factory.mktemp("shard-env")
    source = root / "source"
    with Catalog(str(source), buffer_pages=8192) as catalog:
        load_lineitem(catalog, scale_factor=0.002, clustering="sorted")
    sharded = {}
    for num_shards in SHARD_COUNTS:
        out = root / f"sharded-{num_shards}"
        shard_init(str(source), str(out), num_shards)
        sharded[num_shards] = str(out)
    return SimpleNamespace(source=str(source), sharded=sharded)


@contextlib.contextmanager
def live_cluster(root: str, **router_kwargs):
    """In-process workers + a started router over the sharded *root*."""
    manifest = ShardManifest.load(root)
    workers = []
    router = None
    try:
        for shard_id in range(manifest.num_shards):
            worker = ShardWorker(
                shard_id, manifest.shard_path(root, shard_id), workers=2
            )
            workers.append(worker.start())
        endpoints = [
            ShardEndpoint(w.shard_id, w.host, w.port) for w in workers
        ]
        router = ShardRouter(
            endpoints, manifest=manifest, **router_kwargs
        ).start()
        yield SimpleNamespace(
            router=router, workers=workers, manifest=manifest
        )
    finally:
        if router is not None:
            router.shutdown(wait=True, cancel_pending=True)
        for worker in workers:
            worker.close()


@pytest.fixture
def cluster_factory():
    return live_cluster
