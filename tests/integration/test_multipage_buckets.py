"""Full-stack checks with buckets spanning multiple pages (Section 4's
bucket-size knob): build, grade, query, maintain."""

import datetime

import pytest

from repro.core import (
    SmaDefinition,
    SmaMaintainer,
    build_sma_set,
    count_star,
    maximum,
    minimum,
    total,
)
from repro.core.aggregates import average
from repro.lang import cmp, col
from repro.query.query import AggregateQuery, OutputAggregate
from repro.query.session import Session

from tests.conftest import BASE_DATE, SALES_SCHEMA, assert_rows_equal, sales_rows


@pytest.fixture(params=[2, 4])
def wide_env(request, catalog, tmp_path):
    ppb = request.param
    table = catalog.create_table(
        "SALES", SALES_SCHEMA, pages_per_bucket=ppb, clustered_on="ship"
    )
    table.append_rows(sales_rows(4000))
    definitions = [
        SmaDefinition("smin", "SALES", minimum(col("ship"))),
        SmaDefinition("smax", "SALES", maximum(col("ship"))),
        SmaDefinition("cnt", "SALES", count_star(), ("flag",)),
        SmaDefinition("sqty", "SALES", total(col("qty")), ("flag",)),
    ]
    sma_set, _ = build_sma_set(
        table, definitions, directory=str(tmp_path / f"smas{ppb}")
    )
    catalog.register_sma_set("SALES", sma_set)
    return catalog, table, sma_set, ppb


def mid(offset=40):
    return BASE_DATE + datetime.timedelta(days=offset)


class TestWideBuckets:
    def test_geometry(self, wide_env):
        _, table, sma_set, ppb = wide_env
        assert table.layout.pages_per_bucket == ppb
        assert table.num_pages == table.num_buckets * ppb
        for sma in sma_set.all_files():
            assert sma.num_entries == table.num_buckets

    def test_query_equivalence(self, wide_env):
        catalog, table, _, _ = wide_env
        session = Session(catalog)
        query = AggregateQuery(
            table="SALES",
            aggregates=(
                OutputAggregate("s", total(col("qty"))),
                OutputAggregate("a", average(col("qty"))),
                OutputAggregate("n", count_star()),
            ),
            where=cmp("ship", "<=", mid()),
            group_by=("flag",),
            order_by=("flag",),
        )
        sma = session.execute(query, mode="sma")
        scan = session.execute(query, mode="scan")
        assert_rows_equal(sma.rows, scan.rows)

    def test_bucket_fetch_charges_all_its_pages(self, wide_env):
        catalog, table, _, ppb = wide_env
        catalog.go_cold()
        catalog.reset_stats()
        table.read_bucket(0)
        assert catalog.stats.page_reads == ppb

    def test_grading_sound(self, wide_env):
        from tests.conftest import brute_force_partition_check

        _, table, sma_set, _ = wide_env
        brute_force_partition_check(table, sma_set, cmp("ship", "<=", mid()))

    def test_maintenance(self, wide_env):
        _, table, sma_set, _ = wide_env
        maintainer = SmaMaintainer(table, [sma_set])
        fresh = SALES_SCHEMA.batch_from_rows(
            [(90_000 + i, mid(300 + i // 20), 2.0, "A") for i in range(500)]
        )
        maintainer.insert(fresh)
        for name in ("cnt", "sqty"):
            for sma in sma_set.files_of(name).values():
                assert sma.num_entries == table.num_buckets
        everything = table.read_all()
        total_cnt = sum(
            sma.values(charge=False).sum()
            for sma in sma_set.files_of("cnt").values()
        )
        assert total_cnt == len(everything)
