"""Hypothesis end-to-end properties over the whole stack.

Random tables, random predicates, random DML — the invariants:

1. SMA_GAggr(query) == GAggr(query) for any covered query;
2. SMA grading stays sound after any DML sequence;
3. heap files round-trip any generated batch.
"""

import datetime

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import (
    SmaDefinition,
    SmaMaintainer,
    build_sma_set,
    count_star,
    maximum,
    minimum,
    total,
)
from repro.core.aggregates import average
from repro.lang import and_, cmp, col, or_
from repro.query.gaggr import GAggr
from repro.query.iterators import Filter, SeqScan
from repro.query.query import OutputAggregate
from repro.query.sma_gaggr import SmaGAggr
from repro.storage import Catalog, DATE, FLOAT64, INT32, Schema, char

from tests.conftest import assert_rows_equal

SCHEMA = Schema.of(
    ("k", INT32), ("d", DATE), ("v", FLOAT64), ("g", char(1))
)
BASE = datetime.date(1996, 1, 1)

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@st.composite
def random_rows(draw, max_rows=600):
    n = draw(st.integers(1, max_rows))
    seed = draw(st.integers(0, 2**31 - 1))
    sortedness = draw(st.sampled_from(["sorted", "noisy", "shuffled"]))
    rng = np.random.default_rng(seed)
    days = rng.integers(0, 120, size=n)
    if sortedness == "sorted":
        days = np.sort(days)
    elif sortedness == "noisy":
        days = np.sort(days) + rng.integers(-3, 4, size=n)
    return SCHEMA.batch_from_columns(
        k=np.arange(n, dtype=np.int32),
        d=days.astype(np.int32) + (BASE.toordinal() - datetime.date(1970, 1, 1).toordinal()),
        v=rng.integers(0, 50, size=n).astype(np.float64),
        g=rng.choice([b"A", b"B", b"C"], size=n).astype("S1"),
    )


@st.composite
def random_predicate(draw):
    def atom():
        column = draw(st.sampled_from(["d", "v"]))
        op = draw(st.sampled_from(["<", "<=", ">", ">=", "=", "<>"]))
        if column == "d":
            constant = BASE + datetime.timedelta(days=draw(st.integers(-5, 125)))
        else:
            constant = float(draw(st.integers(-2, 52)))
        return cmp(column, op, constant)

    shape = draw(st.sampled_from(["atom", "and", "or"]))
    if shape == "atom":
        return atom()
    if shape == "and":
        return and_(atom(), atom())
    return or_(atom(), atom())


def build_instance(tmp_path, rows, tag):
    catalog = Catalog(str(tmp_path / f"db-{tag}"), buffer_pages=512)
    table = catalog.create_table(f"T{tag}", SCHEMA)
    table.append_batch(rows)
    definitions = [
        SmaDefinition("dmin", table.name, minimum(col("d"))),
        SmaDefinition("dmax", table.name, maximum(col("d"))),
        SmaDefinition("vmin", table.name, minimum(col("v"))),
        SmaDefinition("vmax", table.name, maximum(col("v"))),
        SmaDefinition("cnt", table.name, count_star(), ("g",)),
        SmaDefinition("sv", table.name, total(col("v")), ("g",)),
    ]
    sma_set, _ = build_sma_set(
        table, definitions, directory=str(tmp_path / f"smas-{tag}")
    )
    return catalog, table, sma_set


AGGS = (
    OutputAggregate("s", total(col("v"))),
    OutputAggregate("a", average(col("v"))),
    OutputAggregate("n", count_star()),
)

_counter = [0]


@given(rows=random_rows(), predicate=random_predicate())
@SLOW
def test_sma_gaggr_equals_gaggr(tmp_path, rows, predicate):
    _counter[0] += 1
    catalog, table, sma_set = build_instance(tmp_path, rows, _counter[0])
    try:
        sma_columns, sma_rows = SmaGAggr(
            table, predicate, ("g",), AGGS, sma_set
        ).execute()
        scan_columns, scan_rows = GAggr(
            Filter(SeqScan(table), predicate), ("g",), AGGS
        ).execute()
        assert sma_columns == scan_columns
        assert_rows_equal(
            sorted(sma_rows, key=repr), sorted(scan_rows, key=repr), rel=1e-9
        )
    finally:
        catalog.close()


@given(
    rows=random_rows(max_rows=400),
    predicate=random_predicate(),
    dml_seed=st.integers(0, 2**31 - 1),
)
@SLOW
def test_grading_sound_after_random_dml(tmp_path, rows, predicate, dml_seed):
    _counter[0] += 1
    catalog, table, sma_set = build_instance(tmp_path, rows, _counter[0])
    try:
        maintainer = SmaMaintainer(table, [sma_set])
        rng = np.random.default_rng(dml_seed)
        for op in rng.choice(["insert", "update", "delete"], size=3):
            if op == "insert":
                extra = rows[rng.permutation(len(rows))][: max(len(rows) // 4, 1)]
                maintainer.insert(extra.copy())
            elif op == "update":
                maintainer.update_where(
                    cmp("v", "<=", float(rng.integers(0, 50))),
                    {"v": float(rng.integers(0, 50))},
                )
            else:
                maintainer.delete_where(
                    cmp("v", "=", float(rng.integers(0, 50)))
                )
        bound = predicate.bind(table.schema)
        partitioning = sma_set.partition(bound, charge=False)
        for bucket_no in range(table.num_buckets):
            records = table.read_bucket(bucket_no)
            satisfied = bound.evaluate(records)
            if partitioning.qualifying[bucket_no]:
                assert len(records) and bool(satisfied.all())
            if partitioning.disqualifying[bucket_no]:
                assert not bool(satisfied.any())
    finally:
        catalog.close()


@given(rows=random_rows())
@SLOW
def test_heapfile_roundtrip_any_batch(tmp_path, rows):
    _counter[0] += 1
    catalog = Catalog(str(tmp_path / f"hf-{_counter[0]}"), buffer_pages=64)
    try:
        table = catalog.create_table(f"R{_counter[0]}", SCHEMA)
        table.append_batch(rows)
        np.testing.assert_array_equal(table.read_all(), rows)
        catalog.go_cold()
        np.testing.assert_array_equal(table.read_all(), rows)
    finally:
        catalog.close()
