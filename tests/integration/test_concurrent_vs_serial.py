"""Integration smoke test: concurrent serving matches serial execution.

ISSUE satellite: fire at least 16 queries across at least 4 worker
threads against the shared LINEITEM catalog and assert every result is
identical to running the same query serially through a plain Session —
same rows, same columns.  Also closes the accounting loop end-to-end:
the per-query I/O windows the service hands back must sum to the buffer
pool's cumulative hit/miss growth over the concurrent phase.
"""

from repro.query.session import Session, assert_same_result
from repro.server import QueryService, WorkloadDriver, default_mix


CLIENTS = 4
QUERIES_PER_CLIENT = 5  # 20 queries >= the 16-query floor


class TestConcurrentMatchesSerial:
    def test_workload_rows_identical_to_serial(self, lineitem_env):
        catalog, _ = lineitem_env
        catalog.reset_stats()
        mix = default_mix()
        serial = Session(catalog)
        reference = {
            entry.name: serial.execute(entry.query) for entry in mix
        }

        before = catalog.pool.counters()
        with QueryService(catalog, workers=4, queue_depth=64) as service:
            driver = WorkloadDriver(service, mix)
            result = driver.run_closed_loop(
                clients=CLIENTS,
                queries_per_client=QUERIES_PER_CLIENT,
                keep_results=True,
            )
        delta = catalog.pool.counters() - before

        assert result.total == CLIENTS * QUERIES_PER_CLIENT
        assert result.completed == result.total
        assert result.failed == result.rejected == result.timed_out == 0

        # Byte-identical results: exact tuple equality, no float tolerance.
        for outcome in result.outcomes:
            assert outcome.result is not None, outcome
            assert_same_result(outcome.result, reference[outcome.name])

        # Per-query windows partition the pool's cumulative counters.
        windows = [o.result.stats for o in result.outcomes]
        assert sum(w.buffer_hits for w in windows) == delta.hits
        assert sum(w.page_reads for w in windows) == delta.misses

    def test_sixteen_queries_share_warm_pool(self, lineitem_env):
        catalog, _ = lineitem_env
        catalog.reset_stats()
        mix = default_mix()
        with QueryService(catalog, workers=4, queue_depth=64) as service:
            driver = WorkloadDriver(service, mix)
            driver.run_closed_loop(clients=4, queries_per_client=1)  # warm
            result = driver.run_closed_loop(clients=4, queries_per_client=4)
        assert result.completed == 16
        snapshot = service.metrics.snapshot()
        assert snapshot["queries"]["completed"] == 20
        # Warmed pool: the repeat queries hit the buffer, and SMA grading
        # still skips buckets under concurrency.
        assert snapshot["io"]["buffer_hit_rate"] > 0.5
        assert snapshot["io"]["buckets_skipped"] > 0
        assert snapshot["latency_s"]["overall"]["count"] == 20
