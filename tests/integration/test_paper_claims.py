"""The paper's headline claims, asserted against the running system.

One test per quotable sentence of the paper, so a reviewer can map
claims to checks directly.
"""

import pytest

from repro.query.session import Session
from repro.tpcd.queries import query1


class TestSection21Claims:
    def test_26_sma_files_for_query1(self, lineitem_env):
        """'As a total there will be 26 SMA-files' (Section 2.3)."""
        _, loaded = lineitem_env
        assert loaded.sma_set.num_files == 26

    def test_sma_file_is_about_a_thousandth(self, lineitem_env):
        """'the size of a single SMA-file is only 1/1000th of the size
        of the original data' (Section 2.1)."""
        _, loaded = lineitem_env
        min_file = loaded.sma_set.files_of("min")[()]
        ratio = min_file.size_bytes / loaded.table.size_bytes
        assert ratio == pytest.approx(1 / 1024, rel=0.2)

    def test_all_smas_cost_a_few_percent(self, lineitem_env):
        """'the accumulated size of all SMAs is only about 4% of the
        total space' (Section 2.4)."""
        _, loaded = lineitem_env
        fraction = loaded.sma_set.total_bytes / loaded.table.size_bytes
        assert 0.02 <= fraction <= 0.08

    def test_bulkload_writes_are_tiny(self, lineitem_env):
        """'only one page access is needed for 1000 pages of tuples'
        (Section 2.1) — SMA pages written per data page scanned."""
        _, loaded = lineitem_env
        sma_pages_written = loaded.sma_set.total_pages
        data_pages_scanned = loaded.table.num_pages
        assert sma_pages_written / data_pages_scanned < 0.1


class TestSection24Claims:
    def test_two_orders_of_magnitude(self, lineitem_env):
        """'Processing Query 1 with SMAs becomes two orders of magnitude
        faster!' — measured on the simulated 1998 clock."""
        catalog, _ = lineitem_env
        session = Session(catalog)
        scan = session.execute(query1(), mode="scan", cold=True)
        session.execute(query1(), mode="sma", cold=True)
        warm = session.execute(query1(), mode="sma")
        assert scan.simulated_seconds / warm.simulated_seconds > 25

    def test_qualifying_answered_from_smas_alone(self, lineitem_env):
        """Qualifying buckets never touch the base relation."""
        catalog, loaded = lineitem_env
        session = Session(catalog)
        result = session.execute(query1(), mode="sma", cold=True)
        assert result.stats.buckets_fetched < loaded.table.num_buckets * 0.02


class TestSection3Claims:
    def test_versatility_same_smas_other_queries(self, lineitem_env):
        """'If another query with restrictions on any of the attributes
        aggregated in some SMA occurs, the SMA can be used' — the Q1 SMA
        set serves a different query unmodified."""
        import datetime

        from repro.core.aggregates import count_star, total
        from repro.lang import and_, cmp, col
        from repro.query.query import AggregateQuery, OutputAggregate

        catalog, _ = lineitem_env
        session = Session(catalog)
        other = AggregateQuery(
            table="LINEITEM",
            aggregates=(
                OutputAggregate("q", total(col("L_QUANTITY"))),
                OutputAggregate("n", count_star()),
            ),
            where=and_(
                cmp("L_SHIPDATE", ">=", datetime.date(1994, 1, 1)),
                cmp("L_SHIPDATE", "<", datetime.date(1995, 1, 1)),
            ),
            group_by=("L_RETURNFLAG", "L_LINESTATUS"),
        )
        sma = session.execute(other, mode="sma", cold=True)
        scan = session.execute(other, mode="scan", cold=True)
        from tests.conftest import assert_rows_equal

        assert_rows_equal(sma.rows, scan.rows)
        assert sma.simulated_seconds < scan.simulated_seconds

    def test_data_cube_cannot_serve_unforeseen_selection(self, lineitem_env):
        """Cubes are inflexible (Section 1/2.3): an additional selection
        attribute breaks them while SMAs keep working."""
        from repro.baselines.datacube import CubeMissError, DataCube
        from repro.core.aggregates import count_star
        from repro.query.query import OutputAggregate

        _, loaded = lineitem_env
        cube = DataCube.build(
            loaded.table,
            ("L_RETURNFLAG", "L_LINESTATUS"),
            (OutputAggregate("n", count_star()),),
        )
        with pytest.raises(CubeMissError):
            cube.query(
                ("L_RETURNFLAG",), slice_equals={"L_SHIPDATE": 0}
            )
