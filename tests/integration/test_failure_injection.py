"""Failure injection: corrupted/truncated files and stale SMAs must fail
loudly, never silently return wrong data."""

import json
import os

import numpy as np
import pytest

from repro.core import SmaSet
from repro.core.sma_file import SmaFile
from repro.errors import SmaStateError, StorageError
from repro.lang import cmp
from repro.storage import BufferPool, Catalog, HeapFile

from tests.conftest import BASE_DATE, SALES_SCHEMA, sales_rows


class TestTruncatedHeapFile:
    def test_short_page_read_raises(self, tmp_path):
        pool = BufferPool(capacity_pages=16)
        path = str(tmp_path / "t.heap")
        heap = HeapFile.create(path, SALES_SCHEMA, pool)
        heap.append_rows(sales_rows(500))
        heap.close()

        # Chop the data file mid-page.
        size = os.path.getsize(path)
        with open(path, "r+b") as f:
            f.truncate(size - 100)

        reopened = HeapFile.open(path, BufferPool(capacity_pages=16))
        with pytest.raises(StorageError, match="short read"):
            reopened.read_bucket(reopened.num_buckets - 1)
        # Public idempotent lifecycle: no poking at private handles.
        reopened.close()
        reopened.close()
        assert reopened.closed


class TestCorruptSidecars:
    def test_missing_counts_sidecar(self, tmp_path):
        pool = BufferPool(capacity_pages=16)
        path = str(tmp_path / "t.heap")
        heap = HeapFile.create(path, SALES_SCHEMA, pool)
        heap.append_rows(sales_rows(100))
        heap.close()
        os.remove(path + ".counts.npy")
        with pytest.raises(FileNotFoundError):
            HeapFile.open(path, pool)

    def test_garbled_sma_meta(self, tmp_path):
        pool = BufferPool(capacity_pages=16)
        sma = SmaFile.build(
            str(tmp_path / "x.sma"), np.arange(8, dtype="<i4"), pool
        )
        with open(sma.path + ".meta.json", "w", encoding="utf-8") as f:
            f.write("{not json")
        with pytest.raises(json.JSONDecodeError):
            SmaFile.open(sma.path, pool)

    def test_sma_set_for_renamed_table(self, catalog, sales_table, sales_sma_set):
        other = catalog.create_table("IMPOSTOR", sales_table.schema)
        from repro.errors import CatalogError

        with pytest.raises(CatalogError):
            SmaSet.open(sales_sma_set.directory, other)


class TestStaleSmaDetection:
    def test_refine_conflict_surfaces_stale_files(
        self, catalog, sales_table, sales_sma_set
    ):
        """Two sources of truth that disagree mean an SMA is stale; the
        partitioning algebra must refuse rather than guess."""
        import datetime

        # Falsify the ungrouped max file so it contradicts the count
        # SMA... simpler: grouped vs ungrouped bounds.  Directly corrupt
        # min so min > max and grade both directions.
        min_file = sales_sma_set.files_of("smin")[()]
        max_file = sales_sma_set.files_of("smax")[()]
        true_max = max_file.values(charge=False)[0]
        min_file.set_entry(0, true_max + 10_000)  # min beyond max: stale

        predicate = cmp(
            "ship", "<=", BASE_DATE + datetime.timedelta(days=5)
        ).bind(sales_table.schema)
        with pytest.raises(
            SmaStateError, match="qualify and disqualify|out of sync"
        ):
            # Bucket 0 now "qualifies" via max and "disqualifies" via
            # the corrupted min — the contradiction is detected at
            # partition construction (or at refine, depending on which
            # SMA source surfaces it first).
            sales_sma_set.partition(predicate, charge=False)

    def test_entry_count_mismatch_detected(self, catalog, sales_table, tmp_path):
        """An SMA-file with the wrong number of entries cannot grade."""
        short = SmaFile.build(
            str(tmp_path / "short.sma"),
            np.zeros(3, dtype="<i4"),
            catalog.pool,
        )
        from repro.core.grade import partition_column_const
        from repro.lang.predicate import CmpOp

        with pytest.raises(SmaStateError):
            partition_column_const(
                CmpOp.LE, 5, sales_table.num_buckets,
                mins=short.values(charge=False),
            )


class TestDiscoveryRobustness:
    def test_manifest_pointing_at_missing_table(self, tmp_path):
        root = str(tmp_path / "db")
        with Catalog(root) as catalog:
            catalog.create_table("T", SALES_SCHEMA)
        os.remove(os.path.join(root, "T.heap"))
        from repro.errors import CatalogError

        with pytest.raises(CatalogError, match="no heap file"):
            Catalog.discover(root)
