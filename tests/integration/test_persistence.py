"""Cross-'process' persistence: reopen a catalog and its SMA sets."""

import numpy as np

from repro.core.sma_set import SmaSet
from repro.query.session import Session
from repro.storage import Catalog
from repro.tpcd.loader import load_lineitem
from repro.tpcd.queries import query1

from tests.conftest import assert_rows_equal


class TestReopen:
    def test_table_and_smas_survive(self, tmp_path):
        root = str(tmp_path / "db")
        with Catalog(root) as catalog:
            loaded = load_lineitem(catalog, scale_factor=0.002)
            original_rows = Session(catalog).execute(query1(), mode="sma").rows
            sma_dir = loaded.sma_set.directory
            records = loaded.table.num_records

        # A "new process": fresh catalog object over the same directory.
        with Catalog(root) as reopened:
            table = reopened.open_table("LINEITEM", clustered_on="L_SHIPDATE")
            assert table.num_records == records
            sma_set = SmaSet.open(sma_dir, table)
            reopened.register_sma_set("LINEITEM", sma_set)
            rows = Session(reopened).execute(query1(), mode="sma").rows
            assert_rows_equal(rows, original_rows)

    def test_data_identical_after_reopen(self, tmp_path):
        root = str(tmp_path / "db")
        with Catalog(root) as catalog:
            loaded = load_lineitem(
                catalog, scale_factor=0.002, build_smas=False
            )
            before = loaded.table.read_all().copy()
        with Catalog(root) as reopened:
            after = reopened.open_table("LINEITEM").read_all()
            np.testing.assert_array_equal(before, after)

    def test_sma_files_bitwise_stable(self, tmp_path):
        root = str(tmp_path / "db")
        with Catalog(root) as catalog:
            loaded = load_lineitem(catalog, scale_factor=0.002)
            values_before = {
                (name, key): sma.values(charge=False).copy()
                for name in loaded.sma_set.definitions
                for key, sma in loaded.sma_set.files_of(name).items()
            }
            sma_dir = loaded.sma_set.directory
        with Catalog(root) as reopened:
            table = reopened.open_table("LINEITEM")
            sma_set = SmaSet.open(sma_dir, table)
            for (name, key), before in values_before.items():
                after = sma_set.files_of(name)[key].values(charge=False)
                np.testing.assert_array_equal(before, after)
