"""End-to-end A θ B grading: a late-delivery workload over two date
columns of LINEITEM (the fourth atomic form of Section 3.1)."""

import numpy as np
import pytest

from repro.core import SmaDefinition, build_sma_set, maximum, minimum
from repro.lang import cmp, col
from repro.query.iterators import Filter, SeqScan, SmaScan
from repro.query.query import ScanQuery
from repro.query.session import Session
from repro.tpcd.loader import load_lineitem


@pytest.fixture(scope="module")
def env(tmp_path_factory):
    from repro.storage import Catalog

    root = tmp_path_factory.mktemp("ab-db")
    catalog = Catalog(str(root), buffer_pages=4096)
    loaded = load_lineitem(
        catalog, scale_factor=0.003, clustering="sorted", build_smas=False
    )
    definitions = [
        SmaDefinition("cmin", "LINEITEM", minimum(col("L_COMMITDATE"))),
        SmaDefinition("cmax", "LINEITEM", maximum(col("L_COMMITDATE"))),
        SmaDefinition("rmin", "LINEITEM", minimum(col("L_RECEIPTDATE"))),
        SmaDefinition("rmax", "LINEITEM", maximum(col("L_RECEIPTDATE"))),
        SmaDefinition("smin", "LINEITEM", minimum(col("L_SHIPDATE"))),
        SmaDefinition("smax", "LINEITEM", maximum(col("L_SHIPDATE"))),
    ]
    sma_set, _ = build_sma_set(
        loaded.table, definitions, directory=str(root / "dates"), name="dates"
    )
    catalog.register_sma_set("LINEITEM", sma_set)
    yield catalog, loaded.table, sma_set
    catalog.close()


LATE = cmp("L_RECEIPTDATE", ">", col("L_COMMITDATE"))
IMPOSSIBLE = cmp("L_RECEIPTDATE", "<=", col("L_SHIPDATE"))


class TestGrading:
    def test_soundness(self, env):
        catalog, table, sma_set = env
        bound = LATE.bind(table.schema)
        partitioning = sma_set.partition(bound, charge=False)
        for bucket_no in range(table.num_buckets):
            records = table.read_bucket(bucket_no)
            satisfied = bound.evaluate(records)
            if partitioning.qualifying[bucket_no]:
                assert bool(satisfied.all())
            if partitioning.disqualifying[bucket_no]:
                assert not bool(satisfied.any())

    def test_impossible_condition_heavily_pruned(self, env):
        """Receipt <= ship never holds (dbgen enforces receipt > ship):
        buckets whose receipt range clears the ship range disqualify
        wholesale."""
        catalog, table, sma_set = env
        bound = IMPOSSIBLE.bind(table.schema)
        partitioning = sma_set.partition(bound, charge=False)
        assert partitioning.num_qualifying == 0
        assert partitioning.num_disqualifying > 0


class TestExecution:
    def test_sma_scan_equals_filtered_scan(self, env):
        catalog, table, sma_set = env
        via_sma = np.concatenate(
            list(SmaScan(table, LATE, sma_set).batches())
        )
        via_scan = np.concatenate(
            list(Filter(SeqScan(table), LATE).batches())
        )
        assert len(via_sma) == len(via_scan)
        np.testing.assert_array_equal(
            np.sort(via_sma["L_ORDERKEY"]), np.sort(via_scan["L_ORDERKEY"])
        )

    def test_planner_handles_column_column(self, env):
        catalog, table, sma_set = env
        session = Session(catalog)
        query = ScanQuery("LINEITEM", where=IMPOSSIBLE, columns=("L_ORDERKEY",))
        result = session.execute(query)
        assert result.rows == []

    def test_every_late_row_is_actually_late(self, env):
        catalog, table, sma_set = env
        matched = np.concatenate(
            list(SmaScan(table, LATE, sma_set).batches())
        )
        assert (matched["L_RECEIPTDATE"] > matched["L_COMMITDATE"]).all()
