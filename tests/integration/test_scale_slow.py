"""Opt-in larger-scale smoke run (set REPRO_SLOW=1 to enable).

The regular suite runs at SF ≤ 0.05 for speed; this module repeats the
headline checks at SF = 0.1 (~600k tuples, ~73 MB LINEITEM) to guard
against anything that only breaks at scale (int32 overflows, buffer
thrash, quadratic loops).
"""

import os

import pytest

from repro.query.session import Session
from repro.storage import Catalog
from repro.tpcd.loader import load_lineitem
from repro.tpcd.queries import query1

from tests.conftest import assert_rows_equal

pytestmark = pytest.mark.skipif(
    not os.environ.get("REPRO_SLOW"),
    reason="set REPRO_SLOW=1 to run the SF=0.1 scale smoke tests",
)


@pytest.fixture(scope="module")
def big_env(tmp_path_factory):
    root = tmp_path_factory.mktemp("big-db")
    catalog = Catalog(str(root), buffer_pages=2048)
    loaded = load_lineitem(catalog, scale_factor=0.1, clustering="sorted")
    yield catalog, loaded
    catalog.close()


class TestAtScale:
    def test_query1_equivalence(self, big_env):
        catalog, _ = big_env
        session = Session(catalog)
        sma = session.execute(query1(), mode="sma", cold=True)
        scan = session.execute(query1(), mode="scan", cold=True)
        assert_rows_equal(sma.rows, scan.rows)

    def test_speedup_holds(self, big_env):
        catalog, _ = big_env
        session = Session(catalog)
        scan = session.execute(query1(), mode="scan", cold=True)
        session.execute(query1(), mode="sma", cold=True)
        warm = session.execute(query1(), mode="sma")
        assert scan.simulated_seconds / warm.simulated_seconds > 40

    def test_space_fraction_converges_to_paper(self, big_env):
        _, loaded = big_env
        fraction = loaded.sma_set.total_bytes / loaded.table.size_bytes
        assert abs(fraction - 0.046) < 0.01  # paper: 4.6%

    def test_sums_do_not_overflow(self, big_env):
        catalog, _ = big_env
        session = Session(catalog)
        result = session.execute(query1(delta=-2000), mode="sma")
        for row in result.rows:
            assert row[2] > 0  # SUM_QTY stays positive/finite
