"""Parallel scans must be byte-identical to serial execution (ISSUE PR 2).

Acceptance criterion: a 4-worker morsel-parallel scan produces results
byte-identical to serial execution for Query 1 and the baseline queries,
across every plan shape (plain GAggr, SMA_GAggr, seq scan, SMA scan).
Also closes the accounting loop: with intra-query parallelism on, the
per-query windows (now containing merged morsel-worker charges) still
partition the buffer pool's cumulative counters.
"""

import pytest

from repro.query.session import Session, assert_same_result
from repro.server import QueryService, WorkloadDriver, default_mix

QUERY_1 = (
    "SELECT L_RETURNFLAG, L_LINESTATUS, "
    "SUM(L_QUANTITY) AS SUM_QTY, "
    "SUM(L_EXTENDEDPRICE) AS SUM_BASE_PRICE, "
    "AVG(L_QUANTITY) AS AVG_QTY, "
    "AVG(L_EXTENDEDPRICE) AS AVG_PRICE, "
    "AVG(L_DISCOUNT) AS AVG_DISC, "
    "COUNT(*) AS COUNT_ORDER "
    "FROM LINEITEM WHERE L_SHIPDATE <= DATE '1998-09-02' "
    "GROUP BY L_RETURNFLAG, L_LINESTATUS "
    "ORDER BY L_RETURNFLAG, L_LINESTATUS"
)

RANGE_SCAN = (
    "SELECT L_ORDERKEY, L_QUANTITY, L_SHIPDATE FROM LINEITEM "
    "WHERE L_SHIPDATE >= DATE '1998-06-01'"
)


class TestParallelMatchesSerial:
    @pytest.mark.parametrize("mode", ["auto", "sma", "scan"])
    def test_query1_identical_at_four_workers(self, lineitem_env, mode):
        catalog, _ = lineitem_env
        catalog.reset_stats()
        serial = Session(catalog)
        parallel = Session(catalog, scan_workers=4)
        expected = serial.sql(QUERY_1, mode=mode)
        actual = parallel.sql(QUERY_1, mode=mode)
        # Same plan family chosen, then byte-identical rows.
        assert actual.plan.strategy == expected.plan.strategy
        assert_same_result(actual, expected)

    @pytest.mark.parametrize("mode", ["auto", "scan"])
    def test_range_scan_identical_at_four_workers(self, lineitem_env, mode):
        catalog, _ = lineitem_env
        catalog.reset_stats()
        serial = Session(catalog)
        parallel = Session(catalog, scan_workers=4)
        expected = serial.sql(RANGE_SCAN, mode=mode)
        actual = parallel.sql(RANGE_SCAN, mode=mode)
        assert len(expected.rows) > 0  # the comparison must not be vacuous
        assert_same_result(actual, expected)

    @pytest.mark.parametrize("workers", [2, 8])
    def test_worker_count_never_changes_query1(self, lineitem_env, workers):
        catalog, _ = lineitem_env
        catalog.reset_stats()
        expected = Session(catalog).sql(QUERY_1)
        actual = Session(catalog, scan_workers=workers).sql(QUERY_1)
        assert_same_result(actual, expected)

    def test_tiny_morsels_identical(self, lineitem_env):
        catalog, _ = lineitem_env
        catalog.reset_stats()
        expected = Session(catalog).sql(QUERY_1, mode="scan")
        actual = Session(catalog, scan_workers=4, morsel_buckets=1).sql(
            QUERY_1, mode="scan"
        )
        assert_same_result(actual, expected)

    def test_parallel_accounting_matches_serial_totals(self, lineitem_env):
        """Morsel workers charge the same logical I/O a serial scan
        would: equal buckets fetched, tuples scanned and total page
        accesses (hits + physical reads) on a warm pool."""
        catalog, _ = lineitem_env
        catalog.reset_stats()
        serial = Session(catalog)
        parallel = Session(catalog, scan_workers=4)
        serial.sql(QUERY_1, mode="scan")  # warm the pool
        expected = serial.sql(QUERY_1, mode="scan")
        actual = parallel.sql(QUERY_1, mode="scan")
        assert actual.stats.buckets_fetched == expected.stats.buckets_fetched
        assert actual.stats.tuples_scanned == expected.stats.tuples_scanned
        total = lambda s: s.buffer_hits + s.page_reads  # noqa: E731
        assert total(actual.stats) == total(expected.stats)


class TestParallelServiceAccounting:
    def test_windows_partition_counters_with_scan_workers(self, lineitem_env):
        """Inter-query (4 service workers) x intra-query (4 scan
        workers) concurrency: every query's window still partitions the
        pool's cumulative hit/miss growth exactly."""
        catalog, _ = lineitem_env
        catalog.reset_stats()
        mix = default_mix()
        reference = {
            entry.name: Session(catalog).execute(entry.query) for entry in mix
        }

        before = catalog.pool.counters()
        with QueryService(
            catalog, workers=4, queue_depth=64, scan_workers=4
        ) as service:
            driver = WorkloadDriver(service, mix)
            result = driver.run_closed_loop(
                clients=4, queries_per_client=4, keep_results=True
            )
        delta = catalog.pool.counters() - before

        assert result.completed == result.total == 16
        assert result.failed == result.rejected == result.timed_out == 0
        for outcome in result.outcomes:
            assert outcome.result is not None, outcome
            assert_same_result(outcome.result, reference[outcome.name])

        windows = [o.result.stats for o in result.outcomes]
        assert sum(w.buffer_hits for w in windows) == delta.hits
        assert sum(w.page_reads for w in windows) == delta.misses
