"""Tests for the command-line interface and catalog discovery."""

import pytest

from repro.cli import main
from repro.storage import Catalog


@pytest.fixture
def db(tmp_path):
    return str(tmp_path / "clidb")


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestLoad:
    def test_load_default(self, db, capsys):
        code, out, _ = run(capsys, "load", "--db", db, "--sf", "0.002")
        assert code == 0
        assert "loaded LINEITEM" in out
        assert "26 files" in out

    def test_load_refuses_twice(self, db, capsys):
        run(capsys, "load", "--db", db, "--sf", "0.002")
        code, _, err = run(capsys, "load", "--db", db, "--sf", "0.002")
        assert code == 1
        assert "already contains" in err

    def test_load_specific_tables(self, db, capsys):
        code, out, _ = run(
            capsys, "load", "--db", db, "--sf", "0.002",
            "--tables", "NATION,REGION",
        )
        assert code == 0
        assert "NATION" in out and "REGION" in out


class TestQuery:
    @pytest.fixture
    def loaded(self, db, capsys):
        run(capsys, "load", "--db", db, "--sf", "0.002")
        return db

    def test_query_auto(self, loaded, capsys):
        code, out, _ = run(
            capsys, "query", "--db", loaded,
            "SELECT COUNT(*) AS n FROM LINEITEM "
            "WHERE L_SHIPDATE <= DATE '1998-12-01'",
        )
        assert code == 0
        assert "strategy:" in out
        assert "page reads" in out

    def test_query_forced_scan(self, loaded, capsys):
        code, out, _ = run(
            capsys, "query", "--db", loaded, "--mode", "scan",
            "SELECT COUNT(*) AS n FROM LINEITEM",
        )
        assert code == 0
        assert "gaggr" in out

    def test_query_results_match_across_modes(self, loaded, capsys):
        sql = (
            "SELECT L_RETURNFLAG, COUNT(*) AS n FROM LINEITEM "
            "WHERE L_SHIPDATE <= DATE '1995-06-17' "
            "GROUP BY L_RETURNFLAG ORDER BY L_RETURNFLAG"
        )
        _, out_sma, _ = run(capsys, "query", "--db", loaded, "--mode", "sma", sql)
        _, out_scan, _ = run(capsys, "query", "--db", loaded, "--mode", "scan", sql)
        rows_of = lambda text: [  # noqa: E731
            line for line in text.splitlines() if line.startswith(("A", "N", "R"))
        ]
        assert rows_of(out_sma) == rows_of(out_scan)


class TestExplain:
    @pytest.fixture
    def loaded(self, db, capsys):
        run(capsys, "load", "--db", db, "--sf", "0.002")
        return db

    SQL = (
        "SELECT L_RETURNFLAG, COUNT(*) AS n FROM LINEITEM "
        "WHERE L_SHIPDATE <= DATE '1998-09-02' GROUP BY L_RETURNFLAG"
    )

    def test_explain_prints_full_plan(self, loaded, capsys):
        code, out, _ = run(capsys, "explain", "--db", loaded, self.SQL)
        assert code == 0
        assert "physical plan:" in out
        assert "strategy:" in out
        assert "alternatives:" in out
        assert "estimated cost:" in out

    def test_explain_prefix_accepted(self, loaded, capsys):
        code, out, _ = run(
            capsys, "explain", "--db", loaded, "EXPLAIN " + self.SQL
        )
        assert code == 0
        assert "physical plan:" in out

    def test_explain_forced_scan(self, loaded, capsys):
        code, out, _ = run(
            capsys, "explain", "--db", loaded, "--mode", "scan", self.SQL
        )
        assert code == 0
        assert "forced by caller" in out

    def test_explain_rejects_non_select(self, loaded, capsys):
        code, _, err = run(
            capsys, "explain", "--db", loaded,
            "define sma x select min(L_QUANTITY) from LINEITEM",
        )
        assert code == 1
        assert "SELECT" in err

    def test_query_subcommand_handles_explain_sql(self, loaded, capsys):
        # "repro query" with an EXPLAIN statement plans without running.
        code, out, _ = run(
            capsys, "query", "--db", loaded, "EXPLAIN " + self.SQL
        )
        assert code == 0
        assert "QUERY PLAN" in out
        assert "physical plan:" in out


class TestTrace:
    @pytest.fixture
    def loaded(self, db, capsys):
        run(capsys, "load", "--db", db, "--sf", "0.002")
        return db

    SQL = (
        "SELECT L_RETURNFLAG, COUNT(*) AS n FROM LINEITEM "
        "WHERE L_SHIPDATE <= DATE '1998-09-02' GROUP BY L_RETURNFLAG"
    )

    def test_trace_prints_tree_and_reconciles(self, loaded, capsys):
        code, out, _ = run(capsys, "trace", "--db", loaded, self.SQL)
        assert code == 0
        assert out.startswith("execute")
        for name in ("plan", "grade", "cost_access_path", "run"):
            assert name in out
        assert "io reconciliation:" in out
        assert "-> exact" in out
        assert "MISMATCH" not in out

    def test_trace_parallel_scan_reconciles(self, loaded, capsys):
        code, out, _ = run(
            capsys, "trace", "--db", loaded, "--mode", "scan",
            "--scan-workers", "4", self.SQL,
        )
        assert code == 0
        assert "scan_morsel" in out
        assert "-> exact" in out

    def test_trace_serve_events(self, loaded, capsys, tmp_path):
        import json

        path = str(tmp_path / "events.jsonl")
        code, out, _ = run(
            capsys, "serve", "--db", loaded, "--workers", "2",
            "--clients", "2", "--queries", "6", "--trace-file", path,
            "--report",
        )
        assert code == 0
        assert "trace events:" in out
        events = [json.loads(line) for line in open(path, encoding="utf-8")]
        kinds = {event["event"] for event in events}
        assert {"server_start", "query_start", "trace",
                "query_finish", "server_stop"} <= kinds
        # the report grew the uptime header and per-kind outcome lines
        assert "service: started" in out
        assert "completed" in out


class TestDefineAndInfo:
    def test_define_inline(self, db, capsys):
        run(capsys, "load", "--db", db, "--sf", "0.002")
        code, out, _ = run(
            capsys, "define", "--db", db, "--set", "bounds",
            "--sql", "define sma qlo select min(L_QUANTITY) from LINEITEM",
        )
        assert code == 0
        assert "built sma qlo" in out

    def test_define_from_file(self, db, tmp_path, capsys):
        run(capsys, "load", "--db", db, "--sf", "0.002")
        script = tmp_path / "defs.sql"
        script.write_text(
            "define sma qhi select max(L_QUANTITY) from LINEITEM;"
        )
        code, out, _ = run(
            capsys, "define", "--db", db, "--set", "b2", "--file", str(script)
        )
        assert code == 0
        assert "qhi" in out

    def test_define_needs_exactly_one_source(self, db, capsys):
        run(capsys, "load", "--db", db, "--sf", "0.002")
        code, _, err = run(capsys, "define", "--db", db)
        assert code == 1
        assert "exactly one" in err

    def test_info_lists_everything(self, db, capsys):
        run(capsys, "load", "--db", db, "--sf", "0.002")
        code, out, _ = run(capsys, "info", "--db", db)
        assert code == 0
        assert "table LINEITEM" in out
        assert "sma set 'q1'" in out
        assert "define" not in out  # rendered as one-liners, not SQL


class TestBenchFilter:
    def test_unknown_id_errors(self, capsys):
        code, _, err = run(capsys, "bench", "--only", "E99")
        assert code == 1
        assert "no experiment matches" in err

    def test_single_cheap_experiment(self, capsys):
        code, out, _ = run(capsys, "bench", "--only", "E5")
        assert code == 0
        assert "E5" in out

    def test_bench_out_writes_file(self, tmp_path, capsys):
        target = tmp_path / "results.txt"
        code, out, _ = run(
            capsys, "bench", "--only", "E5", "--out", str(target)
        )
        assert code == 0
        assert "wrote 1 experiment" in out
        assert "E5" in target.read_text()


class TestDiscovery:
    def test_discover_restores_tables_and_sets(self, db, capsys):
        run(capsys, "load", "--db", db, "--sf", "0.002")
        catalog = Catalog.discover(db)
        assert catalog.has_table("LINEITEM")
        assert catalog.sma_set("LINEITEM", "q1").num_files == 26
        assert catalog.table("LINEITEM").clustered_on == "L_SHIPDATE"
        catalog.close()

    def test_discover_empty_directory(self, tmp_path):
        catalog = Catalog.discover(str(tmp_path / "fresh"))
        assert list(catalog.tables()) == []
        catalog.close()
