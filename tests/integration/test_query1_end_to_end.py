"""End-to-end Query 1: full pipeline, all three plans, result equality."""

import pytest

from repro.query.session import Session
from repro.tpcd.queries import query1

from tests.conftest import assert_rows_equal


@pytest.fixture
def session(lineitem_env):
    catalog, _ = lineitem_env
    return Session(catalog)


class TestResults:
    def test_four_groups(self, session):
        result = session.execute(query1(), mode="sma")
        assert len(result.rows) == 4
        flags = [(row[0], row[1]) for row in result.rows]
        assert flags == sorted(flags)  # ORDER BY respected

    def test_sma_equals_scan(self, session):
        sma = session.execute(query1(), mode="sma", cold=True)
        scan = session.execute(query1(), mode="scan", cold=True)
        assert sma.columns == scan.columns
        assert_rows_equal(sma.rows, scan.rows, rel=1e-9)

    def test_auto_mode_picks_sma_and_matches(self, session):
        auto = session.execute(query1(), cold=True)
        assert auto.plan.strategy == "sma_gaggr"
        forced = session.execute(query1(), mode="sma", cold=True)
        assert_rows_equal(auto.rows, forced.rows)

    def test_counts_add_up(self, session, lineitem_env):
        _, loaded = lineitem_env
        result = session.execute(query1(delta=-2000), mode="sma")
        # With a cutoff beyond every shipdate, the whole relation counts.
        assert sum(row[-1] for row in result.rows) == loaded.table.num_records

    def test_different_deltas_give_different_counts(self, session):
        small = session.execute(query1(delta=300), mode="sma")
        large = session.execute(query1(delta=30), mode="sma")
        assert sum(r[-1] for r in small.rows) < sum(r[-1] for r in large.rows)

    def test_avg_consistency(self, session):
        result = session.execute(query1(), mode="sma")
        columns = result.columns
        for row in result.rows:
            qty_sum = row[columns.index("SUM_QTY")]
            count = row[columns.index("COUNT_ORDER")]
            avg_qty = row[columns.index("AVG_QTY")]
            assert avg_qty == pytest.approx(qty_sum / count)


class TestCosts:
    def test_sma_reads_far_fewer_pages(self, session, lineitem_env):
        _, loaded = lineitem_env
        scan = session.execute(query1(), mode="scan", cold=True)
        sma = session.execute(query1(), mode="sma", cold=True)
        assert sma.stats.page_reads < scan.stats.page_reads / 5
        assert scan.stats.page_reads >= loaded.table.num_pages

    def test_simulated_speedup(self, session):
        scan = session.execute(query1(), mode="scan", cold=True)
        warm = session.execute(query1(), mode="sma", cold=True)
        warm = session.execute(query1(), mode="sma")
        assert scan.simulated_seconds / warm.simulated_seconds > 20

    def test_sql_text_path_equivalent(self, session):
        text = """
        SELECT L_RETURNFLAG, L_LINESTATUS,
            SUM(L_QUANTITY) AS SUM_QTY,
            SUM(L_EXTENDEDPRICE) AS SUM_BASE_PRICE,
            SUM(L_EXTENDEDPRICE*(1-L_DISCOUNT)) AS SUM_DISC_PRICE,
            SUM(L_EXTENDEDPRICE*(1-L_DISCOUNT)*(1+L_TAX)) AS SUM_CHARGE,
            AVG(L_QUANTITY) AS AVG_QTY, AVG(L_EXTENDEDPRICE) AS AVG_PRICE,
            AVG(L_DISCOUNT) AS AVG_DISC, COUNT(*) AS COUNT_ORDER
        FROM LINEITEM
        WHERE L_SHIPDATE <= DATE '1998-12-01' - INTERVAL '90' DAY
        GROUP BY L_RETURNFLAG, L_LINESTATUS
        ORDER BY L_RETURNFLAG, L_LINESTATUS
        """
        via_sql = session.sql(text, mode="sma")
        via_ast = session.execute(query1(), mode="sma")
        assert_rows_equal(via_sql.rows, via_ast.rows)
