"""Shared fixtures for the whole test suite."""

from __future__ import annotations

import datetime

import pytest

from repro.storage import Catalog, DATE, FLOAT64, INT32, Schema, char


@pytest.fixture
def catalog(tmp_path):
    """A fresh catalog in a temporary directory."""
    cat = Catalog(str(tmp_path / "db"))
    yield cat
    cat.close()


#: A small, typed schema used across many unit tests.
SALES_SCHEMA = Schema.of(
    ("id", INT32),
    ("ship", DATE),
    ("qty", FLOAT64),
    ("flag", char(1)),
)

BASE_DATE = datetime.date(1997, 1, 1)


def sales_rows(n: int = 2000, days_per_step: int = 50):
    """Deterministic, date-clustered rows for the SALES_SCHEMA."""
    return [
        (
            i,
            BASE_DATE + datetime.timedelta(days=i // days_per_step),
            float(i % 7),
            "AR"[i % 2],
        )
        for i in range(n)
    ]


@pytest.fixture
def sales_table(catalog):
    """A loaded, date-clustered table of 2000 rows."""
    table = catalog.create_table("SALES", SALES_SCHEMA, clustered_on="ship")
    table.append_rows(sales_rows())
    return table


@pytest.fixture
def sales_sma_set(catalog, sales_table, tmp_path):
    """min/max/count/sum SMAs on the sales table."""
    from repro.core import (
        SmaDefinition,
        build_sma_set,
        count_star,
        maximum,
        minimum,
        total,
    )
    from repro.lang import col

    definitions = [
        SmaDefinition("smin", "SALES", minimum(col("ship"))),
        SmaDefinition("smax", "SALES", maximum(col("ship"))),
        SmaDefinition("cnt", "SALES", count_star(), ("flag",)),
        SmaDefinition("sqty", "SALES", total(col("qty")), ("flag",)),
    ]
    sma_set, _ = build_sma_set(
        sales_table, definitions, directory=str(tmp_path / "db" / "SALES.smas")
    )
    catalog.register_sma_set("SALES", sma_set)
    return sma_set


@pytest.fixture(scope="session")
def lineitem_env(tmp_path_factory):
    """Session-scoped TPC-D LINEITEM (sorted, SF=0.005) with Q1 SMAs.

    Shared read-only by many query/integration tests — none of them may
    mutate the table.  Stats are reset per use via ``catalog.reset_stats``.
    """
    from repro.tpcd import load_lineitem

    root = tmp_path_factory.mktemp("lineitem-db")
    cat = Catalog(str(root), buffer_pages=8192)
    loaded = load_lineitem(cat, scale_factor=0.005, clustering="sorted")
    yield cat, loaded
    cat.close()


def assert_rows_equal(rows_a, rows_b, rel=1e-9):
    """Compare query result rows with float tolerance."""
    assert len(rows_a) == len(rows_b), (rows_a, rows_b)
    for ra, rb in zip(rows_a, rows_b):
        assert len(ra) == len(rb), (ra, rb)
        for a, b in zip(ra, rb):
            if isinstance(a, float) and isinstance(b, float):
                assert a == pytest.approx(b, rel=rel, abs=1e-9), (ra, rb)
            else:
                assert a == b, (ra, rb)


def brute_force_partition_check(table, sma_set, predicate):
    """Assert a partitioning is sound against tuple-level evaluation."""
    bound = predicate.bind(table.schema)
    partitioning = sma_set.partition(bound, charge=False)
    for bucket_no in range(table.num_buckets):
        records = table.read_bucket(bucket_no)
        satisfied = bound.evaluate(records)
        if partitioning.qualifying[bucket_no]:
            assert len(records) > 0 and bool(satisfied.all()), (
                f"bucket {bucket_no} marked qualifying but not all tuples satisfy"
            )
        if partitioning.disqualifying[bucket_no]:
            assert not bool(satisfied.any()), (
                f"bucket {bucket_no} marked disqualifying but some tuple satisfies"
            )
    return partitioning
