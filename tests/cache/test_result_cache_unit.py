"""Unit tests for :class:`repro.query.cache.ResultCache`.

The cache is plumbing the service trusts blindly, so its contract is
pinned here in isolation: LRU bounds, single-flight fills (one leader
computes, waiters get the fill or inherit the lead on abandonment),
table-scoped invalidation, and honest counters.
"""

from __future__ import annotations

import threading

from repro.query.cache import HIT, LEAD, ResultCache


def test_miss_then_hit_round_trip():
    cache = ResultCache(capacity=4)
    outcome, result = cache.acquire("k1")
    assert outcome == LEAD and result is None
    cache.complete("k1", "payload", {"T"})
    outcome, result = cache.acquire("k1")
    assert outcome == HIT and result == "payload"
    snap = cache.snapshot()
    assert snap["hits"] == 1
    assert snap["misses"] == 1
    assert snap["stores"] == 1
    assert snap["entries"] == 1


def test_single_flight_waiters_get_the_fill():
    cache = ResultCache(capacity=4)
    outcome, _ = cache.acquire("k")
    assert outcome == LEAD
    got: list = []
    ready = threading.Barrier(3)

    def wait_for_fill():
        ready.wait()
        got.append(cache.acquire("k", timeout_s=5.0))

    waiters = [threading.Thread(target=wait_for_fill) for _ in range(2)]
    for thread in waiters:
        thread.start()
    ready.wait()  # both waiters are about to enter acquire
    cache.complete("k", "answer", {"T"})
    for thread in waiters:
        thread.join()
    assert [outcome for outcome, _ in got] == [HIT, HIT]
    assert all(result == "answer" for _, result in got)
    # Waiters served off an in-flight fill count as flight hits.
    assert cache.snapshot()["hits"] + cache.snapshot()["flight_hits"] >= 2


def test_abandon_wakes_waiters_as_leaders():
    cache = ResultCache(capacity=4)
    outcome, _ = cache.acquire("k")
    assert outcome == LEAD
    got: list = []
    started = threading.Event()

    def wait_for_fill():
        started.set()
        got.append(cache.acquire("k", timeout_s=5.0))

    waiter = threading.Thread(target=wait_for_fill)
    waiter.start()
    started.wait()
    cache.abandon("k")
    waiter.join()
    # The abandoned fill produced no result: the waiter must lead its
    # own execution, never hang and never get a phantom hit.
    assert got[0][0] == LEAD and got[0][1] is None


def test_lru_eviction_is_bounded_and_counted():
    cache = ResultCache(capacity=2)
    for key in ("a", "b", "c"):
        assert cache.acquire(key)[0] == LEAD
        cache.complete(key, key.upper(), {"T"})
    snap = cache.snapshot()
    assert snap["entries"] == 2
    assert snap["evictions"] == 1
    # "a" was the least recently used: gone; "b" and "c" remain.
    assert cache.acquire("a")[0] == LEAD
    cache.abandon("a")
    assert cache.acquire("b")[0] == HIT
    assert cache.acquire("c")[0] == HIT


def test_lru_order_updates_on_hit():
    cache = ResultCache(capacity=2)
    for key in ("a", "b"):
        cache.acquire(key)
        cache.complete(key, key, {"T"})
    assert cache.acquire("a")[0] == HIT  # refresh "a"
    cache.acquire("c")
    cache.complete("c", "c", {"T"})  # evicts "b", not "a"
    assert cache.acquire("a")[0] == HIT
    assert cache.acquire("b")[0] == LEAD


def test_invalidate_table_scopes_to_that_table():
    cache = ResultCache(capacity=8)
    cache.acquire("q-sales")
    cache.complete("q-sales", 1, {"SALES"})
    cache.acquire("q-line")
    cache.complete("q-line", 2, {"LINEITEM"})
    cache.acquire("q-join")
    cache.complete("q-join", 3, {"SALES", "LINEITEM"})
    dropped = cache.invalidate_table("SALES")
    assert dropped == 2
    assert cache.acquire("q-line")[0] == HIT
    assert cache.acquire("q-sales")[0] == LEAD
    assert cache.snapshot()["invalidations"] == 2


def test_clear_empties_everything():
    cache = ResultCache(capacity=8)
    for key in ("a", "b", "c"):
        cache.acquire(key)
        cache.complete(key, key, {"T"})
    assert cache.clear() == 3
    snap = cache.snapshot()
    assert snap["entries"] == 0
    assert all(cache.acquire(key)[0] == LEAD for key in ("a", "b", "c"))


def test_hit_rate_snapshot_math():
    cache = ResultCache(capacity=4)
    cache.acquire("k")
    cache.complete("k", "v", {"T"})
    for _ in range(3):
        cache.acquire("k")
    snap = cache.snapshot()
    assert snap["hits"] == 3
    assert snap["misses"] == 1
    assert abs(snap["hit_rate"] - 0.75) < 1e-9
