"""Unit/concurrency tests for the cooperative scan dispatcher.

Shared scans must be invisible in the results: each consumer grades the
shared decoded stream with its *own* predicate, so every attached query
gets exactly what a solo execution of its plan would return — on the
thread and the process scan backend alike.  Poisoning (the quarantine
hook) must detach pending consumers loudly, never serve them from a
suspect pass.
"""

from __future__ import annotations

import threading

import pytest

from repro.query.parallel import ScanParallelism
from repro.query.session import Session, _sort_rows
from repro.query.sharedscan import SharedScanDetached, SharedScanDispatcher
from repro.tpcd.queries import query1, query6

from tests.cache.conftest import TINY_SF  # noqa: F401 - fixture module


def _run_solo(catalog, query):
    return Session(catalog).execute(query)


def _sorted_outcome(outcome, query):
    return outcome.columns, _sort_rows(
        outcome.rows, outcome.columns, query.order_by, query.order_desc
    )


def test_solo_pass_matches_session(lineitem_catalog):
    catalog, _ = lineitem_catalog
    dispatcher = SharedScanDispatcher(gather_window_s=0.0)
    query = query1(delta=90)
    view = catalog.pin_view("LINEITEM")
    outcome = dispatcher.run(view, query)
    columns, rows = _sorted_outcome(outcome, query)
    reference = _run_solo(catalog, query)
    assert columns == reference.columns
    assert repr(rows) == repr(reference.rows)
    assert outcome.info.strategy == "shared_scan(lead[1])"


def test_concurrent_consumers_share_one_pass(lineitem_catalog):
    catalog, _ = lineitem_catalog
    dispatcher = SharedScanDispatcher(gather_window_s=0.2)
    queries = [query1(delta=30 + 20 * i) for i in range(4)]
    view = catalog.pin_view("LINEITEM")
    outcomes: dict[int, object] = {}
    errors: list[BaseException] = []

    def consume(index):
        try:
            outcomes[index] = dispatcher.run(view, queries[index])
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=consume, args=(i,)) for i in range(4)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    roles = sorted(outcome.role for outcome in outcomes.values())
    assert roles == ["follow", "follow", "follow", "lead"]
    for index, outcome in outcomes.items():
        columns, rows = _sorted_outcome(outcome, queries[index])
        reference = _run_solo(catalog, queries[index])
        assert columns == reference.columns
        assert repr(rows) == repr(reference.rows)
    snap = dispatcher.snapshot()
    assert snap["leads"] == 1
    assert snap["attaches"] == 3
    assert snap["fan_in_max"] == 4
    assert snap["pending_groups"] == 0


def test_mixed_query_shapes_share_a_pass(lineitem_catalog):
    """Query 1 and Query 6 (different aggregates, predicates, grouping)
    can ride the same bucket pass without cross-talk."""
    catalog, _ = lineitem_catalog
    dispatcher = SharedScanDispatcher(gather_window_s=0.2)
    queries = [query1(delta=90), query6()]
    view = catalog.pin_view("LINEITEM")
    outcomes: dict[int, object] = {}

    def consume(index):
        outcomes[index] = dispatcher.run(view, queries[index])

    threads = [
        threading.Thread(target=consume, args=(i,)) for i in range(2)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    for index, query in enumerate(queries):
        columns, rows = _sorted_outcome(outcomes[index], query)
        reference = _run_solo(catalog, query)
        assert columns == reference.columns
        assert repr(rows) == repr(reference.rows)


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_parallel_pass_matches_serial(lineitem_catalog, backend):
    catalog, _ = lineitem_catalog
    dispatcher = SharedScanDispatcher(gather_window_s=0.0)
    query = query1(delta=90)
    view = catalog.pin_view("LINEITEM")
    outcome = dispatcher.run(
        view,
        query,
        parallelism=ScanParallelism(
            workers=4, morsel_buckets=2, backend=backend
        ),
    )
    columns, rows = _sorted_outcome(outcome, query)
    reference = _run_solo(catalog, query)
    assert columns == reference.columns
    assert repr(rows) == repr(reference.rows)
    if backend == "process":
        from repro.query import procpool

        procpool.dispose_pools(catalog.root_dir)


def test_poison_detaches_pending_consumers(lineitem_catalog):
    catalog, _ = lineitem_catalog
    dispatcher = SharedScanDispatcher(gather_window_s=0.5)
    query = query1(delta=90)
    view = catalog.pin_view("LINEITEM")
    results: list = []
    started = threading.Event()

    def lead():
        started.set()
        try:
            results.append(dispatcher.run(view, query))
        except SharedScanDetached as exc:
            results.append(exc)

    leader = threading.Thread(target=lead)
    leader.start()
    started.wait()
    # Poison while the leader is inside its gather window: the pending
    # group must detach, never run a pass it can no longer trust.
    assert dispatcher.poison("LINEITEM", "sma_quarantined") == 1
    leader.join()
    assert isinstance(results[0], SharedScanDetached)
    assert dispatcher.snapshot()["detaches"] >= 1


def test_poison_other_table_is_a_noop(lineitem_catalog):
    catalog, _ = lineitem_catalog
    dispatcher = SharedScanDispatcher(gather_window_s=0.0)
    assert dispatcher.poison("OTHER", "sma_quarantined") == 0
    query = query1(delta=90)
    view = catalog.pin_view("LINEITEM")
    outcome = dispatcher.run(view, query)
    assert outcome.role == "lead"
