"""Property tests for plan fingerprinting (Hypothesis).

The fingerprint is the cache's correctness boundary, so it must satisfy
two one-sided guarantees:

* **collision by design** — semantically identical plans (whitespace
  variants of the same SQL, commuted And/Or operand order) map to the
  same key, or the cache silently loses hit rate;
* **separation always** — plans differing in any literal, column,
  aggregate, epoch, mode or scan signature map to different keys, or
  the cache silently serves wrong answers.  Separation failures are the
  dangerous ones, hence the property-based sweep.

Fingerprints must also survive a serde round trip: a query shipped to a
shard worker and rebuilt from JSON must land on the same key.
"""

from __future__ import annotations

import datetime

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import count_star, maximum, minimum, total
from repro.lang import col
from repro.lang.predicate import and_, cmp, or_
from repro.lang.serde import query_from_json, query_to_json
from repro.query.cache import canonical_plan, plan_fingerprint
from repro.query.query import AggregateQuery, OutputAggregate
from repro.sql.parser import parse_statement

COLUMNS = ("qty", "ship", "id")
OPS = ("<", "<=", "=", ">=", ">")

literals = st.integers(min_value=-(10**6), max_value=10**6)


@st.composite
def comparisons(draw):
    return cmp(
        draw(st.sampled_from(COLUMNS)),
        draw(st.sampled_from(OPS)),
        draw(literals),
    )


@st.composite
def predicates(draw):
    """Leaf comparisons and one level of And/Or over them."""
    kind = draw(st.sampled_from(("leaf", "and", "or")))
    if kind == "leaf":
        return draw(comparisons())
    combine = and_ if kind == "and" else or_
    return combine(draw(comparisons()), draw(comparisons()))


_AGG_CHOICES = (
    ("n", count_star),
    ("s", lambda: total(col("qty"))),
    ("lo", lambda: minimum(col("ship"))),
    ("hi", lambda: maximum(col("ship"))),
)


@st.composite
def agg_queries(draw):
    picked = draw(
        st.lists(
            st.sampled_from(range(len(_AGG_CHOICES))),
            min_size=1,
            max_size=3,
            unique=True,
        )
    )
    aggregates = tuple(
        OutputAggregate(_AGG_CHOICES[i][0], _AGG_CHOICES[i][1]())
        for i in sorted(picked)
    )
    group_by = draw(st.sampled_from(((), ("flag",))))
    return AggregateQuery(
        table="SALES",
        aggregates=aggregates,
        where=draw(predicates()),
        group_by=group_by,
    )


def _fp(query, epoch: int = 0, **kwargs):
    kwargs.setdefault("epochs", {query.table: epoch})
    return plan_fingerprint(query, **kwargs)


# ----------------------------------------------------------------------
# collision by design
# ----------------------------------------------------------------------

_SQL_TOKENS = (
    "SELECT", "flag", ",", "SUM", "(", "qty", ")", "AS", "s", "FROM",
    "SALES", "WHERE", "qty", ">=", "3", "AND", "ship", "<=",
    "DATE '1997-01-21'", "GROUP", "BY", "flag",
)
#: Token indices that must stay glued to the previous token (function
#: application and punctuation the tokenizer reads greedily).
_GLUE = {3, 4, 5, 6}

ws = st.sampled_from((" ", "  ", "\t", " \n ", "   "))


@given(st.lists(ws, min_size=len(_SQL_TOKENS), max_size=len(_SQL_TOKENS)))
@settings(max_examples=50, deadline=None)
def test_whitespace_variants_collide(gaps):
    """Any whitespace layout of the same SQL shares one fingerprint."""
    base = parse_statement(" ".join(_SQL_TOKENS))
    pieces = []
    for index, token in enumerate(_SQL_TOKENS):
        if index and index not in _GLUE:
            pieces.append(gaps[index])
        pieces.append(token)
    variant = parse_statement("".join(pieces))
    assert _fp(variant) == _fp(base)


@given(comparisons(), comparisons(), st.booleans())
@settings(max_examples=100, deadline=None)
def test_commuted_operands_collide(left, right, use_or):
    """And/Or operand order never changes the fingerprint."""
    combine = or_ if use_or else and_
    forward = AggregateQuery(
        table="SALES",
        aggregates=(OutputAggregate("n", count_star()),),
        where=combine(left, right),
    )
    reversed_ = AggregateQuery(
        table="SALES",
        aggregates=(OutputAggregate("n", count_star()),),
        where=combine(right, left),
    )
    assert _fp(forward) == _fp(reversed_)
    assert canonical_plan(forward) == canonical_plan(reversed_)


# ----------------------------------------------------------------------
# separation always
# ----------------------------------------------------------------------


@given(agg_queries(), st.data())
@settings(max_examples=100, deadline=None)
def test_literal_change_separates(query, data):
    """Perturbing any one comparison literal changes the fingerprint."""
    document = query_to_json(query)

    def perturb(node):
        if isinstance(node, dict):
            constant = node.get("constant")
            if (
                node.get("node") == "cmp_const"
                and isinstance(constant, dict)
                and constant.get("t") == "int"
            ):
                constant["v"] = constant["v"] + data.draw(
                    st.integers(min_value=1, max_value=1000)
                )
                return True
            return any(perturb(child) for child in node.values())
        if isinstance(node, list):
            return any(perturb(child) for child in node)
        return False

    changed = perturb(document)
    assert changed, f"no literal found to perturb in {document}"
    variant = query_from_json(document)
    assert _fp(variant) != _fp(query)


@given(comparisons(), st.sampled_from(COLUMNS))
@settings(max_examples=100, deadline=None)
def test_column_change_separates(predicate, other_column):
    document = query_to_json(
        AggregateQuery(
            table="SALES",
            aggregates=(OutputAggregate("n", count_star()),),
            where=predicate,
        )
    )
    base = query_from_json(document)

    def retarget(node):
        if isinstance(node, dict):
            if node.get("node") == "cmp_const":
                if node["column"] == other_column:
                    return False
                node["column"] = other_column
                return True
            return any(retarget(child) for child in node.values())
        if isinstance(node, list):
            return any(retarget(child) for child in node)
        return False

    if not retarget(document):
        return  # predicate already targeted other_column everywhere
    variant = query_from_json(document)
    assert _fp(variant) != _fp(base)


@given(agg_queries(), st.integers(min_value=0, max_value=10**9),
       st.integers(min_value=1, max_value=10**9))
@settings(max_examples=100, deadline=None)
def test_epoch_change_separates(query, epoch, bump):
    assert _fp(query, epoch=epoch) != _fp(query, epoch=epoch + bump)


@given(agg_queries())
@settings(max_examples=50, deadline=None)
def test_mode_sma_set_and_scan_separate(query):
    base = _fp(query)
    assert _fp(query, mode="scan") != base
    assert _fp(query, mode="sma") != base
    assert _fp(query, sma_set="q1") != base
    assert _fp(query, scan={"workers": 4, "backend": "process"}) != base


# ----------------------------------------------------------------------
# serde round-trip stability
# ----------------------------------------------------------------------


@given(agg_queries(), st.integers(min_value=0, max_value=10**6))
@settings(max_examples=100, deadline=None)
def test_serde_round_trip_stable(query, epoch):
    """A query rebuilt from its wire JSON lands on the same key."""
    rebuilt = query_from_json(query_to_json(query))
    assert _fp(rebuilt, epoch=epoch) == _fp(query, epoch=epoch)


def test_date_literals_fingerprint_by_value():
    """Smoke: date literals distinguish plans like ints do."""
    def q(day):
        return AggregateQuery(
            table="SALES",
            aggregates=(OutputAggregate("n", count_star()),),
            where=cmp("ship", "<=", datetime.date(1997, 1, day)),
        )

    assert _fp(q(21)) == _fp(q(21))
    assert _fp(q(21)) != _fp(q(22))
