"""Differential race: cached serving vs uncached replay under live DML.

The archetype test of this suite.  A 16-client zipf-skewed read burst
runs against a service with the result cache AND shared scans enabled
while a paced writer pushes INSERT batches through the write queue.
After every applied batch the writer captures the table's epoch pin, so
each ingest epoch that existed during the run has a frozen
bucket-generation snapshot.  Every kept result is then replayed against
the pin of *its own* epoch through a hand-rolled grade-and-aggregate
oracle (no cache, no dispatcher, no service) and must match
byte-for-byte.

A mismatch means a stale read — a hit served across a DML boundary or a
shared pass that leaked state between consumers — and fails loudly with
the full provenance.  Runs on both scan backends; round count scales
via ``REPRO_CACHE_DIFF_ROUNDS`` (CI's cache-smoke job sets 20).
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.query.aggregation import AggregationState
from repro.query.logical import normalize_predicate
from repro.query.session import _sort_rows
from repro.server.service import QueryService
from repro.server.workload import WorkloadDriver, zipf_mix
from repro.storage.table import TableView

ROUNDS = int(os.environ.get("REPRO_CACHE_DIFF_ROUNDS", "3"))
CLIENTS = 16
QUERIES_PER_CLIENT = 2
WRITER_INTERVAL_S = 0.05
BATCH_ROWS = 24


def _oracle_replay(catalog, table_name, pin, query):
    """Grade-and-aggregate straight off the pinned snapshot.

    Deliberately independent of Session, the planner, the cache and the
    shared-scan dispatcher: buckets are read through the pinned view,
    graded with the bound predicate, folded into one AggregationState.
    """
    view = TableView.from_pin(catalog.table(table_name), pin)
    predicate = normalize_predicate(query.where.bind(view.schema))
    state = AggregationState(view.schema, query.group_by, query.aggregates)
    for bucket_no in range(view.num_buckets):
        records = view.read_bucket(bucket_no)
        mask = predicate.evaluate(records)
        state.consume_batch(records if mask.all() else records[mask])
    columns, rows = state.finalize()
    return columns, _sort_rows(rows, columns, query.order_by, query.order_desc)


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_cached_results_match_uncached_replay_under_dml(
    lineitem_catalog, backend
):
    catalog, loaded = lineitem_catalog
    table_name = loaded.table.name
    mix = zipf_mix(table_name, distinct=8)
    by_name = {entry.name: entry.query for entry in mix}

    # Epoch pins: the frozen geometry of every epoch seen during the
    # run.  Epoch 0 (the bulk-loaded state) is captured up front; the
    # writer captures each epoch it creates right after the batch lands.
    pins: dict[int, dict] = {}
    base_view = catalog.pin_view(table_name)
    pins[int(base_view.epoch)] = base_view.pin

    template = tuple(
        tuple(record) for record in loaded.table.read_bucket(0).tolist()
    )[:BATCH_ROWS]
    stop = threading.Event()
    writer_errors: list[BaseException] = []

    def writer_loop():
        from repro.query.query import InsertStatement

        while not stop.is_set():
            started = time.perf_counter()
            try:
                service.submit(
                    InsertStatement(table_name, template), kind="dml"
                ).result()
                view = catalog.pin_view(table_name)
                pins[int(view.epoch)] = view.pin
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                writer_errors.append(exc)
                return
            remaining = WRITER_INTERVAL_S - (time.perf_counter() - started)
            if remaining > 0:
                stop.wait(remaining)

    with QueryService(
        catalog,
        workers=CLIENTS + 1,
        queue_depth=max(32, 2 * CLIENTS + 2),
        result_cache=True,
        shared_scans=True,
        scan_workers=2 if backend == "process" else 1,
        morsel_buckets=2,
        scan_backend=backend,
    ) as service:
        writer = threading.Thread(
            target=writer_loop, name="diff-writer", daemon=True
        )
        writer.start()
        runs = []
        try:
            driver = WorkloadDriver(service, mix)
            for _ in range(ROUNDS):
                runs.append(
                    driver.run_closed_loop(
                        clients=CLIENTS,
                        queries_per_client=QUERIES_PER_CLIENT,
                        keep_results=True,
                    )
                )
        finally:
            stop.set()
            writer.join()
        # One settled round after the writer stops: the epoch no longer
        # moves, so this round is guaranteed to produce cache hits (the
        # raced rounds above may see an epoch bump between every read).
        runs.append(
            driver.run_closed_loop(
                clients=CLIENTS,
                queries_per_client=QUERIES_PER_CLIENT,
                keep_results=True,
            )
        )
        cache_snapshot = service.result_cache.snapshot()
        shared_snapshot = service.shared_scans.snapshot()
    if backend == "process":
        from repro.query import procpool

        procpool.dispose_pools(catalog.root_dir)

    assert not writer_errors, f"writer died: {writer_errors[0]!r}"
    applied_epochs = max(pins) - int(base_view.epoch)
    assert applied_epochs > 0, "the paced writer never landed a batch"

    # Every kept result replays byte-identically at its own epoch.
    references: dict[tuple[str, int], tuple] = {}
    checked = 0
    for run in runs:
        assert run.completed == run.total, (
            f"lost queries on backend={backend}: {run.completed}/{run.total}"
        )
        for outcome in run.outcomes:
            result = outcome.result
            assert result is not None and result.epoch is not None
            epoch = int(result.epoch)
            assert epoch in pins, (
                f"result for {outcome.name} reports epoch {epoch} but no "
                f"such epoch was pinned (pins: {sorted(pins)})"
            )
            key = (outcome.name, epoch)
            if key not in references:
                references[key] = _oracle_replay(
                    catalog, table_name, pins[epoch], by_name[outcome.name]
                )
            columns, rows = references[key]
            if (
                list(result.columns) != list(columns)
                or repr(result.rows) != repr(rows)
            ):
                raise AssertionError(
                    f"STALE READ on backend={backend}: plan {outcome.name} "
                    f"served via {result.plan.strategy} at epoch {epoch} "
                    f"differs from the uncached replay of that epoch.\n"
                    f"  served:   {result.rows!r}\n"
                    f"  replayed: {rows!r}"
                )
            checked += 1
    assert checked == (ROUNDS + 1) * CLIENTS * QUERIES_PER_CLIENT

    # The run must have genuinely exercised the machinery under test.
    assert cache_snapshot["hits"] + cache_snapshot["flight_hits"] > 0, (
        "differential run never hit the cache — the race it guards "
        "against was not exercised"
    )
    assert shared_snapshot["leads"] > 0
