"""Regression: ``Catalog.go_cold()`` must drop *every* warm layer.

A "cold" run exists to measure real I/O, so coldness has three layers
to reset: the shared buffer pool, each heap's decoded-bucket cache
(previously uncovered — a stale decode cache made cold scans serve
decoded tuples without touching the pool at all), and any registered
result caches (the cold hooks).  Each layer gets its own assertion
here, plus the ``Session.execute(cold=True)`` path end to end.
"""

from __future__ import annotations

from repro.query.session import Session
from repro.server.service import QueryService
from repro.tpcd.queries import query1


def _heap(catalog):
    return catalog.table("LINEITEM").heap


def test_go_cold_drops_decode_cache(lineitem_catalog):
    catalog, _ = lineitem_catalog
    session = Session(catalog)
    query = query1(delta=90)
    session.execute(query, mode="scan")
    assert len(_heap(catalog)._decode_cache) > 0, (
        "a full scan should have warmed the decoded-bucket cache"
    )
    catalog.go_cold()
    assert len(_heap(catalog)._decode_cache) == 0, (
        "go_cold() left decoded buckets behind: a 'cold' scan would "
        "serve tuples without any page read"
    )


def test_cold_scan_does_physical_reads_again(lineitem_catalog):
    catalog, _ = lineitem_catalog
    session = Session(catalog)
    query = query1(delta=90)
    warm = session.execute(query, mode="scan")  # warm everything
    warm = session.execute(query, mode="scan")
    assert warm.stats.page_reads == 0, "second warm scan should be all hits"
    cold = session.execute(query, mode="scan", cold=True)
    assert cold.stats.page_reads > 0, (
        "cold=True scan did no physical reads: some warm layer survived"
    )
    assert repr(cold.rows) == repr(warm.rows)


def test_go_cold_runs_result_cache_hook(lineitem_catalog):
    catalog, _ = lineitem_catalog
    query = query1(delta=90)
    with QueryService(catalog, workers=2, result_cache=True) as service:
        service.submit(query).result()
        second = service.submit(query).result()
        assert second.plan.strategy == "result_cache"
        assert service.result_cache.snapshot()["entries"] > 0
        catalog.go_cold()
        assert service.result_cache.snapshot()["entries"] == 0, (
            "go_cold() must clear the registered result cache"
        )
        after = service.submit(query).result()
        assert after.plan.strategy != "result_cache"


def test_shutdown_unregisters_the_cold_hook(lineitem_catalog):
    catalog, _ = lineitem_catalog
    query = query1(delta=90)
    with QueryService(catalog, workers=2, result_cache=True) as service:
        service.submit(query).result()
        cache = service.result_cache
    # The service is gone; its hook must be too — go_cold on the
    # catalog must not reach into a shut-down service's cache.
    cache.acquire("synthetic")
    cache.complete("synthetic", "x", {"LINEITEM"})
    before = cache.snapshot()["entries"]
    catalog.go_cold()
    assert cache.snapshot()["entries"] == before


def test_cold_hook_add_remove_are_safe(lineitem_catalog):
    catalog, _ = lineitem_catalog
    calls: list[int] = []
    hook = lambda: calls.append(1)  # noqa: E731
    catalog.add_cold_hook(hook)
    catalog.go_cold()
    assert calls == [1]
    catalog.remove_cold_hook(hook)
    catalog.go_cold()
    assert calls == [1]
    catalog.remove_cold_hook(hook)  # double-remove must not raise
