"""Differential harness for the result cache and shared scans.

The suite's core demand mirrors the chaos suite's: caching and scan
sharing are *transparent* optimizations, so every served result must be
byte-identical to what an uncached, unshared execution of the same plan
at the same ingest epoch would return.  Stale answers — a hit served
across a DML boundary, a shared pass leaking another consumer's
predicate — are the one outcome that must never happen.

Fixtures build tiny LINEITEM catalogs (a few thousand rows) so the
whole suite stays in CI-smoke territory; the differential race test
scales its round count through ``REPRO_CACHE_DIFF_ROUNDS``.
"""

from __future__ import annotations

import pytest

from repro.storage import Catalog
from repro.tpcd.loader import load_lineitem

#: ~12k LINEITEM tuples: big enough for multi-bucket morsel scans,
#: small enough that a full differential round stays sub-second.
TINY_SF = 0.002


@pytest.fixture()
def lineitem_catalog(tmp_path):
    """A fresh, private LINEITEM catalog (tests mutate it freely)."""
    catalog = Catalog(str(tmp_path / "db"), buffer_pages=4096)
    loaded = load_lineitem(catalog, scale_factor=TINY_SF, clustering="sorted")
    yield catalog, loaded
    catalog.close()
