"""Property: a predicate's string rendering parses back to itself.

``Predicate.__str__`` produces SQL-ish text (it appears in plan
explanations and logs); parsing that text must reproduce the same tree,
so what the user sees is exactly what executes.
"""

import datetime

from hypothesis import given, strategies as st

from repro.lang.predicate import and_, cmp, not_, or_
from repro.sql.parser import parse_statement


def parse_where(predicate) -> object:
    return parse_statement(f"select * from T where {predicate}").where


columns = st.sampled_from(["a", "b_col", "L_SHIPDATE"])
operators = st.sampled_from(["=", "<>", "<", "<=", ">", ">="])


@st.composite
def atoms(draw):
    column = draw(columns)
    op = draw(operators)
    constant = draw(
        st.one_of(
            st.integers(-10**6, 10**6),
            st.dates(datetime.date(1990, 1, 1), datetime.date(2005, 12, 31)),
            st.text(
                alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd")),
                min_size=1, max_size=6,
            ),
        )
    )
    return cmp(column, op, constant)


@given(atoms())
def test_atom_roundtrip(atom):
    assert parse_where(atom) == atom


@given(st.lists(atoms(), min_size=2, max_size=4))
def test_conjunction_roundtrip(parts):
    predicate = and_(*parts)
    assert parse_where(predicate) == predicate


@given(st.lists(atoms(), min_size=2, max_size=4))
def test_disjunction_roundtrip(parts):
    predicate = or_(*parts)
    assert parse_where(predicate) == predicate


@given(atoms(), atoms(), atoms())
def test_mixed_nesting_roundtrip(a, b, c):
    predicate = or_(and_(a, b), c)
    assert parse_where(predicate) == predicate


@given(atoms())
def test_negation_roundtrip(atom):
    predicate = not_(atom)  # simplifies to the complementary atom
    assert parse_where(predicate) == predicate


def test_column_column_roundtrip():
    from repro.lang.expr import col

    predicate = cmp("a", "<=", col("b_col"))
    assert parse_where(predicate) == predicate


def test_float_constant_roundtrip():
    predicate = cmp("a", ">=", 0.25)
    assert parse_where(predicate) == predicate
