"""Unit tests for the SQL parser: define sma and the SELECT subset."""

import datetime

import pytest

from repro.core.aggregates import AggregateKind
from repro.core.definition import SmaDefinition
from repro.errors import ParseError, SmaDefinitionError
from repro.lang.expr import col, const, mul, sub
from repro.lang.predicate import And, CmpOp, ColumnColumnCmp, ColumnConstCmp, Or
from repro.query.query import AggregateQuery, ExplainQuery, ScanQuery
from repro.sql.parser import parse_definitions, parse_statement


class TestDefineSma:
    def test_simple_ungrouped(self):
        definition = parse_statement(
            "define sma min select min(L_SHIPDATE) from LINEITEM"
        )
        assert isinstance(definition, SmaDefinition)
        assert definition.name == "min"
        assert definition.aggregate.kind is AggregateKind.MIN
        assert definition.group_by == ()

    def test_grouped_with_expression(self):
        definition = parse_statement(
            "define sma extdis select sum(EP*(1-DIS)) from L "
            "group by RF, LS"
        )
        assert definition.aggregate.argument == mul(
            col("EP"), sub(const(1), col("DIS"))
        )
        assert definition.group_by == ("RF", "LS")

    def test_count_star(self):
        definition = parse_statement(
            "define sma count select count(*) from L group by RF"
        )
        assert definition.aggregate.kind is AggregateKind.COUNT

    def test_multiple_select_entries_rejected(self):
        # "The select clause may contain only a single entry."
        with pytest.raises(SmaDefinitionError, match="single entry"):
            parse_statement(
                "define sma bad select min(a), max(a) from T"
            )

    def test_joins_rejected(self):
        # "we allow only for a single entry within the from clause"
        with pytest.raises(SmaDefinitionError, match="single relation"):
            parse_statement("define sma bad select min(a) from R, S")

    def test_order_specification_rejected(self):
        with pytest.raises(SmaDefinitionError, match="order"):
            parse_statement(
                "define sma bad select min(a) from T order by a"
            )

    def test_avg_rejected(self):
        with pytest.raises(SmaDefinitionError, match="avg"):
            parse_statement("define sma bad select avg(a) from T")

    def test_parse_definitions_script(self):
        script = """
            define sma a select min(x) from T;
            define sma b select max(x) from T;
        """
        definitions = parse_definitions(script)
        assert [d.name for d in definitions] == ["a", "b"]

    def test_parse_definitions_rejects_select(self):
        with pytest.raises(ParseError):
            parse_definitions("select * from T")


class TestSelect:
    def test_scan_query_star(self):
        statement = parse_statement("select * from T where a <= 5")
        assert isinstance(statement, ScanQuery)
        assert statement.columns == ()
        assert isinstance(statement.where, ColumnConstCmp)

    def test_scan_query_columns(self):
        statement = parse_statement("select a, b from T")
        assert statement.columns == ("a", "b")

    def test_aggregate_query(self):
        statement = parse_statement(
            "select g, sum(x) as s, count(*) as n from T "
            "where x > 0 group by g order by g"
        )
        assert isinstance(statement, AggregateQuery)
        assert statement.group_by == ("g",)
        assert statement.order_by == ("g",)
        assert [a.name for a in statement.aggregates] == ["s", "n"]

    def test_default_aggregate_names(self):
        statement = parse_statement("select sum(x), count(*) from T")
        assert [a.name for a in statement.aggregates] == ["SUM", "COUNT"]

    def test_plain_column_must_be_grouped(self):
        with pytest.raises(ParseError, match="GROUP BY"):
            parse_statement("select g, sum(x) from T")

    def test_group_by_without_aggregates_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("select a from T group by a")

    def test_order_direction_tokens_accepted(self):
        statement = parse_statement(
            "select g, count(*) from T group by g order by g asc"
        )
        assert statement.order_by == ("g",)
        assert statement.order_desc == frozenset()

    def test_order_desc_recorded(self):
        statement = parse_statement(
            "select g, h, count(*) as n from T group by g, h "
            "order by g desc, h"
        )
        assert statement.order_by == ("g", "h")
        assert statement.order_desc == frozenset({"g"})


class TestPredicates:
    def where(self, text):
        return parse_statement(f"select * from T where {text}").where

    def test_comparison_operators(self):
        for op_text, op in [
            ("=", CmpOp.EQ), ("<>", CmpOp.NE), ("!=", CmpOp.NE),
            ("<", CmpOp.LT), ("<=", CmpOp.LE), (">", CmpOp.GT), (">=", CmpOp.GE),
        ]:
            predicate = self.where(f"a {op_text} 5")
            assert predicate.op is op

    def test_constant_on_left_flips(self):
        predicate = self.where("5 < a")
        assert predicate.op is CmpOp.GT
        assert predicate.column == "a"

    def test_column_column(self):
        predicate = self.where("a <= b")
        assert isinstance(predicate, ColumnColumnCmp)

    def test_and_or_precedence(self):
        predicate = self.where("a = 1 or b = 2 and c = 3")
        assert isinstance(predicate, Or)
        assert isinstance(predicate.operands[1], And)

    def test_parentheses_override_precedence(self):
        predicate = self.where("(a = 1 or b = 2) and c = 3")
        assert isinstance(predicate, And)

    def test_not(self):
        predicate = self.where("not a < 5")
        assert isinstance(predicate, ColumnConstCmp)
        assert predicate.op is CmpOp.GE

    def test_between(self):
        predicate = self.where("a between 2 and 8")
        assert isinstance(predicate, And)
        assert predicate.operands[0].op is CmpOp.GE
        assert predicate.operands[1].op is CmpOp.LE

    def test_string_constant(self):
        predicate = self.where("flag = 'A'")
        assert predicate.constant == "A"

    def test_negative_literal_folds_to_constant(self):
        predicate = self.where("a >= -7")
        assert predicate.constant == -7
        predicate = self.where("a < -2.5")
        assert predicate.constant == -2.5

    def test_date_literal(self):
        predicate = self.where("d <= DATE '1998-12-01'")
        assert predicate.constant == datetime.date(1998, 12, 1)

    def test_date_interval_arithmetic(self):
        predicate = self.where(
            "d <= DATE '1998-12-01' - INTERVAL '90' DAY"
        )
        assert predicate.constant == datetime.date(1998, 9, 2)

    def test_chained_intervals(self):
        predicate = self.where(
            "d <= DATE '1998-12-01' - INTERVAL '30' DAY + INTERVAL '10' DAY"
        )
        assert predicate.constant == datetime.date(1998, 11, 11)

    def test_invalid_date_literal(self):
        with pytest.raises(ParseError, match="invalid date"):
            self.where("d <= DATE 'yesterday'")

    def test_const_vs_const_rejected(self):
        with pytest.raises(ParseError, match="column"):
            self.where("1 < 2")

    def test_missing_operator(self):
        with pytest.raises(ParseError):
            self.where("a 5")


class TestExplain:
    def test_explain_wraps_select(self):
        statement = parse_statement("explain select * from T where a < 5")
        assert isinstance(statement, ExplainQuery)
        assert isinstance(statement.query, ScanQuery)
        assert statement.query.table == "T"

    def test_explain_aggregate(self):
        statement = parse_statement(
            "EXPLAIN SELECT g, COUNT(*) AS n FROM T GROUP BY g"
        )
        assert isinstance(statement, ExplainQuery)
        assert isinstance(statement.query, AggregateQuery)

    def test_explain_requires_select(self):
        with pytest.raises(ParseError, match="EXPLAIN supports only SELECT"):
            parse_statement("explain define sma x select min(a) from T")

    def test_explain_alone_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("explain")


class TestErrors:
    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError, match="trailing"):
            parse_statement("select * from T extra")

    def test_not_a_statement(self):
        with pytest.raises(
            ParseError, match="DEFINE, EXPLAIN, SELECT, INSERT, UPDATE or DELETE"
        ):
            parse_statement("drop table T")

    def test_missing_from(self):
        with pytest.raises(ParseError, match="FROM"):
            parse_statement("select a")

    def test_semicolon_allowed(self):
        parse_statement("select * from T;")


class TestRoundTripWithQuery1:
    def test_query1_text_matches_builtin(self):
        from repro.tpcd.queries import query1

        text = """
        SELECT L_RETURNFLAG, L_LINESTATUS,
            SUM(L_QUANTITY) AS SUM_QTY,
            SUM(L_EXTENDEDPRICE) AS SUM_BASE_PRICE,
            SUM(L_EXTENDEDPRICE*(1-L_DISCOUNT)) AS SUM_DISC_PRICE,
            SUM(L_EXTENDEDPRICE*(1-L_DISCOUNT)*(1+L_TAX)) AS SUM_CHARGE,
            AVG(L_QUANTITY) AS AVG_QTY,
            AVG(L_EXTENDEDPRICE) AS AVG_PRICE,
            AVG(L_DISCOUNT) AS AVG_DISC,
            COUNT(*) AS COUNT_ORDER
        FROM LINEITEM
        WHERE L_SHIPDATE <= DATE '1998-12-01' - INTERVAL '90' DAY
        GROUP BY L_RETURNFLAG, L_LINESTATUS
        ORDER BY L_RETURNFLAG, L_LINESTATUS
        """
        assert parse_statement(text) == query1(delta=90)
