"""Unit tests for the SQL lexer."""

import pytest

from repro.errors import ParseError
from repro.sql.lexer import TokenKind, tokenize


def kinds(text):
    return [(t.kind, t.text) for t in tokenize(text)[:-1]]


class TestTokens:
    def test_keywords_case_insensitive(self):
        assert kinds("select FROM Group") == [
            (TokenKind.KEYWORD, "SELECT"),
            (TokenKind.KEYWORD, "FROM"),
            (TokenKind.KEYWORD, "GROUP"),
        ]

    def test_identifiers_keep_case(self):
        assert kinds("L_SHIPDATE lineitem") == [
            (TokenKind.IDENT, "L_SHIPDATE"),
            (TokenKind.IDENT, "lineitem"),
        ]

    def test_numbers(self):
        assert kinds("42 3.14 .5") == [
            (TokenKind.NUMBER, "42"),
            (TokenKind.NUMBER, "3.14"),
            (TokenKind.NUMBER, ".5"),
        ]

    def test_strings_with_escapes(self):
        assert kinds("'it''s'") == [(TokenKind.STRING, "it's")]

    def test_unterminated_string(self):
        with pytest.raises(ParseError, match="unterminated"):
            tokenize("'oops")

    def test_two_char_symbols_win_over_one_char(self):
        assert kinds("<= >= <>") == [
            (TokenKind.SYMBOL, "<="),
            (TokenKind.SYMBOL, ">="),
            (TokenKind.SYMBOL, "<>"),
        ]

    def test_arithmetic_symbols(self):
        assert [t for _, t in kinds("( ) , * + - / ;")] == [
            "(", ")", ",", "*", "+", "-", "/", ";",
        ]

    def test_line_comments_skipped(self):
        assert kinds("select -- a comment\nfoo") == [
            (TokenKind.KEYWORD, "SELECT"),
            (TokenKind.IDENT, "foo"),
        ]

    def test_unexpected_character(self):
        with pytest.raises(ParseError, match="unexpected"):
            tokenize("select @")

    def test_end_token_always_present(self):
        assert tokenize("")[-1].kind is TokenKind.END

    def test_positions_recorded(self):
        tokens = tokenize("ab cd")
        assert tokens[0].position == 0
        assert tokens[1].position == 3

    def test_helper_predicates(self):
        token = tokenize("select")[0]
        assert token.is_keyword("SELECT", "FROM")
        assert not token.is_symbol("(")
