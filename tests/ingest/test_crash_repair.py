"""Crash consistency: intents replay or roll back to a clean epoch.

Deterministic halves first — the apply sequence stopped at a chosen
step, then ``verify_catalog(repair=True)``:

* stopped after data + SMA + flush but before retire → **replay**: the
  batch is kept, the epoch advances to the intent's epoch;
* stopped right after the intent append (no data) → **rollback**: the
  pre-image is restored, the epoch does not move.

Then the real thing: a child process SIGKILLed mid-ingest-loop, the
catalog reopened and repaired, and the repaired SMAs answer
byte-identically to a full scan with zero outstanding issues.
"""

from __future__ import annotations

import datetime
import os
import signal
import subprocess
import sys
import time

from repro.core.maintenance import SmaMaintainer
from repro.core.verify import verify_catalog
from repro.query.session import Session
from repro.storage.intents import (
    insert_intent,
    load_intent,
    write_intent,
)

from tests.conftest import BASE_DATE

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "src",
)


def _crash_rows(n: int = 40) -> list[tuple]:
    return [
        (70_000 + i, BASE_DATE + datetime.timedelta(days=900), 1.0, "A")
        for i in range(n)
    ]


def _intent_issues(report):
    return [issue for issue in report.issues if issue.kind == "heap_intent"]


class TestDeterministicRecovery:
    def test_replay_keeps_completed_batch(self, catalog, sales_table, sales_sma_set):
        """Crash between flush and retire: all data landed, so replay."""
        table = sales_table
        rows = _crash_rows()
        batch = table.schema.batch_from_rows(rows)
        maintainer = SmaMaintainer(table, catalog.sma_sets("SALES"))
        intent = insert_intent(table.heap, "SALES", 1, len(batch))
        write_intent(table.heap, intent)
        maintainer.insert(batch)
        table.heap.flush()
        # -- crash: retire_intent and the epoch bump never happen --
        assert load_intent(table.heap.path) is not None

        report = verify_catalog(catalog, repair=True)
        assert report.ok
        (issue,) = _intent_issues(report)
        assert issue.repaired
        assert issue.detail.endswith("replayed")
        assert load_intent(table.heap.path) is None
        assert catalog.ingest_epoch("SALES") == 1  # repair bumped it

        session = Session(catalog)
        count = session.sql("SELECT COUNT(*) AS n FROM SALES")
        assert count.rows == [(2000 + len(rows),)]
        assert verify_catalog(catalog).issues == []

    def test_rollback_restores_preimage(self, catalog, sales_table, sales_sma_set):
        """Crash right after the intent append: nothing landed, roll back."""
        table = sales_table
        before_counts = list(table.bucket_counts())
        intent = insert_intent(table.heap, "SALES", 1, 64)
        write_intent(table.heap, intent)
        # -- crash: no data pages were written --

        report = verify_catalog(catalog, repair=True)
        assert report.ok
        (issue,) = _intent_issues(report)
        assert issue.repaired
        assert issue.detail.endswith("rolled_back")
        assert load_intent(table.heap.path) is None
        assert catalog.ingest_epoch("SALES") == 0  # the batch never was

        assert list(table.bucket_counts()) == before_counts
        session = Session(catalog)
        assert session.sql("SELECT COUNT(*) AS n FROM SALES").rows == [(2000,)]
        assert verify_catalog(catalog).issues == []

    def test_next_dml_self_heals_pending_intent(self, catalog, sales_table, sales_sma_set):
        """The write path itself settles a leftover intent before applying."""
        intent = insert_intent(sales_table.heap, "SALES", 1, 64)
        write_intent(sales_table.heap, intent)

        session = Session(catalog)
        result = session.sql(
            "INSERT INTO SALES VALUES (71000, DATE '1999-06-01', 2.0, 'R')"
        )
        assert result.rows == [(1, 1)]  # healed intent rolled back, not counted
        assert load_intent(sales_table.heap.path) is None
        snapshot = catalog.integrity.snapshot()
        assert snapshot["intent_resolutions"].get("rolled_back") == 1
        assert session.sql("SELECT COUNT(*) AS n FROM SALES").rows == [(2001,)]


_SETUP_SCRIPT = """
import sys
from repro.core import SmaDefinition, build_sma_set, count_star, minimum, maximum, total
from repro.lang import col
from repro.storage import Catalog, DATE, FLOAT64, INT32, Schema, char

root = sys.argv[1]
cat = Catalog(root)
schema = Schema.of(("id", INT32), ("ship", DATE), ("qty", FLOAT64), ("flag", char(1)))
table = cat.create_table("sales", schema, clustered_on="ship")
import datetime
base = datetime.date(1997, 1, 1)
table.append_rows([
    (i, base + datetime.timedelta(days=i // 50), float(i % 7), "AR"[i % 2])
    for i in range(3000)
])
table.heap.flush()
definitions = [
    SmaDefinition("smin", "sales", minimum(col("ship"))),
    SmaDefinition("smax", "sales", maximum(col("ship"))),
    SmaDefinition("cnt", "sales", count_star(), ("flag",)),
    SmaDefinition("sqty", "sales", total(col("qty")), ("flag",)),
]
sma_set, _ = build_sma_set(table, definitions, directory=root + "/sales.smas")
cat.register_sma_set("sales", sma_set)
cat.close()
print("done", flush=True)
"""

_CRASH_SCRIPT = """
import datetime
import sys
from repro.core.ingest import apply_dml
from repro.query.query import InsertStatement
from repro.storage import Catalog

root = sys.argv[1]
cat = Catalog.discover(root)
base = datetime.date(1999, 1, 1)
print("ready", flush=True)
batch_no = 0
while True:
    rows = tuple(
        (100000 + batch_no * 50 + i, base, float(i % 5), "A")
        for i in range(50)
    )
    apply_dml(cat, InsertStatement("sales", rows))
    batch_no += 1
"""


def test_sigkill_mid_ingest_then_repair(tmp_path):
    """SIGKILL a live ingest loop; verify --repair restores a clean epoch."""
    root = str(tmp_path / "db")
    env = {**os.environ, "PYTHONPATH": REPO_SRC}
    subprocess.run(
        [sys.executable, "-c", _SETUP_SCRIPT, root],
        env=env,
        check=True,
        capture_output=True,
        timeout=120,
    )

    child = subprocess.Popen(
        [sys.executable, "-c", _CRASH_SCRIPT, root],
        env=env,
        stdout=subprocess.PIPE,
        text=True,
    )
    try:
        assert child.stdout.readline().strip() == "ready"
        time.sleep(0.6)  # let some batches land, then die mid-flight
    finally:
        child.send_signal(signal.SIGKILL)
        child.wait(timeout=30)

    from repro.storage import Catalog

    cat = Catalog.discover(root)
    try:
        report = verify_catalog(cat, repair=True)
        assert report.ok, report.render()
        # Whatever epoch survived, the relation must be exactly whole
        # batches: no torn buckets, no half-applied batch.
        session = Session(cat)
        count = session.sql("SELECT COUNT(*) AS n FROM sales").rows[0][0]
        assert count >= 3000 and (count - 3000) % 50 == 0
        assert count == 3000 + 50 * cat.ingest_epoch("sales")
        # Repaired SMAs answer byte-identically to a full scan.
        for sql in (
            "SELECT COUNT(*) AS n, SUM(qty) AS s FROM sales",
            "SELECT flag, COUNT(*) AS n FROM sales GROUP BY flag ORDER BY flag",
        ):
            via_sma = session.sql(sql, mode="sma")
            via_scan = session.sql(sql, mode="scan")
            assert repr(via_sma.rows) == repr(via_scan.rows), sql
        # A second sweep finds nothing outstanding: zero torn buckets,
        # zero quarantined SMA files.
        assert verify_catalog(cat).issues == []
    finally:
        cat.close()
