"""DML through the serving tiers: QueryService and the shard router.

Service half: writes serialize behind the write queue, ingest telemetry
lands in the metrics snapshot + event log + Prometheus exposition.

Shard half: the router routes INSERT batches to the tail-owning (last)
shard only, scatters UPDATE/DELETE to every shard, and scatter-gather
reads stay byte-identical across the epochs the writes produce.
"""

from __future__ import annotations

import io
import json

from repro.obs.events import EventLog
from repro.obs.exposition import render_prometheus
from repro.server.service import QueryService
from repro.shard.partitioner import shard_init
from repro.storage import Catalog

from tests.conftest import SALES_SCHEMA, sales_rows
from tests.shard.conftest import live_cluster


def _events(stream: io.StringIO) -> list[dict]:
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestServiceDml:
    def test_write_metrics_and_events(self, catalog, sales_table, sales_sma_set):
        stream = io.StringIO()
        with EventLog(stream) as log, QueryService(
            catalog, workers=2, events=log
        ) as service:
            result = service.execute(
                "INSERT INTO SALES VALUES (9001, DATE '1999-01-01', 1.0, 'A'), "
                "(9002, DATE '1999-01-02', 2.0, 'R')"
            )
            assert result.rows == [(2, 1)]
            service.execute("DELETE FROM SALES WHERE id = 9002")
            snapshot = service.metrics.snapshot()

        ingest = snapshot["ingest"]
        assert ingest["batches"] == 2
        assert ingest["rows_total"]["SALES"] == {"delete": 1, "insert": 2}
        assert ingest["epochs"]["SALES"] == 2
        assert ingest["write_queue_depth"] == 0
        assert ingest["write_queue_peak"] >= 1

        applied = [e for e in _events(stream) if e["event"] == "ingest_applied"]
        assert [e["op"] for e in applied] == ["insert", "delete"]
        assert applied[0]["rows_affected"] == 2
        assert applied[0]["epoch"] == 1

        text = render_prometheus(snapshot)
        assert 'repro_ingest_rows_total{table="SALES",op="insert"} 2' in text
        assert 'repro_ingest_epoch{table="SALES"} 2' in text
        assert "repro_ingest_batches_total 2" in text

    def test_reads_between_writes_stay_consistent(self, catalog, sales_table, sales_sma_set):
        with QueryService(catalog, workers=4) as service:
            for i in range(4):
                service.execute(
                    f"INSERT INTO SALES VALUES ({9100 + i}, "
                    f"DATE '1999-02-01', 1.0, 'A')"
                )
                count = service.execute("SELECT COUNT(*) AS n FROM SALES")
                assert count.rows == [(2001 + i,)]
                assert count.epoch == i + 1


def _make_sharded_sales(tmp_path, num_shards: int = 2) -> str:
    source = tmp_path / "source"
    with Catalog(str(source)) as catalog:
        table = catalog.create_table(
            "SALES", SALES_SCHEMA, clustered_on="ship"
        )
        table.append_rows(sales_rows())
        table.heap.flush()
    out = tmp_path / "sharded"
    shard_init(str(source), str(out), num_shards)
    return str(out)


class TestShardDml:
    def test_insert_routes_to_last_shard_only(self, tmp_path):
        root = _make_sharded_sales(tmp_path)
        with live_cluster(root) as cluster:
            router = cluster.router
            before = [
                router.clients[i]
                .request({"op": "metrics"})["metrics"]["ingest"]["batches"]
                for i in range(2)
            ]
            result = router.execute(
                "INSERT INTO SALES VALUES (9001, DATE '1999-01-01', 1.0, 'A')"
            )
            assert result.rows == [(1, 1)]
            assert result.plan.strategy == "insert"
            assert "1 of 2 shard(s)" in result.plan.reason
            after = [
                router.clients[i]
                .request({"op": "metrics"})["metrics"]["ingest"]["batches"]
                for i in range(2)
            ]
            # Only the tail-owning shard applied the batch.
            assert after[0] == before[0]
            assert after[1] == before[1] + 1

    def test_update_delete_scatter_to_all_shards(self, tmp_path):
        root = _make_sharded_sales(tmp_path)
        with live_cluster(root) as cluster:
            router = cluster.router
            updated = router.execute(
                "UPDATE SALES SET qty = 0.0 WHERE qty = 1.0"
            )
            assert updated.plan.strategy == "update"
            assert "2 of 2 shard(s)" in updated.plan.reason
            # 2000 rows, qty = i % 7: ids 1, 8, 15, ... -> 286 rows,
            # spread across both shards.
            assert updated.rows[0][0] == 286
            zeroed = router.execute(
                "SELECT COUNT(*) AS n FROM SALES WHERE qty = 1.0"
            )
            assert zeroed.rows == [(0,)]
            deleted = router.execute("DELETE FROM SALES WHERE qty = 2.0")
            assert deleted.plan.strategy == "delete"
            assert deleted.rows[0][0] == 286
            count = router.execute("SELECT COUNT(*) AS n FROM SALES")
            assert count.rows == [(2000 - 286,)]

    def test_scatter_gather_reads_identical_across_epochs(self, tmp_path):
        """The tentpole read guarantee: merged reads are byte-identical
        before and after ingest for data the writes did not touch."""
        root = _make_sharded_sales(tmp_path)
        probe = (
            "SELECT flag, COUNT(*) AS n, SUM(qty) AS s FROM SALES "
            "WHERE id < 2000 GROUP BY flag ORDER BY flag"
        )
        with live_cluster(root) as cluster:
            router = cluster.router
            baseline = repr(router.execute(probe).rows)
            for i in range(3):
                router.execute(
                    f"INSERT INTO SALES VALUES ({9200 + i}, "
                    f"DATE '1999-03-01', 5.0, 'R')"
                )
                assert repr(router.execute(probe).rows) == baseline
            total = router.execute("SELECT COUNT(*) AS n FROM SALES")
            assert total.rows == [(2003,)]
