"""DML through the SQL front door: parser, session, differential checks.

The tentpole invariant tested here: a catalog that grew through the DML
path answers every query byte-identically to a catalog freshly rebuilt
from the equivalent final rows — inserts, updates and deletes leave no
trace beyond the data itself.
"""

from __future__ import annotations

import datetime

import pytest

from repro.errors import ParseError, PlanningError
from repro.query.query import (
    DeleteStatement,
    InsertStatement,
    UpdateStatement,
)
from repro.query.session import Session
from repro.sql.parser import parse_statement
from repro.storage import Catalog

from tests.conftest import SALES_SCHEMA, sales_rows


class TestParser:
    def test_insert_values(self):
        stmt = parse_statement(
            "INSERT INTO SALES VALUES (1, DATE '1999-01-01', 2.5, 'A'), "
            "(2, DATE '1999-01-02', 3.5, 'R')"
        )
        assert isinstance(stmt, InsertStatement)
        assert stmt.table == "SALES"
        assert stmt.columns == ()
        assert stmt.rows == (
            (1, datetime.date(1999, 1, 1), 2.5, "A"),
            (2, datetime.date(1999, 1, 2), 3.5, "R"),
        )

    def test_insert_with_column_list(self):
        stmt = parse_statement(
            "INSERT INTO SALES (id, ship, qty, flag) "
            "VALUES (7, DATE '1999-03-01', 1.0, 'A')"
        )
        assert stmt.columns == ("id", "ship", "qty", "flag")

    def test_update_set_where(self):
        stmt = parse_statement(
            "UPDATE SALES SET qty = 9.0, flag = 'R' WHERE id < 100"
        )
        assert isinstance(stmt, UpdateStatement)
        assert stmt.assignments == (("qty", 9.0), ("flag", "R"))
        assert "id" in repr(stmt.where)

    def test_delete_where(self):
        stmt = parse_statement("DELETE FROM SALES WHERE qty = 0.0")
        assert isinstance(stmt, DeleteStatement)

    def test_dml_values_must_be_literals(self):
        with pytest.raises(ParseError):
            parse_statement("INSERT INTO SALES VALUES (id + 1, 2, 3, 'A')")
        with pytest.raises(ParseError):
            parse_statement("UPDATE SALES SET qty = qty + 1")

    def test_insert_width_mismatch_rejected(self):
        with pytest.raises(PlanningError):
            parse_statement("INSERT INTO SALES VALUES (1, 2), (1, 2, 3)")


class TestSessionDml:
    def test_insert_bumps_epoch_and_counts(self, catalog, sales_table):
        session = Session(catalog)
        result = session.sql(
            "INSERT INTO SALES VALUES (9001, DATE '1999-01-01', 1.5, 'A')"
        )
        assert result.columns == ["rows_affected", "epoch"]
        assert result.rows == [(1, 1)]
        assert result.epoch == 1
        count = session.sql("SELECT COUNT(*) AS n FROM SALES")
        assert count.rows == [(2001,)]
        assert count.epoch == 1

    def test_update_and_delete_roundtrip(self, catalog, sales_table):
        session = Session(catalog)
        updated = session.sql("UPDATE SALES SET qty = 0.0 WHERE id < 10")
        assert updated.rows == [(10, 1)]
        zeroed = session.sql(
            "SELECT SUM(qty) AS s FROM SALES WHERE id < 10", mode="scan"
        )
        assert zeroed.rows == [(0.0,)]
        deleted = session.sql("DELETE FROM SALES WHERE id < 10")
        assert deleted.rows == [(10, 2)]
        count = session.sql("SELECT COUNT(*) AS n FROM SALES")
        assert count.rows == [(1990,)]

    def test_dml_rejects_unknown_column(self, catalog, sales_table):
        session = Session(catalog)
        with pytest.raises(Exception):
            session.sql("UPDATE SALES SET nope = 1.0")

    def test_explainable_plan_shape(self, catalog, sales_table):
        session = Session(catalog)
        result = session.sql("DELETE FROM SALES WHERE id >= 99999")
        assert result.plan.strategy == "delete"
        assert "intent" in result.plan.reason


def _apply_dml_history(session: Session) -> None:
    session.sql(
        "INSERT INTO SALES VALUES "
        "(9001, DATE '1999-01-01', 1.5, 'A'), "
        "(9002, DATE '1999-01-02', 2.5, 'R'), "
        "(9003, DATE '1999-01-03', 3.5, 'A')"
    )
    session.sql("UPDATE SALES SET qty = 6.0 WHERE id = 9002")
    session.sql("DELETE FROM SALES WHERE id = 9003")
    session.sql("INSERT INTO SALES VALUES (9004, DATE '1999-01-04', 4.5, 'R')")


QUERIES = (
    "SELECT COUNT(*) AS n, SUM(qty) AS s, MIN(ship) AS lo, MAX(ship) AS hi "
    "FROM SALES",
    "SELECT flag, COUNT(*) AS n, SUM(qty) AS s FROM SALES "
    "GROUP BY flag ORDER BY flag",
    "SELECT COUNT(*) AS n FROM SALES WHERE ship >= DATE '1999-01-01'",
)


def test_dml_catalog_matches_fresh_rebuild(catalog, sales_table, sales_sma_set, tmp_path):
    """Differential acceptance: post-DML answers == fresh-rebuild answers."""
    session = Session(catalog)
    _apply_dml_history(session)

    # Rebuild a pristine catalog holding the equivalent final rows.
    final_rows = [
        row for row in sales_rows()
    ] + [
        (9001, datetime.date(1999, 1, 1), 1.5, "A"),
        (9002, datetime.date(1999, 1, 2), 6.0, "R"),
        (9004, datetime.date(1999, 1, 4), 4.5, "R"),
    ]
    fresh_cat = Catalog(str(tmp_path / "fresh"))
    try:
        fresh = fresh_cat.create_table(
            "SALES", SALES_SCHEMA, clustered_on="ship"
        )
        fresh.append_rows(final_rows)
        fresh_session = Session(fresh_cat)
        for sql in QUERIES:
            for mode in ("sma", "scan"):
                grown = session.sql(sql, mode=mode if mode != "sma" else "auto")
                rebuilt = fresh_session.sql(sql, mode="scan")
                assert repr(grown.rows) == repr(rebuilt.rows), (sql, mode)
    finally:
        fresh_cat.close()


def test_sma_and_scan_agree_after_dml(catalog, sales_table, sales_sma_set):
    session = Session(catalog)
    _apply_dml_history(session)
    for sql in QUERIES:
        via_sma = session.sql(sql, mode="sma")
        via_scan = session.sql(sql, mode="scan")
        assert repr(via_sma.rows) == repr(via_scan.rows), sql


def test_decode_cache_never_serves_stale_buckets(catalog, sales_table):
    """Satellite: mutating a bucket invalidates its decoded-cache entry."""
    heap = sales_table.heap
    before = sales_table.read_bucket(0).copy()
    again = sales_table.read_bucket(0)
    assert heap.decode_hits >= 1  # the second read was served by cache
    assert (again == before).all()

    session = Session(catalog)
    session.sql("UPDATE SALES SET qty = 123.0 WHERE id = 0")
    after = sales_table.read_bucket(0)
    assert after[0]["qty"] == 123.0  # not the cached pre-image
