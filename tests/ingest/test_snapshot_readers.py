"""Epoch-snapshot isolation: readers pinned at epoch N never see N+1.

Every INSERT batch here has the same row count, so a reader's COUNT(*)
must equal ``base + batch * epoch`` for the epoch its own result reports
— any torn append, half-visible batch or stale trailing-bucket SMA entry
breaks that equality.  The suite drives the race on both scan backends:
thread morsels (shared heap object) and process workers (re-opened heap,
pin shipped in the task payload).
"""

from __future__ import annotations

import datetime
import threading

import pytest

from repro.errors import StorageError
from repro.query.query import InsertStatement
from repro.query.session import Session
from repro.storage import Catalog
from repro.storage.table import TableView

from tests.conftest import BASE_DATE, SALES_SCHEMA, sales_rows

BASE = 2000
BATCH = 64
BATCHES = 8


def _batch(b: int) -> InsertStatement:
    rows = tuple(
        (
            50_000 + b * BATCH + i,
            BASE_DATE + datetime.timedelta(days=400 + b),
            float(i % 9),
            "AR"[i % 2],
        )
        for i in range(BATCH)
    )
    return InsertStatement("SALES", rows)


class TestTableView:
    def test_pin_freezes_growth(self, catalog, sales_table):
        view = catalog.pin_view("SALES")
        assert view.epoch == 0
        assert view.num_records == BASE
        sales_table.append_rows(
            [(60_000 + i, BASE_DATE, 0.0, "A") for i in range(500)]
        )
        # The base table grew; the pinned view did not.
        assert sales_table.num_records == BASE + 500
        assert view.num_records == BASE
        assert sum(len(r) for _, r in view.iter_buckets()) == BASE

    def test_out_of_range_bucket_raises(self, catalog, sales_table):
        view = catalog.pin_view("SALES")
        with pytest.raises(StorageError):
            view.read_bucket(view.num_buckets)

    def test_pin_roundtrips_wire_form(self, catalog, sales_table):
        view = catalog.pin_view("SALES")
        pin = view.pin
        assert set(pin) == {"epoch", "buckets", "trailing"}
        rebuilt = TableView.from_pin(sales_table, pin)
        assert rebuilt.num_records == view.num_records
        assert rebuilt.pin == pin

    def test_views_are_read_only(self, catalog, sales_table):
        view = catalog.pin_view("SALES")
        with pytest.raises(Exception):
            view.append_rows([(1, BASE_DATE, 0.0, "A")])


def _run_reader_writer_race(catalog, *, backend: str, scan_workers: int = 2):
    """N reader threads assert count == base + batch * pinned epoch."""
    writer_session = Session(catalog)
    failures: list[str] = []
    done = threading.Event()

    def reader() -> None:
        session = Session(
            catalog, scan_workers=scan_workers, scan_backend=backend
        )
        while not done.is_set():
            result = session.sql("SELECT COUNT(*) AS n FROM SALES")
            count, epoch = result.rows[0][0], result.epoch
            expected = BASE + BATCH * epoch
            if count != expected:
                failures.append(
                    f"epoch {epoch}: count {count} != expected {expected}"
                )
                return

    readers = [threading.Thread(target=reader) for _ in range(3)]
    for thread in readers:
        thread.start()
    try:
        for b in range(BATCHES):
            result = writer_session.execute(_batch(b))
            assert result.rows == [(BATCH, b + 1)]
    finally:
        done.set()
        for thread in readers:
            thread.join()
    assert not failures, failures[:3]
    final = Session(catalog).sql("SELECT COUNT(*) AS n FROM SALES")
    assert final.rows == [(BASE + BATCHES * BATCH,)]
    assert final.epoch == BATCHES


def test_readers_pinned_thread_backend(catalog, sales_table, sales_sma_set):
    _run_reader_writer_race(catalog, backend="thread")


def test_readers_pinned_process_backend(tmp_path):
    # Process workers re-open the catalog from disk, so build it in a
    # directory this test owns (the shared fixture would race teardown).
    catalog = Catalog(str(tmp_path / "db"))
    try:
        table = catalog.create_table(
            "SALES", SALES_SCHEMA, clustered_on="ship"
        )
        table.append_rows(sales_rows())
        table.heap.flush()
        _run_reader_writer_race(catalog, backend="process", scan_workers=4)
    finally:
        from repro.query import procpool

        procpool.dispose_pools(catalog.root_dir)
        catalog.close()


def test_concurrent_results_match_serial_replay(catalog, sales_table, sales_sma_set):
    """Queries raced against ingest answer exactly like a serial replay
    at their pinned epoch."""
    session = Session(catalog)
    observed: dict[int, tuple] = {}
    done = threading.Event()

    def reader() -> None:
        reader_session = Session(catalog)
        while not done.is_set():
            result = reader_session.sql(
                "SELECT COUNT(*) AS n, SUM(qty) AS s FROM SALES"
            )
            observed.setdefault(result.epoch, tuple(result.rows))

    thread = threading.Thread(target=reader)
    thread.start()
    try:
        for b in range(BATCHES):
            session.execute(_batch(b))
    finally:
        done.set()
        thread.join()

    # Serial ground truth: replay the same batches on a scratch catalog,
    # capturing the relation at every epoch the racing reader observed.
    truth: dict[int, tuple] = {}
    scratch = Catalog(str(catalog.root_dir) + "-truth")
    try:
        table = scratch.create_table("SALES", SALES_SCHEMA, clustered_on="ship")
        table.append_rows(sales_rows())
        serial = Session(scratch)
        truth[0] = tuple(
            serial.sql("SELECT COUNT(*) AS n, SUM(qty) AS s FROM SALES").rows
        )
        for b in range(BATCHES):
            serial.execute(_batch(b))
            truth[b + 1] = tuple(
                serial.sql(
                    "SELECT COUNT(*) AS n, SUM(qty) AS s FROM SALES"
                ).rows
            )
    finally:
        scratch.close()
    assert observed  # the reader saw at least one epoch
    for epoch, rows in observed.items():
        assert repr(rows) == repr(truth[epoch]), f"epoch {epoch}"
