"""Unit tests for the trace collector: grafting, reconciliation, ledgers."""

import json

from repro.obs import Tracer, render_span_tree
from repro.obs.collect import (
    RECONCILE_FIELDS,
    build_ledger,
    graft_remote_trace,
    reconcile,
    span_from_wire,
)
from repro.storage.stats import IoStats


def _remote_trace(*, clock_origin: float = 0.0) -> dict:
    """A finished two-level remote trace, exported to wire form.

    ``clock_origin`` shifts the remote tracer's perf_counter origin so
    tests can simulate arbitrary cross-process clock skew.
    """
    tracer = Tracer()
    root = tracer.begin("query", root=True)
    root.annotate(ticket=7)
    child = tracer.begin("execute", parent=root)
    child.annotate(table="LINEITEM")
    leaf = tracer.begin("scan_morsel", parent=child)
    leaf.io = IoStats(
        sequential_page_reads=8, heap_page_reads=8, tuples_scanned=256
    )
    tracer.finish(leaf)
    tracer.finish(child)
    tracer.finish(root)
    wire = json.loads(json.dumps(root.to_dict()))  # exactly what ships

    def shift(node: dict) -> None:
        node["start_s"] += clock_origin
        for sub in node.get("children", ()):
            shift(sub)

    shift(wire)
    return wire


class TestSpanFromWire:
    def test_roundtrips_ids_times_io(self):
        wire = _remote_trace()
        span = span_from_wire(wire)
        assert span.trace_id == wire["trace_id"]
        assert span.span_id == wire["span_id"]
        assert span.start_s == wire["start_s"]
        leaf = span.children[0].children[0]
        assert leaf.name == "scan_morsel"
        assert leaf.io.page_reads == 8
        assert leaf.io.tuples_scanned == 256


class TestGraft:
    def test_fresh_ids_under_parent_trace(self):
        tracer = Tracer()
        with tracer.span("local_root") as parent:
            pass
        grafted = graft_remote_trace(tracer, parent, _remote_trace())
        local_ids = {parent.span_id}
        for span in grafted.walk():
            assert span.trace_id == parent.trace_id
            assert span.span_id not in local_ids
            local_ids.add(span.span_id)
        assert grafted in parent.children
        assert grafted.parent_id == parent.span_id
        # remote ids survive as attributes for event-log joins
        assert grafted.attrs["remote_trace_id"] != parent.trace_id or True
        assert "remote_span_id" in grafted.attrs

    def test_rebases_arbitrary_clock_skew_into_anchor_window(self):
        # A remote process whose perf_counter origin is light-years away
        # must still land inside the local span that timed the call.
        tracer = Tracer()
        with tracer.span("local_root") as parent:
            with tracer.span("shard_execute") as anchor:
                pass
        for skew in (-1e6, 0.0, +1e9):
            remote = _remote_trace(clock_origin=skew)
            grafted = graft_remote_trace(tracer, parent, remote, anchor=anchor)
            # float64 granularity at |origin| ~ 1e9 is ~1e-7 s; the
            # rebased tree must sit in the anchor window up to that
            eps = 1e-6
            assert grafted.start_s >= anchor.start_s - eps
            for span in grafted.walk():
                assert span.start_s >= anchor.start_s - eps
            assert abs(grafted.duration_s - remote["duration_s"]) < eps

    def test_rename_and_extra_attrs(self):
        tracer = Tracer()
        with tracer.span("dispatch") as parent:
            pass
        grafted = graft_remote_trace(
            tracer,
            parent,
            _remote_trace(),
            name="scan_morsel",
            attrs={"morsel": 3, "backend": "process"},
        )
        assert grafted.name == "scan_morsel"
        assert grafted.attrs["morsel"] == 3
        assert grafted.attrs["backend"] == "process"

    def test_grafted_io_feeds_io_total(self):
        tracer = Tracer()
        with tracer.span("local_root") as parent:
            pass
        graft_remote_trace(tracer, parent, _remote_trace())
        total = parent.io_total()
        assert total.page_reads == 8
        assert total.tuples_scanned == 256

    def test_renders_without_error(self):
        tracer = Tracer()
        with tracer.span("local_root") as parent:
            pass
        graft_remote_trace(tracer, parent, _remote_trace())
        assert "scan_morsel" in render_span_tree(parent)


class TestReconcile:
    def _traced_query(self):
        tracer = Tracer()
        with tracer.span("query") as root:
            pass
        graft_remote_trace(tracer, root, _remote_trace())
        return root

    def test_exact_when_totals_match(self):
        root = self._traced_query()
        report = reconcile(root, root.io_total())
        assert report.exact
        assert "MISMATCH" not in report.render()
        assert report.as_dict()["exact"] is True

    def test_mismatch_when_a_counter_drifts(self):
        root = self._traced_query()
        totals = root.io_total()
        totals.heap_page_reads += 1
        report = reconcile(root, totals)
        assert not report.exact
        rendered = report.render()
        assert "MISMATCH" in rendered
        bad = report.as_dict()["fields"]["heap_page_reads"]
        assert bad["leaf_spans"] + 1 == bad["query_totals"]

    def test_covers_every_reconcile_field(self):
        report = reconcile(self._traced_query(), IoStats())
        assert tuple(name for name, _, _ in report.fields) == RECONCILE_FIELDS


class TestBuildLedger:
    def test_attribution_and_aggregates(self):
        tracer = Tracer()
        root = tracer.begin("query", root=True)
        root.annotate(ticket=11, kind="aggregate", outcome="completed")
        tracer.record_span("queue_wait", parent=root, duration_s=0.5)
        for shard in range(2):
            span = tracer.begin("shard_execute", parent=root)
            span.annotate(shard=shard)
            tracer.finish(span)
            graft_remote_trace(tracer, span, _remote_trace(), anchor=span)
        stray = tracer.begin("grade", parent=root)
        stray.io = IoStats(sma_page_reads=2, sequential_page_reads=2)
        tracer.finish(stray)
        tracer.finish(root)

        ledger = build_ledger(root)
        assert ledger["trace_id"] == root.trace_id
        assert ledger["ticket"] == 11
        assert ledger["outcome"] == "completed"
        assert ledger["fan_out"] == 2
        assert ledger["queue_wait_s"] >= 0.5
        # table attribution: both grafted trees carry table=LINEITEM on
        # their execute span; the stray grade span has no table in scope
        assert ledger["tables"]["LINEITEM"]["heap_page_reads"] == 16
        assert ledger["tables"]["LINEITEM"]["tuples_scanned"] == 512
        assert ledger["tables"]["<unattributed>"]["sma_page_reads"] == 2
        assert ledger["io"]["page_reads"] == 18
        assert ledger["wall_by_kind"]["shard_execute"] >= 0.0
        assert ledger["spans"] == len(list(root.walk()))
        json.dumps(ledger)  # must be JSON-ready verbatim
