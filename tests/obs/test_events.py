"""Tests for the non-blocking JSONL event log."""

import io
import json
import threading
import time

from repro.obs import EventLog


class TestEventLog:
    def test_writes_jsonl_with_seq_and_ts(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with EventLog(path) as log:
            assert log.emit("query_start", ticket=1, kind="q1")
            assert log.emit("query_finish", ticket=1, outcome="completed")
        lines = [json.loads(line) for line in open(path, encoding="utf-8")]
        assert [ev["event"] for ev in lines] == ["query_start", "query_finish"]
        assert [ev["seq"] for ev in lines] == [1, 2]
        assert all(ev["ts"] > 0 for ev in lines)
        assert lines[0]["kind"] == "q1"

    def test_accepts_open_stream(self):
        stream = io.StringIO()
        log = EventLog(stream)
        log.emit("hello", n=1)
        log.close()
        assert json.loads(stream.getvalue())["event"] == "hello"

    def test_non_json_values_stringified(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with EventLog(path) as log:
            log.emit("odd", when=object())
        (event,) = [json.loads(line) for line in open(path, encoding="utf-8")]
        assert isinstance(event["when"], str)

    def test_emit_never_blocks_and_counts_drops(self):
        """A stalled writer fills the queue; emits keep returning fast."""

        class StallingStream(io.StringIO):
            def __init__(self):
                super().__init__()
                self.release = threading.Event()

            def write(self, text):
                self.release.wait(5.0)
                return super().write(text)

        stream = StallingStream()
        log = EventLog(stream, maxsize=4)
        started = time.perf_counter()
        results = [log.emit("e", i=i) for i in range(50)]
        elapsed = time.perf_counter() - started
        assert elapsed < 1.0, "emit blocked on a full queue"
        assert not all(results), "overflow emits must report False"
        assert log.stats()["dropped"] > 0
        stream.release.set()
        log.close()
        stats = log.stats()
        assert stats["queued"] == 0
        # every emit was either written or counted as dropped — none lost
        assert stats["written"] + stats["dropped"] == 50

    def test_emit_after_close_returns_false(self, tmp_path):
        log = EventLog(str(tmp_path / "events.jsonl"))
        log.close()
        assert log.emit("late") is False

    def test_close_flushes_queued_events(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = EventLog(path)
        for i in range(100):
            log.emit("e", i=i)
        log.close()
        lines = open(path, encoding="utf-8").readlines()
        assert len(lines) + log.stats()["dropped"] == 100

    def test_concurrent_emitters_unique_seq(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = EventLog(path, maxsize=4096)

        def emitter(base):
            for i in range(50):
                log.emit("e", i=base + i)

        threads = [
            threading.Thread(target=emitter, args=(t * 50,)) for t in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        log.close()
        events = [json.loads(line) for line in open(path, encoding="utf-8")]
        seqs = [ev["seq"] for ev in events]
        assert len(seqs) == len(set(seqs)) == 400
