"""End-to-end distributed tracing: router + shard workers (+ scan pool).

One traced query must come back as ONE span tree — the router's root,
a ``shard_execute`` child per scattered subquery, and each worker's
exported local tree grafted underneath — whose io-carrying leaf spans
sum byte-exactly to the router-side query totals (PR 4's attribution
invariant, extended across process boundaries).  Parametrized over
{1, 2, 4} shards x {thread, process} scan backends.
"""

from __future__ import annotations

import contextlib
import json
from types import SimpleNamespace

import pytest

from repro import cli
from repro.obs import Tracer
from repro.obs.collect import build_ledger, reconcile
from repro.shard.manifest import ShardManifest
from repro.shard.router import ShardEndpoint, ShardRouter
from repro.shard.worker import ShardWorker

from tests.obs.conftest import SHARD_COUNTS

BACKENDS = ("thread", "process")

SQL = (
    "SELECT SUM(L_EXTENDEDPRICE) FROM LINEITEM "
    "WHERE L_SHIPDATE >= 9100 AND L_SHIPDATE < 9400"
)


@contextlib.contextmanager
def traced_cluster(root: str, *, scan_backend: str = "thread", **router_kwargs):
    """In-process workers + a *traced* router over the sharded *root*."""
    manifest = ShardManifest.load(root)
    tracer = Tracer()
    workers = []
    router = None
    try:
        for shard_id in range(manifest.num_shards):
            worker = ShardWorker(
                shard_id,
                manifest.shard_path(root, shard_id),
                workers=2,
                scan_workers=2,
                scan_backend=scan_backend,
            )
            workers.append(worker.start())
        endpoints = [ShardEndpoint(w.shard_id, w.host, w.port) for w in workers]
        router = ShardRouter(
            endpoints, manifest=manifest, tracer=tracer, **router_kwargs
        ).start()
        yield SimpleNamespace(router=router, tracer=tracer, workers=workers)
    finally:
        if router is not None:
            router.shutdown(wait=True, cancel_pending=True)
        for worker in workers:
            worker.close()


@pytest.mark.parametrize("num_shards", SHARD_COUNTS)
@pytest.mark.parametrize("backend", BACKENDS)
class TestDistributedReconciliation:
    def test_merged_tree_reconciles_exactly(
        self, sharded_roots, num_shards, backend
    ):
        with traced_cluster(
            sharded_roots[num_shards], scan_backend=backend
        ) as cluster:
            result = cluster.router.execute(SQL)
            root = cluster.tracer.last_trace()

        assert root is not None and root.name == "query"
        report = reconcile(root, result.stats)
        assert report.exact, report.render()
        # real work happened and every byte of it is attributed
        assert result.stats.page_reads > 0
        assert root.io_total().tuples_scanned == result.stats.tuples_scanned

        legs = [s for s in root.walk() if s.name == "shard_execute"]
        assert len(legs) == num_shards
        for leg in legs:
            # each leg carries exactly one grafted remote tree, re-id'd
            # into the router's trace
            (remote_root,) = leg.children
            assert remote_root.trace_id == root.trace_id
            assert "remote_span_id" in remote_root.attrs

        ledger = build_ledger(root)
        assert ledger["fan_out"] == num_shards
        assert ledger["outcome"] == "completed"
        assert ledger["tables"]["LINEITEM"]["page_reads"] == (
            result.stats.page_reads
        )
        assert "<unattributed>" not in ledger["tables"]

    def test_ledger_event_and_metrics_recorded(
        self, sharded_roots, num_shards, backend, tmp_path
    ):
        from repro.obs import EventLog

        events_path = tmp_path / "events.jsonl"
        events = EventLog(str(events_path))
        with traced_cluster(
            sharded_roots[num_shards], scan_backend=backend, events=events
        ) as cluster:
            cluster.router.execute(SQL)
            snapshot = cluster.router.metrics.snapshot()
        events.close()

        ledger_section = snapshot["ledger"]
        assert ledger_section["queries"] == 1
        assert ledger_section["fan_out"] == num_shards
        assert ledger_section["tables"]["LINEITEM"]["page_reads"] > 0
        assert "shard_execute" in ledger_section["span_seconds"]

        records = [
            json.loads(line) for line in events_path.read_text().splitlines()
        ]
        by_type = {}
        for record in records:
            by_type.setdefault(record["event"], []).append(record)
        (ledger_event,) = by_type["query_ledger"]
        (trace_event,) = by_type["trace"]
        assert ledger_event["trace_id"] == trace_event["trace"]["trace_id"]
        assert by_type["query_start"][0]["trace_id"] == ledger_event["trace_id"]
        assert by_type["query_finish"][0]["trace_id"] == ledger_event["trace_id"]


class TestDistributedTraceCli:
    @pytest.fixture(scope="class")
    def cli_root(self, sharded_roots):
        return sharded_roots[2]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_exit_zero_and_artifacts(self, cli_root, backend, tmp_path, capsys):
        json_out = tmp_path / f"merged-{backend}.json"
        events_out = tmp_path / f"events-{backend}.jsonl"
        code = cli.main(
            [
                "trace",
                "--db", cli_root,
                "--distributed",
                "--scan-workers", "2",
                "--scan-backend", backend,
                "--json-out", str(json_out),
                "--events", str(events_out),
                SQL,
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "reconciliation: exact" in out
        assert "shard_execute" in out
        assert "ledger: fan_out=2" in out

        merged = json.loads(json_out.read_text())
        assert merged["reconciliation"]["exact"] is True
        assert merged["ledger"]["fan_out"] == 2
        assert merged["trace"]["name"] == "query"
        events = [
            json.loads(line) for line in events_out.read_text().splitlines()
        ]
        assert any(e["event"] == "query_ledger" for e in events)

    def test_dropped_span_tree_fails_reconciliation(
        self, cli_root, monkeypatch, capsys
    ):
        # Deliberately lose a worker's exported tree: the merged trace
        # then under-counts I/O and the CLI must exit non-zero.
        import repro.shard.router as router_mod

        def drop_graft(tracer, parent, node, **kwargs):
            return None

        monkeypatch.setattr(router_mod, "graft_remote_trace", drop_graft)
        code = cli.main(
            ["trace", "--db", cli_root, "--distributed", SQL]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "MISMATCH" in out

    def test_dropped_io_delta_fails_reconciliation(
        self, cli_root, monkeypatch, capsys
    ):
        # Keep the spans but strip every IoStats delta from the wire
        # form: structure survives, attribution doesn't — non-zero exit.
        import repro.shard.router as router_mod
        from repro.obs.collect import graft_remote_trace as real_graft

        def strip_io(node):
            node.pop("io", None)
            for child in node.get("children", ()):
                strip_io(child)
            return node

        def graft_without_io(tracer, parent, node, **kwargs):
            return real_graft(tracer, parent, strip_io(dict(node)), **kwargs)

        monkeypatch.setattr(router_mod, "graft_remote_trace", graft_without_io)
        code = cli.main(
            ["trace", "--db", cli_root, "--distributed", SQL]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "MISMATCH" in out
