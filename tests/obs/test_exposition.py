"""Prometheus exposition + HTTP endpoint tests.

The checker below is a deliberately minimal validator of the Prometheus
text format 0.0.4 — enough to catch malformed names, labels, values,
duplicate/misordered HELP/TYPE lines and inconsistent histograms.
"""

import json
import re
import urllib.error
import urllib.request

from repro.obs import MetricsServer, render_prometheus
from repro.server.metrics import MetricsRegistry
from repro.storage.stats import IoStats

_SAMPLE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)$"
)
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


def _base_name(sample_name: str, types: dict) -> str:
    """Histogram samples attach _bucket/_sum/_count to the declared name."""
    for suffix in ("_bucket", "_sum", "_count"):
        base = sample_name.removesuffix(suffix)
        if base != sample_name and types.get(base) == "histogram":
            return base
    return sample_name


def parse_prometheus(text: str) -> dict:
    """Validate *text* and return {metric_name: [(labels, value)]}."""
    helps: dict[str, str] = {}
    types: dict[str, str] = {}
    samples: dict[str, list] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            name, _, help_text = line[len("# HELP "):].partition(" ")
            assert help_text, f"line {lineno}: HELP without text"
            assert name not in helps, f"line {lineno}: duplicate HELP {name}"
            helps[name] = help_text
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            assert len(parts) == 4, f"line {lineno}: malformed TYPE"
            name, mtype = parts[2], parts[3]
            assert mtype in _TYPES, f"line {lineno}: bad type {mtype}"
            assert name not in types, f"line {lineno}: duplicate TYPE {name}"
            assert name not in samples, f"line {lineno}: TYPE after samples"
            types[name] = mtype
            continue
        assert not line.startswith("#"), f"line {lineno}: stray comment"
        match = _SAMPLE.match(line)
        assert match, f"line {lineno}: unparsable sample {line!r}"
        name, label_text, value_text = match.groups()
        labels = {}
        if label_text:
            matched = _LABEL.findall(label_text)
            rebuilt = ",".join(f'{k}="{v}"' for k, v in matched)
            assert rebuilt == label_text, (
                f"line {lineno}: malformed labels {label_text!r}"
            )
            labels = dict(matched)
        value = float(value_text)  # accepts +Inf/-Inf/NaN spellings
        base = _base_name(name, types)
        assert base in types, f"line {lineno}: sample {name} lacks TYPE"
        samples.setdefault(name, []).append((labels, value))
    # histogram consistency: cumulative buckets ending at +Inf == _count
    for name, mtype in types.items():
        if mtype != "histogram":
            continue
        buckets = samples.get(f"{name}_bucket", [])
        assert buckets, f"histogram {name} has no _bucket samples"
        counts = [value for labels, value in buckets]
        assert counts == sorted(counts), f"{name} buckets not cumulative"
        assert buckets[-1][0]["le"] == "+Inf"
        (_, count_value), = samples[f"{name}_count"]
        assert buckets[-1][1] == count_value
    return samples


def _busy_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    for _ in range(4):
        registry.record_submitted()
    registry.record_queue_wait(0.002)
    registry.record_success(
        "q1", 0.02,
        IoStats(sequential_page_reads=8, sma_page_reads=2,
                heap_page_reads=6, buffer_hits=5, buckets_fetched=10,
                buckets_skipped=30, tuples_scanned=320),
        strategy="sma_gaggr",
    )
    registry.record_success("range_scan", 0.001, IoStats(), strategy="sma_scan")
    registry.record_failure("q1")
    registry.record_rejected()
    registry.record_grading("LINEITEM", 0.6, 0.3, 0.1)
    registry.record_ledger(
        {
            "queue_wait_s": 0.002,
            "fan_out": 2,
            "wall_by_kind": {"query": 0.02, "shard_execute": 0.015},
            "tables": {
                "LINEITEM": {
                    "sma_page_reads": 2, "heap_page_reads": 6,
                    "page_reads": 8, "buffer_hits": 5,
                    "tuples_scanned": 320, "buckets_fetched": 10,
                    "buckets_skipped": 30,
                }
            },
        }
    )
    return registry


class TestRenderPrometheus:
    def test_output_passes_format_checker(self):
        samples = parse_prometheus(render_prometheus(_busy_registry().snapshot()))
        assert samples  # non-empty exposition

    def test_core_series_values(self):
        samples = parse_prometheus(render_prometheus(_busy_registry().snapshot()))
        outcomes = dict(
            (labels["outcome"], value)
            for labels, value in samples["repro_queries_total"]
        )
        assert outcomes["submitted"] == 4
        assert outcomes["completed"] == 2
        assert outcomes["failed"] == 1
        assert outcomes["rejected"] == 1
        by_kind = {
            (labels["kind"], labels["outcome"]): value
            for labels, value in samples["repro_queries_by_kind_total"]
        }
        assert by_kind[("q1", "completed")] == 1
        assert by_kind[("q1", "failed")] == 1
        file_reads = {
            labels["file"]: value
            for labels, value in samples["repro_io_file_page_reads_total"]
        }
        assert file_reads == {"sma": 2, "heap": 6}

    def test_query_ledger_series(self):
        samples = parse_prometheus(render_prometheus(_busy_registry().snapshot()))
        assert samples["repro_query_ledger_queries_total"][0][1] == 1
        assert samples["repro_query_ledger_fan_out_total"][0][1] == 2
        span_s = {
            labels["kind"]: value
            for labels, value in samples["repro_query_ledger_span_seconds_total"]
        }
        assert span_s == {"query": 0.02, "shard_execute": 0.015}
        page_reads = {
            labels["file"]: value
            for labels, value in samples["repro_query_ledger_page_reads_total"]
        }
        assert page_reads == {"sma": 2, "heap": 6}
        # a registry that never saw a ledger renders none of the series
        empty = parse_prometheus(render_prometheus(MetricsRegistry().snapshot()))
        assert "repro_query_ledger_queries_total" not in empty

    def test_grading_gauges_and_warning(self):
        registry = MetricsRegistry(ambivalent_break_even=0.25)
        registry.record_grading("LINEITEM", 0.5, 0.4, 0.1)  # crosses 0.25
        samples = parse_prometheus(render_prometheus(registry.snapshot()))
        fractions = {
            (labels["table"], labels["grade"]): value
            for labels, value in samples["repro_grading_fraction"]
        }
        assert fractions[("LINEITEM", "ambivalent")] == 0.4
        (labels, warnings), = samples["repro_ambivalent_warnings_total"]
        assert labels["table"] == "LINEITEM"
        assert warnings == 1

    def test_latency_histogram_counts_observations(self):
        samples = parse_prometheus(render_prometheus(_busy_registry().snapshot()))
        (_, count), = samples["repro_query_latency_seconds_count"]
        assert count == 2

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.record_success('we"ird\\kind\nnewline', 0.01)
        text = render_prometheus(registry.snapshot())
        samples = parse_prometheus(text)
        labels, value = next(
            (labels, value)
            for labels, value in samples["repro_queries_by_kind_total"]
        )
        assert value == 1
        assert "\n" not in labels["kind"]  # escaped, not literal

    def test_custom_namespace(self):
        text = render_prometheus(_busy_registry().snapshot(), namespace="sma")
        samples = parse_prometheus(text)
        assert "sma_queries_total" in samples
        assert not any(name.startswith("repro_") for name in samples)


class TestMetricsServer:
    def _get(self, url):
        with urllib.request.urlopen(url, timeout=5) as response:
            return response.status, response.headers, response.read().decode()

    def test_endpoints(self):
        registry = _busy_registry()
        with MetricsServer(registry.snapshot, port=0) as server:
            assert server.port != 0  # port 0 resolved to a free port

            status, headers, body = self._get(f"{server.url}/metrics")
            assert status == 200
            assert headers["Content-Type"].startswith("text/plain")
            parse_prometheus(body)

            status, _, body = self._get(f"{server.url}/healthz")
            health = json.loads(body)
            assert status == 200 and health["status"] == "ok"
            assert health["uptime_s"] >= 0

            status, _, body = self._get(f"{server.url}/snapshot")
            snapshot = json.loads(body)
            assert status == 200
            assert snapshot["queries"]["completed"] == 2

    def test_unknown_path_is_404(self):
        registry = MetricsRegistry()
        with MetricsServer(registry.snapshot, port=0) as server:
            try:
                urllib.request.urlopen(f"{server.url}/nope", timeout=5)
            except urllib.error.HTTPError as error:
                assert error.code == 404
            else:
                raise AssertionError("expected a 404")
