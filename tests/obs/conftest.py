"""Shared fixtures for the observability suite.

One session-scoped TPC-D LINEITEM catalog (SF=0.002, sorted) is
partitioned into 1-, 2- and 4-shard roots once; the distributed-trace
and failure-survival tests open real workers over the shard catalogs.
"""

from __future__ import annotations

import pytest

from repro.query import procpool
from repro.shard.manifest import ShardManifest
from repro.shard.partitioner import shard_init
from repro.storage.catalog import Catalog

SHARD_COUNTS = (1, 2, 4)


@pytest.fixture(scope="session")
def sharded_roots(tmp_path_factory):
    """{num_shards: sharded_root} built from one SF=0.002 LINEITEM load."""
    from repro.tpcd.loader import load_lineitem

    root = tmp_path_factory.mktemp("obs-dist")
    source = root / "source"
    with Catalog(str(source), buffer_pages=8192) as catalog:
        load_lineitem(catalog, scale_factor=0.002, clustering="sorted")
    sharded = {}
    for num_shards in SHARD_COUNTS:
        out = root / f"sharded-{num_shards}"
        shard_init(str(source), str(out), num_shards)
        sharded[num_shards] = str(out)
    yield sharded
    # In-process workers on the process backend attach scan pools to the
    # shard catalog dirs; tear them down with the roots.
    for out in sharded.values():
        manifest = ShardManifest.load(out)
        for shard_id in range(manifest.num_shards):
            procpool.dispose_pools(manifest.shard_path(out, shard_id))
