"""Unit tests for the tracer: context, threading, I/O windows, rendering."""

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.obs import NO_TRACER, Span, Tracer, render_span_tree, resolve_tracer
from repro.obs.trace import _NOOP_CM, _NOOP_SPAN
from repro.storage.stats import IoStats


class TestSpanBasics:
    def test_nesting_follows_thread_current(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                with tracer.span("grandchild") as grandchild:
                    pass
        assert child in root.children
        assert grandchild in child.children
        assert grandchild.trace_id == root.trace_id
        assert [s.name for s in root.walk()] == ["root", "child", "grandchild"]

    def test_current_restored_after_exit(self):
        tracer = Tracer()
        assert tracer.current() is None
        with tracer.span("root") as root:
            assert tracer.current() is root
            with tracer.span("child") as child:
                assert tracer.current() is child
            assert tracer.current() is root
        assert tracer.current() is None

    def test_explicit_parent_beats_current(self):
        tracer = Tracer()
        with tracer.span("a") as a:
            pass
        with tracer.span("b"):
            with tracer.span("adopted", parent=a) as adopted:
                pass
        assert adopted in a.children

    def test_root_forces_fresh_trace(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("fresh", root=True) as fresh:
                pass
        assert fresh.parent_id is None
        assert fresh not in outer.children
        assert fresh.trace_id != outer.trace_id

    def test_io_window_delta(self):
        tracer = Tracer()
        stats = IoStats()
        stats.sequential_page_reads += 3
        with tracer.span("io", stats=stats) as span:
            stats.sequential_page_reads += 5
            stats.heap_page_reads += 5
            stats.tuples_scanned += 40
        assert span.io.page_reads == 5
        assert span.io.heap_page_reads == 5
        assert span.io.tuples_scanned == 40
        # the pre-existing counts stayed out of the window
        assert stats.sequential_page_reads == 8

    def test_io_total_sums_leaves(self):
        tracer = Tracer()
        stats = IoStats()
        with tracer.span("root") as root:
            with tracer.span("a", stats=stats):
                stats.sequential_page_reads += 2
            with tracer.span("b", stats=stats):
                stats.random_page_reads += 3
        assert len(root.io_spans()) == 2
        assert root.io_total().page_reads == 5

    def test_begin_finish_external_lifetime(self):
        tracer = Tracer()
        span = tracer.begin("query", root=True)
        assert tracer.current() is None  # begin does not bind the thread
        tracer.finish(span)
        assert span.end_s is not None
        assert tracer.last_trace() is span

    def test_record_span_backdates_start(self):
        tracer = Tracer()
        root = tracer.begin("query", root=True)
        span = tracer.record_span("queue_wait", parent=root, duration_s=0.5)
        assert span in root.children
        assert span.duration_s > 0.49

    def test_finished_roots_reach_sinks(self):
        seen = []
        tracer = Tracer(on_trace=[seen.append])
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        assert [s.name for s in seen] == ["root"]

    def test_sink_exceptions_are_swallowed(self):
        def bad_sink(root):
            raise RuntimeError("sink broke")

        tracer = Tracer(on_trace=[bad_sink])
        with tracer.span("root"):
            pass
        assert tracer.finished_traces == 1

    def test_to_dict_roundtrips_through_json(self):
        import json

        tracer = Tracer()
        stats = IoStats()
        with tracer.span("root", attrs={"mode": "auto"}) as root:
            with tracer.span("leaf", stats=stats):
                stats.buffer_hits += 1
        data = json.loads(json.dumps(root.to_dict()))
        assert data["name"] == "root"
        assert data["attrs"]["mode"] == "auto"
        assert data["children"][0]["io"]["buffer_hits"] == 1


class TestCrossThread:
    def test_activate_adopts_span_on_worker_thread(self):
        tracer = Tracer()
        root = tracer.begin("query", root=True)
        names = []

        def worker():
            with tracer.activate(root):
                with tracer.span("inner") as inner:
                    names.append(inner.thread_name)
            assert tracer.current() is None

        thread = threading.Thread(target=worker, name="adoptee")
        thread.start()
        thread.join()
        tracer.finish(root)
        assert [s.name for s in root.children] == ["inner"]
        assert names == ["adoptee"]

    def test_explicit_parent_propagates_to_pool_threads(self):
        """The morsel-dispatch pattern: capture current once, fan out."""
        tracer = Tracer()
        with tracer.span("root") as root:
            parent = tracer.current()

            def run_morsel(i):
                with tracer.span("morsel", parent=parent, attrs={"i": i}):
                    pass

            with ThreadPoolExecutor(max_workers=4) as pool:
                for future in [pool.submit(run_morsel, i) for i in range(8)]:
                    future.result()
        assert sorted(s.attrs["i"] for s in root.children) == list(range(8))

    def test_sixteen_threads_interleaved_traces_stay_separate(self):
        """16 threads each build their own trace; no span leaks across."""
        tracer = Tracer(keep=32)
        barrier = threading.Barrier(16)

        def one_trace(i):
            barrier.wait()
            with tracer.span(f"root-{i}") as root:
                for j in range(5):
                    with tracer.span(f"child-{i}-{j}"):
                        pass
            return root

        with ThreadPoolExecutor(max_workers=16) as pool:
            roots = [f.result() for f in [pool.submit(one_trace, i) for i in range(16)]]
        assert tracer.finished_traces == 16
        for i, root in enumerate(roots):
            spans = list(root.walk())
            assert len(spans) == 6
            # every span's name carries the owning trace's index
            assert all(s.name.split("-")[1] == str(i) for s in spans)
            assert all(s.trace_id == root.trace_id for s in spans)


class TestNoop:
    def test_resolve_tracer(self):
        assert resolve_tracer(None) is NO_TRACER
        tracer = Tracer()
        assert resolve_tracer(tracer) is tracer

    def test_noop_span_is_shared_and_inert(self):
        cm = NO_TRACER.span("anything", stats=IoStats(), attrs={"a": 1})
        assert cm is _NOOP_CM
        with cm as span:
            assert span is _NOOP_SPAN
            span.annotate(ignored=True)
        assert span.attrs == {}
        assert span.io_total().page_reads == 0
        assert NO_TRACER.begin("x") is _NOOP_SPAN
        assert NO_TRACER.current() is None
        assert NO_TRACER.last_trace() is None
        assert not NO_TRACER.enabled


class TestRendering:
    def test_render_span_tree_shape(self):
        tracer = Tracer()
        stats = IoStats()
        with tracer.span("execute", attrs={"mode": "auto"}) as root:
            with tracer.span("plan"):
                with tracer.span("grade", stats=stats):
                    stats.sequential_page_reads += 2
                    stats.sma_page_reads += 2
            with tracer.span("run"):
                pass
        text = render_span_tree(root)
        lines = text.splitlines()
        assert lines[0].startswith("execute")
        assert "mode=auto" in lines[0]
        assert any("├─ plan" in line for line in lines)
        assert any("└─ run" in line for line in lines)
        assert any("io: 2 reads (2 sma / 0 heap)" in line for line in lines)

    def test_span_type_annotation_surface(self):
        # the public names exist and Span exposes the documented slots
        span = Span("x", trace_id=1, span_id=1, parent_id=None)
        assert span.duration_s == 0.0
        assert span.io is None
