"""End-to-end tracing: exact I/O attribution and cross-thread span trees.

The tracer's contract is that io-carrying spans never nest and jointly
cover every counter charge site, so summing the *leaf* deltas of a trace
reproduces the query's total IoStats exactly — for every strategy, serial
and morsel-parallel, standalone and under the concurrent query service.
"""

import datetime

import pytest

from repro.core import count_star, total
from repro.lang import cmp, col
from repro.obs import EventLog, Tracer
from repro.query.query import AggregateQuery, OutputAggregate, ScanQuery
from repro.query.session import Session
from repro.server import QueryService

from tests.conftest import BASE_DATE


def agg_query(days=20):
    return AggregateQuery(
        table="SALES",
        aggregates=(
            OutputAggregate("s", total(col("qty"))),
            OutputAggregate("n", count_star()),
        ),
        where=cmp("ship", "<=", BASE_DATE + datetime.timedelta(days=days)),
        group_by=("flag",),
        order_by=("flag",),
    )


def scan_query(days=5):
    return ScanQuery(
        table="SALES",
        where=cmp("ship", "<=", BASE_DATE + datetime.timedelta(days=days)),
        columns=("id", "qty"),
    )


def assert_exact_attribution(root, stats):
    """Leaf io deltas must reproduce the query's total, field for field."""
    leaf_total = root.io_total().as_dict()
    query_total = stats.as_dict()
    assert leaf_total == query_total, (
        f"leaf spans {leaf_total} != query totals {query_total}"
    )


@pytest.fixture
def traced_session(catalog, sales_table, sales_sma_set):
    tracer = Tracer(keep=64)
    return Session(catalog, tracer=tracer), tracer


@pytest.fixture
def traced_parallel_session(catalog, sales_table, sales_sma_set):
    tracer = Tracer(keep=64)
    return Session(catalog, scan_workers=4, tracer=tracer), tracer


class TestExactAttribution:
    @pytest.mark.parametrize("mode", ["auto", "sma", "scan"])
    def test_aggregate_all_strategies(self, traced_session, mode):
        session, tracer = traced_session
        result = session.execute(agg_query(), mode=mode)
        assert_exact_attribution(tracer.last_trace(), result.stats)

    @pytest.mark.parametrize("mode", ["auto", "scan"])
    def test_scan_all_strategies(self, traced_session, mode):
        session, tracer = traced_session
        result = session.execute(scan_query(), mode=mode)
        assert_exact_attribution(tracer.last_trace(), result.stats)

    @pytest.mark.parametrize("mode", ["auto", "sma", "scan"])
    def test_parallel_aggregate(self, traced_parallel_session, mode):
        session, tracer = traced_parallel_session
        result = session.execute(agg_query(), mode=mode)
        assert_exact_attribution(tracer.last_trace(), result.stats)

    def test_parallel_scan(self, traced_parallel_session):
        session, tracer = traced_parallel_session
        result = session.execute(scan_query(days=40), mode="scan")
        assert_exact_attribution(tracer.last_trace(), result.stats)

    def test_cold_run_includes_grading_reads(self, traced_session):
        session, tracer = traced_session
        result = session.execute(agg_query(), cold=True)
        root = tracer.last_trace()
        assert_exact_attribution(root, result.stats)
        grade_spans = [s for s in root.walk() if s.name == "grade"]
        assert grade_spans and grade_spans[0].io.page_reads > 0
        assert grade_spans[0].io.sma_page_reads == grade_spans[0].io.page_reads

    def test_span_tree_names_planning_and_execution(self, traced_session):
        session, tracer = traced_session
        session.execute(agg_query(), mode="sma")
        names = {s.name for s in tracer.last_trace().walk()}
        assert {"execute", "plan", "logical_rewrite", "grade",
                "cost_access_path", "run"} <= names

    def test_untraced_session_collects_nothing(self, catalog, sales_table,
                                               sales_sma_set):
        session = Session(catalog)
        session.execute(agg_query())
        assert session.tracer.last_trace() is None
        assert not session.tracer.enabled


class TestServicePropagation:
    """Per-query root spans survive the executor + morsel thread hops."""

    def test_sixteen_workers_exact_attribution(self, catalog, sales_table,
                                               sales_sma_set):
        roots = []
        tracer = Tracer(on_trace=[roots.append], keep=128)
        with QueryService(
            catalog, workers=16, queue_depth=128, scan_workers=2,
            tracer=tracer,
        ) as service:
            tickets = []
            for i in range(48):
                query = agg_query(days=10 + i % 3) if i % 2 else scan_query()
                mode = ("auto", "sma", "scan")[i % 3]
                if mode == "sma" and i % 2 == 0:
                    mode = "auto"  # scans have no sma-only aggregate mode
                tickets.append(
                    service.submit(query, mode=mode, kind=f"k{i % 4}")
                )
            results = {t.id: t.result() for t in tickets}
        assert len(roots) == 48
        by_ticket = {root.attrs["ticket"]: root for root in roots}
        assert set(by_ticket) == set(results)
        for ticket_id, result in results.items():
            root = by_ticket[ticket_id]
            assert root.name == "query"
            assert root.attrs["outcome"] == "completed"
            # every span of the tree belongs to this trace
            assert all(s.trace_id == root.trace_id for s in root.walk())
            assert "execute" in {s.name for s in root.walk()}
            assert_exact_attribution(root, result.stats)

    def test_sixteen_workers_under_transient_faults(self, catalog,
                                                    sales_table,
                                                    sales_sma_set):
        """Retry charges survive the executor hop and reconcile exactly.

        Transient heap faults force load leaders into the pool's retry
        loop while 16 workers share the catalog; the summed per-query
        ``read_retries`` must equal the pool counter growth, alongside
        the usual hit/miss partition.
        """
        from repro.storage.faults import FaultInjector, FaultSpec, RetryPolicy

        injector = FaultInjector(
            seed=7,
            specs=(FaultSpec("transient", path=".heap", probability=0.5),),
        )
        old_policy = catalog.pool.retry_policy
        catalog.install_fault_injector(injector)
        catalog.pool.retry_policy = RetryPolicy(
            max_attempts=10, base_backoff_s=0.0
        )
        catalog.pool.clear()  # force physical loads through the faults
        baseline = catalog.pool.counters()
        try:
            with QueryService(
                catalog, workers=16, queue_depth=64
            ) as service:
                tickets = [
                    service.submit(agg_query(days=10 + i % 5), mode="scan")
                    for i in range(32)
                ]
                results = [ticket.result() for ticket in tickets]
        finally:
            catalog.install_fault_injector(None)
            catalog.pool.retry_policy = old_policy

        delta = catalog.pool.counters() - baseline
        assert injector.fired_count() > 0
        assert delta.retries > 0
        assert delta.retries == sum(r.stats.read_retries for r in results)
        assert delta.misses == sum(r.stats.page_reads for r in results)
        assert delta.hits == sum(r.stats.buffer_hits for r in results)

    def test_queue_wait_recorded_as_span(self, catalog, sales_table,
                                         sales_sma_set):
        roots = []
        tracer = Tracer(on_trace=[roots.append])
        with QueryService(catalog, workers=1, tracer=tracer) as service:
            service.execute(agg_query())
        (root,) = roots
        assert "queue_wait" in {s.name for s in root.walk()}

    def test_trace_events_emitted_per_query(self, catalog, sales_table,
                                            sales_sma_set, tmp_path):
        import json

        path = str(tmp_path / "events.jsonl")
        log = EventLog(path)
        tracer = Tracer()
        with QueryService(
            catalog, workers=4, tracer=tracer, events=log,
        ) as service:
            tickets = [service.submit(agg_query(), kind="agg")
                       for _ in range(8)]
            for ticket in tickets:
                ticket.result()
        log.close()
        events = [json.loads(line) for line in open(path, encoding="utf-8")]
        kinds = [event["event"] for event in events]
        assert kinds.count("trace") == 8
        assert kinds.count("query_start") == 8
        assert kinds.count("query_finish") == 8
        trace_event = next(e for e in events if e["event"] == "trace")
        assert trace_event["trace"]["name"] == "query"
        child_names = [c["name"] for c in trace_event["trace"]["children"]]
        assert "execute" in child_names
