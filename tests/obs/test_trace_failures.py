"""Span and attribution survival under process death.

Two kill scenarios, one invariant: whatever dies mid-query, the trace
that survives must still account for exactly the I/O the query charged —
retried/fallback spans carry the retried work's I/O, failed dispatches
contribute none, nothing is double-counted.

* SIGKILL the scan-pool workers: the query falls back to thread
  morsels; the merged trace reconciles against the (thread-executed)
  query totals.
* SIGKILL a shard worker subprocess: the routed query fails after
  retries with an error-annotated, io-free ``shard_execute`` span; a
  restarted worker on the same endpoint serves the next query with an
  exactly-reconciling merged tree again.
"""

from __future__ import annotations

import datetime
import os
import signal

import pytest

from repro.core import (
    SmaDefinition,
    build_sma_set,
    count_star,
    minimum,
    total,
)
from repro.errors import ShardUnavailableError
from repro.lang import cmp, col
from repro.obs import Tracer
from repro.obs.collect import reconcile
from repro.query import procpool
from repro.query.query import AggregateQuery, OutputAggregate
from repro.query.session import Session
from repro.shard.manifest import ShardManifest
from repro.shard.router import ShardRouter, launch_local_shards, stop_local_shards
from repro.shard.worker import ShardWorker
from repro.storage import Catalog
from repro.storage.faults import RetryPolicy

from tests.conftest import BASE_DATE, SALES_SCHEMA, sales_rows

SQL = (
    "SELECT SUM(L_EXTENDEDPRICE) FROM LINEITEM "
    "WHERE L_SHIPDATE >= 9100 AND L_SHIPDATE < 9400"
)


class TestProcPoolWorkerDeath:
    @pytest.fixture()
    def crash_catalog(self, tmp_path):
        """Function-scoped SALES catalog: this test kills its pool, so
        it must not share workers with the rest of the suite."""
        cat = Catalog(str(tmp_path / "db"))
        table = cat.create_table("SALES", SALES_SCHEMA, clustered_on="ship")
        table.append_rows(sales_rows())
        definitions = [
            SmaDefinition("smin", "SALES", minimum(col("ship"))),
            SmaDefinition("cnt", "SALES", count_star(), ("flag",)),
        ]
        sma_set, _ = build_sma_set(
            table, definitions, directory=str(tmp_path / "db" / "SALES.smas")
        )
        cat.register_sma_set("SALES", sma_set)
        yield cat
        procpool.dispose_pools(cat.root_dir)
        cat.close()

    def test_fallback_trace_still_reconciles(self, crash_catalog):
        query = AggregateQuery(
            table="SALES",
            aggregates=(
                OutputAggregate("s", total(col("qty"))),
                OutputAggregate("n", count_star()),
            ),
            where=cmp(
                "ship", "<=", BASE_DATE + datetime.timedelta(days=45)
            ),
            group_by=("flag",),
            order_by=("flag",),
        )
        tracer = Tracer(keep=16)
        session = Session(
            crash_catalog,
            scan_workers=4,
            morsel_buckets=1,
            scan_backend="process",
            tracer=tracer,
        )
        reference = session.execute(query, mode="scan")
        healthy = tracer.last_trace()
        assert reconcile(healthy, reference.stats).exact

        pool = procpool.get_pool(
            crash_catalog.root_dir, crash_catalog.pool.capacity_pages
        )
        workers = list(pool._executor._processes.values())
        assert workers, "pool should have live worker processes"
        before = procpool.pool_gauges()["fallbacks"]
        for worker in workers:
            os.kill(worker.pid, signal.SIGKILL)

        result = session.execute(query, mode="scan")
        assert procpool.pool_gauges()["fallbacks"] >= before + 1
        assert result.rows == reference.rows

        root = tracer.last_trace()
        report = reconcile(root, result.stats)
        # The dead dispatch contributed no I/O; the thread-fallback
        # morsel spans carry all of the retried work exactly once.
        assert report.exact, report.render()
        morsels = [s for s in root.walk() if s.name == "scan_morsel"]
        assert morsels and all(s.io is not None for s in morsels)
        assert not any(
            s.attrs.get("backend") == "process" for s in morsels
        ), "process workers were dead; no process-backend span may carry io"


class TestShardWorkerDeath:
    def test_killed_shard_then_restart(self, sharded_roots, tmp_path):
        root = sharded_roots[2]
        manifest = ShardManifest.load(root)
        tracer = Tracer(keep=16)
        processes = launch_local_shards(root, manifest=manifest)
        restarted = None
        try:
            with ShardRouter(
                [handle.endpoint for handle in processes],
                manifest=manifest,
                tracer=tracer,
                retry_policy=RetryPolicy(max_attempts=2),
            ) as router:
                reference = router.execute(SQL)
                assert reconcile(tracer.last_trace(), reference.stats).exact

                victim = processes[1]
                os.kill(victim.process.pid, signal.SIGKILL)
                victim.process.wait()

                with pytest.raises(ShardUnavailableError):
                    router.execute(SQL)

                failed = tracer.last_trace()
                assert failed.attrs["outcome"] == "failed"
                legs = [
                    s for s in failed.walk() if s.name == "shard_execute"
                ]
                dead = [s for s in legs if "error" in s.attrs]
                assert dead, "the killed shard's leg must carry the error"
                for leg in dead:
                    # a failed leg contributes NO I/O — retries that
                    # never succeeded must not leak into attribution
                    assert leg.io is None
                    assert not leg.children

                # Restart the shard on the same endpoint (in-process is
                # fine; the wire protocol doesn't care) and re-query:
                # attribution is exact again, retried connects included.
                restarted = ShardWorker(
                    victim.shard_id,
                    manifest.shard_path(root, victim.shard_id),
                    host=victim.endpoint.host,
                    port=victim.endpoint.port,
                    workers=2,
                ).start()
                result = router.execute(SQL)
                assert result.rows == reference.rows
                report = reconcile(tracer.last_trace(), result.stats)
                assert report.exact, report.render()
        finally:
            if restarted is not None:
                restarted.close()
            stop_local_shards(processes)
