"""Tests for the one-call TPC-D loader."""

import numpy as np

from repro.tpcd.loader import load_lineitem, load_tpcd


class TestLoadLineitem:
    def test_loads_and_indexes(self, catalog):
        loaded = load_lineitem(catalog, scale_factor=0.002)
        assert loaded.table.num_records > 0
        assert loaded.sma_set is not None
        assert loaded.sma_set.num_files == 26  # the paper's count
        assert catalog.sma_set("LINEITEM", "q1") is loaded.sma_set

    def test_sorted_clustering_annotated(self, catalog):
        loaded = load_lineitem(catalog, scale_factor=0.002, clustering="sorted")
        assert loaded.table.clustered_on == "L_SHIPDATE"
        everything = loaded.table.read_all()
        assert (np.diff(everything["L_SHIPDATE"]) >= 0).all()

    def test_uniform_clustering_not_annotated(self, catalog):
        loaded = load_lineitem(
            catalog, scale_factor=0.002, clustering="uniform"
        )
        assert loaded.table.clustered_on is None

    def test_no_smas_mode(self, catalog):
        loaded = load_lineitem(catalog, scale_factor=0.002, build_smas=False)
        assert loaded.sma_set is None
        assert loaded.build_reports == []

    def test_pages_per_bucket(self, catalog):
        loaded = load_lineitem(
            catalog, scale_factor=0.002, pages_per_bucket=4, build_smas=False
        )
        assert loaded.table.layout.pages_per_bucket == 4

    def test_contamination_counted(self, catalog):
        loaded = load_lineitem(
            catalog, scale_factor=0.002, contaminate_fraction=0.2,
            build_smas=False,
        )
        expected = round(loaded.table.num_buckets * 0.2)
        assert abs(loaded.contaminated_buckets - expected) <= 1

    def test_deterministic_given_seed(self, tmp_path):
        from repro.storage import Catalog

        with Catalog(str(tmp_path / "a")) as cat_a, Catalog(
            str(tmp_path / "b")
        ) as cat_b:
            first = load_lineitem(cat_a, scale_factor=0.002, build_smas=False)
            second = load_lineitem(cat_b, scale_factor=0.002, build_smas=False)
            np.testing.assert_array_equal(
                first.table.read_all(), second.table.read_all()
            )


class TestLoadTpcd:
    def test_loads_requested_tables(self, catalog):
        loaded = load_tpcd(
            catalog, scale_factor=0.002, tables=("ORDERS", "LINEITEM", "NATION")
        )
        assert set(loaded) == {"ORDERS", "LINEITEM", "NATION"}
        assert catalog.has_table("ORDERS")

    def test_orders_sorted_on_orderdate_when_clustered(self, catalog):
        loaded = load_tpcd(
            catalog, scale_factor=0.002, tables=("ORDERS",), clustering="sorted"
        )
        dates = loaded["ORDERS"].read_all()["O_ORDERDATE"]
        assert (np.diff(dates) >= 0).all()
