"""Tests for the paper's workload definitions (Query 1, Figure 4, Query 6)."""

import datetime


from repro.core.aggregates import AggregateKind
from repro.lang.predicate import And, ColumnConstCmp
from repro.query.sma_gaggr import sma_covers
from repro.tpcd.queries import (
    QUERY1_GROUPING,
    query1,
    query1_sma_definitions,
    query6,
    query6_sma_definitions,
)
from repro.tpcd.schema import LINEITEM


class TestQuery1:
    def test_matches_figure_3(self):
        query = query1(delta=90)
        assert query.group_by == ("L_RETURNFLAG", "L_LINESTATUS")
        assert query.order_by == ("L_RETURNFLAG", "L_LINESTATUS")
        assert [a.name for a in query.aggregates] == [
            "SUM_QTY", "SUM_BASE_PRICE", "SUM_DISC_PRICE", "SUM_CHARGE",
            "AVG_QTY", "AVG_PRICE", "AVG_DISC", "COUNT_ORDER",
        ]

    def test_delta_arithmetic(self):
        predicate = query1(delta=90).where
        assert isinstance(predicate, ColumnConstCmp)
        assert predicate.constant == datetime.date(1998, 9, 2)

    def test_explicit_cutoff_overrides_delta(self):
        cutoff = datetime.date(1995, 1, 1)
        assert query1(cutoff=cutoff).where.constant == cutoff

    def test_validates_against_lineitem(self):
        query1().validate(LINEITEM)


class TestFigure4Definitions:
    def test_eight_definitions(self):
        definitions = query1_sma_definitions()
        assert [d.name for d in definitions] == [
            "max", "min", "count", "qty", "dis", "ext", "extdis", "extdistax",
        ]

    def test_minmax_ungrouped_rest_grouped(self):
        for definition in query1_sma_definitions():
            if definition.name in ("min", "max"):
                assert definition.group_by == ()
            else:
                assert definition.group_by == QUERY1_GROUPING

    def test_kinds_match_figure_4(self):
        by_name = {d.name: d for d in query1_sma_definitions()}
        assert by_name["max"].aggregate.kind is AggregateKind.MAX
        assert by_name["min"].aggregate.kind is AggregateKind.MIN
        assert by_name["count"].aggregate.kind is AggregateKind.COUNT
        for name in ("qty", "dis", "ext", "extdis", "extdistax"):
            assert by_name[name].aggregate.kind is AggregateKind.SUM

    def test_definitions_validate_against_lineitem(self):
        for definition in query1_sma_definitions():
            definition.validate(LINEITEM)

    def test_expressions_match_query_aggregates(self):
        """The crucial structural link: every Query 1 aggregate must be
        servable from the Figure 4 set (26 SMA-files in total)."""

        class FakeSet:
            def __init__(self, definitions):
                self.definitions = {d.name: d for d in definitions}

            def rollup_aggregate_files(self, spec, group_by):
                for definition in self.definitions.values():
                    if definition.matches(spec, group_by):
                        return {}, tuple(range(len(group_by)))
                return None

        fake = FakeSet(query1_sma_definitions())
        assert sma_covers(fake, query1().aggregates, QUERY1_GROUPING)


class TestQuery6:
    def test_predicate_is_a_conjunction_of_atoms(self):
        predicate = query6().where
        assert isinstance(predicate, And)
        assert len(predicate.operands) == 5
        assert {a.column for a in predicate.operands} == {
            "L_SHIPDATE", "L_DISCOUNT", "L_QUANTITY",
        }

    def test_one_year_window(self):
        predicate = query6(from_date=datetime.date(1994, 1, 1)).where
        dates = [
            a.constant for a in predicate.operands
            if a.column == "L_SHIPDATE"
        ]
        assert datetime.date(1994, 1, 1) in dates
        assert datetime.date(1995, 1, 1) in dates

    def test_validates_against_lineitem(self):
        query6().validate(LINEITEM)

    def test_definitions_cover_query6(self):
        names = {d.name for d in query6_sma_definitions()}
        assert {"ship_min", "ship_max", "disc_min", "disc_max",
                "qty_min", "qty_max", "revenue", "cnt"} == names
        for definition in query6_sma_definitions():
            definition.validate(LINEITEM)
