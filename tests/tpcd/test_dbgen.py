"""Tests for the TPC-D data generator."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.tpcd.dbgen import GenConfig, generate_tables
from repro.tpcd.distributions import CURRENT_INT, END_INT, START_INT


@pytest.fixture(scope="module")
def tables():
    config = GenConfig(scale_factor=0.002, seed=7)
    return generate_tables(
        config,
        (
            "REGION", "NATION", "SUPPLIER", "CUSTOMER", "PART",
            "PARTSUPP", "ORDERS", "LINEITEM",
        ),
    )


class TestConfig:
    def test_scale_factor_must_be_positive(self):
        with pytest.raises(ReproError):
            GenConfig(scale_factor=0)

    def test_cardinality_scaling(self):
        config = GenConfig(scale_factor=0.01)
        assert config.cardinality("CUSTOMER") == 1500
        assert config.cardinality("ORDERS") == 15_000
        assert config.cardinality("NATION") == 25  # fixed

    def test_unknown_table(self):
        config = GenConfig()
        with pytest.raises(ReproError):
            generate_tables(config, ("BOGUS",))


class TestDeterminism:
    def test_same_seed_same_data(self):
        config = GenConfig(scale_factor=0.002, seed=11)
        first = generate_tables(config, ("LINEITEM",))["LINEITEM"]
        second = generate_tables(config, ("LINEITEM",))["LINEITEM"]
        np.testing.assert_array_equal(first, second)

    def test_different_seed_different_data(self):
        a = generate_tables(
            GenConfig(scale_factor=0.002, seed=1), ("LINEITEM",)
        )["LINEITEM"]
        b = generate_tables(
            GenConfig(scale_factor=0.002, seed=2), ("LINEITEM",)
        )["LINEITEM"]
        assert not np.array_equal(a, b)


class TestLineitem:
    def test_about_four_lines_per_order(self, tables):
        orders = tables["ORDERS"]
        lineitem = tables["LINEITEM"]
        ratio = len(lineitem) / len(orders)
        assert 3.5 <= ratio <= 4.5

    def test_orderkeys_reference_orders(self, tables):
        orders = set(tables["ORDERS"]["O_ORDERKEY"].tolist())
        assert set(tables["LINEITEM"]["L_ORDERKEY"].tolist()) <= orders

    def test_line_numbers_start_at_one_per_order(self, tables):
        lineitem = tables["LINEITEM"]
        firsts = np.flatnonzero(
            np.diff(lineitem["L_ORDERKEY"], prepend=-1) != 0
        )
        assert (lineitem["L_LINENUMBER"][firsts] == 1).all()

    def test_date_causality(self, tables):
        lineitem = tables["LINEITEM"]
        assert (lineitem["L_RECEIPTDATE"] > lineitem["L_SHIPDATE"]).all()

    def test_dates_inside_tpcd_window(self, tables):
        lineitem = tables["LINEITEM"]
        for column in ("L_SHIPDATE", "L_COMMITDATE", "L_RECEIPTDATE"):
            assert (lineitem[column] >= START_INT).all()
            assert (lineitem[column] <= END_INT).all()

    def test_returnflag_rule(self, tables):
        lineitem = tables["LINEITEM"]
        received = lineitem["L_RECEIPTDATE"] <= CURRENT_INT
        assert set(np.unique(lineitem["L_RETURNFLAG"][received])) <= {b"R", b"A"}
        assert set(np.unique(lineitem["L_RETURNFLAG"][~received])) == {b"N"}

    def test_linestatus_rule(self, tables):
        lineitem = tables["LINEITEM"]
        shipped_late = lineitem["L_SHIPDATE"] > CURRENT_INT
        assert set(np.unique(lineitem["L_LINESTATUS"][shipped_late])) == {b"O"}
        assert set(np.unique(lineitem["L_LINESTATUS"][~shipped_late])) == {b"F"}

    def test_four_flag_combinations_exist(self, tables):
        """Query 1 'results in four groups' — the generator must produce
        all of them."""
        lineitem = tables["LINEITEM"]
        combos = set(
            zip(
                lineitem["L_RETURNFLAG"].tolist(),
                lineitem["L_LINESTATUS"].tolist(),
            )
        )
        assert combos == {(b"A", b"F"), (b"R", b"F"), (b"N", b"F"), (b"N", b"O")}

    def test_value_ranges(self, tables):
        lineitem = tables["LINEITEM"]
        assert lineitem["L_QUANTITY"].min() >= 1
        assert lineitem["L_QUANTITY"].max() <= 50
        assert lineitem["L_DISCOUNT"].min() >= 0.0
        assert lineitem["L_DISCOUNT"].max() <= 0.10 + 1e-9
        assert lineitem["L_TAX"].max() <= 0.08 + 1e-9
        assert (lineitem["L_EXTENDEDPRICE"] > 0).all()


class TestOtherTables:
    def test_fixed_tables(self, tables):
        assert len(tables["REGION"]) == 5
        assert len(tables["NATION"]) == 25

    def test_nation_references_region(self, tables):
        regions = set(tables["REGION"]["R_REGIONKEY"].tolist())
        assert set(tables["NATION"]["N_REGIONKEY"].tolist()) <= regions

    def test_orders_reference_customers(self, tables):
        customers = set(tables["CUSTOMER"]["C_CUSTKEY"].tolist())
        assert set(tables["ORDERS"]["O_CUSTKEY"].tolist()) <= customers

    def test_partsupp_references(self, tables):
        parts = set(tables["PART"]["P_PARTKEY"].tolist())
        suppliers = set(tables["SUPPLIER"]["S_SUPPKEY"].tolist())
        assert set(tables["PARTSUPP"]["PS_PARTKEY"].tolist()) <= parts
        assert set(tables["PARTSUPP"]["PS_SUPPKEY"].tolist()) <= suppliers

    def test_order_dates_leave_lead_time(self, tables):
        orders = tables["ORDERS"]
        assert orders["O_ORDERDATE"].max() <= END_INT - 121
