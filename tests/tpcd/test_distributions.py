"""Tests for clustering layouts and the Figure 5 contamination knob."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.tpcd.dbgen import GenConfig, generate_tables
from repro.tpcd.distributions import (
    check_clustering,
    contaminate_buckets,
    diagonal_distribution,
    introduction_lag_days,
    physical_order,
)


@pytest.fixture(scope="module")
def lineitem():
    return generate_tables(
        GenConfig(scale_factor=0.002, seed=3), ("LINEITEM",)
    )["LINEITEM"]


class TestDiagonal:
    def test_points_right_of_diagonal(self):
        rng = np.random.default_rng(1)
        events, intro = diagonal_distribution(rng, 5000)
        assert (intro >= events).all()

    def test_high_correlation(self):
        rng = np.random.default_rng(1)
        events, intro = diagonal_distribution(rng, 5000)
        assert np.corrcoef(events, intro)[0, 1] > 0.99

    def test_lag_clamped_nonnegative(self):
        rng = np.random.default_rng(1)
        lag = introduction_lag_days(rng, 10_000, mean=1.0, std=10.0)
        assert (lag >= 0).all()


class TestPhysicalOrder:
    def test_sorted_layout(self, lineitem):
        rng = np.random.default_rng(0)
        ordered = physical_order(lineitem, "sorted", rng)
        assert (np.diff(ordered["L_SHIPDATE"]) >= 0).all()

    def test_toc_layout_is_roughly_sorted(self, lineitem):
        rng = np.random.default_rng(0)
        ordered = physical_order(lineitem, "toc", rng)
        # Not strictly sorted, but strongly rank-correlated with shipdate.
        positions = np.arange(len(ordered))
        dates = ordered["L_SHIPDATE"].astype(np.float64)
        correlation = np.corrcoef(positions, dates)[0, 1]
        assert 0.9 < correlation < 1.0
        assert (np.diff(ordered["L_SHIPDATE"]) < 0).any()

    def test_uniform_layout_is_shuffled(self, lineitem):
        rng = np.random.default_rng(0)
        ordered = physical_order(lineitem, "uniform", rng)
        positions = np.arange(len(ordered))
        dates = ordered["L_SHIPDATE"].astype(np.float64)
        assert abs(np.corrcoef(positions, dates)[0, 1]) < 0.1

    def test_layouts_preserve_multiset(self, lineitem):
        rng = np.random.default_rng(0)
        for clustering in ("sorted", "toc", "uniform"):
            ordered = physical_order(lineitem, clustering, rng)
            np.testing.assert_array_equal(
                np.sort(ordered["L_ORDERKEY"]),
                np.sort(lineitem["L_ORDERKEY"]),
            )

    def test_unknown_clustering_rejected(self, lineitem):
        with pytest.raises(ReproError, match="unknown clustering"):
            physical_order(lineitem, "zigzag", np.random.default_rng(0))
        with pytest.raises(ReproError):
            check_clustering("zigzag")


class TestContamination:
    def test_contaminates_requested_fraction(self, lineitem):
        rng = np.random.default_rng(0)
        ordered = physical_order(lineitem, "sorted", rng)
        contaminated, planted = contaminate_buckets(ordered, 32, 0.2, rng)
        num_buckets = (len(ordered) + 31) // 32
        assert planted == round(num_buckets * 0.2)

    def test_preserves_multiset(self, lineitem):
        rng = np.random.default_rng(0)
        ordered = physical_order(lineitem, "sorted", rng)
        contaminated, _ = contaminate_buckets(ordered, 32, 0.3, rng)
        np.testing.assert_array_equal(
            np.sort(contaminated["L_SHIPDATE"]),
            np.sort(ordered["L_SHIPDATE"]),
        )

    def test_zero_fraction_is_identity(self, lineitem):
        rng = np.random.default_rng(0)
        ordered = physical_order(lineitem, "sorted", rng)
        same, planted = contaminate_buckets(ordered, 32, 0.0, rng)
        assert planted == 0
        np.testing.assert_array_equal(same, ordered)

    def test_contaminated_buckets_span_wide_ranges(self, lineitem):
        rng = np.random.default_rng(0)
        ordered = physical_order(lineitem, "sorted", rng)
        contaminated, planted = contaminate_buckets(ordered, 32, 0.3, rng)
        num_buckets = len(contaminated) // 32
        spans = np.array([
            contaminated["L_SHIPDATE"][i * 32 : (i + 1) * 32].max()
            - contaminated["L_SHIPDATE"][i * 32 : (i + 1) * 32].min()
            for i in range(num_buckets)
        ])
        whole_range = (
            ordered["L_SHIPDATE"].max() - ordered["L_SHIPDATE"].min()
        )
        wide = (spans > whole_range * 0.2).sum()
        assert wide >= planted * 0.8

    def test_invalid_fraction_rejected(self, lineitem):
        with pytest.raises(ReproError):
            contaminate_buckets(lineitem, 32, 1.5, np.random.default_rng(0))

    def test_input_not_mutated(self, lineitem):
        rng = np.random.default_rng(0)
        ordered = physical_order(lineitem, "sorted", rng)
        copy = ordered.copy()
        contaminate_buckets(ordered, 32, 0.4, rng)
        np.testing.assert_array_equal(ordered, copy)
