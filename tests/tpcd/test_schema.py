"""Tests for the TPC-D schemas and their byte arithmetic."""

from repro.storage.page import BucketLayout
from repro.tpcd.schema import ALL_SCHEMAS, BASE_CARDINALITIES, LINEITEM


class TestLineitemGeometry:
    def test_record_width_is_124_bytes(self):
        # Tuned so the paper's 733 MB / 6 M-tuple LINEITEM arithmetic
        # comes out right (see DESIGN.md substitutions).
        assert LINEITEM.record_width == 124

    def test_32_tuples_per_4k_page(self):
        layout = BucketLayout(record_width=LINEITEM.record_width)
        assert layout.tuples_per_page == 32

    def test_sf1_page_count_near_paper(self):
        layout = BucketLayout(record_width=LINEITEM.record_width)
        pages = layout.pages_for(BASE_CARDINALITIES["LINEITEM"])
        assert abs(pages - 187_733) / 187_733 < 0.01

    def test_sf1_size_near_733mb(self):
        layout = BucketLayout(record_width=LINEITEM.record_width)
        size_mb = layout.bytes_for(BASE_CARDINALITIES["LINEITEM"]) / 2**20
        assert abs(size_mb - 733.33) / 733.33 < 0.01


class TestAllSchemas:
    def test_eight_relations(self):
        assert set(ALL_SCHEMAS) == {
            "LINEITEM", "ORDERS", "CUSTOMER", "PART",
            "SUPPLIER", "PARTSUPP", "NATION", "REGION",
        }

    def test_key_columns_exist(self):
        assert "O_ORDERKEY" in ALL_SCHEMAS["ORDERS"]
        assert "L_ORDERKEY" in ALL_SCHEMAS["LINEITEM"]
        assert "C_CUSTKEY" in ALL_SCHEMAS["CUSTOMER"]
        assert "PS_PARTKEY" in ALL_SCHEMAS["PARTSUPP"]

    def test_lineitem_has_three_dates(self):
        from repro.storage.types import TypeKind

        dates = [
            c.name for c in LINEITEM
            if c.dtype.kind is TypeKind.DATE
        ]
        assert dates == ["L_SHIPDATE", "L_COMMITDATE", "L_RECEIPTDATE"]

    def test_cardinalities_scale(self):
        assert BASE_CARDINALITIES["ORDERS"] == 10 * BASE_CARDINALITIES["CUSTOMER"]
        assert BASE_CARDINALITIES["NATION"] == 25
