"""Unit tests for the admission-controlled worker-pool executor.

The run function here is a stub — these tests pin down the lifecycle
machinery (admission bound, rejection, cancellation, queued timeouts,
shutdown) independent of query execution.
"""

import threading
import time

import pytest

from repro.errors import (
    QueryCancelledError,
    QueryTimeoutError,
    ServerError,
    ServerOverloadedError,
    ServerShutdownError,
)
from repro.server.executor import QueryExecutor, TicketState


class Gate:
    """A run_fn that blocks every ticket until released, recording calls."""

    def __init__(self):
        self.release = threading.Event()
        self.entered = threading.Event()
        self.ran: list = []
        self._lock = threading.Lock()

    def __call__(self, ticket):
        self.entered.set()
        assert self.release.wait(10.0), "gate never released"
        with self._lock:
            self.ran.append(ticket.payload)
        return ("done", ticket.payload)


def test_runs_and_returns_results():
    with QueryExecutor(lambda t: t.payload * 2, workers=2, queue_depth=8) as ex:
        tickets = [ex.submit(i) for i in range(6)]
        assert [t.result(10.0) for t in tickets] == [0, 2, 4, 6, 8, 10]
        assert all(t.state is TicketState.DONE for t in tickets)
        assert all(t.queue_wait_s >= 0 for t in tickets)


def test_submit_requires_start():
    executor = QueryExecutor(lambda t: None, workers=1, queue_depth=1)
    with pytest.raises(ServerError):
        executor.submit("x")


def test_rejects_when_queue_full_and_recovers():
    gate = Gate()
    with QueryExecutor(gate, workers=1, queue_depth=2) as ex:
        first = ex.submit("running")
        assert gate.entered.wait(10.0)  # worker busy, queue empty
        queued = [ex.submit("q1"), ex.submit("q2")]
        with pytest.raises(ServerOverloadedError):
            ex.submit("overflow")
        gate.release.set()
        assert first.result(10.0) == ("done", "running")
        for ticket in queued:
            ticket.result(10.0)
    assert gate.ran == ["running", "q1", "q2"]


def test_cancel_queued_ticket_never_runs():
    gate = Gate()
    with QueryExecutor(gate, workers=1, queue_depth=4) as ex:
        ex.submit("running")
        assert gate.entered.wait(10.0)
        victim = ex.submit("victim")
        assert victim.cancel() is True
        gate.release.set()
        with pytest.raises(QueryCancelledError):
            victim.result(10.0)
        assert victim.state is TicketState.CANCELLED
    assert "victim" not in gate.ran


def test_cancel_after_settle_returns_false():
    with QueryExecutor(lambda t: t.payload, workers=1, queue_depth=4) as ex:
        ticket = ex.submit("x")
        ticket.result(10.0)
        assert ticket.cancel() is False


def test_queued_deadline_expires_without_running():
    gate = Gate()
    with QueryExecutor(gate, workers=1, queue_depth=4) as ex:
        ex.submit("running")
        assert gate.entered.wait(10.0)
        doomed = ex.submit("doomed", timeout_s=0.02)
        time.sleep(0.1)  # let the deadline pass while queued
        gate.release.set()
        with pytest.raises(QueryTimeoutError):
            doomed.result(10.0)
        assert doomed.state is TicketState.TIMED_OUT
    assert "doomed" not in gate.ran


def test_run_fn_exception_settles_failed():
    def boom(ticket):
        raise RuntimeError("kaput")

    with QueryExecutor(boom, workers=1, queue_depth=4) as ex:
        ticket = ex.submit("x")
        with pytest.raises(RuntimeError, match="kaput"):
            ticket.result(10.0)
        assert ticket.state is TicketState.FAILED
        # The worker survived the exception.
        again = ex.submit("y")
        with pytest.raises(RuntimeError):
            again.result(10.0)


def test_skipped_fn_sees_queued_cancellations():
    gate = Gate()
    skipped = []
    ex = QueryExecutor(
        gate, workers=1, queue_depth=4, skipped_fn=lambda t: skipped.append(t.payload)
    )
    with ex:
        ex.submit("running")
        assert gate.entered.wait(10.0)
        victim = ex.submit("victim")
        victim.cancel()
        gate.release.set()
        victim.wait(10.0)
    assert skipped == ["victim"]


def test_submit_after_shutdown_raises():
    executor = QueryExecutor(lambda t: t.payload, workers=1, queue_depth=2)
    executor.start()
    executor.shutdown(wait=True)
    with pytest.raises(ServerShutdownError):
        executor.submit("late")


def test_shutdown_cancel_pending_does_not_hang():
    gate = Gate()
    executor = QueryExecutor(gate, workers=1, queue_depth=8)
    executor.start()
    executor.submit("running")
    assert gate.entered.wait(10.0)
    pending = [executor.submit(f"p{i}") for i in range(4)]
    # Cancel the backlog while the worker is still blocked, then release
    # and join — the pending tickets must settle without running.
    executor.shutdown(wait=False, cancel_pending=True)
    gate.release.set()
    executor.shutdown(wait=True)
    for ticket in pending:
        assert ticket.done()
    # The running one finished; the pending ones were cancelled unrun.
    assert gate.ran == ["running"]


def test_invalid_sizing():
    with pytest.raises(ServerError):
        QueryExecutor(lambda t: None, workers=0, queue_depth=1)
    with pytest.raises(ServerError):
        QueryExecutor(lambda t: None, workers=1, queue_depth=0)
