"""Unit tests for the metrics registry and latency recorder."""

import threading

import pytest

from repro.server.metrics import LatencyRecorder, MetricsRegistry
from repro.server.report import render_metrics
from repro.storage.stats import IoStats


class TestLatencyRecorder:
    def test_exact_aggregates(self):
        recorder = LatencyRecorder()
        for value in (0.1, 0.2, 0.3, 0.4):
            recorder.record(value)
        assert recorder.count == 4
        assert recorder.mean == pytest.approx(0.25)
        assert recorder.min == pytest.approx(0.1)
        assert recorder.max == pytest.approx(0.4)

    def test_percentiles_on_known_distribution(self):
        recorder = LatencyRecorder()
        for i in range(1, 101):
            recorder.record(float(i))
        assert recorder.percentile(0) == 1.0
        assert recorder.percentile(100) == 100.0
        assert abs(recorder.percentile(50) - 50.0) <= 1.0
        assert abs(recorder.percentile(95) - 95.0) <= 1.0

    def test_decimation_bounds_memory_keeps_exact_count(self):
        recorder = LatencyRecorder(max_samples=64)
        for i in range(10_000):
            recorder.record(float(i % 97))
        assert recorder.count == 10_000
        assert len(recorder._samples) <= 64
        assert recorder.min == 0.0
        assert recorder.max == 96.0
        # Percentiles stay plausible on the decimated sample.
        assert 30.0 <= recorder.percentile(50) <= 70.0

    def test_empty_recorder(self):
        recorder = LatencyRecorder()
        assert recorder.mean == 0.0
        assert recorder.percentile(50) == 0.0
        assert recorder.as_dict() == {"count": 0}

    def test_invalid_percentile(self):
        recorder = LatencyRecorder()
        recorder.record(1.0)
        with pytest.raises(ValueError):
            recorder.percentile(101)

    def test_invalid_max_samples(self):
        with pytest.raises(ValueError):
            LatencyRecorder(max_samples=1)


class TestMetricsRegistry:
    def test_outcome_counters(self):
        registry = MetricsRegistry()
        for _ in range(3):
            registry.record_submitted()
        registry.record_success("q1", 0.1)
        registry.record_failure("q1")
        registry.record_timeout("q1")
        registry.record_rejected()
        snapshot = registry.snapshot()
        assert snapshot["queries"] == {
            "submitted": 3,
            "completed": 1,
            "failed": 1,
            "rejected": 1,
            "timed_out": 1,
            "cancelled": 0,
            "in_flight": 0,
            "by_kind": {
                "q1": {"completed": 1, "failed": 1, "timed_out": 1},
            },
        }

    def test_io_totals_merge_per_query_deltas(self):
        registry = MetricsRegistry()
        registry.record_success(
            "a", 0.1, IoStats(buffer_hits=10, buckets_skipped=4, buckets_fetched=6)
        )
        registry.record_success(
            "b", 0.2, IoStats(buffer_hits=5, sequential_page_reads=5,
                              buckets_skipped=1, buckets_fetched=9)
        )
        io = registry.snapshot()["io"]
        assert io["buffer_hits"] == 15
        assert io["page_reads"] == 5
        assert io["buffer_hit_rate"] == pytest.approx(15 / 20)
        assert io["buckets_skipped"] == 5
        assert io["bucket_skip_rate"] == pytest.approx(5 / 20)

    def test_latency_by_kind(self):
        registry = MetricsRegistry()
        registry.record_success("fast", 0.01)
        registry.record_success("slow", 1.0)
        latency = registry.snapshot()["latency_s"]
        assert latency["overall"]["count"] == 2
        assert latency["by_kind"]["fast"]["max_s"] == pytest.approx(0.01)
        assert latency["by_kind"]["slow"]["max_s"] == pytest.approx(1.0)

    def test_queue_wait_recorded(self):
        registry = MetricsRegistry()
        registry.record_queue_wait(0.05)
        assert registry.snapshot()["queue_wait_s"]["count"] == 1

    def test_thread_safe_recording(self):
        registry = MetricsRegistry()

        def hammer():
            for _ in range(500):
                registry.record_submitted()
                registry.record_success("k", 0.001, IoStats(buffer_hits=1))

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snapshot = registry.snapshot()
        assert snapshot["queries"]["submitted"] == 4000
        assert snapshot["queries"]["completed"] == 4000
        assert snapshot["io"]["buffer_hits"] == 4000

    def test_plan_strategy_counters(self):
        registry = MetricsRegistry()
        registry.record_success("q1", 0.1, strategy="sma_gaggr")
        registry.record_success("q1", 0.1, strategy="sma_gaggr")
        registry.record_success("scan", 0.2, strategy="seq_scan")
        registry.record_success("legacy", 0.1)  # no strategy: not counted
        plans = registry.snapshot()["plans"]
        assert plans == {"seq_scan": 1, "sma_gaggr": 2}
        assert sum(plans.values()) <= registry.snapshot()["queries"]["completed"]

    def test_render_metrics_shows_plan_strategies(self):
        registry = MetricsRegistry()
        registry.record_success("q1", 0.1, strategy="sma_gaggr")
        text = render_metrics(registry.snapshot())
        assert "plans" in text
        assert "sma_gaggr 1" in text

    def test_render_metrics_mentions_key_fields(self):
        registry = MetricsRegistry()
        registry.record_submitted()
        registry.record_success("q1", 0.1, IoStats(buffer_hits=3,
                                                   buckets_skipped=2,
                                                   buckets_fetched=2))
        text = render_metrics(registry.snapshot())
        assert "hit rate" in text
        assert "skip rate" in text
        assert "p95" in text
        assert "q1" in text
