"""Tests for the workload driver (closed and open loop) on a real catalog."""

import datetime

import pytest

from repro.core import count_star, total
from repro.errors import ReproError
from repro.lang import cmp, col
from repro.query.query import AggregateQuery, OutputAggregate, ScanQuery
from repro.query.session import Session
from repro.server import (
    QueryService,
    WorkloadDriver,
    WorkloadQuery,
    expand_mix,
    render_workload,
)

from ..conftest import BASE_DATE


def sales_mix() -> list[WorkloadQuery]:
    aggregate = AggregateQuery(
        table="SALES",
        aggregates=(
            OutputAggregate("N", count_star()),
            OutputAggregate("SQ", total(col("qty"))),
        ),
        where=cmp("ship", "<=", BASE_DATE + datetime.timedelta(days=25)),
        group_by=("flag",),
        order_by=("flag",),
    )
    scan = ScanQuery(
        table="SALES",
        where=cmp("ship", "<=", BASE_DATE + datetime.timedelta(days=2)),
        columns=("id", "qty"),
    )
    return [
        WorkloadQuery("agg", aggregate, weight=2),
        WorkloadQuery("scan", scan, weight=1),
    ]


@pytest.fixture
def served_catalog(catalog, sales_table, sales_sma_set):
    return catalog


class TestMix:
    def test_expand_mix_respects_weights(self):
        mix = sales_mix()
        expanded = expand_mix(mix)
        assert len(expanded) == 3
        assert [e.name for e in expanded] == ["agg", "agg", "scan"]

    def test_empty_mix_rejected(self, served_catalog):
        with QueryService(served_catalog) as service:
            with pytest.raises(ReproError):
                WorkloadDriver(service, [])

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ReproError):
            WorkloadQuery("bad", "SELECT 1", weight=0)

    def test_schedule_is_deterministic(self, served_catalog):
        with QueryService(served_catalog) as service:
            driver = WorkloadDriver(service, sales_mix())
            assert [e.name for e in driver.schedule(7)] == [
                "agg", "agg", "scan", "agg", "agg", "scan", "agg",
            ]


class TestClosedLoop:
    def test_completes_all_and_matches_serial(self, served_catalog):
        serial = Session(served_catalog)
        mix = sales_mix()
        reference = {
            entry.name: serial.execute(entry.query).rows for entry in mix
        }
        with QueryService(served_catalog, workers=4, queue_depth=64) as service:
            driver = WorkloadDriver(service, mix)
            result = driver.run_closed_loop(
                clients=4, queries_per_client=4, keep_results=True
            )
        assert result.total == 16
        assert result.completed == 16
        assert result.rejected == result.failed == result.timed_out == 0
        assert result.throughput_qps > 0
        for outcome in result.outcomes:
            assert outcome.error is None
            assert outcome.result.rows == reference[outcome.name]

    def test_render_workload_summary(self, served_catalog):
        with QueryService(served_catalog, workers=2) as service:
            driver = WorkloadDriver(service, sales_mix())
            result = driver.run_closed_loop(clients=2, queries_per_client=2)
        text = render_workload(result)
        assert "4 queries" in text
        assert "queries/s" in text

    def test_invalid_args(self, served_catalog):
        with QueryService(served_catalog) as service:
            driver = WorkloadDriver(service, sales_mix())
            with pytest.raises(ReproError):
                driver.run_closed_loop(clients=0, queries_per_client=1)


class TestOpenLoop:
    def test_fixed_rate_run_completes(self, served_catalog):
        with QueryService(served_catalog, workers=2, queue_depth=32) as service:
            driver = WorkloadDriver(service, sales_mix())
            result = driver.run_open_loop(rate_qps=200.0, total=10)
        assert result.total == 10
        assert result.completed + result.rejected == 10
        assert result.completed > 0

    def test_invalid_args(self, served_catalog):
        with QueryService(served_catalog) as service:
            driver = WorkloadDriver(service, sales_mix())
            with pytest.raises(ReproError):
                driver.run_open_loop(rate_qps=0, total=5)
