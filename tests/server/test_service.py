"""Tests for the QueryService façade on a real (small) catalog."""

import datetime
import threading

import pytest

from repro.core import count_star, total
from repro.errors import (
    QueryCancelledError,
    QueryTimeoutError,
    ServerOverloadedError,
    ServerShutdownError,
)
from repro.lang import cmp, col
from repro.query.query import AggregateQuery, OutputAggregate, ScanQuery
from repro.query.session import Session
from repro.server import QueryService, TicketState

from ..conftest import BASE_DATE


@pytest.fixture
def served_catalog(catalog, sales_table, sales_sma_set):
    """The shared sales catalog with SMAs, ready to serve."""
    return catalog


def count_query(days: int = 20) -> AggregateQuery:
    return AggregateQuery(
        table="SALES",
        aggregates=(
            OutputAggregate("N", count_star()),
            OutputAggregate("SQ", total(col("qty"))),
        ),
        where=cmp("ship", "<=", BASE_DATE + datetime.timedelta(days=days)),
        group_by=("flag",),
        order_by=("flag",),
    )


def scan_query(days: int = 3) -> ScanQuery:
    return ScanQuery(
        table="SALES",
        where=cmp("ship", "<=", BASE_DATE + datetime.timedelta(days=days)),
        columns=("id", "qty"),
    )


class GatedService(QueryService):
    """A service whose workers block until the test releases them."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.gate = threading.Event()
        self.entered = threading.Event()

    def _run_job(self, ticket):
        self.entered.set()
        assert self.gate.wait(10.0), "gate never released"
        return super()._run_job(ticket)


class TestExecution:
    def test_matches_serial_session(self, served_catalog):
        serial = Session(served_catalog)
        expected = serial.execute(count_query())
        with QueryService(served_catalog, workers=2) as service:
            result = service.execute(count_query())
        assert result.columns == expected.columns
        assert result.rows == expected.rows

    def test_scan_query_and_kind_defaults(self, served_catalog):
        with QueryService(served_catalog, workers=2) as service:
            ticket = service.submit(scan_query())
            result = ticket.result(10.0)
        assert result.columns == ["id", "qty"]
        assert len(result.rows) > 0
        assert service.metrics.snapshot()["latency_s"]["by_kind"]["scan"][
            "count"
        ] == 1

    def test_sql_text_submission(self, served_catalog):
        with QueryService(served_catalog, workers=2) as service:
            result = service.execute(
                "SELECT COUNT(*) AS N FROM SALES", kind="sql_count"
            )
        assert result.rows == [(2000,)]

    def test_per_query_stats_are_isolated(self, served_catalog):
        """Each concurrent result carries only its own I/O delta."""
        serial = Session(served_catalog)
        expected = serial.execute(count_query()).stats
        with QueryService(served_catalog, workers=4) as service:
            tickets = [service.submit(count_query()) for _ in range(8)]
            deltas = [t.result(10.0).stats for t in tickets]
        for delta in deltas:
            assert delta.tuples_scanned == expected.tuples_scanned
            assert delta.buckets_fetched == expected.buckets_fetched
            assert delta.buckets_skipped == expected.buckets_skipped
            assert delta.page_accesses == expected.page_accesses

    def test_planning_error_settles_failed(self, served_catalog):
        bad = AggregateQuery(
            table="NOPE", aggregates=(OutputAggregate("N", count_star()),)
        )
        with QueryService(served_catalog, workers=1) as service:
            ticket = service.submit(bad)
            with pytest.raises(Exception):
                ticket.result(10.0)
            assert ticket.state is TicketState.FAILED
        assert service.metrics.snapshot()["queries"]["failed"] == 1


class TestAdmissionControl:
    def test_overload_rejects_gracefully(self, served_catalog):
        service = GatedService(served_catalog, workers=1, queue_depth=1)
        with service:
            running = service.submit(count_query())
            assert service.entered.wait(10.0)
            queued = service.submit(count_query())
            with pytest.raises(ServerOverloadedError):
                service.submit(count_query())
            service.gate.set()
            assert running.result(10.0).rows == queued.result(10.0).rows
        snapshot = service.metrics.snapshot()
        assert snapshot["queries"]["rejected"] == 1
        assert snapshot["queries"]["completed"] == 2

    def test_submit_after_shutdown(self, served_catalog):
        service = QueryService(served_catalog, workers=1)
        service.start()
        service.shutdown()
        with pytest.raises(ServerShutdownError):
            service.submit(count_query())


class TestTimeoutAndCancel:
    def test_running_query_times_out_cooperatively(self, served_catalog):
        service = GatedService(served_catalog, workers=1, queue_depth=4)
        with service:
            ticket = service.submit(count_query(), timeout_s=0.02)
            assert service.entered.wait(10.0)
            # Hold the worker past the deadline; the query then starts and
            # hits the deadline check at its first page access.
            threading.Event().wait(0.1)
            service.gate.set()
            with pytest.raises(QueryTimeoutError):
                ticket.result(10.0)
            assert ticket.state is TicketState.TIMED_OUT
        assert service.metrics.snapshot()["queries"]["timed_out"] == 1

    def test_cancel_queued_query(self, served_catalog):
        service = GatedService(served_catalog, workers=1, queue_depth=4)
        with service:
            service.submit(count_query())
            assert service.entered.wait(10.0)
            victim = service.submit(count_query())
            assert victim.cancel()
            service.gate.set()
            with pytest.raises(QueryCancelledError):
                victim.result(10.0)
        assert service.metrics.snapshot()["queries"]["cancelled"] == 1


class TestMetricsSurface:
    def test_snapshot_has_serving_fields(self, served_catalog):
        with QueryService(served_catalog, workers=2) as service:
            for _ in range(4):
                # Forced SMA mode: on this tiny table the cost model would
                # otherwise pick a plain scan and never skip a bucket.
                service.execute(count_query(days=3), mode="sma")
        snapshot = service.metrics.snapshot()
        assert snapshot["queries"]["completed"] == 4
        overall = snapshot["latency_s"]["overall"]
        assert overall["count"] == 4
        for key in ("p50_s", "p95_s", "p99_s", "mean_s"):
            assert overall[key] >= 0
        assert snapshot["queue_wait_s"]["count"] == 4
        assert 0.0 <= snapshot["io"]["buffer_hit_rate"] <= 1.0
        # SMA grading actually skipped buckets for the selective query.
        assert snapshot["io"]["buckets_skipped"] > 0

    def test_plan_strategies_recorded(self, served_catalog):
        with QueryService(served_catalog, workers=2) as service:
            service.execute(count_query(days=3), mode="sma")
            service.execute(count_query(days=3), mode="sma")
            service.execute(count_query(days=3), mode="scan")
        plans = service.metrics.snapshot()["plans"]
        assert plans == {"gaggr": 1, "sma_gaggr": 2}


class TestServiceExplain:
    def test_explain_query_object(self, served_catalog):
        with QueryService(served_catalog, workers=1) as service:
            explanation = service.explain(count_query(days=3), mode="sma")
        assert explanation.strategy == "sma_gaggr"
        assert "physical plan:" not in explanation.render().splitlines()[0]
        assert "SmaGAggr" in explanation.render()

    def test_explain_sql_with_and_without_prefix(self, served_catalog):
        sql = (
            "SELECT flag, COUNT(*) AS n FROM SALES "
            "WHERE ship <= DATE '1997-01-04' GROUP BY flag"
        )
        with QueryService(served_catalog, workers=1) as service:
            bare = service.explain(sql)
            prefixed = service.explain("EXPLAIN " + sql)
        assert bare.render() == prefixed.render()

    def test_explain_does_not_count_as_query(self, served_catalog):
        with QueryService(served_catalog, workers=1) as service:
            service.explain(count_query(days=3))
        snapshot = service.metrics.snapshot()
        assert snapshot["queries"]["submitted"] == 0
        assert snapshot["queries"]["completed"] == 0
