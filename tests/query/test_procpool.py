"""Process scan backend: byte-identity, crash fallback, attribution.

The process backend ships morsel subplans to a persistent worker-process
pool (:mod:`repro.query.procpool`).  Its contract mirrors the thread
backend's exactly:

* results are **byte-identical** to the serial fold for every strategy
  (GAggr scan, SMA_GAggr with ambivalent buckets, plain scans) — the
  hypothesis suite sweeps seeded query mixes over all modes;
* worker crashes degrade gracefully: the query falls back to the thread
  backend, still returns the correct result, and the fallback is
  counted; the next process query respawns a healthy pool;
* per-worker IoStats deltas merge into the parent window exactly once,
  so traced runs reconcile leaf span I/O against query totals field for
  field — standalone and under the concurrent query service.
"""

import datetime
import os
import signal

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    SmaDefinition,
    build_sma_set,
    count_star,
    maximum,
    minimum,
    total,
)
from repro.lang import cmp, col
from repro.obs import Tracer
from repro.obs.exposition import render_prometheus
from repro.query import procpool
from repro.query.parallel import ScanParallelism
from repro.query.query import AggregateQuery, OutputAggregate, ScanQuery
from repro.query.session import Session, assert_same_result
from repro.server import QueryService
from repro.server.metrics import MetricsRegistry
from repro.storage import Catalog

from tests.conftest import BASE_DATE, SALES_SCHEMA, sales_rows


@pytest.fixture(scope="module")
def proc_catalog(tmp_path_factory):
    """Module-scoped SALES catalog: every test reuses one worker pool
    (spawning processes per test would dominate the suite's runtime)."""
    root = tmp_path_factory.mktemp("proc-db")
    cat = Catalog(str(root / "db"))
    table = cat.create_table("SALES", SALES_SCHEMA, clustered_on="ship")
    table.append_rows(sales_rows())
    definitions = [
        SmaDefinition("smin", "SALES", minimum(col("ship"))),
        SmaDefinition("smax", "SALES", maximum(col("ship"))),
        SmaDefinition("cnt", "SALES", count_star(), ("flag",)),
        SmaDefinition("sqty", "SALES", total(col("qty")), ("flag",)),
    ]
    sma_set, _ = build_sma_set(
        table, definitions, directory=str(root / "db" / "SALES.smas")
    )
    cat.register_sma_set("SALES", sma_set)
    yield cat
    procpool.dispose_pools(cat.root_dir)
    cat.close()


def process_session(catalog, *, tracer=None, workers=4):
    """A session on the process backend with morsels forced small, so
    even the 5-bucket SALES table splits into multiple tasks."""
    return Session(
        catalog,
        scan_workers=workers,
        morsel_buckets=1,
        scan_backend="process",
        tracer=tracer,
    )


def agg_query(days=20, minmax=False):
    aggregates = (
        OutputAggregate("s", total(col("qty"))),
        OutputAggregate("n", count_star()),
    )
    if minmax:
        aggregates += (
            OutputAggregate("lo", minimum(col("ship"))),
            OutputAggregate("hi", maximum(col("ship"))),
        )
    return AggregateQuery(
        table="SALES",
        aggregates=aggregates,
        where=cmp("ship", "<=", BASE_DATE + datetime.timedelta(days=days)),
        group_by=("flag",),
        order_by=("flag",),
    )


def scan_query(days=5):
    return ScanQuery(
        table="SALES",
        where=cmp("ship", "<=", BASE_DATE + datetime.timedelta(days=days)),
        columns=("id", "qty"),
    )


def test_backend_validation():
    with pytest.raises(Exception):
        ScanParallelism(workers=4, backend="fiber")
    assert ScanParallelism(workers=4, backend="process").use_processes
    assert not ScanParallelism(workers=1, backend="process").use_processes
    assert not ScanParallelism(workers=4, backend="thread").use_processes


class TestByteIdentity:
    """Process-backend results must be bit-equal to the serial fold."""

    @pytest.mark.parametrize("mode", ["auto", "sma", "scan"])
    def test_aggregate_all_modes(self, proc_catalog, mode):
        serial = Session(proc_catalog)
        proc = process_session(proc_catalog)
        reference = serial.execute(agg_query(), mode=mode)
        assert_same_result(proc.execute(agg_query(), mode=mode), reference)

    @pytest.mark.parametrize("mode", ["auto", "scan"])
    def test_scan_all_modes(self, proc_catalog, mode):
        serial = Session(proc_catalog)
        proc = process_session(proc_catalog)
        reference = serial.execute(scan_query(days=40), mode=mode)
        assert_same_result(
            proc.execute(scan_query(days=40), mode=mode), reference
        )

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        cases=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=45),
                st.sampled_from(["agg", "agg_minmax", "scan"]),
                st.sampled_from(["auto", "sma", "scan"]),
            ),
            min_size=1,
            max_size=3,
        )
    )
    def test_seeded_query_mixes(self, proc_catalog, cases):
        serial = Session(proc_catalog)
        proc = process_session(proc_catalog)
        for days, kind, mode in cases:
            if kind == "scan":
                query = scan_query(days)
                if mode == "sma":
                    mode = "auto"  # scans have no sma-only mode
            else:
                minmax = kind == "agg_minmax"
                query = agg_query(days, minmax=minmax)
                if minmax and mode == "sma":
                    # min/max(ship) per flag is not materialized; force
                    # the heap path instead of a planner coverage error.
                    mode = "scan"
            reference = serial.execute(query, mode=mode)
            assert_same_result(proc.execute(query, mode=mode), reference)

    def test_cold_runs_match_and_pay_physical_reads(self, proc_catalog):
        serial = Session(proc_catalog)
        proc = process_session(proc_catalog)
        reference = serial.execute(agg_query(45), mode="scan")
        result = proc.execute(agg_query(45), mode="scan", cold=True)
        assert_same_result(result, reference)
        assert result.stats.page_reads > 0  # workers really went cold


class TestCrashFallback:
    def test_worker_crash_falls_back_to_threads(self, proc_catalog):
        serial = Session(proc_catalog)
        proc = process_session(proc_catalog)
        query = agg_query(45)
        reference = serial.execute(query, mode="scan")
        assert_same_result(proc.execute(query, mode="scan"), reference)

        pool = procpool.get_pool(
            proc_catalog.root_dir, proc_catalog.pool.capacity_pages
        )
        workers = list(pool._executor._processes.values())
        assert workers, "pool should have live worker processes"
        before = procpool.pool_gauges()["fallbacks"]
        for worker in workers:
            os.kill(worker.pid, signal.SIGKILL)

        # The dead pool surfaces as ProcPoolBrokenError inside the
        # operator, which falls back to thread morsels: same answer.
        assert_same_result(proc.execute(query, mode="scan"), reference)
        assert procpool.pool_gauges()["fallbacks"] >= before + 1

        # The broken executor was disposed; the next process query
        # respawns a healthy pool and leaves the fallback count alone.
        settled = procpool.pool_gauges()["fallbacks"]
        assert_same_result(proc.execute(query, mode="scan"), reference)
        assert procpool.pool_gauges()["fallbacks"] == settled


class TestAttribution:
    """Worker IoStats merge into the parent window exactly once."""

    @pytest.mark.parametrize("mode", ["auto", "sma", "scan"])
    def test_traced_aggregate(self, proc_catalog, mode):
        tracer = Tracer(keep=16)
        session = process_session(proc_catalog, tracer=tracer)
        result = session.execute(agg_query(), mode=mode)
        root = tracer.last_trace()
        assert root.io_total().as_dict() == result.stats.as_dict()

    def test_traced_cold_scan_attributes_physical_reads(self, proc_catalog):
        tracer = Tracer(keep=16)
        session = process_session(proc_catalog, tracer=tracer)
        result = session.execute(agg_query(45), mode="scan", cold=True)
        root = tracer.last_trace()
        assert root.io_total().as_dict() == result.stats.as_dict()
        morsel_spans = [s for s in root.walk() if s.name == "scan_morsel"]
        assert morsel_spans and all(
            s.attrs.get("backend") == "process" for s in morsel_spans
        )
        assert sum(s.io.page_reads for s in morsel_spans) > 0

    def test_sixteen_query_service_attribution(self, proc_catalog):
        """PR 4's attribution matrix holds with process scan workers:
        16 mixed queries through the service, each root's leaf io sum
        equal to the query's stats, no double-charging of the leader."""
        roots = []
        tracer = Tracer(on_trace=[roots.append], keep=64)
        registry = MetricsRegistry()
        with QueryService(
            proc_catalog,
            workers=4,
            queue_depth=32,
            scan_workers=4,
            morsel_buckets=1,
            scan_backend="process",
            metrics=registry,
            tracer=tracer,
        ) as service:
            tickets = []
            for i in range(16):
                query = agg_query(10 + i % 4) if i % 2 else scan_query(30)
                mode = ("auto", "sma", "scan")[i % 3]
                if mode == "sma" and i % 2 == 0:
                    mode = "auto"  # scans have no sma-only mode
                tickets.append(service.submit(query, mode=mode))
            results = {t.id: t.result() for t in tickets}
        assert len(roots) == 16
        by_ticket = {root.attrs["ticket"]: root for root in roots}
        assert set(by_ticket) == set(results)
        for ticket_id, result in results.items():
            root = by_ticket[ticket_id]
            assert root.attrs["outcome"] == "completed"
            assert root.io_total().as_dict() == result.stats.as_dict()
        assert registry.snapshot()["scan"] == {
            "backend": "process",
            "scan_workers": 4,
        }


class TestObservability:
    def test_prometheus_exports_backend_and_pool_gauges(self, proc_catalog):
        # Make sure at least one pool exists with dispatched tasks.
        process_session(proc_catalog).execute(agg_query(), mode="scan")
        registry = MetricsRegistry()
        registry.set_scan_info(backend="process", scan_workers=4)
        snapshot = registry.snapshot()
        snapshot["scan"]["pool"] = procpool.pool_gauges(proc_catalog.root_dir)
        text = render_prometheus(snapshot)
        assert 'repro_scan_backend{backend="process"} 1' in text
        assert "repro_scan_workers 4" in text
        assert "repro_scan_pool_processes" in text
        assert "repro_scan_pool_tasks_total" in text
        assert "repro_scan_pool_fallbacks_total" in text

    def test_service_snapshot_includes_pool_gauges(self, proc_catalog):
        with QueryService(
            proc_catalog,
            workers=2,
            scan_workers=4,
            morsel_buckets=1,
            scan_backend="process",
        ) as service:
            service.execute(agg_query(), mode="scan")
            observed = service.observed_snapshot()
        scan = observed["scan"]
        assert scan["backend"] == "process"
        pool = scan["pool"]
        assert pool["pools"] >= 1
        assert pool["tasks_dispatched"] > 0
