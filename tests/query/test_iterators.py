"""Tests for the physical operators: SeqScan, Filter, Project, SmaScan."""

import datetime

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.lang import cmp
from repro.query.iterators import Filter, Project, SeqScan, SmaScan

from tests.conftest import BASE_DATE


def mid(offset=20):
    return BASE_DATE + datetime.timedelta(days=offset)


class TestSeqScan:
    def test_yields_every_tuple_in_order(self, sales_table):
        scan = SeqScan(sales_table)
        collected = np.concatenate(list(scan.batches()))
        assert len(collected) == sales_table.num_records
        assert list(collected["id"][:3]) == [0, 1, 2]

    def test_charges_per_tuple(self, catalog, sales_table):
        catalog.reset_stats()
        list(SeqScan(sales_table).batches())
        assert catalog.stats.tuples_scanned == sales_table.num_records
        assert catalog.stats.buckets_fetched == sales_table.num_buckets

    def test_rows_iteration(self, sales_table):
        first = next(iter(SeqScan(sales_table).rows()))
        assert first[0] == 0

    def test_schema_passthrough(self, sales_table):
        assert SeqScan(sales_table).schema == sales_table.schema


class TestFilter:
    def test_filters_tuples(self, sales_table):
        operator = Filter(SeqScan(sales_table), cmp("qty", "=", 3.0))
        collected = np.concatenate(list(operator.batches()))
        assert (collected["qty"] == 3.0).all()
        everything = sales_table.read_all()
        assert len(collected) == (everything["qty"] == 3.0).sum()

    def test_binds_constants(self, sales_table):
        operator = Filter(SeqScan(sales_table), cmp("ship", "<=", mid()))
        collected = np.concatenate(list(operator.batches()))
        assert len(collected) > 0

    def test_all_pass_short_circuit(self, sales_table):
        operator = Filter(SeqScan(sales_table), cmp("id", ">=", 0))
        total = sum(len(b) for b in operator.batches())
        assert total == sales_table.num_records


class TestProject:
    def test_keeps_and_orders_columns(self, sales_table):
        operator = Project(SeqScan(sales_table), ("qty", "id"))
        batch = next(operator.batches())
        assert batch.dtype.names == ("qty", "id")

    def test_empty_projection_rejected(self, sales_table):
        with pytest.raises(ExecutionError):
            Project(SeqScan(sales_table), ())

    def test_values_survive(self, sales_table):
        operator = Project(SeqScan(sales_table), ("id",))
        collected = np.concatenate(list(operator.batches()))
        assert collected["id"][-1] == sales_table.num_records - 1


class TestSmaScan:
    def test_same_tuples_as_filtered_seqscan(self, sales_table, sales_sma_set):
        predicate = cmp("ship", "<=", mid())
        via_sma = np.concatenate(
            list(SmaScan(sales_table, predicate, sales_sma_set).batches())
        )
        via_scan = np.concatenate(
            list(Filter(SeqScan(sales_table), predicate).batches())
        )
        np.testing.assert_array_equal(np.sort(via_sma["id"]), np.sort(via_scan["id"]))

    def test_skips_disqualifying_buckets(self, catalog, sales_table, sales_sma_set):
        predicate = cmp("ship", "<=", mid(2))
        catalog.reset_stats()
        list(SmaScan(sales_table, predicate, sales_sma_set).batches())
        stats = catalog.stats
        assert stats.buckets_skipped > 0
        assert stats.buckets_fetched < sales_table.num_buckets
        assert stats.buckets_fetched + stats.buckets_skipped == sales_table.num_buckets

    def test_qualifying_buckets_returned_whole(self, sales_table, sales_sma_set):
        predicate = cmp("id", ">=", -1)  # ungradeable -> all ambivalent
        operator = SmaScan(sales_table, predicate, sales_sma_set)
        collected = np.concatenate(list(operator.batches()))
        assert len(collected) == sales_table.num_records

    def test_precomputed_partitioning_reused(
        self, catalog, sales_table, sales_sma_set
    ):
        predicate = cmp("ship", "<=", mid()).bind(sales_table.schema)
        partitioning = sales_sma_set.partition(predicate)
        catalog.reset_stats()
        operator = SmaScan(
            sales_table, predicate, sales_sma_set, partitioning=partitioning
        )
        list(operator.batches())
        # No further SMA reads were charged: partitioning was injected.
        assert catalog.stats.sma_entries_read == 0
