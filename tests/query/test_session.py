"""Tests for the Session façade: measurement, SQL entry points, ordering."""

import datetime

import pytest

from repro.core.aggregates import count_star, total
from repro.errors import PlanningError
from repro.lang import cmp, col
from repro.query.query import AggregateQuery, OutputAggregate, ScanQuery
from repro.query.session import Session

from tests.conftest import BASE_DATE


def mid(offset=20):
    return BASE_DATE + datetime.timedelta(days=offset)


@pytest.fixture
def session(catalog, sales_table, sales_sma_set):
    return Session(catalog)


def simple_query(order_by=("flag",)):
    return AggregateQuery(
        table="SALES",
        aggregates=(
            OutputAggregate("s", total(col("qty"))),
            OutputAggregate("n", count_star()),
        ),
        where=cmp("ship", "<=", mid()),
        group_by=("flag",),
        order_by=order_by,
    )


class TestExecution:
    def test_result_carries_rows_and_columns(self, session):
        result = session.execute(simple_query())
        assert result.columns == ["flag", "s", "n"]
        assert len(result.rows) == 2

    def test_order_by_applied(self, session):
        result = session.execute(simple_query())
        assert [row[0] for row in result.rows] == ["A", "R"]

    def test_order_by_desc(self, session):
        result = session.sql(
            "SELECT flag, COUNT(*) AS n FROM SALES "
            "GROUP BY flag ORDER BY flag DESC"
        )
        assert [row[0] for row in result.rows] == ["R", "A"]

    def test_mixed_direction_multi_key_sort(self, session):
        result = session.sql(
            "SELECT flag, qty, COUNT(*) AS n FROM SALES "
            "GROUP BY flag, qty ORDER BY flag, qty DESC"
        )
        flags = [row[0] for row in result.rows]
        assert flags == sorted(flags)
        first_group = [row[1] for row in result.rows if row[0] == flags[0]]
        assert first_group == sorted(first_group, reverse=True)

    def test_column_accessor(self, session):
        result = session.execute(simple_query())
        assert result.column("flag") == ["A", "R"]

    def test_column_accessor_names_available_columns(self, session):
        result = session.execute(simple_query())
        with pytest.raises(KeyError, match=r"'missing'.*'flag'"):
            result.column("missing")

    def test_stats_are_a_window_delta(self, session, catalog):
        first = session.execute(simple_query(), mode="scan", cold=True)
        second = session.execute(simple_query(), mode="scan", cold=True)
        assert first.stats.page_reads == second.stats.page_reads

    def test_cold_costs_more_than_warm(self, session):
        cold = session.execute(simple_query(), mode="sma", cold=True)
        warm = session.execute(simple_query(), mode="sma")
        assert warm.simulated_seconds < cold.simulated_seconds
        assert warm.stats.page_reads < cold.stats.page_reads

    def test_simulated_clock_consistent_with_stats(self, session):
        result = session.execute(simple_query(), mode="scan", cold=True)
        assert result.simulated_seconds == pytest.approx(
            session.disk_model.seconds(result.stats)
        )

    def test_wall_clock_positive(self, session):
        assert session.execute(simple_query()).wall_seconds > 0

    def test_scan_query_execution(self, session, sales_table):
        result = session.execute(
            ScanQuery("SALES", where=cmp("qty", "=", 3.0), columns=("id", "qty"))
        )
        assert result.columns == ["id", "qty"]
        assert all(row[1] == 3.0 for row in result.rows)

    def test_scan_query_returns_python_values(self, session):
        import datetime

        result = session.execute(
            ScanQuery(
                "SALES", where=cmp("qty", "=", 3.0),
                columns=("ship", "flag", "id"),
            )
        )
        first = result.rows[0]
        assert isinstance(first[0], datetime.date)
        assert isinstance(first[1], str)
        assert isinstance(first[2], int)

    def test_explain_does_not_execute(self, session):
        info = session.explain(simple_query())
        assert info.strategy in ("sma_gaggr", "gaggr")

    def test_str_rendering(self, session):
        text = str(session.execute(simple_query()))
        assert "flag" in text and "rows" in text


class TestSqlEntryPoints:
    def test_sql_select(self, session):
        result = session.sql(
            "SELECT flag, SUM(qty) AS s, COUNT(*) AS n FROM SALES "
            "WHERE ship <= DATE '1997-01-21' GROUP BY flag ORDER BY flag"
        )
        assert result.columns == ["flag", "s", "n"]
        assert len(result.rows) == 2

    def test_sql_equivalence_with_ast(self, session):
        from tests.conftest import assert_rows_equal

        via_sql = session.sql(
            "SELECT flag, SUM(qty) AS s, COUNT(*) AS n FROM SALES "
            "WHERE ship <= DATE '1997-01-21' GROUP BY flag ORDER BY flag"
        )
        via_ast = session.execute(simple_query())
        assert_rows_equal(via_sql.rows, via_ast.rows)

    def test_sql_rejects_define(self, session):
        with pytest.raises(PlanningError):
            session.sql("define sma x select count(*) from SALES")

    def test_define_smas_builds_and_registers(self, catalog, sales_table):
        session = Session(catalog)
        sma_set, reports = session.define_smas(
            "define sma m select min(ship) from SALES;"
            "define sma M select max(ship) from SALES;",
            set_name="bounds",
        )
        assert catalog.sma_set("SALES", "bounds") is sma_set
        assert len(reports) == 2

    def test_define_smas_rejects_mixed_tables(self, catalog, sales_table):
        session = Session(catalog)
        catalog.create_table("OTHER", sales_table.schema)
        with pytest.raises(PlanningError, match="one table"):
            session.define_smas(
                "define sma a select min(ship) from SALES;"
                "define sma b select min(ship) from OTHER;"
            )

    def test_define_smas_rejects_empty_script(self, catalog, sales_table):
        with pytest.raises(PlanningError):
            Session(catalog).define_smas("   ")
