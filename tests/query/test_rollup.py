"""Roll-up matching: a finer-grouped SMA answers a coarser query.

"In order to be useful, a SMA has to reflect the grouping of the query
or a finer grouping" (Section 2.3).  The Q1 SMA set — grouped by
(L_RETURNFLAG, L_LINESTATUS) — must therefore answer queries grouped by
only one of those columns, or by none, with identical results.
"""

import datetime

import pytest

from repro.core import SmaDefinition, build_sma_set, count_star, maximum, minimum, total
from repro.core.aggregates import average
from repro.lang import cmp, col
from repro.query.query import AggregateQuery, OutputAggregate
from repro.query.session import Session
from repro.query.sma_gaggr import sma_covers

from tests.conftest import BASE_DATE, assert_rows_equal


@pytest.fixture
def fine_set(catalog, sales_table, tmp_path):
    """SMAs grouped by (flag, qty) — finer than any test query below."""
    definitions = [
        SmaDefinition("smin", "SALES", minimum(col("ship"))),
        SmaDefinition("smax", "SALES", maximum(col("ship"))),
        SmaDefinition("cnt", "SALES", count_star(), ("flag", "qty")),
        SmaDefinition("sid", "SALES", total(col("id")), ("flag", "qty")),
    ]
    sma_set, _ = build_sma_set(
        sales_table, definitions, directory=str(tmp_path / "fine"), name="fine"
    )
    catalog.register_sma_set("SALES", sma_set)
    return sma_set


def query(group_by):
    return AggregateQuery(
        table="SALES",
        aggregates=(
            OutputAggregate("s", total(col("id"))),
            OutputAggregate("a", average(col("id"))),
            OutputAggregate("n", count_star()),
        ),
        where=cmp("ship", "<=", BASE_DATE + datetime.timedelta(days=25)),
        group_by=group_by,
        order_by=group_by,
    )


class TestLookup:
    def test_exact_match_preferred(self, sales_table, sales_sma_set):
        files, projection = sales_sma_set.rollup_aggregate_files(
            total(col("qty")), ("flag",)
        )
        assert projection == (0,)
        assert set(files) == {("A",), ("R",)}

    def test_finer_grouping_found(self, sales_table, fine_set):
        found = fine_set.rollup_aggregate_files(count_star(), ("flag",))
        assert found is not None
        files, projection = found
        assert projection == (0,)
        assert all(len(key) == 2 for key in files)

    def test_reordered_coarse_columns(self, sales_table, fine_set):
        found = fine_set.rollup_aggregate_files(count_star(), ("qty",))
        assert found is not None
        _, projection = found
        assert projection == (1,)

    def test_ungrouped_query_from_grouped_sma(self, sales_table, fine_set):
        found = fine_set.rollup_aggregate_files(count_star(), ())
        assert found is not None
        _, projection = found
        assert projection == ()

    def test_coarser_sma_cannot_serve_finer_query(
        self, sales_table, sales_sma_set
    ):
        # cnt is grouped by (flag,): cannot serve a (flag, qty) query.
        assert sales_sma_set.rollup_aggregate_files(
            count_star(), ("flag", "qty")
        ) is None

    def test_covers_via_rollup(self, sales_table, fine_set):
        assert sma_covers(fine_set, query(("flag",)).aggregates, ("flag",))
        assert sma_covers(fine_set, query(()).aggregates, ())

    def test_project_group_key(self, fine_set):
        assert fine_set.project_group_key(("A", 3.0), (0,)) == ("A",)
        assert fine_set.project_group_key(("A", 3.0), (1, 0)) == (3.0, "A")


class TestExecution:
    @pytest.mark.parametrize("group_by", [("flag",), ("qty",), ()])
    def test_rollup_equals_scan(self, catalog, sales_table, fine_set, group_by):
        session = Session(catalog)
        via_sma = session.execute(query(group_by), mode="sma", sma_set="fine")
        via_scan = session.execute(query(group_by), mode="scan")
        assert via_sma.columns == via_scan.columns
        assert_rows_equal(via_sma.rows, via_scan.rows)

    def test_rollup_still_skips_buckets(self, catalog, sales_table, fine_set):
        session = Session(catalog)
        result = session.execute(query(("flag",)), mode="sma", sma_set="fine")
        assert result.stats.buckets_fetched < sales_table.num_buckets / 2

    def test_exact_grouping_also_served(self, catalog, sales_table, fine_set):
        session = Session(catalog)
        fine_query = query(("flag", "qty"))
        via_sma = session.execute(fine_query, mode="sma", sma_set="fine")
        via_scan = session.execute(fine_query, mode="scan")
        assert_rows_equal(via_sma.rows, via_scan.rows)
