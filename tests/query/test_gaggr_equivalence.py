"""SMA_GAggr must return exactly what plain GAggr returns.

This is the central correctness property of the whole system: whatever
the predicate, grouping and aggregates, answering from SMA-files plus
ambivalent buckets gives the same rows as the full scan.  We check it
on fixtures and with randomized predicates.
"""

import datetime

import numpy as np
import pytest

from repro.core.aggregates import average, count_star, maximum, minimum, total
from repro.lang import and_, cmp, col, or_
from repro.lang.predicate import TruePredicate
from repro.query.gaggr import GAggr
from repro.query.iterators import Filter, SeqScan
from repro.query.query import OutputAggregate
from repro.query.sma_gaggr import SmaGAggr

from tests.conftest import BASE_DATE, assert_rows_equal


def run_both(table, sma_set, predicate, group_by, aggregates):
    sma_columns, sma_rows = SmaGAggr(
        table, predicate, group_by, aggregates, sma_set
    ).execute()
    scan_columns, scan_rows = GAggr(
        Filter(SeqScan(table), predicate), group_by, aggregates
    ).execute()
    assert sma_columns == scan_columns
    # Deterministic order for comparison.
    assert_rows_equal(sorted(sma_rows, key=repr), sorted(scan_rows, key=repr))
    return sma_rows


AGGS = (
    OutputAggregate("s", total(col("qty"))),
    OutputAggregate("a", average(col("qty"))),
    OutputAggregate("n", count_star()),
)


def mid(offset):
    return BASE_DATE + datetime.timedelta(days=offset)


class TestEquivalence:
    def test_simple_range_predicate(self, sales_table, sales_sma_set):
        rows = run_both(
            sales_table, sales_sma_set, cmp("ship", "<=", mid(20)),
            ("flag",), AGGS,
        )
        assert len(rows) == 2

    def test_true_predicate(self, sales_table, sales_sma_set):
        run_both(sales_table, sales_sma_set, TruePredicate(), ("flag",), AGGS)

    def test_empty_result_predicate(self, sales_table, sales_sma_set):
        rows = run_both(
            sales_table, sales_sma_set, cmp("ship", ">", mid(10_000)),
            ("flag",), AGGS,
        )
        assert rows == []

    def test_everything_qualifies(self, sales_table, sales_sma_set):
        run_both(
            sales_table, sales_sma_set, cmp("ship", "<=", mid(10_000)),
            ("flag",), AGGS,
        )

    def test_conjunction(self, sales_table, sales_sma_set):
        predicate = and_(
            cmp("ship", ">=", mid(5)), cmp("ship", "<=", mid(30)),
            cmp("qty", ">", 1.0),
        )
        run_both(sales_table, sales_sma_set, predicate, ("flag",), AGGS)

    def test_disjunction(self, sales_table, sales_sma_set):
        predicate = or_(cmp("ship", "<=", mid(2)), cmp("ship", ">=", mid(38)))
        run_both(sales_table, sales_sma_set, predicate, ("flag",), AGGS)

    def test_ungrouped(self, sales_table, sales_sma_set):
        # Requires ungrouped count/sum SMAs — build them on the fly.
        from repro.core import SmaDefinition, build_sma_set
        import os

        definitions = [
            SmaDefinition("umin", "SALES", minimum(col("ship"))),
            SmaDefinition("umax", "SALES", maximum(col("ship"))),
            SmaDefinition("ucnt", "SALES", count_star()),
            SmaDefinition("usum", "SALES", total(col("qty"))),
        ]
        directory = os.path.join(
            os.path.dirname(sales_table.heap.path), "ungrouped"
        )
        sma_set, _ = build_sma_set(
            sales_table, definitions, directory=directory, name="ungrouped"
        )
        rows = run_both(
            sales_table, sma_set, cmp("ship", "<=", mid(20)), (), AGGS
        )
        assert len(rows) == 1

    @pytest.mark.parametrize("seed", range(6))
    def test_randomized_predicates(self, sales_table, sales_sma_set, seed):
        rng = np.random.default_rng(seed)
        offsets = sorted(rng.integers(-5, 50, size=2).tolist())
        ops = rng.choice(["<", "<=", ">", ">=", "=", "<>"], size=2)
        predicate = and_(
            cmp("ship", str(ops[0]), mid(int(offsets[0]))),
            cmp("ship", str(ops[1]), mid(int(offsets[1]))),
        )
        run_both(sales_table, sales_sma_set, predicate, ("flag",), AGGS)


class TestSmaGAggrBehaviour:
    def test_rejects_uncovered_aggregates(self, sales_table, sales_sma_set):
        from repro.errors import PlanningError

        uncovered = (OutputAggregate("m", maximum(col("qty"))),)
        with pytest.raises(PlanningError):
            SmaGAggr(
                sales_table, TruePredicate(), ("flag",), uncovered, sales_sma_set
            )

    def test_qualifying_buckets_never_fetched(
        self, catalog, sales_table, sales_sma_set
    ):
        predicate = cmp("ship", "<=", mid(20))
        catalog.reset_stats()
        operator = SmaGAggr(
            sales_table, predicate, ("flag",), AGGS, sales_sma_set
        )
        operator.execute()
        partitioning = operator.partitioning
        assert catalog.stats.buckets_fetched == partitioning.num_ambivalent
        assert catalog.stats.tuples_scanned < sales_table.num_records

    def test_count_aggregate_uses_shared_count(self, sales_table, sales_sma_set):
        only_count = (OutputAggregate("n", count_star()),)
        _, rows = SmaGAggr(
            sales_table, TruePredicate(), ("flag",), only_count, sales_sma_set
        ).execute()
        assert sum(r[-1] for r in rows) == sales_table.num_records
