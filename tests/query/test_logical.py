"""Tests for the logical plan layer: rewrites and projection pushdown."""

import datetime

import numpy as np
import pytest

from repro.core.aggregates import count_star, total
from repro.errors import PlanningError
from repro.lang import and_, cmp, col, not_, or_
from repro.lang.predicate import (
    And,
    CmpOp,
    ColumnConstCmp,
    Or,
    TruePredicate,
)
from repro.query.logical import build_logical, normalize_predicate, to_nnf
from repro.query.query import AggregateQuery, OutputAggregate, ScanQuery

from tests.conftest import BASE_DATE, SALES_SCHEMA, sales_rows


def atom(column, op, constant):
    return ColumnConstCmp(column, CmpOp(op), constant)


class TestNnf:
    def test_atom_negation_becomes_complement(self):
        assert to_nnf(not_(cmp("a", "<", 5))) == atom("a", ">=", 5)

    def test_de_morgan_over_and(self):
        pred = not_(And((cmp("a", "<", 5), cmp("b", ">", 2))))
        assert to_nnf(pred) == Or((atom("a", ">=", 5), atom("b", "<=", 2)))

    def test_de_morgan_over_or(self):
        pred = not_(Or((cmp("a", "<", 5), cmp("b", ">", 2))))
        assert to_nnf(pred) == And((atom("a", ">=", 5), atom("b", "<=", 2)))

    def test_nested_negations_vanish(self):
        pred = not_(not_(cmp("a", "=", 1)))
        assert to_nnf(pred) == atom("a", "=", 1)


class TestNormalize:
    def test_true_folds_out_of_and(self):
        pred = And((TruePredicate(), cmp("a", "<", 5)))
        assert normalize_predicate(pred) == atom("a", "<", 5)

    def test_true_absorbs_or(self):
        pred = Or((TruePredicate(), cmp("a", "<", 5)))
        assert normalize_predicate(pred) == TruePredicate()

    def test_nested_ands_flatten(self):
        pred = And((cmp("a", "<", 5), And((cmp("b", ">", 2), cmp("c", "=", 1)))))
        normalized = normalize_predicate(pred)
        assert isinstance(normalized, And)
        assert len(normalized.operands) == 3

    def test_duplicate_atoms_dedup(self):
        pred = and_(cmp("a", "<", 5), cmp("a", "<", 5))
        assert normalize_predicate(pred) == atom("a", "<", 5)

    def test_upper_bounds_tighten_to_smallest(self):
        pred = and_(cmp("a", "<", 5), cmp("a", "<=", 7))
        assert normalize_predicate(pred) == atom("a", "<", 5)

    def test_lower_bounds_tighten_to_largest(self):
        pred = and_(cmp("a", ">", 3), cmp("a", ">=", 1))
        assert normalize_predicate(pred) == atom("a", ">", 3)

    def test_equal_constants_strict_wins(self):
        pred = and_(cmp("a", "<=", 5), cmp("a", "<", 5))
        assert normalize_predicate(pred) == atom("a", "<", 5)

    def test_bounds_on_different_columns_kept(self):
        pred = and_(cmp("a", "<", 5), cmp("b", "<", 7))
        normalized = normalize_predicate(pred)
        assert isinstance(normalized, And)
        assert len(normalized.operands) == 2

    def test_upper_and_lower_on_one_column_kept(self):
        pred = and_(cmp("a", ">", 1), cmp("a", "<", 5))
        normalized = normalize_predicate(pred)
        assert isinstance(normalized, And)
        assert len(normalized.operands) == 2


class TestSemanticsPreserved:
    """Every rewrite must leave evaluate() untouched on real data."""

    CASES = [
        not_(and_(cmp("qty", "<", 4.0), cmp("id", ">", 300))),
        not_(or_(cmp("qty", "<=", 2.0), not_(cmp("id", "<", 900)))),
        and_(cmp("id", "<", 700), cmp("id", "<=", 900), cmp("id", ">", 10)),
        or_(cmp("flag", "=", "A"), cmp("flag", "=", "A")),
        and_(TruePredicate(), cmp("qty", ">=", 3.0)),
    ]

    @pytest.mark.parametrize("predicate", CASES, ids=[str(c) for c in CASES])
    def test_same_mask(self, predicate):
        # Build the batch through the storage layer so dates are encoded
        # exactly as execution sees them.
        from repro.storage.types import date_to_int

        rows = sales_rows(500)
        dtype = SALES_SCHEMA.record_dtype
        batch = np.zeros(len(rows), dtype=dtype)
        for i, (id_, ship, qty, flag) in enumerate(rows):
            batch[i] = (id_, date_to_int(ship), qty, flag)

        bound = predicate.bind(SALES_SCHEMA)
        normalized = normalize_predicate(bound)
        np.testing.assert_array_equal(
            bound.evaluate(batch), normalized.evaluate(batch)
        )


class TestBuildLogical:
    def aggregate_query(self):
        return AggregateQuery(
            table="SALES",
            aggregates=(OutputAggregate("s", total(col("qty"))),),
            where=cmp("ship", "<=", BASE_DATE + datetime.timedelta(days=10)),
            group_by=("flag",),
        )

    def test_aggregate_required_columns(self):
        logical = build_logical(self.aggregate_query(), SALES_SCHEMA)
        assert logical.kind == "aggregate"
        assert logical.required_columns == {"ship", "flag", "qty"}

    def test_scan_projection_pushdown(self):
        query = ScanQuery("SALES", where=cmp("qty", ">", 1.0), columns=("id",))
        logical = build_logical(query, SALES_SCHEMA)
        assert logical.required_columns == {"qty", "id"}

    def test_scan_without_projection_needs_all(self):
        query = ScanQuery("SALES", where=cmp("qty", ">", 1.0))
        logical = build_logical(query, SALES_SCHEMA)
        assert logical.required_columns == set(SALES_SCHEMA.names)

    def test_predicate_is_bound_and_normalized(self):
        query = ScanQuery(
            "SALES",
            where=and_(cmp("id", "<", 5), cmp("id", "<=", 7)),
        )
        logical = build_logical(query, SALES_SCHEMA)
        assert logical.predicate == atom("id", "<", 5)

    def test_count_star_requires_no_column(self):
        query = AggregateQuery(
            table="SALES",
            aggregates=(OutputAggregate("n", count_star()),),
        )
        logical = build_logical(query, SALES_SCHEMA)
        assert logical.required_columns == frozenset()

    def test_render_mentions_every_clause(self):
        text = build_logical(self.aggregate_query(), SALES_SCHEMA).render()
        assert text.startswith("SELECT flag, sum(qty) AS s FROM SALES")
        assert "WHERE ship <=" in text
        assert text.endswith("GROUP BY flag")

    def test_validation_failures_propagate(self):
        bad = ScanQuery("SALES", where=cmp("nope", "<", 1))
        with pytest.raises(Exception):
            build_logical(bad, SALES_SCHEMA)

    def test_unsupported_query_type_rejected(self):
        with pytest.raises(PlanningError):
            build_logical("SELECT 1", SALES_SCHEMA)
