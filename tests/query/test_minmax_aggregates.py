"""MIN/MAX output aggregates served from grouped min/max SMA-files.

Exercises the SMA_GAggr advance-from-SMA path for MIN and MAX (with
validity masks — groups absent from a bucket must not poison the
extremum) and the pure-SMA answering of unfiltered extremum queries.
"""

import datetime

import pytest

from repro.core import (
    SmaDefinition,
    build_sma_set,
    count_star,
    maximum,
    minimum,
)
from repro.lang import cmp, col
from repro.lang.predicate import TruePredicate
from repro.query.gaggr import GAggr
from repro.query.iterators import Filter, SeqScan
from repro.query.query import AggregateQuery, OutputAggregate
from repro.query.session import Session
from repro.query.sma_gaggr import SmaGAggr

from tests.conftest import BASE_DATE, assert_rows_equal


@pytest.fixture
def minmax_set(catalog, sales_table, tmp_path):
    definitions = [
        SmaDefinition("smin", "SALES", minimum(col("ship"))),
        SmaDefinition("smax", "SALES", maximum(col("ship"))),
        SmaDefinition("cnt", "SALES", count_star(), ("flag",)),
        SmaDefinition("gmin", "SALES", minimum(col("ship")), ("flag",)),
        SmaDefinition("gmax", "SALES", maximum(col("ship")), ("flag",)),
        SmaDefinition("qmin", "SALES", minimum(col("qty")), ("flag",)),
        SmaDefinition("qmax", "SALES", maximum(col("qty")), ("flag",)),
    ]
    sma_set, _ = build_sma_set(
        sales_table, definitions, directory=str(tmp_path / "minmax"),
        name="minmax",
    )
    catalog.register_sma_set("SALES", sma_set)
    return sma_set


AGGS = (
    OutputAggregate("first_ship", minimum(col("ship"))),
    OutputAggregate("last_ship", maximum(col("ship"))),
    OutputAggregate("min_qty", minimum(col("qty"))),
    OutputAggregate("max_qty", maximum(col("qty"))),
    OutputAggregate("n", count_star()),
)


def run_both(table, sma_set, predicate):
    _, sma_rows = SmaGAggr(
        table, predicate, ("flag",), AGGS, sma_set
    ).execute()
    _, scan_rows = GAggr(
        Filter(SeqScan(table), predicate), ("flag",), AGGS
    ).execute()
    assert_rows_equal(sorted(sma_rows, key=repr), sorted(scan_rows, key=repr))
    return sma_rows


class TestMinMaxFromSmas:
    def test_unfiltered(self, sales_table, minmax_set):
        rows = run_both(sales_table, minmax_set, TruePredicate())
        assert len(rows) == 2
        # Dates come back as datetime.date, qty as float.
        assert isinstance(rows[0][1], datetime.date)
        assert isinstance(rows[0][3], float)

    def test_range_filtered(self, sales_table, minmax_set):
        cutoff = BASE_DATE + datetime.timedelta(days=20)
        run_both(sales_table, minmax_set, cmp("ship", "<=", cutoff))

    def test_extremum_equals_global_truth(self, sales_table, minmax_set):
        rows = run_both(sales_table, minmax_set, TruePredicate())
        everything = sales_table.read_all()
        from repro.storage.types import int_to_date

        for flag, first, last, qmin, qmax, n in rows:
            mask = everything["flag"] == flag.encode()
            assert first == int_to_date(int(everything["ship"][mask].min()))
            assert last == int_to_date(int(everything["ship"][mask].max()))
            assert qmin == everything["qty"][mask].min()
            assert qmax == everything["qty"][mask].max()

    def test_unfiltered_query_never_touches_relation(
        self, catalog, sales_table, minmax_set
    ):
        catalog.reset_stats()
        SmaGAggr(
            sales_table, TruePredicate(), ("flag",), AGGS, minmax_set
        ).execute()
        assert catalog.stats.buckets_fetched == 0
        assert catalog.stats.tuples_scanned == 0

    def test_validity_respected_with_rare_group(
        self, catalog, sales_table, minmax_set
    ):
        """A group living in exactly one bucket must not contaminate
        others' extrema (validity masks gate the qualifying reads)."""
        from repro.core import SmaMaintainer
        from tests.conftest import SALES_SCHEMA

        maintainer = SmaMaintainer(sales_table, [minmax_set])
        rare = SALES_SCHEMA.batch_from_rows(
            [(77_000, BASE_DATE + datetime.timedelta(days=999), 42.0, "Z")]
        )
        maintainer.insert(rare)
        rows = run_both(sales_table, minmax_set, TruePredicate())
        by_flag = {row[0]: row for row in rows}
        assert by_flag["Z"][3] == 42.0  # min_qty
        assert by_flag["Z"][4] == 42.0  # max_qty
        assert by_flag["A"][4] == 6.0   # unaffected

    def test_planner_covers_minmax_query(self, catalog, sales_table, minmax_set):
        session = Session(catalog)
        query = AggregateQuery(
            table="SALES",
            aggregates=AGGS,
            group_by=("flag",),
            order_by=("flag",),
        )
        result = session.execute(query, mode="sma", sma_set="minmax")
        scan = session.execute(query, mode="scan")
        assert_rows_equal(result.rows, scan.rows)
