"""Tests for plan generation and the cost-based SMA/scan decision."""

import datetime

import numpy as np
import pytest

from repro.core.aggregates import average, count_star, maximum, total
from repro.errors import PlanningError
from repro.lang import cmp, col
from repro.query.planner import Planner, fetch_io_profile
from repro.query.query import AggregateQuery, OutputAggregate, ScanQuery
from repro.storage.disk import PAPER_DISK

from tests.conftest import BASE_DATE


def mid(offset=20):
    return BASE_DATE + datetime.timedelta(days=offset)


def query(where=None, aggregates=None, group_by=("flag",)):
    return AggregateQuery(
        table="SALES",
        aggregates=aggregates
        or (
            OutputAggregate("s", total(col("qty"))),
            OutputAggregate("n", count_star()),
        ),
        where=where if where is not None else cmp("ship", "<=", mid()),
        group_by=group_by,
    )


class TestFetchIoProfile:
    def test_empty(self):
        assert fetch_io_profile(np.zeros(5, dtype=bool), 1) == (0, 0)

    def test_contiguous_run_is_one_skip(self):
        fetched = np.array([0, 1, 1, 1, 0], dtype=bool)
        seq, skip = fetch_io_profile(fetched, 1)
        assert (seq, skip) == (2, 1)

    def test_scattered_buckets_all_skip(self):
        fetched = np.array([1, 0, 1, 0, 1], dtype=bool)
        seq, skip = fetch_io_profile(fetched, 1)
        assert (seq, skip) == (0, 3)

    def test_multi_page_buckets(self):
        fetched = np.array([1, 1], dtype=bool)
        seq, skip = fetch_io_profile(fetched, 4)
        assert seq + skip == 8
        assert skip == 1


@pytest.fixture
def big_sales(catalog, tmp_path):
    """A table large enough that the SMA plan beats per-file seek costs."""
    from repro.core import (
        SmaDefinition, build_sma_set, count_star, maximum, minimum, total,
    )
    from tests.conftest import SALES_SCHEMA

    table = catalog.create_table("SALES", SALES_SCHEMA, clustered_on="ship")
    table.append_rows(
        [
            (i, BASE_DATE + datetime.timedelta(days=i // 500), float(i % 7), "AR"[i % 2])
            for i in range(20_000)
        ]
    )
    definitions = [
        SmaDefinition("smin", "SALES", minimum(col("ship"))),
        SmaDefinition("smax", "SALES", maximum(col("ship"))),
        SmaDefinition("cnt", "SALES", count_star(), ("flag",)),
        SmaDefinition("sqty", "SALES", total(col("qty")), ("flag",)),
    ]
    sma_set, _ = build_sma_set(
        table, definitions, directory=str(tmp_path / "big-smas")
    )
    catalog.register_sma_set("SALES", sma_set)
    return table


class TestAggregatePlanning:
    def test_auto_picks_sma_on_clustered_data(self, catalog, big_sales):
        plan = Planner(catalog).plan_aggregate(query())
        assert plan.info.strategy == "sma_gaggr"
        assert plan.info.est_sma_seconds < plan.info.est_scan_seconds

    def test_auto_respects_costs_at_toy_scale(
        self, catalog, sales_table, sales_sma_set
    ):
        # On a 9-bucket table the per-SMA-file positioning seeks exceed
        # the whole scan: the cost-based planner must notice and fall
        # back — the paper's "bad decision" safety valve in reverse.
        plan = Planner(catalog).plan_aggregate(query())
        assert plan.info.strategy == "gaggr"
        assert plan.info.est_scan_seconds < plan.info.est_sma_seconds

    def test_forced_scan(self, catalog, sales_table, sales_sma_set):
        plan = Planner(catalog).plan_aggregate(query(), mode="scan")
        assert plan.info.strategy == "gaggr"

    def test_forced_sma_without_coverage_raises(
        self, catalog, sales_table, sales_sma_set
    ):
        uncovered = query(
            aggregates=(OutputAggregate("m", maximum(col("qty"))),)
        )
        with pytest.raises(PlanningError):
            Planner(catalog).plan_aggregate(uncovered, mode="sma")

    def test_uncovered_falls_back_to_scan(
        self, catalog, sales_table, sales_sma_set
    ):
        uncovered = query(
            aggregates=(OutputAggregate("m", maximum(col("qty"))),)
        )
        plan = Planner(catalog).plan_aggregate(uncovered)
        assert plan.info.strategy == "gaggr"
        assert "no covering" in plan.info.reason

    def test_avg_requires_sum_sma(self, catalog, big_sales):
        covered = query(
            aggregates=(OutputAggregate("a", average(col("qty"))),)
        )
        plan = Planner(catalog).plan_aggregate(covered)
        assert plan.info.strategy == "sma_gaggr"

    def test_plans_execute_identically(self, catalog, sales_table, sales_sma_set):
        from tests.conftest import assert_rows_equal

        planner = Planner(catalog)
        _, sma_rows = planner.plan_aggregate(query(), mode="sma").run()[0], \
            planner.plan_aggregate(query(), mode="sma").run()[1]
        _, scan_rows = planner.plan_aggregate(query(), mode="scan").run()
        assert_rows_equal(sorted(sma_rows, key=repr), sorted(scan_rows, key=repr))

    def test_invalid_mode_rejected(self, catalog, sales_table, sales_sma_set):
        with pytest.raises(PlanningError):
            Planner(catalog).plan_aggregate(query(), mode="bogus")

    def test_unknown_order_by_rejected(self, catalog, sales_table, sales_sma_set):
        with pytest.raises(PlanningError):
            AggregateQuery(
                table="SALES",
                aggregates=(OutputAggregate("n", count_star()),),
                group_by=("flag",),
                order_by=("missing",),
            ).validate(sales_table.schema)

    def test_estimates_reported(self, catalog, sales_table, sales_sma_set):
        info = Planner(catalog).plan_aggregate(query()).info
        assert info.fraction_ambivalent is not None
        assert info.est_scan_seconds == pytest.approx(
            PAPER_DISK.scan_seconds(
                sales_table.num_pages, sales_table.num_records
            )
            + PAPER_DISK.random_page_s
        )


@pytest.fixture
def competing_sets(catalog, tmp_path):
    """Two covering SMA sets where the one registered FIRST is strictly
    more expensive: 'fat' materializes its aggregates at a needlessly
    fine grouping (flag, cat), so serving a GROUP BY flag query reads
    more SMA-files (and pays more positioning seeks) than 'lean'."""
    from repro.core import (
        SmaDefinition, build_sma_set, count_star, maximum, minimum, total,
    )
    from repro.storage import DATE, FLOAT64, INT32, Schema, char

    schema = Schema.of(
        ("id", INT32),
        ("ship", DATE),
        ("qty", FLOAT64),
        ("flag", char(1)),
        ("cat", char(1)),
    )
    table = catalog.create_table("SALES", schema, clustered_on="ship")
    table.append_rows(
        [
            (
                i,
                BASE_DATE + datetime.timedelta(days=i // 500),
                float(i % 7),
                "AR"[i % 2],
                "XY"[i % 3 % 2],
            )
            for i in range(20_000)
        ]
    )

    def definitions(group_by):
        return [
            SmaDefinition("smin", "SALES", minimum(col("ship"))),
            SmaDefinition("smax", "SALES", maximum(col("ship"))),
            SmaDefinition("cnt", "SALES", count_star(), group_by),
            SmaDefinition("sqty", "SALES", total(col("qty")), group_by),
        ]

    fat, _ = build_sma_set(
        table, definitions(("flag", "cat")),
        directory=str(tmp_path / "fat"), name="fat",
    )
    catalog.register_sma_set("SALES", fat)  # registered first
    lean, _ = build_sma_set(
        table, definitions(("flag",)),
        directory=str(tmp_path / "lean"), name="lean",
    )
    catalog.register_sma_set("SALES", lean)
    return table


class TestCheapestCoveringSet:
    """Regression: the planner must pick the CHEAPEST covering SMA set,
    not the first registered one (the old ``covering[0]`` behavior)."""

    def test_auto_picks_cheapest_not_first(self, catalog, competing_sets):
        plan = Planner(catalog).plan_aggregate(query())
        assert plan.info.strategy == "sma_gaggr"
        assert plan.info.sma_set_name == "lean"
        assert "cheapest of 2" in plan.info.reason

    def test_forced_sma_also_picks_cheapest(self, catalog, competing_sets):
        plan = Planner(catalog).plan_aggregate(query(), mode="sma")
        assert plan.info.sma_set_name == "lean"
        assert "cheapest covering set" in plan.info.reason

    def test_both_sets_costed_in_alternatives(self, catalog, competing_sets):
        explanation = Planner(catalog).plan_aggregate(query()).explanation
        by_set = {
            path.sma_set_name: path
            for path in explanation.alternatives
            if path.sma_set_name is not None
        }
        assert set(by_set) == {"fat", "lean"}
        assert by_set["lean"].est_seconds < by_set["fat"].est_seconds
        assert by_set["lean"].chosen and not by_set["fat"].chosen

    def test_explicit_set_restriction_still_honored(
        self, catalog, competing_sets
    ):
        plan = Planner(catalog).plan_aggregate(query(), sma_set="fat")
        assert plan.info.sma_set_name == "fat"


class TestScanPlanning:
    def test_auto_picks_sma_scan_for_selective_predicate(
        self, catalog, sales_table, sales_sma_set
    ):
        scan_query = ScanQuery("SALES", where=cmp("ship", "<=", mid(2)))
        plan = Planner(catalog).plan_scan(scan_query)
        assert plan.info.strategy == "sma_scan"

    def test_auto_picks_seq_scan_for_unselective_predicate(
        self, catalog, sales_table, sales_sma_set
    ):
        scan_query = ScanQuery("SALES", where=cmp("ship", "<=", mid(10_000)))
        plan = Planner(catalog).plan_scan(scan_query)
        # Everything qualifies: fetching all buckets via SMA costs the
        # scan plus the SMA read — scan wins.
        assert plan.info.strategy == "seq_scan"

    def test_ungradeable_predicate_falls_back(
        self, catalog, sales_table, sales_sma_set
    ):
        scan_query = ScanQuery("SALES", where=cmp("id", "<", 50))
        plan = Planner(catalog).plan_scan(scan_query)
        assert plan.info.strategy == "seq_scan"

    def test_forced_sma_scan_runs(self, catalog, sales_table, sales_sma_set):
        scan_query = ScanQuery(
            "SALES", where=cmp("ship", "<=", mid(2)), columns=("id",)
        )
        columns, rows = Planner(catalog).plan_scan(scan_query, mode="sma").run()
        assert columns == ["id"]
        everything = sales_table.read_all()
        from repro.storage.types import date_to_int

        expected = (everything["ship"] <= date_to_int(mid(2))).sum()
        assert len(rows) == expected

    def test_forced_sma_scan_without_smas_raises(self, catalog, sales_table):
        scan_query = ScanQuery("SALES", where=cmp("ship", "<=", mid(2)))
        with pytest.raises(PlanningError):
            Planner(catalog).plan_scan(scan_query, mode="sma")
