"""EXPLAIN tests: plan trees, costs and grading through every surface.

Golden-structure tests for all four strategies (sma_gaggr, gaggr,
sma_scan, seq_scan) and the forced modes, through ``Session.explain``
and the SQL ``EXPLAIN SELECT`` entry point.
"""

import datetime

import pytest

from repro.core.aggregates import count_star, total
from repro.lang import cmp, col
from repro.query.planner import Explanation
from repro.query.query import AggregateQuery, OutputAggregate, ScanQuery
from repro.query.session import Session

from tests.conftest import BASE_DATE


def mid(offset=20):
    return BASE_DATE + datetime.timedelta(days=offset)


def aggregate_query(offset=20):
    return AggregateQuery(
        table="SALES",
        aggregates=(
            OutputAggregate("s", total(col("qty"))),
            OutputAggregate("n", count_star()),
        ),
        where=cmp("ship", "<=", mid(offset)),
        group_by=("flag",),
    )


@pytest.fixture
def session(catalog, sales_table, sales_sma_set):
    return Session(catalog)


def node_names(tree):
    return [node.name for node in tree.walk()]


class TestStrategyTrees:
    def test_sma_gaggr_tree(self, session):
        explanation = session.explain(aggregate_query(), mode="sma")
        assert explanation.strategy == "sma_gaggr"
        root = explanation.tree
        assert root.name == "SmaGAggr"
        assert root.prop("sma_set") == "default"
        assert node_names(root) == ["SmaGAggr", "SmaGrade", "BucketFetch"]
        grade = root.children[0]
        # The three grading fractions partition the bucket count.
        total_buckets = int(grade.prop("qualifying").split("/")[1])
        parts = sum(
            int(grade.prop(key).split("/")[0])
            for key in ("qualifying", "ambivalent", "disqualifying")
        )
        assert parts == total_buckets

    def test_gaggr_tree(self, session):
        # Toy scale: per-SMA-file seeks exceed the scan, auto mode falls
        # back — and EXPLAIN still shows the grading that lost.
        explanation = session.explain(aggregate_query())
        assert explanation.strategy == "gaggr"
        assert node_names(explanation.tree) == ["GAggr", "Filter", "SeqScan"]
        assert explanation.grading is not None
        assert explanation.info.est_scan_seconds < explanation.info.est_sma_seconds

    def test_sma_scan_tree(self, session):
        scan = ScanQuery("SALES", where=cmp("ship", "<=", mid(2)))
        explanation = session.explain(scan)
        assert explanation.strategy == "sma_scan"
        assert node_names(explanation.tree) == ["SmaScan", "SmaGrade"]
        assert explanation.tree.prop("mode") == "serial"

    def test_seq_scan_tree_forced(self, session):
        scan = ScanQuery("SALES", where=cmp("ship", "<=", mid(2)))
        explanation = session.explain(scan, mode="scan")
        assert explanation.strategy == "seq_scan"
        assert node_names(explanation.tree) == ["Filter", "SeqScan"]
        # Forced scans never grade, so no SMA estimates are reported.
        assert explanation.info.est_sma_seconds is None
        assert explanation.info.est_scan_seconds is None
        assert [path.strategy for path in explanation.alternatives] == ["seq_scan"]

    def test_projection_wraps_scan_tree(self, session):
        scan = ScanQuery(
            "SALES", where=cmp("ship", "<=", mid(2)), columns=("id", "qty")
        )
        explanation = session.explain(scan)
        assert explanation.tree.name == "Project"
        assert explanation.tree.prop("columns") == "id, qty"


class TestForcedModes:
    def test_forced_sma_reason(self, session):
        explanation = session.explain(aggregate_query(), mode="sma")
        assert explanation.info.reason == "forced by caller"
        assert explanation.mode == "sma"

    def test_forced_scan_reason(self, session):
        explanation = session.explain(aggregate_query(), mode="scan")
        assert explanation.info.reason == "forced by caller"
        assert explanation.strategy == "gaggr"

    def test_auto_reports_both_alternatives(self, session):
        explanation = session.explain(aggregate_query())
        strategies = {path.strategy for path in explanation.alternatives}
        assert strategies == {"sma_gaggr", "gaggr"}
        chosen = [path for path in explanation.alternatives if path.chosen]
        assert len(chosen) == 1
        # Alternatives are ordered cheapest-first and the winner leads.
        assert explanation.alternatives[0].chosen


class TestParallelBinding:
    def test_morsel_mode_shows_in_tree(self, catalog, sales_table, sales_sma_set):
        session = Session(catalog, scan_workers=4)
        explanation = session.explain(aggregate_query(), mode="scan")
        assert explanation.tree.name == "ParallelGAggr"
        assert explanation.tree.prop("workers") == "4"
        scan_node = explanation.tree.children[0]
        assert scan_node.name == "MorselScan"
        assert scan_node.prop("mode") == "morsel(workers=4)"

    def test_serial_session_binds_serial(self, session):
        explanation = session.explain(aggregate_query(), mode="scan")
        scan_node = list(explanation.tree.walk())[-1]
        assert scan_node.prop("mode") == "serial"


class TestRendering:
    def test_render_golden_structure(self, session):
        lines = session.explain(aggregate_query(), mode="sma").render().splitlines()
        # Section order is part of the EXPLAIN contract.
        assert lines[0].startswith("SELECT flag, sum(qty) AS s")
        assert lines[1] == "mode: sma"
        assert "physical plan:" in lines
        tree_start = lines.index("physical plan:") + 1
        assert lines[tree_start].lstrip().startswith("SmaGAggr")
        assert lines[tree_start + 1].lstrip().startswith("├─ SmaGrade")
        assert lines[tree_start + 2].lstrip().startswith("└─ BucketFetch")
        assert any(line.startswith("strategy: sma_gaggr") for line in lines)
        assert any(line.startswith("grading: 9 buckets:") for line in lines)
        assert any(line == "alternatives:" for line in lines)
        assert any("-> sma_gaggr via 'default'" in line for line in lines)

    def test_str_matches_render(self, session):
        explanation = session.explain(aggregate_query())
        assert str(explanation) == explanation.render()


class TestSqlExplain:
    SQL = (
        "EXPLAIN SELECT flag, SUM(qty) AS s, COUNT(*) AS n FROM SALES "
        "WHERE ship <= DATE '1997-01-21' GROUP BY flag"
    )

    def test_returns_plan_rows(self, session):
        result = session.sql(self.SQL)
        assert result.columns == ["QUERY PLAN"]
        text = "\n".join(row[0] for row in result.rows)
        assert "physical plan:" in text
        assert "alternatives:" in text
        assert "strategy:" in text

    def test_does_not_touch_the_heap(self, session):
        result = session.sql(self.SQL)
        # Planning grades SMA-files but never fetches relation buckets.
        assert result.stats.buckets_fetched == 0
        assert result.stats.tuples_scanned == 0

    def test_explain_matches_session_explain(self, session):
        result = session.sql(self.SQL)
        direct = session.explain(aggregate_query())
        assert isinstance(direct, Explanation)
        assert "\n".join(row[0] for row in result.rows) == direct.render()
