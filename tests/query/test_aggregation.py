"""Tests for the shared AggregationState machine."""

import datetime

import numpy as np

from repro.core.aggregates import average, count_star, maximum, minimum, total
from repro.lang.expr import col
from repro.query.aggregation import AggregationState
from repro.query.query import OutputAggregate
from repro.storage.schema import Schema
from repro.storage.types import DATE, FLOAT64, char

SCHEMA = Schema.of(("g", char(1)), ("x", FLOAT64), ("d", DATE))


def batch(groups, xs, ds=None):
    n = len(groups)
    return SCHEMA.batch_from_columns(
        g=np.array(groups, dtype="S1"),
        x=np.array(xs, dtype=np.float64),
        d=np.array(ds if ds is not None else [0] * n, dtype=np.int32),
    )


def aggs(*specs):
    return tuple(OutputAggregate(f"a{i}", s) for i, s in enumerate(specs))


class TestTupleConsumption:
    def test_grouped_sum_and_count(self):
        state = AggregationState(SCHEMA, ("g",), aggs(total(col("x")), count_star()))
        state.consume_batch(batch([b"A", b"B", b"A"], [1.0, 2.0, 3.0]))
        state.consume_batch(batch([b"B"], [5.0]))
        columns, rows = state.finalize()
        assert columns == ["g", "a0", "a1"]
        assert rows == [("A", 4.0, 2), ("B", 7.0, 2)]

    def test_avg_is_sum_over_count(self):
        state = AggregationState(SCHEMA, ("g",), aggs(average(col("x"))))
        state.consume_batch(batch([b"A", b"A", b"A"], [1.0, 2.0, 6.0]))
        _, rows = state.finalize()
        assert rows == [("A", 3.0)]

    def test_min_max(self):
        state = AggregationState(
            SCHEMA, ("g",), aggs(minimum(col("x")), maximum(col("x")))
        )
        state.consume_batch(batch([b"A", b"A"], [5.0, 2.0]))
        state.consume_batch(batch([b"A"], [9.0]))
        _, rows = state.finalize()
        assert rows == [("A", 2.0, 9.0)]

    def test_date_minmax_converted_back_to_dates(self):
        state = AggregationState(SCHEMA, (), aggs(minimum(col("d"))))
        state.consume_batch(batch([b"A", b"A"], [0.0, 0.0], [10, 3]))
        _, rows = state.finalize()
        assert rows == [(datetime.date(1970, 1, 4),)]

    def test_empty_batches_ignored(self):
        state = AggregationState(SCHEMA, ("g",), aggs(count_star()))
        state.consume_batch(batch([], []))
        _, rows = state.finalize()
        assert rows == []

    def test_multiple_groups_sorted_deterministically(self):
        state = AggregationState(SCHEMA, ("g",), aggs(count_star()))
        state.consume_batch(batch([b"C", b"A", b"B"], [0.0, 0.0, 0.0]))
        _, rows = state.finalize()
        assert [r[0] for r in rows] == ["A", "B", "C"]


class TestSmaAdvancement:
    def test_mixed_sources_accumulate(self):
        state = AggregationState(
            SCHEMA, ("g",), aggs(total(col("x")), average(col("x")), count_star())
        )
        # SMA contribution: sum 10 over 4 tuples for group A.
        state.advance_count(("A",), 4)
        state.advance_sum(("A",), 0, 10.0)
        state.advance_sum(("A",), 1, 10.0)  # avg tracks its own sum
        # Tuple contribution: 2 more tuples totalling 6.
        state.consume_batch(batch([b"A", b"A"], [2.0, 4.0]))
        _, rows = state.finalize()
        assert rows == [("A", 16.0, 16.0 / 6.0, 6)]

    def test_min_max_from_sma(self):
        state = AggregationState(
            SCHEMA, ("g",), aggs(minimum(col("x")), maximum(col("x")))
        )
        state.advance_count(("A",), 3)
        state.advance_min(("A",), 0, 7.0)
        state.advance_max(("A",), 1, 7.0)
        state.consume_batch(batch([b"A"], [9.0]))
        _, rows = state.finalize()
        assert rows == [("A", 7.0, 9.0)]

    def test_zero_count_advance_is_noop(self):
        state = AggregationState(SCHEMA, ("g",), aggs(count_star()))
        state.advance_count(("A",), 0)
        _, rows = state.finalize()
        assert rows == []


class TestEdgeSemantics:
    def test_grouped_empty_input_yields_no_rows(self):
        state = AggregationState(SCHEMA, ("g",), aggs(total(col("x"))))
        _, rows = state.finalize()
        assert rows == []

    def test_ungrouped_empty_input_yields_one_row(self):
        state = AggregationState(
            SCHEMA, (), aggs(count_star(), total(col("x")), average(col("x")))
        )
        _, rows = state.finalize()
        assert rows == [(0, None, None)]

    def test_groups_with_zero_count_dropped(self):
        state = AggregationState(SCHEMA, ("g",), aggs(total(col("x"))))
        state.advance_sum(("GHOST",), 0, 0.0)  # sum advanced, never counted
        _, rows = state.finalize()
        assert rows == []

    def test_char_group_keys_are_strings(self):
        state = AggregationState(SCHEMA, ("g",), aggs(count_star()))
        state.consume_batch(batch([b"Z"], [0.0]))
        _, rows = state.finalize()
        assert rows == [("Z", 1)]

    def test_python_scalars_in_output(self):
        state = AggregationState(SCHEMA, (), aggs(total(col("x"))))
        state.consume_batch(batch([b"A"], [2.5]))
        _, rows = state.finalize()
        assert isinstance(rows[0][0], float)
