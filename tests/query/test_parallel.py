"""Unit tests for morsel-driven scan parallelism (ISSUE PR 2 tentpole).

The dispatcher contract: results come back in morsel order, worker
windows merge into the parent query's window (failed tasks included —
their physical reads already hit the pool counters), errors re-raise in
task order, and the parent's cancel event reaches every worker.
"""

import threading

import pytest

from repro.errors import ExecutionError, QueryCancelledError
from repro.query.parallel import (
    DEFAULT_MORSEL_BUCKETS,
    ScanParallelism,
    make_morsels,
    resolve_parallelism,
    run_morsels,
)
from repro.storage.buffer import BufferPool
from repro.storage.stats import IoStats


class TestScanParallelism:
    def test_defaults_are_serial(self):
        p = ScanParallelism()
        assert p.workers == 1
        assert p.morsel_buckets == DEFAULT_MORSEL_BUCKETS
        assert not p.enabled
        assert not ScanParallelism.serial().enabled
        assert ScanParallelism(workers=4).enabled

    def test_validation(self):
        with pytest.raises(ExecutionError):
            ScanParallelism(workers=0)
        with pytest.raises(ExecutionError):
            ScanParallelism(workers=2, morsel_buckets=0)

    def test_resolve(self):
        assert resolve_parallelism(None) is None
        assert resolve_parallelism(4) == ScanParallelism(workers=4)
        config = ScanParallelism(workers=2, morsel_buckets=3)
        assert resolve_parallelism(config) is config


class TestMakeMorsels:
    def test_chunks_preserve_order(self):
        assert make_morsels([3, 1, 4, 1, 5], 2) == [[3, 1], [4, 1], [5]]
        assert make_morsels(range(4), 8) == [[0, 1, 2, 3]]
        assert make_morsels([], 4) == []

    def test_rejects_bad_size(self):
        with pytest.raises(ExecutionError):
            make_morsels([1, 2], 0)


class TestRunMorsels:
    def test_results_in_task_order(self):
        pool = BufferPool(capacity_pages=8)
        start = threading.Barrier(4)

        def task(i):
            def run():
                start.wait(timeout=10)  # all four run truly concurrently
                return i * 10

            return run

        assert run_morsels(pool, [task(i) for i in range(4)], 4) == [0, 10, 20, 30]

    def test_serial_fallback_runs_inline(self):
        pool = BufferPool(capacity_pages=8)
        main = threading.current_thread()
        ran_on = []
        tasks = [lambda: ran_on.append(threading.current_thread()) or 1] * 3
        assert run_morsels(pool, tasks, 1) == [1, 1, 1]
        assert all(t is main for t in ran_on)
        assert run_morsels(pool, [], 8) == []

    def test_worker_windows_merge_into_parent(self):
        pool = BufferPool(capacity_pages=32)

        def task(pages):
            def run():
                for page in pages:
                    pool.read_page("f", page, lambda p=page: b"x%d" % p)

            return run

        parent = IoStats()
        with pool.query_context(parent):
            run_morsels(pool, [task([0, 1]), task([2, 3, 4])], 2)
            assert parent.page_reads == 5
        # Nothing leaked onto the default window.
        assert pool.default_stats.page_reads == 0
        counters = pool.counters()
        assert counters.misses == 5

    def test_failed_task_window_still_merges(self):
        """A task that dies after doing I/O must not lose its charges —
        the partition invariant (windows sum == counter growth) survives
        failures."""
        pool = BufferPool(capacity_pages=32)

        def good():
            pool.read_page("f", 0, lambda: b"a")

        def bad():
            pool.read_page("f", 1, lambda: b"b")
            raise ExecutionError("morsel exploded")

        parent = IoStats()
        with pool.query_context(parent):
            with pytest.raises(ExecutionError, match="morsel exploded"):
                run_morsels(pool, [good, bad], 2)
            assert parent.page_reads == 2  # the failed task's read included
        assert pool.counters().misses == 2

    def test_first_error_in_task_order_wins(self):
        pool = BufferPool(capacity_pages=8)
        gate = threading.Barrier(2)

        def fail(tag):
            def run():
                gate.wait(timeout=10)
                raise ExecutionError(tag)

            return run

        with pytest.raises(ExecutionError, match="first"):
            run_morsels(pool, [fail("first"), fail("second")], 2)

    def test_parent_cancel_event_reaches_workers(self):
        pool = BufferPool(capacity_pages=8)
        cancel = threading.Event()
        cancel.set()

        def task():
            return pool.read_page("f", 0, lambda: b"x")

        with pool.query_context(cancel_event=cancel):
            with pytest.raises(QueryCancelledError):
                run_morsels(pool, [task, task], 2)
