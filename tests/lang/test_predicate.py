"""Unit tests for predicates: evaluation, binding, combinators."""

import datetime

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.lang.expr import col
from repro.lang.predicate import (
    And,
    CmpOp,
    ColumnColumnCmp,
    ColumnConstCmp,
    Not,
    Or,
    TruePredicate,
    and_,
    atoms,
    cmp,
    not_,
    or_,
)
from repro.storage.schema import Schema
from repro.storage.types import DATE, FLOAT64, INT32, char

SCHEMA = Schema.of(
    ("a", INT32), ("b", INT32), ("ship", DATE), ("q", FLOAT64), ("flag", char(1))
)


def batch():
    return SCHEMA.batch_from_columns(
        a=np.array([1, 5, 9], dtype=np.int32),
        b=np.array([2, 5, 3], dtype=np.int32),
        ship=np.array([0, 10, 20], dtype=np.int32),
        q=np.array([1.0, 2.0, 3.0]),
        flag=np.array([b"A", b"R", b"A"], dtype="S1"),
    )


class TestAtomicEvaluation:
    @pytest.mark.parametrize(
        "op,expected",
        [
            ("=", [False, True, False]),
            ("<>", [True, False, True]),
            ("<", [True, False, False]),
            ("<=", [True, True, False]),
            (">", [False, False, True]),
            (">=", [False, True, True]),
        ],
    )
    def test_column_const(self, op, expected):
        np.testing.assert_array_equal(cmp("a", op, 5).evaluate(batch()), expected)

    def test_column_column(self):
        np.testing.assert_array_equal(
            cmp("a", "<", col("b")).evaluate(batch()), [True, False, False]
        )
        np.testing.assert_array_equal(
            cmp("a", "=", col("b")).evaluate(batch()), [False, True, False]
        )

    def test_char_comparison(self):
        np.testing.assert_array_equal(
            cmp("flag", "=", b"A").evaluate(batch()), [True, False, True]
        )

    def test_true_predicate(self):
        np.testing.assert_array_equal(
            TruePredicate().evaluate(batch()), [True, True, True]
        )


class TestBinding:
    def test_date_constant_coerced(self):
        bound = cmp("ship", "<=", datetime.date(1970, 1, 11)).bind(SCHEMA)
        assert bound.constant == 10
        np.testing.assert_array_equal(bound.evaluate(batch()), [True, True, False])

    def test_string_constant_coerced_to_bytes(self):
        bound = cmp("flag", "=", "A").bind(SCHEMA)
        assert bound.constant == b"A"

    def test_int_constant_vs_float_column(self):
        bound = cmp("q", ">", 1).bind(SCHEMA)
        assert isinstance(bound.constant, float)

    def test_unknown_column_rejected(self):
        with pytest.raises(SchemaError):
            cmp("ghost", "=", 1).bind(SCHEMA)

    def test_incomparable_columns_rejected(self):
        with pytest.raises(SchemaError):
            cmp("flag", "=", col("a")).bind(SCHEMA)

    def test_numeric_columns_comparable(self):
        cmp("a", "<", col("q")).bind(SCHEMA)  # must not raise

    def test_bind_recurses_through_boolean_nodes(self):
        bound = and_(
            cmp("ship", "<=", datetime.date(1970, 1, 11)), cmp("a", ">", 0)
        ).bind(SCHEMA)
        assert isinstance(bound, And)
        assert bound.operands[0].constant == 10


class TestCombinators:
    def test_and_evaluation(self):
        predicate = and_(cmp("a", ">", 1), cmp("b", "<", 5))
        np.testing.assert_array_equal(
            predicate.evaluate(batch()), [False, False, True]
        )

    def test_or_evaluation(self):
        predicate = or_(cmp("a", "=", 1), cmp("b", "=", 3))
        np.testing.assert_array_equal(
            predicate.evaluate(batch()), [True, False, True]
        )

    def test_not_evaluation(self):
        predicate = Not(cmp("a", "=", 5))
        np.testing.assert_array_equal(
            predicate.evaluate(batch()), [True, False, True]
        )

    def test_and_flattens(self):
        nested = and_(cmp("a", ">", 0), and_(cmp("b", ">", 0), cmp("q", ">", 0)))
        assert isinstance(nested, And)
        assert len(nested.operands) == 3

    def test_or_flattens(self):
        nested = or_(or_(cmp("a", ">", 0), cmp("b", ">", 0)), cmp("q", ">", 0))
        assert isinstance(nested, Or)
        assert len(nested.operands) == 3

    def test_single_operand_returns_itself(self):
        atom = cmp("a", ">", 0)
        assert and_(atom) is atom
        assert or_(atom) is atom

    def test_empty_and_is_true(self):
        assert isinstance(and_(), TruePredicate)

    def test_binary_nodes_need_two_operands(self):
        with pytest.raises(SchemaError):
            And((cmp("a", ">", 0),))
        with pytest.raises(SchemaError):
            Or((cmp("a", ">", 0),))


class TestNotSimplification:
    def test_not_atomic_flips_operator(self):
        flipped = not_(cmp("a", "<", 5))
        assert isinstance(flipped, ColumnConstCmp)
        assert flipped.op is CmpOp.GE

    def test_not_column_column(self):
        flipped = not_(cmp("a", "=", col("b")))
        assert isinstance(flipped, ColumnColumnCmp)
        assert flipped.op is CmpOp.NE

    def test_double_negation_cancels(self):
        inner = or_(cmp("a", ">", 0), cmp("b", ">", 0))
        assert not_(Not(inner)) is inner

    def test_negated_operator_table_is_complementary(self):
        data = batch()
        for op in CmpOp:
            straight = cmp("a", op, 5).evaluate(data)
            negated = cmp("a", op.negated, 5).evaluate(data)
            np.testing.assert_array_equal(straight, ~negated)

    def test_flipped_operator_table(self):
        data = batch()
        for op in CmpOp:
            left = cmp("a", op, col("b")).evaluate(data)
            right = cmp("b", op.flipped, col("a")).evaluate(data)
            np.testing.assert_array_equal(left, right)


class TestIntrospection:
    def test_columns(self):
        predicate = and_(cmp("a", ">", 0), cmp("ship", "<", col("b")))
        assert predicate.columns() == {"a", "ship", "b"}

    def test_atoms_enumeration(self):
        predicate = or_(
            and_(cmp("a", ">", 0), cmp("b", "<", 9)), Not(cmp("q", "=", 1.0))
        )
        found = {str(a) for a in atoms(predicate)}
        assert found == {"a > 0", "b < 9", "q = 1.0"}

    def test_str_rendering(self):
        predicate = and_(cmp("a", ">", 0), cmp("flag", "=", "A"))
        assert str(predicate) == "(a > 0 AND flag = 'A')"
