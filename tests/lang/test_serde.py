"""Round-trip tests for expression/predicate/group-key serialization."""

import datetime
import json

import pytest
from hypothesis import given, strategies as st

from repro.errors import SchemaError
from repro.lang.expr import add, col, const, div, mul, sub, Neg
from repro.lang.predicate import TruePredicate, and_, cmp, or_, Not
from repro.lang.serde import (
    expr_from_json,
    expr_to_json,
    group_key_from_json,
    group_key_to_json,
    predicate_from_json,
    predicate_to_json,
)


def roundtrip_expr(expr):
    return expr_from_json(json.loads(json.dumps(expr_to_json(expr))))


def roundtrip_pred(predicate):
    return predicate_from_json(
        json.loads(json.dumps(predicate_to_json(predicate)))
    )


class TestExpressions:
    def test_query1_charge_expression(self):
        expr = mul(
            mul(col("EP"), sub(const(1), col("D"))), add(const(1), col("T"))
        )
        assert roundtrip_expr(expr) == expr

    def test_negation_and_division(self):
        expr = div(Neg(col("x")), const(2.5))
        assert roundtrip_expr(expr) == expr

    def test_date_constant(self):
        expr = const(datetime.date(1998, 12, 1))
        assert roundtrip_expr(expr) == expr

    def test_string_and_bytes_constants(self):
        assert roundtrip_expr(const("hello")) == const("hello")
        assert roundtrip_expr(const(b"\x00\xff")) == const(b"\x00\xff")

    def test_unknown_node_rejected(self):
        with pytest.raises(SchemaError):
            expr_from_json({"node": "mystery"})


class TestPredicates:
    def test_full_boolean_tree(self):
        predicate = or_(
            and_(cmp("a", "<=", 5), Not(cmp("b", "=", col("c")))),
            cmp("ship", ">", datetime.date(1995, 6, 17)),
        )
        assert roundtrip_pred(predicate) == predicate

    def test_true_predicate(self):
        assert roundtrip_pred(TruePredicate()) == TruePredicate()

    def test_every_operator(self):
        for op in ("=", "<>", "<", "<=", ">", ">="):
            predicate = cmp("x", op, 3)
            assert roundtrip_pred(predicate) == predicate

    def test_unknown_node_rejected(self):
        with pytest.raises(SchemaError):
            predicate_from_json({"node": "mystery"})


class TestGroupKeys:
    def test_mixed_key(self):
        key = ("A", 3, 2.5, datetime.date(2000, 1, 1))
        assert group_key_from_json(group_key_to_json(key)) == key

    def test_empty_key(self):
        assert group_key_from_json(group_key_to_json(())) == ()

    @given(
        st.tuples(
            st.text(max_size=8),
            st.integers(-10**9, 10**9),
            st.floats(allow_nan=False, allow_infinity=False),
        )
    )
    def test_property_roundtrip(self, key):
        encoded = json.dumps(group_key_to_json(key))
        assert group_key_from_json(json.loads(encoded)) == key
