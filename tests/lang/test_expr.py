"""Unit tests for scalar expressions."""

import datetime

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.lang.expr import (
    ArithOp,
    BinOp,
    Neg,
    add,
    col,
    const,
    div,
    mul,
    sub,
)
from repro.storage.schema import Schema
from repro.storage.types import DATE, FLOAT64, INT32, INT64, TypeKind, char

SCHEMA = Schema.of(
    ("price", FLOAT64), ("disc", FLOAT64), ("n", INT32), ("ship", DATE),
    ("tag", char(3)),
)


def batch(**overrides):
    base = dict(
        price=np.array([100.0, 200.0]),
        disc=np.array([0.1, 0.25]),
        n=np.array([3, 4], dtype=np.int32),
        ship=np.array([10, 20], dtype=np.int32),
        tag=np.array([b"ab", b"cd"], dtype="S3"),
    )
    base.update(overrides)
    return SCHEMA.batch_from_columns(**base)


class TestEvaluation:
    def test_column_ref(self):
        np.testing.assert_array_equal(col("n").evaluate(batch()), [3, 4])

    def test_const_broadcasts(self):
        np.testing.assert_array_equal(const(7).evaluate(batch()), [7, 7])

    def test_date_const_stored_as_day_number(self):
        values = const(datetime.date(1970, 1, 11)).evaluate(batch())
        np.testing.assert_array_equal(values, [10, 10])

    def test_query1_disc_price(self):
        expr = mul(col("price"), sub(const(1), col("disc")))
        np.testing.assert_allclose(expr.evaluate(batch()), [90.0, 150.0])

    def test_division_promotes_to_float(self):
        values = div(col("n"), const(2)).evaluate(batch())
        np.testing.assert_allclose(values, [1.5, 2.0])

    def test_negation(self):
        np.testing.assert_array_equal(Neg(col("n")).evaluate(batch()), [-3, -4])

    def test_nested_arithmetic(self):
        expr = add(mul(col("n"), const(10)), Neg(col("n")))
        np.testing.assert_array_equal(expr.evaluate(batch()), [27, 36])


class TestTyping:
    def test_column_type(self):
        assert col("ship").result_type(SCHEMA).kind is TypeKind.DATE

    def test_unknown_column(self):
        with pytest.raises(SchemaError):
            col("ghost").result_type(SCHEMA)

    def test_int_float_promotion(self):
        assert mul(col("n"), col("price")).result_type(SCHEMA) == FLOAT64

    def test_int_int_stays_integer(self):
        assert add(col("n"), const(1)).result_type(SCHEMA) == INT64

    def test_division_always_float(self):
        assert div(col("n"), col("n")).result_type(SCHEMA) == FLOAT64

    def test_date_plus_int_is_date(self):
        assert add(col("ship"), const(30)).result_type(SCHEMA).kind is TypeKind.DATE

    def test_date_minus_date_is_int(self):
        assert sub(col("ship"), col("ship")).result_type(SCHEMA) == INT64

    def test_date_times_int_rejected(self):
        with pytest.raises(SchemaError):
            mul(col("ship"), const(2)).result_type(SCHEMA)

    def test_arithmetic_on_char_rejected(self):
        with pytest.raises(SchemaError):
            add(col("tag"), const(1)).result_type(SCHEMA)

    def test_negating_char_rejected(self):
        with pytest.raises(SchemaError):
            Neg(col("tag")).result_type(SCHEMA)

    def test_literal_types(self):
        assert const(1).result_type(SCHEMA) == INT64
        assert const(1.5).result_type(SCHEMA) == FLOAT64
        assert const("ab").result_type(SCHEMA).kind is TypeKind.CHAR
        assert const(datetime.date(2020, 1, 1)).result_type(SCHEMA).kind is TypeKind.DATE

    def test_bool_literal_rejected(self):
        with pytest.raises(SchemaError):
            const(True).result_type(SCHEMA)


class TestStructure:
    def test_structural_equality(self):
        left = mul(col("price"), sub(const(1), col("disc")))
        right = mul(col("price"), sub(const(1), col("disc")))
        assert left == right
        assert hash(left) == hash(right)

    def test_different_trees_unequal(self):
        assert mul(col("price"), col("disc")) != mul(col("disc"), col("price"))

    def test_columns_collected(self):
        expr = mul(col("price"), sub(const(1), col("disc")))
        assert expr.columns() == {"price", "disc"}
        assert const(1).columns() == frozenset()

    def test_str_rendering(self):
        expr = mul(col("price"), sub(const(1), col("disc")))
        assert str(expr) == "(price * (1 - disc))"

    def test_op_symbols(self):
        assert ArithOp.ADD.value == "+"
        assert str(BinOp(ArithOp.DIV, col("n"), const(2))) == "(n / 2)"
