"""Write-ahead intent records for heap ingest (crash-consistent DML).

Every DML batch follows the same four-step protocol:

1. **intent append** — a JSON sidecar (``<table>.heap.intent.json``)
   records the operation, the heap's pre-image geometry (bucket count +
   trailing-bucket record count) and, for inserts, the raw bytes of the
   trailing bucket it is about to top up in place;
2. **data pages** — the heap pages are written/appended;
3. **SMA entry advancement** — the incremental maintainer updates or
   appends SMA-file entries;
4. **intent retire** — the heap sidecars flush, the ingest epoch bumps
   (persisted in the catalog manifest), and the intent file is removed
   last: while the intent exists it covers every not-yet-durable effect
   of the batch, including the epoch bump itself.

A crash anywhere between 1 and 4 leaves the intent on disk.  On the
next ``repro verify`` the intent is reported; ``--repair`` *resolves*
it: when every data page of the intended post-image landed intact
(checksums verify, geometry matches) the intent **replays** — the data
is kept, the counts sidecar is re-synced from the page headers and the
regular SMA verification pass rebuilds any entry drift; otherwise the
intent **rolls back** — the file truncates to its pre-image geometry
and the saved trailing-bucket pre-image is rewritten, undoing a torn
in-place top-up.  Either way the catalog lands on a clean epoch
boundary: zero torn buckets, zero quarantined SMAs after the SMA pass.

DML batches are serialized per table (the catalog's ingest lock), so at
most one intent per heap ever exists.
"""

from __future__ import annotations

import json
import os
import struct
from dataclasses import dataclass

import numpy as np

from repro.errors import ChecksumError, StorageError
from repro.storage.heapfile import HeapFile

#: Sidecar suffix: ``LINEITEM.heap`` -> ``LINEITEM.heap.intent.json``.
INTENT_SUFFIX = ".intent.json"

_COUNT_STRUCT = struct.Struct("<I")


@dataclass(frozen=True)
class IngestIntent:
    """One in-flight DML batch's write-ahead record."""

    op: str  # "insert" | "update" | "delete"
    table: str
    epoch: int  # the epoch this batch is producing
    before_buckets: int
    before_trailing: int  # record count of the last pre-image bucket
    after_buckets: int
    after_trailing: int
    rows: int  # batch size (insert) / matched rows bound (update/delete)
    #: Hex-encoded raw records of the trailing bucket about to be topped
    #: up in place (insert only): the rollback pre-image.
    preimage_hex: str | None = None

    def to_json(self) -> dict:
        return {
            "op": self.op,
            "table": self.table,
            "epoch": self.epoch,
            "before_buckets": self.before_buckets,
            "before_trailing": self.before_trailing,
            "after_buckets": self.after_buckets,
            "after_trailing": self.after_trailing,
            "rows": self.rows,
            "preimage_hex": self.preimage_hex,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "IngestIntent":
        return cls(
            op=payload["op"],
            table=payload["table"],
            epoch=int(payload["epoch"]),
            before_buckets=int(payload["before_buckets"]),
            before_trailing=int(payload["before_trailing"]),
            after_buckets=int(payload["after_buckets"]),
            after_trailing=int(payload["after_trailing"]),
            rows=int(payload["rows"]),
            preimage_hex=payload.get("preimage_hex"),
        )


def intent_path(heap_path: str) -> str:
    return heap_path + INTENT_SUFFIX


def write_intent(heap: HeapFile, intent: IngestIntent) -> str:
    """Persist *intent* atomically (tmp + replace) before any data write."""
    path = intent_path(heap.path)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(intent.to_json(), handle)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


def load_intent(heap_path: str) -> IngestIntent | None:
    """The pending intent of the heap at *heap_path*, or None."""
    path = intent_path(heap_path)
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as handle:
        return IngestIntent.from_json(json.load(handle))


def retire_intent(heap_path: str) -> None:
    """Remove the intent sidecar: the batch is fully durable."""
    path = intent_path(heap_path)
    if os.path.exists(path):
        os.remove(path)


def insert_intent(heap: HeapFile, table: str, epoch: int, batch_len: int) -> IngestIntent:
    """Build the pre-image intent for appending *batch_len* records."""
    per_bucket = heap.layout.tuples_per_bucket
    before_buckets = heap.num_buckets
    before_trailing = heap.bucket_count(before_buckets - 1) if before_buckets else 0
    preimage_hex = None
    if before_buckets and before_trailing < per_bucket:
        # The trailing bucket will be rewritten in place: save its bytes.
        preimage_hex = heap.read_bucket(before_buckets - 1).tobytes().hex()
    total = (before_buckets - 1) * per_bucket + before_trailing if before_buckets else 0
    total += batch_len
    after_buckets = max(1, -(-total // per_bucket)) if total else before_buckets
    after_trailing = total - (after_buckets - 1) * per_bucket if total else before_trailing
    return IngestIntent(
        op="insert",
        table=table,
        epoch=epoch,
        before_buckets=before_buckets,
        before_trailing=before_trailing,
        after_buckets=after_buckets,
        after_trailing=after_trailing,
        rows=batch_len,
        preimage_hex=preimage_hex,
    )


def mutation_intent(heap: HeapFile, table: str, epoch: int, op: str) -> IngestIntent:
    """Intent for an in-place rewrite (update/delete): geometry is kept.

    Updates and deletes rewrite existing buckets page-atomically; their
    recovery action is a counts re-sync from page headers plus the SMA
    verification pass — no heap rollback is possible (or needed: each
    page holds either the old or the new version, never a mix).
    """
    before_buckets = heap.num_buckets
    before_trailing = heap.bucket_count(before_buckets - 1) if before_buckets else 0
    return IngestIntent(
        op=op,
        table=table,
        epoch=epoch,
        before_buckets=before_buckets,
        before_trailing=before_trailing,
        after_buckets=before_buckets,
        after_trailing=before_trailing,
        rows=0,
    )


# ----------------------------------------------------------------------
# recovery (repro verify --repair)
# ----------------------------------------------------------------------


def _header_count(heap: HeapFile, page_no: int) -> int:
    """CRC-verified record count from one page's header (raises on damage)."""
    payload = heap._load_page(page_no)
    (count,) = _COUNT_STRUCT.unpack_from(payload, 0)
    return count


def _probe_roll_forward(heap: HeapFile, intent: IngestIntent) -> np.ndarray | None:
    """Post-image bucket counts from page headers, or None if damaged.

    Roll-forward is legal only when every page of the intended
    post-image region is physically present and checksum-clean and the
    header-derived geometry matches the intent exactly.
    """
    layout = heap.layout
    bucket_bytes = layout.pages_per_bucket * layout.page_size
    if os.path.getsize(heap.path) < intent.after_buckets * bucket_bytes:
        return None
    first_touched = max(0, intent.before_buckets - 1)
    counts = heap.bucket_counts()[:intent.after_buckets].copy() if (
        heap.num_buckets >= intent.after_buckets
    ) else np.concatenate([
        np.asarray(heap.bucket_counts(), dtype=np.int64),
        np.zeros(intent.after_buckets - heap.num_buckets, dtype=np.int64),
    ])
    try:
        for bucket_no in range(first_touched, intent.after_buckets):
            total = 0
            first_page = bucket_no * layout.pages_per_bucket
            for j in range(layout.pages_per_bucket):
                total += _header_count(heap, first_page + j)
            counts[bucket_no] = total
    except (ChecksumError, StorageError):
        return None
    if intent.after_buckets and counts[intent.after_buckets - 1] != intent.after_trailing:
        return None
    per_bucket = layout.tuples_per_bucket
    if any(
        counts[b] != per_bucket
        for b in range(first_touched, intent.after_buckets - 1)
    ):
        return None
    return counts


def resolve_intent(heap: HeapFile, intent: IngestIntent) -> str:
    """Replay or roll back one incomplete intent; returns the action.

    ``"replayed"`` — the post-image data pages all landed: the counts
    sidecar re-syncs from the page headers and the data is kept (the SMA
    verification pass then repairs any entry drift).

    ``"rolled_back"`` — the append did not complete (missing or torn
    pages): the heap truncates to the pre-image geometry and the saved
    trailing-bucket pre-image is rewritten.

    The intent sidecar is retired in both cases.
    """
    if intent.op in ("update", "delete"):
        # Geometry unchanged; re-sync counts from the (page-atomic)
        # headers so a crash between page write and sidecar flush cannot
        # leave stale per-bucket counts.
        for bucket_no in range(heap.num_buckets):
            first_page = bucket_no * heap.layout.pages_per_bucket
            total = 0
            for j in range(heap.layout.pages_per_bucket):
                total += _header_count(heap, first_page + j)
            heap._bucket_counts[bucket_no] = total
            heap.invalidate_decoded(bucket_no)
        heap.flush()
        retire_intent(heap.path)
        return "replayed"

    counts = _probe_roll_forward(heap, intent)
    if counts is not None:
        heap._bucket_counts = counts.astype(np.int64, copy=True)
        heap.drop_decode_cache()
        heap.pool.invalidate(heap.file_id)
        heap.flush()
        retire_intent(heap.path)
        return "replayed"

    preimage = None
    if intent.preimage_hex is not None:
        preimage = np.frombuffer(
            bytes.fromhex(intent.preimage_hex), dtype=heap.schema.record_dtype
        ).copy()
    # The counts sidecar was last flushed at the pre-image state, but be
    # defensive: clamp to the pre-image bucket count before truncating.
    if heap.num_buckets > intent.before_buckets:
        heap._bucket_counts = heap._bucket_counts[:intent.before_buckets].copy()
    elif heap.num_buckets < intent.before_buckets:
        raise StorageError(
            f"intent on {heap.path} predates a shorter heap "
            f"({heap.num_buckets} < {intent.before_buckets} buckets); "
            "refusing to roll back"
        )
    heap.truncate_to(intent.before_buckets, trailing=preimage)
    if intent.before_buckets:
        heap._bucket_counts[intent.before_buckets - 1] = intent.before_trailing
        heap.flush()
    retire_intent(heap.path)
    return "rolled_back"


__all__ = [
    "INTENT_SUFFIX",
    "IngestIntent",
    "insert_intent",
    "intent_path",
    "load_intent",
    "mutation_intent",
    "resolve_intent",
    "retire_intent",
    "write_intent",
]
