"""Pluggable page-checksum codec (CRC32C with a zlib CRC32 fast path).

Every checksummed file records which algorithm produced its checksums
(``checksum_algo`` in its meta sidecar), so readers always verify with
the writer's algorithm and files stay portable across installations.

Two algorithms are supported:

``crc32c``
    The Castagnoli polynomial (0x1EDC6F41, reflected 0x82F63B78) used by
    iSCSI, ext4, and most modern storage systems.  When the optional C
    extension ``crc32c`` is importable it is used; otherwise a pure-python
    table-driven implementation is used.  The pure-python fallback is
    correct but slow (~1 ms per 4 KB page), so it is never picked as a
    *default* — only honoured when a file declares it.

``crc32``
    zlib's CRC-32 (polynomial 0x04C11DB7).  Identical 32-bit corruption
    detection strength for single-page protection and ~2 µs per 4 KB
    page in the standard library, so this is the default whenever the C
    crc32c extension is unavailable.

Environment knobs:

``REPRO_PAGE_CHECKSUMS=0``
    Disable checksums on newly created files (used by the EXPERIMENTS.md
    overhead measurement).  Existing checksummed files are still verified.

``REPRO_CHECKSUM_ALGO=crc32c|crc32``
    Force the default algorithm for newly created files.
"""

from __future__ import annotations

import os
import zlib

from repro.errors import StorageError

try:  # optional C extension; never installed on demand
    import crc32c as _crc32c_ext  # type: ignore[import-not-found]
except ImportError:  # pragma: no cover - depends on environment
    _crc32c_ext = None

ALGORITHMS = ("crc32c", "crc32")

_CRC32C_POLY = 0x82F63B78
_crc32c_table: list[int] | None = None


def _build_crc32c_table() -> list[int]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = (crc >> 1) ^ _CRC32C_POLY if crc & 1 else crc >> 1
        table.append(crc)
    return table


def crc32c_py(data: bytes, crc: int = 0) -> int:
    """Pure-python table-driven CRC32C (Castagnoli), matching the C ext."""
    global _crc32c_table
    if _crc32c_table is None:
        _crc32c_table = _build_crc32c_table()
    table = _crc32c_table
    crc = (crc ^ 0xFFFFFFFF) & 0xFFFFFFFF
    for byte in data:
        crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return (crc ^ 0xFFFFFFFF) & 0xFFFFFFFF


def checksum(data: bytes, algo: str) -> int:
    """Checksum ``data`` with the named algorithm (32-bit unsigned)."""
    if algo == "crc32":
        return zlib.crc32(data) & 0xFFFFFFFF
    if algo == "crc32c":
        if _crc32c_ext is not None:
            return _crc32c_ext.crc32c(data) & 0xFFFFFFFF
        return crc32c_py(data)
    raise StorageError(f"unknown checksum algorithm {algo!r}")


def checksums_enabled() -> bool:
    """Whether newly created files should carry page checksums."""
    return os.environ.get("REPRO_PAGE_CHECKSUMS", "1") != "0"


def default_algorithm() -> str | None:
    """Algorithm for newly created files, or None when disabled.

    Prefers hardware/C-extension CRC32C; falls back to zlib CRC32 so the
    write and cold-load paths never pay a ~450x pure-python penalty.
    """
    if not checksums_enabled():
        return None
    forced = os.environ.get("REPRO_CHECKSUM_ALGO")
    if forced:
        if forced not in ALGORITHMS:
            raise StorageError(f"unknown checksum algorithm {forced!r}")
        return forced
    return "crc32c" if _crc32c_ext is not None else "crc32"
