"""Catalog-wide integrity accounting: quarantines, repairs, listeners.

One :class:`IntegrityMonitor` hangs off every catalog.  The planner
records each SMA quarantine here; ``repro verify --repair`` records
repairs.  Interested parties (the query service wiring events + metrics,
tests) subscribe with :meth:`add_listener` and must unsubscribe on
shutdown — catalogs outlive individual services.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

#: Listener signature: ``fn(event_name, info_dict)`` where event_name is
#: ``"sma_quarantined"``, ``"sma_repaired"`` or ``"intent_replayed"``.
IntegrityListener = Callable[[str, dict], None]

#: Bounded history so long-lived catalogs cannot grow without limit.
_MAX_RECORDS = 256


class IntegrityMonitor:
    """Thread-safe counters + pub/sub for integrity events."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._listeners: list[IntegrityListener] = []
        self._quarantines = 0
        self._repairs = 0
        self._intent_resolutions: dict[str, int] = {}
        self._by_table: dict[str, int] = {}
        self._records: list[dict] = []

    # -- subscription ----------------------------------------------------

    def add_listener(self, listener: IntegrityListener) -> None:
        with self._lock:
            if listener not in self._listeners:
                self._listeners.append(listener)

    def remove_listener(self, listener: IntegrityListener) -> None:
        """Unsubscribe; unknown listeners are ignored (idempotent)."""
        with self._lock:
            try:
                self._listeners.remove(listener)
            except ValueError:
                pass

    # -- recording -------------------------------------------------------

    def record_quarantine(self, *, table: str, sma_set: str, definition: str,
                          path: str | None = None, reason: str = "") -> None:
        info = {
            "table": table,
            "sma_set": sma_set,
            "definition": definition,
            "path": path,
            "reason": reason,
        }
        with self._lock:
            self._quarantines += 1
            self._by_table[table] = self._by_table.get(table, 0) + 1
            self._append_record("sma_quarantined", info)
            listeners = list(self._listeners)
        self._notify(listeners, "sma_quarantined", info)

    def record_repair(self, *, table: str, sma_set: str, definition: str) -> None:
        info = {"table": table, "sma_set": sma_set, "definition": definition}
        with self._lock:
            self._repairs += 1
            self._append_record("sma_repaired", info)
            listeners = list(self._listeners)
        self._notify(listeners, "sma_repaired", info)

    def record_intent_resolution(
        self, *, table: str, op: str, epoch: int, action: str
    ) -> None:
        """A pending write-ahead intent was replayed or rolled back.

        ``action`` is ``"replayed"`` (the batch's post-image was complete
        and was committed) or ``"rolled_back"`` (the pre-image was
        restored).  Emitted by :func:`~repro.core.ingest.apply_dml`'s
        self-heal path and ``repro verify --repair``.
        """
        info = {"table": table, "op": op, "epoch": epoch, "action": action}
        with self._lock:
            self._intent_resolutions[action] = (
                self._intent_resolutions.get(action, 0) + 1
            )
            self._append_record("intent_replayed", info)
            listeners = list(self._listeners)
        self._notify(listeners, "intent_replayed", info)

    def _append_record(self, event: str, info: dict) -> None:
        self._records.append({"event": event, "ts": time.time(), **info})
        if len(self._records) > _MAX_RECORDS:
            del self._records[: len(self._records) - _MAX_RECORDS]

    @staticmethod
    def _notify(listeners: list[IntegrityListener], event: str, info: dict) -> None:
        for listener in listeners:
            try:
                listener(event, dict(info))
            except Exception:
                pass  # a broken observer must never fail a query

    # -- introspection ---------------------------------------------------

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "sma_quarantined": self._quarantines,
                "sma_repaired": self._repairs,
                "intent_resolutions": dict(self._intent_resolutions),
                "by_table": dict(self._by_table),
                "recent": [dict(r) for r in self._records[-16:]],
            }

    @property
    def quarantine_count(self) -> int:
        with self._lock:
            return self._quarantines
