"""Column data types and their fixed-width binary representation.

The storage engine stores fixed-width records (as TPC-D-era systems did),
so every type maps to a numpy scalar dtype of known byte width:

========  =================  =====================================
type      numpy dtype        notes
========  =================  =====================================
INT32     ``<i4``            4-byte signed integer
INT64     ``<i8``            8-byte signed integer
FLOAT64   ``<f8``            8-byte IEEE double (paper's "8 bytes
                             for all other aggregate values")
DATE      ``<i4``            days since 1970-01-01 (paper: "a
                             single date field can be stored in
                             32 bits")
CHAR(n)   ``S<n>``           fixed-width byte string, space padded
BOOL      ``?``              1 byte
========  =================  =====================================

Dates are exposed to callers as :class:`datetime.date`; internally they
are int32 day numbers so min/max/grading are plain integer comparisons.
"""

from __future__ import annotations

import datetime
import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import SchemaError

_EPOCH = datetime.date(1970, 1, 1).toordinal()


class TypeKind(enum.Enum):
    """The storable column type kinds."""

    INT32 = "int32"
    INT64 = "int64"
    FLOAT64 = "float64"
    DATE = "date"
    CHAR = "char"
    BOOL = "bool"


_FIXED_NUMPY = {
    TypeKind.INT32: "<i4",
    TypeKind.INT64: "<i8",
    TypeKind.FLOAT64: "<f8",
    TypeKind.DATE: "<i4",
    TypeKind.BOOL: "?",
}

_FIXED_WIDTH = {
    TypeKind.INT32: 4,
    TypeKind.INT64: 8,
    TypeKind.FLOAT64: 8,
    TypeKind.DATE: 4,
    TypeKind.BOOL: 1,
}


@dataclass(frozen=True)
class DataType:
    """A concrete column type: a :class:`TypeKind` plus parameters.

    Only ``CHAR`` carries a parameter (its byte length).  Instances are
    immutable and hashable so they can key dictionaries and appear in
    schema equality checks.
    """

    kind: TypeKind
    length: int = 0

    def __post_init__(self) -> None:
        if self.kind is TypeKind.CHAR:
            if self.length <= 0:
                raise SchemaError(f"CHAR length must be positive, got {self.length}")
        elif self.length != 0:
            raise SchemaError(f"{self.kind.value} does not take a length parameter")

    @property
    def numpy_dtype(self) -> str:
        """The numpy dtype string used to store this type."""
        if self.kind is TypeKind.CHAR:
            return f"S{self.length}"
        return _FIXED_NUMPY[self.kind]

    @property
    def width(self) -> int:
        """Byte width of one value of this type."""
        if self.kind is TypeKind.CHAR:
            return self.length
        return _FIXED_WIDTH[self.kind]

    @property
    def is_numeric(self) -> bool:
        """True for types on which sum/avg aggregates are meaningful."""
        return self.kind in (TypeKind.INT32, TypeKind.INT64, TypeKind.FLOAT64)

    @property
    def is_orderable(self) -> bool:
        """True for types on which min/max and range predicates work."""
        return self.kind is not TypeKind.BOOL

    def __str__(self) -> str:
        if self.kind is TypeKind.CHAR:
            return f"CHAR({self.length})"
        return self.kind.value.upper()


# Singleton instances for the parameterless types.
INT32 = DataType(TypeKind.INT32)
INT64 = DataType(TypeKind.INT64)
FLOAT64 = DataType(TypeKind.FLOAT64)
DATE = DataType(TypeKind.DATE)
BOOL = DataType(TypeKind.BOOL)


def char(length: int) -> DataType:
    """Build a ``CHAR(length)`` type."""
    return DataType(TypeKind.CHAR, length)


def date_to_int(value: datetime.date) -> int:
    """Convert a :class:`datetime.date` to its stored int32 day number."""
    return value.toordinal() - _EPOCH


def int_to_date(day_number: int) -> datetime.date:
    """Convert a stored int32 day number back to a :class:`datetime.date`."""
    return datetime.date.fromordinal(int(day_number) + _EPOCH)


def coerce_value(dtype: DataType, value: object) -> object:
    """Coerce a Python value to the storable representation of *dtype*.

    Dates become day numbers, strings become padded bytes, numerics are
    validated.  Raises :class:`SchemaError` on incompatible values.
    """
    kind = dtype.kind
    if kind is TypeKind.DATE:
        if isinstance(value, datetime.date):
            return date_to_int(value)
        if isinstance(value, (int, np.integer)):
            return int(value)
        if isinstance(value, str):
            return date_to_int(datetime.date.fromisoformat(value))
        raise SchemaError(f"cannot store {value!r} as DATE")
    if kind is TypeKind.CHAR:
        if isinstance(value, bytes):
            raw = value
        elif isinstance(value, str):
            raw = value.encode("ascii", errors="replace")
        else:
            raise SchemaError(f"cannot store {value!r} as {dtype}")
        if len(raw) > dtype.length:
            raise SchemaError(
                f"value of length {len(raw)} does not fit in {dtype}"
            )
        return raw
    if kind in (TypeKind.INT32, TypeKind.INT64):
        if isinstance(value, (bool,)):
            raise SchemaError(f"cannot store bool as {dtype}")
        if isinstance(value, (int, np.integer)):
            return int(value)
        raise SchemaError(f"cannot store {value!r} as {dtype}")
    if kind is TypeKind.FLOAT64:
        if isinstance(value, (int, float, np.integer, np.floating)):
            return float(value)
        raise SchemaError(f"cannot store {value!r} as FLOAT64")
    if kind is TypeKind.BOOL:
        if isinstance(value, (bool, np.bool_)):
            return bool(value)
        raise SchemaError(f"cannot store {value!r} as BOOL")
    raise SchemaError(f"unknown type kind {kind!r}")


def python_value(dtype: DataType, stored: object) -> object:
    """Convert a stored value back to its user-facing Python form."""
    kind = dtype.kind
    if kind is TypeKind.DATE:
        return int_to_date(int(stored))
    if kind is TypeKind.CHAR:
        if isinstance(stored, bytes):
            return stored.rstrip(b"\x00").decode("ascii", errors="replace")
        return str(stored)
    if kind in (TypeKind.INT32, TypeKind.INT64):
        return int(stored)
    if kind is TypeKind.FLOAT64:
        return float(stored)
    if kind is TypeKind.BOOL:
        return bool(stored)
    raise SchemaError(f"unknown type kind {kind!r}")
