"""Page and bucket geometry.

The paper assumes relations are "physically organized into a sequence of
buckets", where a bucket is a single page or a consecutive sequence of
pages (Section 2.1).  The default configuration matches the paper's
experiments: 4 KB pages, bucket = one page.

:class:`BucketLayout` is pure arithmetic — it owns no data.  Everything
downstream (heap files, SMA-file sizes, the disk cost model, the data
cube comparison) derives page counts from it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import StorageError

#: Default page size used throughout the paper's experiments (4 KB).
DEFAULT_PAGE_SIZE = 4096

#: Bytes reserved per page for header bookkeeping (record count, LSN, ...).
#: The paper does not specify a header; we model a small conventional one
#: so tuples-per-page is realistic rather than an exact divisor.
DEFAULT_PAGE_HEADER = 32


@dataclass(frozen=True)
class BucketLayout:
    """Fixed geometry of a bucketed heap file.

    Parameters
    ----------
    record_width:
        Byte width of one fixed-width record.
    page_size:
        Page size in bytes (default 4096).
    pages_per_bucket:
        Number of consecutive pages forming one bucket (default 1).
        Section 4 of the paper discusses tuning this: larger buckets mean
        smaller SMA-files but more ambivalent data to re-scan.
    page_header:
        Bytes of per-page header overhead.
    """

    record_width: int
    page_size: int = DEFAULT_PAGE_SIZE
    pages_per_bucket: int = 1
    page_header: int = DEFAULT_PAGE_HEADER

    def __post_init__(self) -> None:
        if self.record_width <= 0:
            raise StorageError(f"record_width must be positive, got {self.record_width}")
        if self.page_size <= self.page_header:
            raise StorageError(
                f"page_size {self.page_size} must exceed header {self.page_header}"
            )
        if self.pages_per_bucket <= 0:
            raise StorageError(
                f"pages_per_bucket must be positive, got {self.pages_per_bucket}"
            )
        if self.record_width > self.page_payload:
            raise StorageError(
                f"record of {self.record_width} B does not fit in a page "
                f"payload of {self.page_payload} B"
            )

    @property
    def page_payload(self) -> int:
        """Usable bytes per page after the header."""
        return self.page_size - self.page_header

    @property
    def tuples_per_page(self) -> int:
        """Records that fit on one page."""
        return self.page_payload // self.record_width

    @property
    def tuples_per_bucket(self) -> int:
        """Records that fit in one bucket.

        Records never span pages (slotted-page discipline), so this is
        tuples-per-page times pages-per-bucket, not one big division.
        """
        return self.tuples_per_page * self.pages_per_bucket

    @property
    def bucket_bytes(self) -> int:
        """On-disk bytes occupied by one bucket."""
        return self.page_size * self.pages_per_bucket

    def buckets_for(self, num_records: int) -> int:
        """Number of buckets needed to hold *num_records* records."""
        if num_records < 0:
            raise StorageError(f"negative record count {num_records}")
        if num_records == 0:
            return 0
        per = self.tuples_per_bucket
        return (num_records + per - 1) // per

    def pages_for(self, num_records: int) -> int:
        """Number of pages needed to hold *num_records* records."""
        return self.buckets_for(num_records) * self.pages_per_bucket

    def bytes_for(self, num_records: int) -> int:
        """On-disk bytes needed to hold *num_records* records."""
        return self.pages_for(num_records) * self.page_size

    def with_pages_per_bucket(self, pages_per_bucket: int) -> "BucketLayout":
        """A copy of this layout with a different bucket size."""
        return BucketLayout(
            record_width=self.record_width,
            page_size=self.page_size,
            pages_per_bucket=pages_per_bucket,
            page_header=self.page_header,
        )
