"""I/O and CPU accounting.

Every page access in the system flows through an :class:`IoStats`
instance, classified as sequential or random (a read is sequential when
it targets the page immediately after the previous read of the same
file).  The simulated-disk cost model (:mod:`repro.storage.disk`)
converts these counters into 1998-era seconds, which is how we reproduce
the paper's absolute-scale numbers on modern hardware.

Counter semantics under concurrency
-----------------------------------
The buffer pool loads missing pages *single-flight*: when several
threads miss the same page at once, exactly one of them (the load
leader) performs the physical read and charges it — one of
``sequential_page_reads`` / ``skip_page_reads`` / ``random_page_reads``
in its window, one miss in the pool's cumulative counters.  Every
coalesced *follower* charges ``buffer_hits`` instead, because its bytes
were served from memory.  Each logical access therefore produces exactly
one charge, never zero or two, and the per-query windows of concurrent
executions always *partition* the pool's cumulative
:meth:`~repro.storage.buffer.BufferPool.counters` growth: summed window
``buffer_hits`` equal the hit growth and summed window ``page_reads``
equal the miss growth.  Morsel-parallel scans preserve the same
invariant by giving each scan worker a private window that the
dispatcher merges into the query's window, in morsel order, before the
query settles.

*Process* scan workers (``scan_backend="process"``) extend the same
contract across process boundaries.  Each worker process owns a private
buffer pool and opens a fresh :class:`IoStats` window per task; the
window's deltas travel back over the wire
(:func:`repro.shard.state_serde.stats_to_wire`) and the dispatching
thread merges them into the parent query's window exactly once, in task
order — the leader never re-charges a read a worker already charged,
and a worker's physical reads never appear in the parent pool's
cumulative counters (they happened against the worker's own pool).
Consequently per-query windows still sum to exactly the trace's leaf
spans, but the *parent* pool's hit/miss counters only cover parent-side
accesses; worker-side physical I/O is visible solely through the query
windows and span attribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class IoStats:
    """Mutable counters for one measurement window."""

    sequential_page_reads: int = 0
    skip_page_reads: int = 0
    random_page_reads: int = 0
    #: physical reads split by *file kind* — SMA-files vs relation heap
    #: files.  Each physical read increments exactly one access-class
    #: counter above AND exactly one of these two, so
    #: ``sma_page_reads + heap_page_reads == page_reads`` always holds;
    #: ``page_reads`` stays the access-class sum for compatibility.
    sma_page_reads: int = 0
    heap_page_reads: int = 0
    page_writes: int = 0
    buffer_hits: int = 0
    #: transient-fault read retries performed by the single-flight load
    #: leader on this window's behalf.  Retries are charged immediately
    #: (even when the load ultimately fails), so summed window
    #: ``read_retries`` always equal the pool's cumulative retry growth.
    read_retries: int = 0
    tuples_scanned: int = 0
    tuples_built: int = 0
    sma_entries_read: int = 0
    buckets_fetched: int = 0
    buckets_skipped: int = 0

    @property
    def page_reads(self) -> int:
        """Total physical page reads (sequential + skip + random)."""
        return (
            self.sequential_page_reads
            + self.skip_page_reads
            + self.random_page_reads
        )

    @property
    def page_accesses(self) -> int:
        """Logical page accesses: physical reads plus buffer hits."""
        return self.page_reads + self.buffer_hits

    def reset(self) -> None:
        """Zero every counter in place."""
        for f in fields(self):
            setattr(self, f.name, 0)

    def snapshot(self) -> "IoStats":
        """An immutable-by-convention copy of the current counters."""
        return IoStats(**{f.name: getattr(self, f.name) for f in fields(self)})

    def __add__(self, other: "IoStats") -> "IoStats":
        if not isinstance(other, IoStats):
            return NotImplemented
        return IoStats(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    def __sub__(self, other: "IoStats") -> "IoStats":
        """Counter delta — used to isolate one query's cost via snapshots."""
        if not isinstance(other, IoStats):
            return NotImplemented
        return IoStats(
            **{
                f.name: getattr(self, f.name) - getattr(other, f.name)
                for f in fields(self)
            }
        )

    def merge(self, other: "IoStats") -> None:
        """Accumulate *other* into this instance in place."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view of every counter plus the derived totals.

        The metrics registry and the ``repro serve --report`` dump use
        this so snapshots stay JSON-friendly.
        """
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        out["page_reads"] = self.page_reads
        out["page_accesses"] = self.page_accesses
        return out

    @property
    def buffer_hit_rate(self) -> float:
        """Fraction of logical page accesses served from the pool."""
        accesses = self.page_accesses
        return self.buffer_hits / accesses if accesses else 0.0

    @property
    def bucket_skip_rate(self) -> float:
        """Fraction of examined buckets skipped thanks to SMA grading."""
        examined = self.buckets_fetched + self.buckets_skipped
        return self.buckets_skipped / examined if examined else 0.0


@dataclass
class CostBreakdown:
    """Simulated-time decomposition of one measurement window (seconds)."""

    sequential_io_s: float = 0.0
    skip_io_s: float = 0.0
    random_io_s: float = 0.0
    write_io_s: float = 0.0
    cpu_s: float = 0.0
    stats: IoStats = field(default_factory=IoStats)

    @property
    def total_s(self) -> float:
        return (
            self.sequential_io_s
            + self.skip_io_s
            + self.random_io_s
            + self.write_io_s
            + self.cpu_s
        )

    def __str__(self) -> str:
        return (
            f"{self.total_s:.3f}s "
            f"(seq {self.sequential_io_s:.3f}, skip {self.skip_io_s:.3f}, "
            f"rnd {self.random_io_s:.3f}, wr {self.write_io_s:.3f}, "
            f"cpu {self.cpu_s:.3f})"
        )
