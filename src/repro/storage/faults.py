"""Deterministic, seedable storage fault injection.

A :class:`FaultInjector` sits under the physical I/O paths — heap page
loads/writes and SMA-file body reads/writes — and injects five kinds of
faults by (path, page, operation) predicate:

``transient``
    Raise :class:`~repro.errors.TransientIOError` before the read; the
    buffer pool's single-flight leader retries these with backoff.
``short_read``
    Truncate the payload returned by a read.
``latency``
    Sleep before the read completes (I/O latency spike).
``bit_flip``
    Flip one deterministic bit of the payload returned by a read —
    silent corruption that only checksums can catch.
``torn_write``
    Cut a write short on disk and raise
    :class:`~repro.errors.TornWriteError` (simulated crash mid-write).

Determinism: all firing decisions are pure functions of ``(seed, spec
index, file basename, page, per-key occurrence count)``.  Using the
*basename* means two catalogs built in different temp directories see
identical fault schedules, which is what makes differential testing
against a fault-free oracle possible.  The injector is thread-safe and
records every fired fault for later inspection / JSONL artifacts.
"""

from __future__ import annotations

import json
import os
import threading
import time
import zlib
from dataclasses import dataclass

from repro.errors import StorageError, TornWriteError, TransientIOError

FAULT_KINDS = ("transient", "short_read", "latency", "bit_flip", "torn_write")

#: Operations the injector distinguishes in ``op`` predicates.
READ_OPS = ("read",)
WRITE_OPS = ("write",)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry-with-backoff for transient read faults.

    ``max_attempts`` counts total tries (first attempt included); the
    sleep before retry *n* is ``base_backoff_s * multiplier ** (n - 1)``.
    """

    max_attempts: int = 3
    base_backoff_s: float = 0.0005
    multiplier: float = 2.0

    def backoff_s(self, attempt: int) -> float:
        return self.base_backoff_s * self.multiplier ** max(attempt - 1, 0)


@dataclass(frozen=True)
class FaultSpec:
    """One fault rule: what to inject, and which accesses it matches.

    ``path`` is a substring match against the file's basename (or full
    path); ``page`` pins a single page number (None = any page);
    ``probability`` fires the rule on that fraction of matching accesses
    (decided deterministically from the seed, never ``random``);
    ``skip`` lets the first N matching accesses through untouched;
    ``max_count`` caps the total number of firings.
    """

    kind: str
    path: str | None = None
    page: int | None = None
    probability: float = 1.0
    max_count: int | None = None
    skip: int = 0
    latency_s: float = 0.002
    truncate_to: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise StorageError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )

    def matches(self, path: str, page_no: int) -> bool:
        if self.path is not None:
            name = os.path.basename(path)
            if self.path not in name and self.path not in path:
                return False
        if self.page is not None and self.page != page_no:
            return False
        return True


class FaultInjector:
    """Thread-safe, deterministic fault scheduler over a set of specs.

    Install on a buffer pool (``injector.install(pool)`` or
    ``pool.fault_injector = injector``); HeapFile and SmaFile consult the
    pool's injector on every physical read/write.
    """

    def __init__(self, seed: int = 0, specs: tuple[FaultSpec, ...] | list[FaultSpec] = ()):
        self.seed = int(seed)
        self.specs = tuple(specs)
        self._lock = threading.Lock()
        self._occurrences: dict[tuple[int, str, int], int] = {}
        self._fired_per_spec: dict[int, int] = {}
        self._events: list[dict] = []

    # -- wiring ----------------------------------------------------------

    def install(self, pool) -> "FaultInjector":
        """Attach to a buffer pool; all files on that pool see faults."""
        pool.fault_injector = self
        return self

    # -- deterministic decision core ------------------------------------

    def _decide(self, idx: int, spec: FaultSpec, path: str, page_no: int) -> bool:
        """One atomic match-and-count decision for spec ``idx``.

        The per-key occurrence counter advances on every *matching*
        access whether or not the fault fires, so ``skip`` and
        ``probability`` see a stable per-(file, page) sequence no matter
        how accesses interleave across threads.
        """
        name = os.path.basename(path)
        with self._lock:
            key = (idx, name, page_no)
            occurrence = self._occurrences.get(key, 0)
            self._occurrences[key] = occurrence + 1
            if occurrence < spec.skip:
                return False
            if (spec.max_count is not None
                    and self._fired_per_spec.get(idx, 0) >= spec.max_count):
                return False
            if spec.probability < 1.0:
                fraction = self._hash(idx, name, page_no, occurrence) / 2**32
                if fraction >= spec.probability:
                    return False
            self._fired_per_spec[idx] = self._fired_per_spec.get(idx, 0) + 1
            self._events.append({
                "kind": spec.kind,
                "file": name,
                "page": page_no,
                "occurrence": occurrence,
                "spec": idx,
            })
            return True

    def _hash(self, idx: int, name: str, page_no: int, occurrence: int) -> int:
        token = f"{self.seed}|{idx}|{name}|{page_no}|{occurrence}".encode()
        return zlib.crc32(token) & 0xFFFFFFFF

    # -- read-path hooks -------------------------------------------------

    def before_read(self, path: str, page_no: int, kind: str = "heap") -> None:
        """Latency spikes and transient errors, applied pre-read."""
        for idx, spec in enumerate(self.specs):
            if spec.kind == "latency" and spec.matches(path, page_no):
                if self._decide(idx, spec, path, page_no):
                    time.sleep(spec.latency_s)
            elif spec.kind == "transient" and spec.matches(path, page_no):
                if self._decide(idx, spec, path, page_no):
                    raise TransientIOError(
                        f"injected transient I/O error reading page "
                        f"{page_no} of {os.path.basename(path)}"
                    )

    def filter_read(self, path: str, page_no: int, payload: bytes) -> bytes:
        """Short reads and bit flips, applied to the returned payload."""
        for idx, spec in enumerate(self.specs):
            if not spec.matches(path, page_no) or not payload:
                continue
            if spec.kind == "short_read":
                if self._decide(idx, spec, path, page_no):
                    keep = (spec.truncate_to if spec.truncate_to is not None
                            else len(payload) // 2)
                    payload = payload[:max(0, min(keep, len(payload)))]
            elif spec.kind == "bit_flip":
                if self._decide(idx, spec, path, page_no):
                    h = self._hash(idx, os.path.basename(path), page_no, -1)
                    offset = h % len(payload)
                    bit = (h >> 8) % 8
                    flipped = bytearray(payload)
                    flipped[offset] ^= 1 << bit
                    payload = bytes(flipped)
        return payload

    # -- write-path hook -------------------------------------------------

    def torn_write_length(self, path: str, page_no: int, size: int) -> int | None:
        """Bytes to actually write if this write should tear, else None."""
        for idx, spec in enumerate(self.specs):
            if spec.kind != "torn_write" or not spec.matches(path, page_no):
                continue
            if self._decide(idx, spec, path, page_no):
                if size <= 0:
                    return 0
                return self._hash(idx, os.path.basename(path), page_no, -2) % size
        return None

    def tear(self, path: str, page_no: int, offset: int, payload: bytes,
             write_fn) -> None:
        """Apply a torn write: persist a prefix, then raise TornWriteError.

        ``write_fn(offset, data)`` performs the actual persistence so the
        on-disk state is genuinely torn — recovery code has something
        real to recover from.
        """
        cut = self.torn_write_length(path, page_no, len(payload))
        if cut is None:
            write_fn(offset, payload)
            return
        write_fn(offset, payload[:cut])
        raise TornWriteError(
            f"injected torn write: {cut}/{len(payload)} bytes of page "
            f"{page_no} reached {os.path.basename(path)}",
            path=path, page_no=page_no,
        )

    # -- introspection ---------------------------------------------------

    def fired_events(self) -> list[dict]:
        """Snapshot of every fault fired so far (in firing order)."""
        with self._lock:
            return [dict(event) for event in self._events]

    def fired_count(self) -> int:
        with self._lock:
            return len(self._events)

    def write_jsonl(self, path: str) -> int:
        """Dump fired faults as JSONL (CI chaos artifact); returns count."""
        events = self.fired_events()
        with open(path, "w", encoding="utf-8") as handle:
            for seq, event in enumerate(events):
                handle.write(json.dumps({"seq": seq, **event}) + "\n")
        return len(events)

    def describe(self) -> str:
        parts = [f"seed={self.seed}"]
        for spec in self.specs:
            bits = [spec.kind]
            if spec.path is not None:
                bits.append(f"path={spec.path}")
            if spec.page is not None:
                bits.append(f"page={spec.page}")
            if spec.probability < 1.0:
                bits.append(f"p={spec.probability}")
            if spec.max_count is not None:
                bits.append(f"count={spec.max_count}")
            parts.append(":".join(bits))
        return " ".join(parts)


def parse_fault_specs(text: str) -> list[FaultSpec]:
    """Parse a CLI ``--faults`` string into FaultSpecs.

    Grammar: specs separated by ``;``, each ``kind[:key=value,...]``::

        transient:path=.heap,p=0.3,count=5;bit_flip:path=.sma,page=0

    Keys: ``path``, ``page``, ``p``/``probability``, ``count``/
    ``max_count``, ``skip``, ``latency``, ``truncate``.
    """
    specs: list[FaultSpec] = []
    for chunk in text.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        kind, _, rest = chunk.partition(":")
        kind = kind.strip()
        kwargs: dict = {}
        if rest.strip():
            for pair in rest.split(","):
                key, sep, value = pair.partition("=")
                if not sep:
                    raise StorageError(
                        f"bad fault spec {chunk!r}: expected key=value, got {pair!r}"
                    )
                key, value = key.strip(), value.strip()
                if key == "path":
                    kwargs["path"] = value
                elif key == "page":
                    kwargs["page"] = int(value)
                elif key in ("p", "probability"):
                    kwargs["probability"] = float(value)
                elif key in ("count", "max_count"):
                    kwargs["max_count"] = int(value)
                elif key == "skip":
                    kwargs["skip"] = int(value)
                elif key == "latency":
                    kwargs["latency_s"] = float(value)
                elif key == "truncate":
                    kwargs["truncate_to"] = int(value)
                else:
                    raise StorageError(
                        f"bad fault spec {chunk!r}: unknown key {key!r}"
                    )
        specs.append(FaultSpec(kind=kind, **kwargs))
    if not specs:
        raise StorageError(f"no fault specs found in {text!r}")
    return specs


__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultSpec",
    "RetryPolicy",
    "parse_fault_specs",
]
