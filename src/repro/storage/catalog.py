"""The catalog: the database instance owning tables, SMAs and the pool.

A :class:`Catalog` ties together one directory of heap files, one shared
buffer pool (with its :class:`~repro.storage.stats.IoStats`), and the
registries of tables and SMA sets.  It is the root object users create;
everything else hangs off it.
"""

from __future__ import annotations

import json
import os
import threading
from typing import TYPE_CHECKING, Iterator

from repro.errors import CatalogError
from repro.storage.buffer import BufferPool
from repro.storage.heapfile import HeapFile
from repro.storage.integrity import IntegrityMonitor
from repro.storage.page import DEFAULT_PAGE_HEADER, DEFAULT_PAGE_SIZE
from repro.storage.schema import Schema
from repro.storage.stats import IoStats
from repro.storage.table import Table, TableView

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.sma_set import SmaSet


class Catalog:
    """Tables + SMA sets sharing one directory and one buffer pool."""

    MANIFEST = "catalog.json"

    def __init__(
        self,
        root_dir: str,
        *,
        buffer_pages: int = 2048,
        stripes: int | None = None,
        read_only: bool = False,
    ):
        os.makedirs(root_dir, exist_ok=True)
        self.root_dir = root_dir
        #: Read-only attach (scan worker processes): never rewrite the
        #: manifest, even on registration during :meth:`discover`.
        self.read_only = read_only
        self.stats = IoStats()
        self.pool = BufferPool(
            capacity_pages=buffer_pages, stats=self.stats, stripes=stripes
        )
        #: Integrity accounting: the planner records SMA quarantines here
        #: and services subscribe for events/metrics (see
        #: :mod:`repro.storage.integrity`).
        self.integrity = IntegrityMonitor()
        self._tables: dict[str, Table] = {}
        self._sma_sets: dict[str, dict[str, "SmaSet"]] = {}
        #: Monotone per-table ingest epochs: every applied DML batch
        #: bumps its table's epoch.  Readers pin the epoch (and the
        #: bucket-generation snapshot that goes with it) at admission
        #: via :meth:`pin_view`.
        self._ingest_epochs: dict[str, int] = {}
        #: Per-table write serialization: DML batches on one table apply
        #: strictly one at a time; readers never take this lock.
        self._ingest_locks: dict[str, threading.Lock] = {}
        self._ingest_locks_guard = threading.Lock()
        #: Callbacks invoked by :meth:`go_cold` after the pool and decode
        #: caches drop — services register derived caches (e.g. the
        #: result cache) here so "cold" means *every* caching layer.
        self._cold_hooks: list = []

    def install_fault_injector(self, injector) -> None:
        """Attach a :class:`~repro.storage.faults.FaultInjector` (or None)
        to this catalog's buffer pool; all files see it immediately."""
        self.pool.fault_injector = injector

    # ------------------------------------------------------------------
    # manifest & discovery
    # ------------------------------------------------------------------

    @property
    def _manifest_path(self) -> str:
        return os.path.join(self.root_dir, self.MANIFEST)

    def _load_manifest(self) -> dict:
        if not os.path.exists(self._manifest_path):
            return {"tables": {}, "sma_sets": {}}
        with open(self._manifest_path, "r", encoding="utf-8") as f:
            return json.load(f)

    def _save_manifest(self) -> None:
        if self.read_only:
            return
        manifest = {
            "tables": {
                name: {"clustered_on": table.clustered_on}
                for name, table in self._tables.items()
            },
            "sma_sets": {
                table_name: {
                    set_name: os.path.relpath(sma_set.directory, self.root_dir)
                    for set_name, sma_set in by_name.items()
                }
                for table_name, by_name in self._sma_sets.items()
                if by_name
            },
            "ingest_epochs": {
                name: epoch
                for name, epoch in self._ingest_epochs.items()
                if epoch
            },
        }
        # Atomic replace: concurrent readers (spawning scan worker
        # processes re-running discovery) must never observe a
        # truncated manifest mid-rewrite.
        tmp_path = self._manifest_path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as f:
            json.dump(manifest, f, indent=1)
        os.replace(tmp_path, self._manifest_path)

    @classmethod
    def discover(
        cls,
        root_dir: str,
        *,
        buffer_pages: int = 2048,
        stripes: int | None = None,
        fault_injector=None,
        read_only: bool = False,
    ) -> "Catalog":
        """Re-open a persisted catalog: every table and SMA set listed in
        its manifest comes back registered and query-ready.

        ``fault_injector`` attaches before anything opens, so SMA body
        reads during discovery already run under injected faults — the
        chaos suite uses this to corrupt files "in flight".

        ``read_only`` attaches without ever rewriting the manifest —
        scan worker processes use this so concurrent spawns cannot race
        the file."""
        from repro.core.sma_set import SmaSet

        catalog = cls(
            root_dir,
            buffer_pages=buffer_pages,
            stripes=stripes,
            read_only=read_only,
        )
        if fault_injector is not None:
            catalog.install_fault_injector(fault_injector)
        manifest = catalog._load_manifest()
        for name, epoch in manifest.get("ingest_epochs", {}).items():
            catalog._ingest_epochs[name] = int(epoch)
        for name, info in manifest.get("tables", {}).items():
            catalog.open_table(name, clustered_on=info.get("clustered_on"))
        for table_name, sets in manifest.get("sma_sets", {}).items():
            table = catalog.table(table_name)
            for set_name, rel_dir in sets.items():
                sma_set = SmaSet.open(
                    os.path.join(root_dir, rel_dir), table
                )
                catalog.register_sma_set(table_name, sma_set)
        return catalog

    # ------------------------------------------------------------------
    # tables
    # ------------------------------------------------------------------

    def create_table(
        self,
        name: str,
        schema: Schema,
        *,
        page_size: int = DEFAULT_PAGE_SIZE,
        pages_per_bucket: int = 1,
        page_header: int = DEFAULT_PAGE_HEADER,
        clustered_on: str | None = None,
    ) -> Table:
        """Create an empty table backed by a new heap file."""
        if name in self._tables:
            raise CatalogError(f"table {name!r} already exists")
        path = os.path.join(self.root_dir, f"{name}.heap")
        heap = HeapFile.create(
            path,
            schema,
            self.pool,
            page_size=page_size,
            pages_per_bucket=pages_per_bucket,
            page_header=page_header,
        )
        table = Table(name, heap, clustered_on=clustered_on)
        self._tables[name] = table
        self._sma_sets[name] = {}
        self._save_manifest()
        return table

    def open_table(self, name: str, *, clustered_on: str | None = None) -> Table:
        """Re-open a table persisted in this catalog's directory."""
        if name in self._tables:
            raise CatalogError(f"table {name!r} is already open")
        path = os.path.join(self.root_dir, f"{name}.heap")
        if not os.path.exists(path):
            raise CatalogError(f"no heap file for table {name!r} at {path}")
        heap = HeapFile.open(path, self.pool)
        table = Table(name, heap, clustered_on=clustered_on)
        self._tables[name] = table
        self._sma_sets.setdefault(name, {})
        self._save_manifest()
        return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(
                f"unknown table {name!r}; have {sorted(self._tables)}"
            ) from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def tables(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def drop_table(self, name: str) -> None:
        table = self.table(name)
        for sma_set in list(self._sma_sets.get(name, {}).values()):
            sma_set.delete_files()
        self._sma_sets.pop(name, None)
        table.heap.delete_files()
        del self._tables[name]
        self._save_manifest()

    # ------------------------------------------------------------------
    # SMA sets
    # ------------------------------------------------------------------

    def register_sma_set(self, table_name: str, sma_set: "SmaSet") -> None:
        """Attach a built SMA set to a table under the set's name."""
        self.table(table_name)
        by_name = self._sma_sets.setdefault(table_name, {})
        if sma_set.name in by_name:
            raise CatalogError(
                f"SMA set {sma_set.name!r} already registered on {table_name!r}"
            )
        by_name[sma_set.name] = sma_set
        self._save_manifest()

    def sma_set(self, table_name: str, set_name: str) -> "SmaSet":
        self.table(table_name)
        try:
            return self._sma_sets[table_name][set_name]
        except KeyError:
            raise CatalogError(
                f"no SMA set {set_name!r} on table {table_name!r}; "
                f"have {sorted(self._sma_sets.get(table_name, {}))}"
            ) from None

    def sma_sets(self, table_name: str) -> list["SmaSet"]:
        self.table(table_name)
        return list(self._sma_sets.get(table_name, {}).values())

    def drop_sma_set(self, table_name: str, set_name: str) -> None:
        sma_set = self.sma_set(table_name, set_name)
        sma_set.delete_files()
        del self._sma_sets[table_name][set_name]
        self._save_manifest()

    # ------------------------------------------------------------------
    # ingest epochs & snapshot views
    # ------------------------------------------------------------------

    def ingest_epoch(self, table_name: str) -> int:
        """The table's current ingest epoch (0 = the bulk-loaded state)."""
        self.table(table_name)
        return self._ingest_epochs.get(table_name, 0)

    def bump_ingest_epoch(self, table_name: str) -> int:
        """Advance the table's epoch after an applied DML batch.

        Persisted in the manifest so reopened catalogs (and read-only
        process attaches) agree on the epoch numbering.  Returns the new
        epoch.
        """
        self.table(table_name)
        epoch = self._ingest_epochs.get(table_name, 0) + 1
        self._ingest_epochs[table_name] = epoch
        self._save_manifest()
        return epoch

    def pin_view(self, table_name: str) -> TableView:
        """A bucket-generation snapshot of the table at its current epoch.

        Queries take this at admission: the view bounds every bucket
        read to the geometry frozen here, so concurrent appends (which
        only grow the heap) are invisible for the query's lifetime.

        Pinning takes the table's ingest lock for the capture so the
        (epoch, geometry) pair is atomic — a pin can never see a batch's
        appended pages under the pre-batch epoch number.  Writers hold
        the lock for a whole batch, so admission briefly waits out an
        in-flight write; scans themselves never block.
        """
        table = self.table(table_name)
        with self.ingest_lock(table_name):
            return TableView(table, self.ingest_epoch(table_name))

    def ingest_lock(self, table_name: str) -> threading.Lock:
        """The table's write-serialization lock (created on first use)."""
        self.table(table_name)
        with self._ingest_locks_guard:
            lock = self._ingest_locks.get(table_name)
            if lock is None:
                lock = threading.Lock()
                self._ingest_locks[table_name] = lock
            return lock

    # ------------------------------------------------------------------
    # housekeeping
    # ------------------------------------------------------------------

    def sma_dir(self, table_name: str) -> str:
        """Directory where SMA-files of *table_name* live."""
        path = os.path.join(self.root_dir, f"{table_name}.smas")
        os.makedirs(path, exist_ok=True)
        return path

    def add_cold_hook(self, hook) -> None:
        """Register a zero-argument callback to run on :meth:`go_cold`."""
        self._cold_hooks.append(hook)

    def remove_cold_hook(self, hook) -> None:
        """Unregister a callback previously added (no-op when absent)."""
        try:
            self._cold_hooks.remove(hook)
        except ValueError:
            pass

    def go_cold(self) -> None:
        """Make the next reads hit 'disk' (cold run): empty the buffer
        pool, drop every heap's decoded-bucket cache, and run the
        registered cold hooks (result caches and the like)."""
        self.pool.clear()
        for table in self._tables.values():
            table.heap.drop_decode_cache()
        for hook in list(self._cold_hooks):
            hook()

    def reset_stats(self) -> IoStats:
        """Zero the shared counters and return the pre-reset snapshot."""
        snapshot = self.stats.snapshot()
        self.stats.reset()
        return snapshot

    def close(self) -> None:
        for table in self._tables.values():
            table.heap.close()
        for by_name in self._sma_sets.values():
            for sma_set in by_name.values():
                sma_set.close()

    def __enter__(self) -> "Catalog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
