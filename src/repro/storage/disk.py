"""Simulated 1998-era disk and CPU cost model.

The paper's absolute numbers were measured on a Sparc Ultra I (167 MHz)
with Seagate Barracuda 4 GB disks.  We cannot re-run that hardware, but
the experiments are dominated by page-I/O counts and per-tuple CPU work,
both of which this reproduction counts exactly.  :class:`DiskModel`
converts an :class:`IoStats` window into simulated seconds.

The default parameters are calibrated against the paper's own Section 2.4
measurements:

* SMA cold minus warm (4.9 s − 1.9 s) over 33.776 MB of SMA-files gives a
  sequential rate of ≈ 11.3 MB/s — consistent with a 1998 Barracuda.
* The 128 s full scan of the 733.33 MB LINEITEM then leaves ≈ 63 s of CPU
  over ≈ 6 M tuples → ≈ 10.5 µs per tuple for predicate evaluation plus
  aggregate advancement on a 167 MHz CPU.
* The 1.9 s warm SMA run over ≈ 26 SMA entries per bucket × ≈ 187 k
  buckets gives ≈ 0.39 µs per SMA entry.
* Figure 5 crosses the 128 s scan line at ≈ 25 % ambivalent buckets.
  Ambivalent buckets are read *in order but with gaps*; each gap costs a
  short head repositioning.  Solving the break-even equation (scattered
  ambivalent buckets, some adjacent pairs streaming) for a crossing at
  25 % gives ``skip_ms ≈ 2.6`` on top of the 0.36 ms transfer — about a
  short seek plus half a rotation, plausible for a 1998 Barracuda.
* SMA creation at ≈ 115 s per pass (paper: 95–117 s) implies a build-side
  CPU charge of ≈ 8 µs per tuple (no predicate to evaluate).

Three read classes are priced (the buffer pool classifies them):
*sequential* (next page of the same file), *skip* (forward gap within a
file), *random* (anything else).  With these constants the model
reproduces the paper's headline table to within a few percent, and the
Figure 5 break-even emerges from geometry rather than being hard-coded.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.storage.stats import CostBreakdown, IoStats


@dataclass(frozen=True)
class DiskModel:
    """Parameters of the simulated disk + CPU."""

    page_size: int = 4096
    sequential_mb_per_s: float = 11.3
    skip_ms: float = 2.6
    avg_seek_ms: float = 8.8
    avg_rotational_ms: float = 4.17
    cpu_per_tuple_us: float = 10.5
    cpu_per_tuple_build_us: float = 8.0
    cpu_per_sma_entry_us: float = 0.39

    @property
    def sequential_page_s(self) -> float:
        """Seconds to transfer one page during a sequential run."""
        return self.page_size / (self.sequential_mb_per_s * 1_000_000.0)

    @property
    def skip_page_s(self) -> float:
        """Seconds for one page read after a forward gap (skip + transfer)."""
        return self.skip_ms / 1000.0 + self.sequential_page_s

    @property
    def random_page_s(self) -> float:
        """Seconds for one random page access (seek + rotation + transfer)."""
        return (
            (self.avg_seek_ms + self.avg_rotational_ms) / 1000.0
            + self.sequential_page_s
        )

    def cost(self, stats: IoStats) -> CostBreakdown:
        """Simulated-seconds breakdown for one counter window."""
        cpu = (
            stats.tuples_scanned * self.cpu_per_tuple_us
            + stats.tuples_built * self.cpu_per_tuple_build_us
            + stats.sma_entries_read * self.cpu_per_sma_entry_us
        ) / 1_000_000.0
        return CostBreakdown(
            sequential_io_s=stats.sequential_page_reads * self.sequential_page_s,
            skip_io_s=stats.skip_page_reads * self.skip_page_s,
            random_io_s=stats.random_page_reads * self.random_page_s,
            write_io_s=stats.page_writes * self.sequential_page_s,
            cpu_s=cpu,
            stats=stats.snapshot(),
        )

    def seconds(self, stats: IoStats) -> float:
        """Total simulated seconds for one counter window."""
        return self.cost(stats).total_s

    def scan_seconds(self, pages: int, tuples: int) -> float:
        """Closed-form cost of a full sequential scan (planner helper)."""
        return (
            pages * self.sequential_page_s
            + tuples * self.cpu_per_tuple_us / 1_000_000.0
        )

    def sma_seconds(
        self,
        sma_pages: int,
        sma_entries: int,
        fetch_seq_pages: int,
        fetch_skip_pages: int,
        fetch_tuples: int,
    ) -> float:
        """Closed-form cost of an SMA-based evaluation (planner helper).

        The SMA-files are scanned sequentially in full; fetched buckets
        split into runs (sequential within a run, one skip charge per
        gap), and fetched tuples pay the per-tuple CPU charge.
        """
        return (
            sma_pages * self.sequential_page_s
            + sma_entries * self.cpu_per_sma_entry_us / 1_000_000.0
            + fetch_seq_pages * self.sequential_page_s
            + fetch_skip_pages * self.skip_page_s
            + fetch_tuples * self.cpu_per_tuple_us / 1_000_000.0
        )

    def scaled(self, **overrides: float) -> "DiskModel":
        """A copy with some parameters replaced (ablation helper)."""
        return replace(self, **overrides)


#: Model instance matching the paper's testbed; used by default everywhere.
PAPER_DISK = DiskModel()


#: A roughly 2020s NVMe-class model, for the "what would this look like
#: today" ablation (sequential ≈ 3 GB/s, tiny repositioning costs, modern
#: CPU charges).  The SMA-vs-scan *ratios* compress but the ordering of
#: plans is unchanged — zone maps still win, which is why every modern
#: engine ships them.
MODERN_DISK = DiskModel(
    sequential_mb_per_s=3000.0,
    skip_ms=0.01,
    avg_seek_ms=0.04,
    avg_rotational_ms=0.04,
    cpu_per_tuple_us=0.05,
    cpu_per_tuple_build_us=0.04,
    cpu_per_sma_entry_us=0.002,
)
