"""File-backed heap files: sequences of buckets of fixed-width records.

The on-disk format is deliberately simple and matches the paper's model:

* the data file is a sequence of fixed-size pages;
* each page starts with a small header whose first 4 bytes hold the
  page's record count (little-endian uint32); format v2 files store a
  32-bit page checksum at header bytes [4:8] (computed with that field
  zeroed), followed by packed fixed-width records — records never span
  pages;
* a *bucket* is ``pages_per_bucket`` consecutive pages; the order of
  buckets in the file is the physical order SMA-file entries mirror.

A JSON sidecar (``<path>.meta.json``) persists the schema, layout,
record count, format version and checksum algorithm; a numpy sidecar
(``<path>.counts.npy``) persists per-bucket record counts so they are
known without touching data pages.

Checksums are verified on every *physical* load (the buffer pool's
single-flight loader); cache hits serve already-verified bytes.  Format
v1 files (no ``format_version`` in the meta sidecar) open and read
unverified; ``migrate_to_checksums`` — or ``repro verify --repair`` —
upgrades them in place.

All reads go through a :class:`~repro.storage.buffer.BufferPool`, which
does the warm/cold caching and the sequential/random accounting.
"""

from __future__ import annotations

import json
import os
import struct
import threading
from typing import Iterator

import numpy as np

from repro.errors import ChecksumError, StorageError, TornWriteError
from repro.storage.buffer import BufferPool
from repro.storage.checksum import checksum as compute_checksum
from repro.storage.checksum import default_algorithm
from repro.storage.page import BucketLayout, DEFAULT_PAGE_HEADER, DEFAULT_PAGE_SIZE
from repro.storage.schema import Schema

_COUNT_STRUCT = struct.Struct("<I")
_CRC_STRUCT = struct.Struct("<I")
#: Byte range of the page checksum inside the page header (v2 format).
_CRC_OFFSET = 4
_META_SUFFIX = ".meta.json"
_COUNTS_SUFFIX = ".counts.npy"
#: Current on-disk format: v2 = checksummed pages; v1 = legacy, none.
FORMAT_VERSION = 2


class HeapFile:
    """A bucketed, file-backed relation store.

    Use :meth:`create` for a new file or :meth:`open` for an existing
    one; the constructor is internal.  Instances are context managers.
    """

    def __init__(
        self,
        path: str,
        schema: Schema,
        layout: BucketLayout,
        pool: BufferPool,
        bucket_counts: np.ndarray,
        checksum_algo: str | None = None,
    ):
        self.path = path
        self.schema = schema
        self.layout = layout
        self.pool = pool
        #: Page-checksum algorithm, or None for legacy v1 files (pages
        #: are then read unverified — see :meth:`migrate_to_checksums`).
        self.checksum_algo = checksum_algo
        self.file_id = os.path.abspath(path)
        self._bucket_counts = bucket_counts.astype(np.int64, copy=True)
        # Unbuffered: writes reach the OS immediately and positional
        # reads (os.pread) see them — required because the buffer pool
        # runs loaders *outside* its stripe locks, so page loads of one
        # file may execute concurrently on this shared handle.
        self._handle = open(path, "r+b", buffering=0)
        self._closed = False
        # Serializes sidecar flushes: the process-scan dispatcher
        # flushes before every dispatch, so concurrent readers (and a
        # writer) would otherwise collide on the atomic-replace tmps.
        self._flush_lock = threading.Lock()
        # Decoded-bucket cache: bucket_no -> (page payloads, record batch).
        # Keyed on the *identity* of the pooled payload bytes — strictly
        # stronger than a (page, generation) pair, because any reload,
        # eviction or write produces a new bytes object.  The pool is
        # still consulted on every read, so hit/miss accounting is
        # unchanged; a cache hit merely skips header unpack + frombuffer
        # (+ concatenate for multi-page buckets) on warm scans.
        self._decode_cache: dict[int, tuple[tuple[bytes, ...], np.ndarray]] = {}
        self._decode_cache_cap = max(1024, pool.capacity_pages)
        #: decoded-bucket cache counters (local to this handle; not part
        #: of IoStats — the wire format derives from its fields).
        self.decode_hits = 0
        self.decode_misses = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        path: str,
        schema: Schema,
        pool: BufferPool,
        *,
        page_size: int = DEFAULT_PAGE_SIZE,
        pages_per_bucket: int = 1,
        page_header: int = DEFAULT_PAGE_HEADER,
    ) -> "HeapFile":
        """Create a new, empty heap file at *path* (v2, checksummed).

        Checksums need 8 header bytes (count + CRC); a smaller custom
        header — or ``REPRO_PAGE_CHECKSUMS=0`` — creates an unchecksummed
        file.
        """
        if os.path.exists(path):
            raise StorageError(f"{path} already exists")
        layout = BucketLayout(
            record_width=schema.record_width,
            page_size=page_size,
            pages_per_bucket=pages_per_bucket,
            page_header=page_header,
        )
        algo = default_algorithm() if page_header >= 8 else None
        with open(path, "wb"):
            pass
        heap = cls(path, schema, layout, pool, np.zeros(0, dtype=np.int64),
                   checksum_algo=algo)
        heap.flush()
        return heap

    @classmethod
    def open(cls, path: str, pool: BufferPool) -> "HeapFile":
        """Open an existing heap file created by :meth:`create`."""
        meta_path = path + _META_SUFFIX
        if not os.path.exists(meta_path):
            raise StorageError(f"no heap-file metadata at {meta_path}")
        with open(meta_path, "r", encoding="utf-8") as f:
            meta = json.load(f)
        schema = Schema.from_dict(meta["schema"])
        layout = BucketLayout(
            record_width=schema.record_width,
            page_size=meta["page_size"],
            pages_per_bucket=meta["pages_per_bucket"],
            page_header=meta["page_header"],
        )
        counts = np.load(path + _COUNTS_SUFFIX)
        # v1 files carry no format_version: their pages have no checksum
        # and are read unverified.
        algo = meta.get("checksum_algo") if meta.get("format_version", 1) >= 2 else None
        return cls(path, schema, layout, pool, counts, checksum_algo=algo)

    def flush(self) -> None:
        """Persist metadata sidecars and flush the data file.

        Both sidecars go down atomically (tmp + replace): the ingest
        path flushes after every DML batch, and a crash mid-write must
        never leave a half-written meta or counts file — there is no
        tolerant open path for those.
        """
        with self._flush_lock:
            self._handle.flush()
            meta = {
                "schema": self.schema.to_dict(),
                "page_size": self.layout.page_size,
                "pages_per_bucket": self.layout.pages_per_bucket,
                "page_header": self.layout.page_header,
                "num_records": int(self._bucket_counts.sum()),
                "format_version": FORMAT_VERSION if self.checksum_algo else 1,
            }
            if self.checksum_algo:
                meta["checksum_algo"] = self.checksum_algo
            meta_path = self.path + _META_SUFFIX
            tmp = meta_path + ".tmp"
            with open(tmp, "w", encoding="utf-8") as f:
                json.dump(meta, f)
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, meta_path)
            counts_path = self.path + _COUNTS_SUFFIX
            tmp = counts_path + ".tmp"
            with open(tmp, "wb") as f:
                np.save(f, self._bucket_counts)
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, counts_path)

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has completed (or begun)."""
        return self._closed

    def close(self) -> None:
        """Flush sidecars and release the OS handle.  Idempotent.

        This is the *public* lifecycle contract: callers (including
        tests) never touch the underlying handle.  Any number of calls
        after the first are no-ops, and later page reads raise a plain
        ``ValueError``/``OSError`` from the closed descriptor.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self.flush()
        finally:
            self._handle.close()

    def __enter__(self) -> "HeapFile":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------

    @property
    def num_buckets(self) -> int:
        return len(self._bucket_counts)

    @property
    def num_records(self) -> int:
        return int(self._bucket_counts.sum())

    @property
    def num_pages(self) -> int:
        return self.num_buckets * self.layout.pages_per_bucket

    @property
    def size_bytes(self) -> int:
        """On-disk size of the data file."""
        return self.num_pages * self.layout.page_size

    def bucket_count(self, bucket_no: int) -> int:
        """Record count of bucket *bucket_no* (no page access needed)."""
        self._check_bucket(bucket_no)
        return int(self._bucket_counts[bucket_no])

    def bucket_counts(self) -> np.ndarray:
        """Read-only view of all per-bucket record counts."""
        view = self._bucket_counts.view()
        view.flags.writeable = False
        return view

    def _check_bucket(self, bucket_no: int) -> None:
        if not 0 <= bucket_no < self.num_buckets:
            raise StorageError(
                f"bucket {bucket_no} out of range [0, {self.num_buckets})"
            )

    # ------------------------------------------------------------------
    # page primitives
    # ------------------------------------------------------------------

    def _page_checksum(self, payload: bytes) -> int:
        """Checksum of a full page with the CRC field itself zeroed."""
        blank = bytearray(payload)
        blank[_CRC_OFFSET:_CRC_OFFSET + 4] = b"\x00\x00\x00\x00"
        return compute_checksum(bytes(blank), self.checksum_algo)

    def _page_bytes(self, records: np.ndarray) -> bytes:
        header = _COUNT_STRUCT.pack(len(records)).ljust(self.layout.page_header, b"\x00")
        body = records.tobytes()
        page = (header + body).ljust(self.layout.page_size, b"\x00")
        if self.checksum_algo is None:
            return page
        crc = self._page_checksum(page)
        return (
            page[:_CRC_OFFSET]
            + _CRC_STRUCT.pack(crc)
            + page[_CRC_OFFSET + 4:]
        )

    def _write_page(self, page_no: int, records: np.ndarray) -> None:
        if len(records) > self.layout.tuples_per_page:
            raise StorageError(
                f"{len(records)} records exceed page capacity "
                f"{self.layout.tuples_per_page}"
            )
        payload = self._page_bytes(records)
        self._persist_page(page_no, payload)
        self.pool.note_write(self.file_id, page_no, payload)

    def _persist_page(self, page_no: int, payload: bytes) -> None:
        injector = self.pool.fault_injector
        if injector is not None:
            cut = injector.torn_write_length(self.path, page_no, len(payload))
            if cut is not None:
                # Genuinely tear the write: persist only a prefix, drop
                # any cached copy (it would mask the on-disk damage),
                # then surface the simulated crash.
                self._handle.seek(page_no * self.layout.page_size)
                self._handle.write(payload[:cut])
                self.pool.invalidate(self.file_id, page_no)
                raise TornWriteError(
                    f"injected torn write: {cut}/{len(payload)} bytes of "
                    f"page {page_no} reached {self.path}",
                    path=self.path, page_no=page_no,
                )
        self._handle.seek(page_no * self.layout.page_size)
        self._handle.write(payload)

    def _load_page(self, page_no: int, *, verify: bool = True) -> bytes:
        # Positional read: no shared file-position state, so concurrent
        # single-flight loads of different pages never interfere.
        injector = self.pool.fault_injector
        if injector is not None:
            injector.before_read(self.path, page_no, "heap")
        fd = self._handle.fileno()
        offset = page_no * self.layout.page_size
        want = self.layout.page_size
        chunks: list[bytes] = []
        while want > 0:
            chunk = os.pread(fd, want, offset)
            if not chunk:
                break
            chunks.append(chunk)
            offset += len(chunk)
            want -= len(chunk)
        payload = b"".join(chunks)
        if injector is not None:
            payload = injector.filter_read(self.path, page_no, payload)
        if len(payload) != self.layout.page_size:
            raise StorageError(
                f"short read of page {page_no} in {self.path}: "
                f"{len(payload)}/{self.layout.page_size} bytes"
            )
        if verify and self.checksum_algo is not None:
            (stored,) = _CRC_STRUCT.unpack_from(payload, _CRC_OFFSET)
            actual = self._page_checksum(payload)
            if stored != actual:
                raise ChecksumError(
                    f"checksum mismatch on page {page_no} of {self.path}: "
                    f"stored {stored:#010x}, computed {actual:#010x} "
                    f"({self.checksum_algo})",
                    path=self.path, page_no=page_no,
                )
        return payload

    def read_page_raw(self, page_no: int, *, verify: bool = True) -> bytes:
        """Read one page's raw bytes directly from disk (verification API).

        Bypasses the buffer pool and charges nothing — ``repro verify``
        uses this to sweep every on-disk page regardless of cache state.
        """
        if not 0 <= page_no < self.num_pages:
            raise StorageError(
                f"page {page_no} out of range [0, {self.num_pages})"
            )
        return self._load_page(page_no, verify=verify)

    def migrate_to_checksums(self, algo: str | None = None) -> int:
        """Upgrade a legacy v1 file to checksummed v2 pages, in place.

        Rewrites every page with a checksum under *algo* (default: the
        environment's default algorithm) and persists the new format in
        the meta sidecar.  Returns the number of pages rewritten.
        Already-v2 files are a no-op.
        """
        if self.checksum_algo is not None:
            return 0
        if self.layout.page_header < 8:
            raise StorageError(
                f"page header of {self.path} is {self.layout.page_header} "
                f"bytes; checksums need at least 8"
            )
        self.checksum_algo = algo or default_algorithm() or "crc32"
        rewritten = 0
        for page_no in range(self.num_pages):
            raw = self._load_page(page_no, verify=False)
            crc = self._page_checksum(raw)
            payload = (
                raw[:_CRC_OFFSET]
                + _CRC_STRUCT.pack(crc)
                + raw[_CRC_OFFSET + 4:]
            )
            self._persist_page(page_no, payload)
            self.pool.note_write(self.file_id, page_no, payload)
            rewritten += 1
        self.flush()
        return rewritten

    def _decode_page(self, payload: bytes) -> np.ndarray:
        (count,) = _COUNT_STRUCT.unpack_from(payload, 0)
        start = self.layout.page_header
        end = start + count * self.layout.record_width
        return np.frombuffer(payload[start:end], dtype=self.schema.record_dtype)

    def _read_page(self, page_no: int) -> np.ndarray:
        payload = self.pool.read_page(
            self.file_id, page_no, lambda: self._load_page(page_no)
        )
        return self._decode_page(payload)

    def drop_decode_cache(self) -> None:
        """Forget decoded buckets (go-cold / after bulk rewrites)."""
        self._decode_cache.clear()

    def invalidate_decoded(self, bucket_no: int) -> None:
        """Drop bucket *bucket_no* from the decode cache **and** the pool.

        Every mutation path calls this before rewriting the bucket's
        pages: the decoded batch and any pooled payloads of the old
        version disappear, so the single-flight leader reloads fresh
        bytes and no reader can ever be served a stale decode.  (The
        identity-keyed decode cache would miss anyway once ``note_write``
        installs new payload objects — this makes the invalidation
        explicit and covers pages evicted between write and re-read.)
        """
        self._decode_cache.pop(bucket_no, None)
        first = bucket_no * self.layout.pages_per_bucket
        for j in range(self.layout.pages_per_bucket):
            self.pool.invalidate(self.file_id, first + j)

    def refresh_from_disk(self) -> None:
        """Re-read sidecar geometry after another process grew the file.

        Read-only attaches (scan worker processes) call this when a
        shipped ingest pin announces a newer epoch than the bucket
        geometry they hold: per-bucket counts reload from the counts
        sidecar and every cached page/decode of this file is dropped, so
        subsequent ``read_bucket`` calls observe the writer's bytes.
        """
        counts_path = self.path + _COUNTS_SUFFIX
        if os.path.exists(counts_path):
            self._bucket_counts = np.load(counts_path).astype(np.int64, copy=True)
        self.drop_decode_cache()
        self.pool.invalidate(self.file_id)

    # ------------------------------------------------------------------
    # bucket operations
    # ------------------------------------------------------------------

    def read_bucket(self, bucket_no: int) -> np.ndarray:
        """All records of bucket *bucket_no* as a read-only record batch."""
        self._check_bucket(bucket_no)
        first = bucket_no * self.layout.pages_per_bucket
        payloads = tuple(
            self.pool.read_page(
                self.file_id, first + j,
                lambda j=j: self._load_page(first + j),
            )
            for j in range(self.layout.pages_per_bucket)
        )
        cached = self._decode_cache.get(bucket_no)
        if cached is not None and all(
            a is b for a, b in zip(cached[0], payloads)
        ):
            self.decode_hits += 1
            return cached[1]
        parts = [self._decode_page(payload) for payload in payloads]
        records = parts[0] if len(parts) == 1 else np.concatenate(parts)
        if len(self._decode_cache) >= self._decode_cache_cap:
            self._decode_cache.clear()
        self._decode_cache[bucket_no] = (payloads, records)
        self.decode_misses += 1
        return records

    def write_bucket(self, bucket_no: int, records: np.ndarray) -> None:
        """Replace the contents of bucket *bucket_no* with *records*.

        Used by SMA maintenance tests and by the loader's final partial
        bucket.  The bucket must already exist (use :meth:`append_batch`
        to grow the file).
        """
        self._check_bucket(bucket_no)
        if records.dtype != self.schema.record_dtype:
            raise StorageError("record dtype does not match schema")
        if len(records) > self.layout.tuples_per_bucket:
            raise StorageError(
                f"{len(records)} records exceed bucket capacity "
                f"{self.layout.tuples_per_bucket}"
            )
        self.invalidate_decoded(bucket_no)
        tpp = self.layout.tuples_per_page
        first = bucket_no * self.layout.pages_per_bucket
        for j in range(self.layout.pages_per_bucket):
            chunk = records[j * tpp : (j + 1) * tpp]
            self._write_page(first + j, chunk)
        self._bucket_counts[bucket_no] = len(records)

    def truncate_to(self, num_buckets: int, trailing: np.ndarray | None = None) -> None:
        """Roll the file back to its first *num_buckets* buckets.

        The write-ahead intent machinery uses this to undo an incomplete
        append: buckets past *num_buckets* are cut off the data file (and
        invalidated from pool + decode caches), and — when *trailing* is
        given — the new last bucket is rewritten to exactly that
        pre-image batch, repairing a possibly-torn in-place top-up.
        """
        if not 0 <= num_buckets <= self.num_buckets:
            raise StorageError(
                f"cannot truncate to {num_buckets} buckets "
                f"(have {self.num_buckets})"
            )
        for bucket_no in range(num_buckets, self.num_buckets):
            self.invalidate_decoded(bucket_no)
        self._bucket_counts = self._bucket_counts[:num_buckets].copy()
        self._handle.truncate(
            num_buckets * self.layout.pages_per_bucket * self.layout.page_size
        )
        if trailing is not None:
            if num_buckets == 0:
                raise StorageError("no trailing bucket to rewrite in an empty file")
            self.write_bucket(num_buckets - 1, trailing)
        self.flush()

    def append_batch(self, records: np.ndarray) -> None:
        """Append a record batch, packing buckets densely in order.

        This is the bulkload path: the physical order of appends is the
        physical order of buckets, which is exactly the order SMA-file
        entries will mirror (time-of-creation clustering falls out of
        appending new data at the end).
        """
        if records.dtype != self.schema.record_dtype:
            raise StorageError("record dtype does not match schema")
        if len(records) == 0:
            return
        per_bucket = self.layout.tuples_per_bucket
        offset = 0

        # Top up a partially filled trailing bucket first.
        if self.num_buckets and self._bucket_counts[-1] < per_bucket:
            last = self.num_buckets - 1
            existing = self.read_bucket(last).copy()
            room = per_bucket - len(existing)
            take = min(room, len(records))
            merged = np.concatenate([existing, records[:take]])
            self.write_bucket(last, merged)
            offset = take

        # Then write whole new buckets.
        while offset < len(records):
            chunk = records[offset : offset + per_bucket]
            bucket_no = self.num_buckets
            self._bucket_counts = np.append(self._bucket_counts, 0)
            tpp = self.layout.tuples_per_page
            first = bucket_no * self.layout.pages_per_bucket
            for j in range(self.layout.pages_per_bucket):
                page_chunk = chunk[j * tpp : (j + 1) * tpp]
                self._write_page(first + j, page_chunk)
            self._bucket_counts[bucket_no] = len(chunk)
            offset += len(chunk)

    def append_bucket(self, records: np.ndarray) -> None:
        """Append *records* as one new bucket, never topping up the last.

        :meth:`append_batch` merges into a partially filled trailing
        bucket, which is right for bulkloads but wrong when bucket
        boundaries must be preserved exactly — the shard partitioner
        copies buckets between catalogs with this method so every SMA
        entry keeps describing the same tuples on both sides.
        """
        if records.dtype != self.schema.record_dtype:
            raise StorageError("record dtype does not match schema")
        if len(records) > self.layout.tuples_per_bucket:
            raise StorageError(
                f"{len(records)} records exceed bucket capacity "
                f"{self.layout.tuples_per_bucket}"
            )
        bucket_no = self.num_buckets
        self._bucket_counts = np.append(self._bucket_counts, 0)
        tpp = self.layout.tuples_per_page
        first = bucket_no * self.layout.pages_per_bucket
        for j in range(self.layout.pages_per_bucket):
            self._write_page(first + j, records[j * tpp : (j + 1) * tpp])
        self._bucket_counts[bucket_no] = len(records)

    def append_rows(self, rows: list) -> None:
        """Convenience: append Python row tuples (slow path for tests)."""
        self.append_batch(self.schema.batch_from_rows(rows))

    def iter_buckets(self) -> Iterator[tuple[int, np.ndarray]]:
        """Yield ``(bucket_no, records)`` in physical order."""
        for bucket_no in range(self.num_buckets):
            yield bucket_no, self.read_bucket(bucket_no)

    def read_all(self) -> np.ndarray:
        """Every record in physical order (testing/verification helper)."""
        if self.num_buckets == 0:
            return self.schema.empty_batch()
        return np.concatenate([records for _, records in self.iter_buckets()])

    def delete_files(self) -> None:
        """Remove the data file and its sidecars from disk."""
        self.close()
        self.pool.invalidate(self.file_id)
        for suffix in ("", _META_SUFFIX, _COUNTS_SUFFIX):
            target = self.path + suffix
            if os.path.exists(target):
                os.remove(target)
