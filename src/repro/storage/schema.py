"""Relation schemas: named, typed, fixed-width columns.

A :class:`Schema` is an ordered sequence of :class:`Column` objects.  It
knows its numpy structured record dtype, the record byte width (which
drives tuples-per-page arithmetic throughout the system), and how to
build record batches from Python row data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import SchemaError
from repro.storage.types import DataType, coerce_value


@dataclass(frozen=True)
class Column:
    """One named, typed column of a relation."""

    name: str
    dtype: DataType

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise SchemaError(f"invalid column name {self.name!r}")

    def __str__(self) -> str:
        return f"{self.name} {self.dtype}"


class Schema:
    """An ordered collection of columns with fixed-width binary layout."""

    def __init__(self, columns: Iterable[Column]):
        self._columns: tuple[Column, ...] = tuple(columns)
        if not self._columns:
            raise SchemaError("a schema needs at least one column")
        names = [c.name for c in self._columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in {names}")
        self._index = {c.name: i for i, c in enumerate(self._columns)}
        # `align=False` keeps the record packed, matching the byte
        # arithmetic the paper uses for tuples-per-page.
        self._record_dtype = np.dtype(
            [(c.name, c.dtype.numpy_dtype) for c in self._columns], align=False
        )

    @classmethod
    def of(cls, *pairs: tuple[str, DataType]) -> "Schema":
        """Build a schema from ``(name, dtype)`` pairs."""
        return cls(Column(name, dtype) for name, dtype in pairs)

    @property
    def columns(self) -> tuple[Column, ...]:
        return self._columns

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self._columns)

    @property
    def record_dtype(self) -> np.dtype:
        """numpy structured dtype of one record."""
        return self._record_dtype

    @property
    def record_width(self) -> int:
        """Byte width of one packed record."""
        return self._record_dtype.itemsize

    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self._columns)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._columns == other._columns

    def __hash__(self) -> int:
        return hash(self._columns)

    def __repr__(self) -> str:
        cols = ", ".join(str(c) for c in self._columns)
        return f"Schema({cols})"

    def column(self, name: str) -> Column:
        """Look up a column by name; raises :class:`SchemaError` if absent."""
        try:
            return self._columns[self._index[name]]
        except KeyError:
            raise SchemaError(
                f"no column {name!r}; have {list(self.names)}"
            ) from None

    def position(self, name: str) -> int:
        """Ordinal position of column *name*."""
        self.column(name)
        return self._index[name]

    def dtype_of(self, name: str) -> DataType:
        """The :class:`DataType` of column *name*."""
        return self.column(name).dtype

    def project(self, names: Sequence[str]) -> "Schema":
        """A new schema containing only *names*, in the given order."""
        return Schema(self.column(n) for n in names)

    def empty_batch(self, capacity: int = 0) -> np.ndarray:
        """An empty (or zeroed, length-*capacity*) record batch."""
        return np.zeros(capacity, dtype=self._record_dtype)

    def batch_from_rows(self, rows: Sequence[Sequence[object]]) -> np.ndarray:
        """Build a record batch from Python row tuples.

        Values are coerced per column type (dates to day numbers, strings
        to padded bytes).  This is the slow, convenient path used by tests
        and small examples; bulk generators build numpy arrays directly.
        """
        batch = self.empty_batch(len(rows))
        width = len(self._columns)
        for row_index, row in enumerate(rows):
            if len(row) != width:
                raise SchemaError(
                    f"row {row_index} has {len(row)} values, schema has {width}"
                )
            record = batch[row_index]
            for col, value in zip(self._columns, row):
                record[col.name] = coerce_value(col.dtype, value)
        return batch

    def to_dict(self) -> list[dict]:
        """JSON-serializable description, for heap-file metadata."""
        return [
            {"name": c.name, "kind": c.dtype.kind.value, "length": c.dtype.length}
            for c in self._columns
        ]

    @classmethod
    def from_dict(cls, described: list[dict]) -> "Schema":
        """Rebuild a schema from :meth:`to_dict` output."""
        from repro.storage.types import DataType, TypeKind

        return cls(
            Column(d["name"], DataType(TypeKind(d["kind"]), d.get("length", 0)))
            for d in described
        )

    def batch_from_columns(self, **arrays: np.ndarray) -> np.ndarray:
        """Build a record batch from per-column numpy arrays (fast path)."""
        missing = set(self.names) - set(arrays)
        if missing:
            raise SchemaError(f"missing columns {sorted(missing)}")
        extra = set(arrays) - set(self.names)
        if extra:
            raise SchemaError(f"unknown columns {sorted(extra)}")
        lengths = {len(a) for a in arrays.values()}
        if len(lengths) != 1:
            raise SchemaError(f"column arrays have differing lengths {lengths}")
        (n,) = lengths
        batch = self.empty_batch(n)
        for name, array in arrays.items():
            batch[name] = array
        return batch
