"""Tables: a named schema bound to a heap file, plus clustering metadata.

A :class:`Table` is the unit SMAs index.  It records which column (if
any) the physical bucket order is (approximately) clustered on — the
paper's implicit time-of-creation clustering — purely as *advisory*
metadata: correctness never depends on it, but the planner's ambivalence
estimates and the experiment harness report it.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.storage.heapfile import HeapFile
from repro.storage.page import BucketLayout
from repro.storage.schema import Schema


class Table:
    """A named relation stored in a heap file."""

    def __init__(self, name: str, heap: HeapFile, clustered_on: str | None = None):
        self.name = name
        self.heap = heap
        if clustered_on is not None:
            heap.schema.column(clustered_on)  # validate
        self.clustered_on = clustered_on

    @property
    def schema(self) -> Schema:
        return self.heap.schema

    @property
    def layout(self) -> BucketLayout:
        return self.heap.layout

    @property
    def num_buckets(self) -> int:
        return self.heap.num_buckets

    @property
    def num_records(self) -> int:
        return self.heap.num_records

    @property
    def num_pages(self) -> int:
        return self.heap.num_pages

    @property
    def size_bytes(self) -> int:
        return self.heap.size_bytes

    def read_bucket(self, bucket_no: int) -> np.ndarray:
        return self.heap.read_bucket(bucket_no)

    @property
    def decode_cache_stats(self) -> tuple[int, int]:
        """(hits, misses) of the heap's decoded-bucket cache."""
        return self.heap.decode_hits, self.heap.decode_misses

    def iter_buckets(self) -> Iterator[tuple[int, np.ndarray]]:
        return self.heap.iter_buckets()

    def append_batch(self, records: np.ndarray) -> None:
        self.heap.append_batch(records)

    def append_bucket(self, records: np.ndarray) -> None:
        self.heap.append_bucket(records)

    def append_rows(self, rows: list) -> None:
        self.heap.append_rows(rows)

    def read_all(self) -> np.ndarray:
        return self.heap.read_all()

    def __repr__(self) -> str:
        return (
            f"Table({self.name!r}, records={self.num_records}, "
            f"buckets={self.num_buckets}, clustered_on={self.clustered_on!r})"
        )
