"""Tables: a named schema bound to a heap file, plus clustering metadata.

A :class:`Table` is the unit SMAs index.  It records which column (if
any) the physical bucket order is (approximately) clustered on — the
paper's implicit time-of-creation clustering — purely as *advisory*
metadata: correctness never depends on it, but the planner's ambivalence
estimates and the experiment harness report it.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import CatalogError, StorageError
from repro.storage.heapfile import HeapFile
from repro.storage.page import BucketLayout
from repro.storage.schema import Schema


class Table:
    """A named relation stored in a heap file."""

    def __init__(self, name: str, heap: HeapFile, clustered_on: str | None = None):
        self.name = name
        self.heap = heap
        if clustered_on is not None:
            heap.schema.column(clustered_on)  # validate
        self.clustered_on = clustered_on

    @property
    def schema(self) -> Schema:
        return self.heap.schema

    @property
    def layout(self) -> BucketLayout:
        return self.heap.layout

    @property
    def num_buckets(self) -> int:
        return self.heap.num_buckets

    @property
    def num_records(self) -> int:
        return self.heap.num_records

    @property
    def num_pages(self) -> int:
        return self.heap.num_pages

    @property
    def size_bytes(self) -> int:
        return self.heap.size_bytes

    def read_bucket(self, bucket_no: int) -> np.ndarray:
        return self.heap.read_bucket(bucket_no)

    def bucket_counts(self) -> np.ndarray:
        return self.heap.bucket_counts()

    @property
    def decode_cache_stats(self) -> tuple[int, int]:
        """(hits, misses) of the heap's decoded-bucket cache."""
        return self.heap.decode_hits, self.heap.decode_misses

    def iter_buckets(self) -> Iterator[tuple[int, np.ndarray]]:
        return self.heap.iter_buckets()

    def append_batch(self, records: np.ndarray) -> None:
        self.heap.append_batch(records)

    def append_bucket(self, records: np.ndarray) -> None:
        self.heap.append_bucket(records)

    def append_rows(self, rows: list) -> None:
        self.heap.append_rows(rows)

    def read_all(self) -> np.ndarray:
        return self.heap.read_all()

    def __repr__(self) -> str:
        return (
            f"Table({self.name!r}, records={self.num_records}, "
            f"buckets={self.num_buckets}, clustered_on={self.clustered_on!r})"
        )


class TableView(Table):
    """A bucket-generation snapshot of a table, pinned at one ingest epoch.

    Concurrent inserts only ever *grow* the heap: they top up the
    trailing bucket in place and append whole buckets after it.  A view
    therefore freezes two numbers at admission — the bucket count ``B``
    and the trailing bucket's record count ``c`` — and bounds every read
    against them: buckets ``>= B`` do not exist, and bucket ``B - 1``
    is truncated to its first ``c`` records.  Readers holding the view
    can never observe a torn append or rows of a later epoch, while the
    writer proceeds underneath.

    The view is a :class:`Table` duck-type: every operator, planner and
    morsel dispatcher works on it unchanged.  ``pin`` round-trips the
    snapshot to process scan workers, which clip after reading their own
    (possibly fresher) on-disk bytes.
    """

    def __init__(self, base: Table, epoch: int):
        super().__init__(base.name, base.heap, clustered_on=base.clustered_on)
        self.base = base
        self.epoch = epoch
        self._pinned_buckets = base.num_buckets
        self._pinned_trailing = (
            base.heap.bucket_count(self._pinned_buckets - 1)
            if self._pinned_buckets
            else 0
        )

    @property
    def pin(self) -> dict:
        """Wire form of the snapshot for process scan-worker payloads."""
        return {
            "epoch": self.epoch,
            "buckets": self._pinned_buckets,
            "trailing": self._pinned_trailing,
        }

    @classmethod
    def from_pin(cls, base: Table, pin: dict) -> "TableView":
        """Rebuild a view from a shipped ``pin`` snapshot (worker side).

        The worker's on-disk state may be fresher than the parent's pin
        (a later batch already retired); the shipped geometry — not the
        worker's current heap — defines what this view exposes.
        """
        view = cls(base, int(pin["epoch"]))
        view._pinned_buckets = int(pin["buckets"])
        view._pinned_trailing = int(pin["trailing"])
        return view

    @property
    def num_buckets(self) -> int:
        return self._pinned_buckets

    @property
    def num_records(self) -> int:
        if not self._pinned_buckets:
            return 0
        full = int(
            np.asarray(self.heap.bucket_counts()[: self._pinned_buckets - 1]).sum()
        )
        return full + self._pinned_trailing

    @property
    def num_pages(self) -> int:
        return self._pinned_buckets * self.layout.pages_per_bucket

    @property
    def size_bytes(self) -> int:
        return self.num_pages * self.layout.page_size

    def bucket_counts(self) -> np.ndarray:
        counts = np.asarray(self.heap.bucket_counts())[: self._pinned_buckets].copy()
        if self._pinned_buckets:
            counts[-1] = self._pinned_trailing
        counts.flags.writeable = False
        return counts

    def read_bucket(self, bucket_no: int) -> np.ndarray:
        if not 0 <= bucket_no < self._pinned_buckets:
            raise StorageError(
                f"bucket {bucket_no} out of pinned range "
                f"[0, {self._pinned_buckets}) at epoch {self.epoch}"
            )
        records = self.heap.read_bucket(bucket_no)
        if bucket_no == self._pinned_buckets - 1:
            return records[: self._pinned_trailing]
        return records

    def iter_buckets(self):
        for bucket_no in range(self._pinned_buckets):
            yield bucket_no, self.read_bucket(bucket_no)

    def read_all(self) -> np.ndarray:
        if self._pinned_buckets == 0:
            return self.schema.empty_batch()
        return np.concatenate([records for _, records in self.iter_buckets()])

    def append_batch(self, records: np.ndarray) -> None:
        raise CatalogError("cannot write through a pinned TableView")

    def append_bucket(self, records: np.ndarray) -> None:
        raise CatalogError("cannot write through a pinned TableView")

    def append_rows(self, rows: list) -> None:
        raise CatalogError("cannot write through a pinned TableView")

    def __repr__(self) -> str:
        return (
            f"TableView({self.name!r}@{self.epoch}, "
            f"buckets={self._pinned_buckets}, "
            f"trailing={self._pinned_trailing})"
        )
