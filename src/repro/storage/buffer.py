"""LRU buffer pool with sequential/random I/O classification.

All page traffic in the system goes through a :class:`BufferPool`.  The
pool serves three purposes:

* it is the *warm vs cold* switch — the paper's Section 2.4 reports both
  cold and warm runs of Query 1, which we reproduce by clearing the pool;
* it classifies every physical read as sequential or random (a read is
  sequential when it targets the page directly after the previous
  physical read of the same file), feeding the simulated disk model;
* it caps memory like the paper's 8 MB intertransaction buffer.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Hashable

from repro.errors import StorageError
from repro.storage.stats import IoStats

PageKey = tuple[Hashable, int]


class BufferPool:
    """A fixed-capacity LRU cache of page payloads.

    Parameters
    ----------
    capacity_pages:
        Maximum number of pages held.  The paper configured AODB with an
        8 MB intertransaction buffer — 2048 4 KB pages — which is the
        default here.
    stats:
        The :class:`IoStats` instance charged for traffic through this
        pool.  Callers typically snapshot/diff it around a query.
    """

    def __init__(self, capacity_pages: int = 2048, stats: IoStats | None = None):
        if capacity_pages <= 0:
            raise StorageError(f"capacity_pages must be positive, got {capacity_pages}")
        self.capacity_pages = capacity_pages
        self.stats = stats if stats is not None else IoStats()
        self._cache: OrderedDict[PageKey, bytes] = OrderedDict()
        self._last_physical: dict[Hashable, int] = {}

    def __len__(self) -> int:
        return len(self._cache)

    def __contains__(self, key: PageKey) -> bool:
        return key in self._cache

    def read_page(
        self,
        file_id: Hashable,
        page_no: int,
        loader: Callable[[], bytes],
    ) -> bytes:
        """Return the payload of page *page_no* of file *file_id*.

        On a hit the page moves to the MRU end and a buffer hit is
        charged.  On a miss, *loader* fetches the bytes, the read is
        classified sequential or random against the last physical read of
        the same file, and the LRU page is evicted if the pool is full.
        """
        key: PageKey = (file_id, page_no)
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            self.stats.buffer_hits += 1
            return cached

        payload = loader()
        last = self._last_physical.get(file_id)
        if last is not None and page_no == last + 1:
            self.stats.sequential_page_reads += 1
        elif last is not None and page_no > last + 1:
            # A forward gap in an otherwise ordered scan: the head skips
            # over unread pages.  Cheaper than a full random access but
            # far dearer than streaming — this is what makes the paper's
            # Figure 5 break-even shape emerge (scattered ambivalent
            # buckets cost skip latency each).
            self.stats.skip_page_reads += 1
        else:
            self.stats.random_page_reads += 1
        self._last_physical[file_id] = page_no

        self._cache[key] = payload
        if len(self._cache) > self.capacity_pages:
            self._cache.popitem(last=False)
        return payload

    def note_write(self, file_id: Hashable, page_no: int, payload: bytes) -> None:
        """Record a page write: charge the write and refresh the cache.

        The freshly written page is installed in the pool (write-through)
        so a subsequent read is a hit, as it would be in a real system.
        """
        self.stats.page_writes += 1
        key: PageKey = (file_id, page_no)
        self._cache[key] = payload
        self._cache.move_to_end(key)
        if len(self._cache) > self.capacity_pages:
            self._cache.popitem(last=False)

    def invalidate(self, file_id: Hashable, page_no: int | None = None) -> None:
        """Drop one page, or every page of a file when *page_no* is None."""
        if page_no is not None:
            self._cache.pop((file_id, page_no), None)
            return
        doomed = [key for key in self._cache if key[0] == file_id]
        for key in doomed:
            del self._cache[key]
        self._last_physical.pop(file_id, None)

    def clear(self) -> None:
        """Empty the pool — the 'cold' switch for cold/warm experiments."""
        self._cache.clear()
        self._last_physical.clear()

    def reset_sequence_tracking(self) -> None:
        """Forget read positions so the next read of each file is random.

        Used between queries: the first page a fresh scan touches costs a
        seek even if the previous query happened to end right before it.
        """
        self._last_physical.clear()
