"""Thread-safe LRU buffer pool with per-query accounting contexts.

All page traffic in the system goes through a :class:`BufferPool`.  The
pool serves four purposes:

* it is the *warm vs cold* switch — the paper's Section 2.4 reports both
  cold and warm runs of Query 1, which we reproduce by clearing the pool;
* it classifies every physical read as sequential or random (a read is
  sequential when it targets the page directly after the previous
  physical read of the same file), feeding the simulated disk model;
* it caps memory like the paper's 8 MB intertransaction buffer;
* it is the concurrency choke point of the query service: one lock
  protects the LRU structures, and per-thread *query contexts* give each
  in-flight query its own :class:`IoStats` window and its own
  sequential-read tracker so concurrent queries cannot corrupt each
  other's cost accounting.

Concurrency model
-----------------
Every public method takes ``self._lock`` around the shared structures
(the ``OrderedDict`` LRU, the shared sequence tracker, the cumulative
counters).  ``loader()`` is invoked *inside* the lock on a miss: that
serializes access to the underlying shared file handles (heap files and
SMA-files seek+read on one handle), which is exactly what a real buffer
manager's page latch would guarantee, and it means one physical load per
miss even under contention.

``pool.stats`` is a property.  Outside a query context it resolves to
the pool's default :class:`IoStats` (the catalog-wide counters — fully
backward compatible).  Inside ``with pool.query_context(stats):`` it
resolves, *for the current thread only*, to the bound per-query stats.
All charging code in the system reads ``pool.stats`` at operation time,
so the whole execution stack is per-query isolated without touching any
operator.

A query context may also carry a cancellation event and a monotonic
deadline; :meth:`read_page` checks them on every call, so a running
query is cancelled cooperatively at its next page access — the natural
quantum, since all I/O funnels through here.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Hashable, Iterator

from repro.errors import QueryCancelledError, QueryTimeoutError, StorageError
from repro.storage.stats import IoStats

PageKey = tuple[Hashable, int]


@dataclass
class BufferCounters:
    """Cumulative pool-lifetime counters (snapshot; see :meth:`BufferPool.counters`).

    Unlike :class:`IoStats` windows, these accrue across *all* queries and
    threads — the per-query deltas of every context-bound execution sum
    exactly to the growth of these counters.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writes: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of logical reads served from the pool (0.0 when idle)."""
        accesses = self.accesses
        return self.hits / accesses if accesses else 0.0

    def __sub__(self, other: "BufferCounters") -> "BufferCounters":
        if not isinstance(other, BufferCounters):
            return NotImplemented
        return BufferCounters(
            hits=self.hits - other.hits,
            misses=self.misses - other.misses,
            evictions=self.evictions - other.evictions,
            writes=self.writes - other.writes,
        )


class _QueryBinding:
    """Thread-local accounting window for one in-flight query."""

    __slots__ = ("stats", "last_physical", "cancel_event", "deadline")

    def __init__(
        self,
        stats: IoStats,
        cancel_event: threading.Event | None,
        deadline: float | None,
    ):
        self.stats = stats
        self.last_physical: dict[Hashable, int] = {}
        self.cancel_event = cancel_event
        self.deadline = deadline


class BufferPool:
    """A fixed-capacity, thread-safe LRU cache of page payloads.

    Parameters
    ----------
    capacity_pages:
        Maximum number of pages held.  The paper configured AODB with an
        8 MB intertransaction buffer — 2048 4 KB pages — which is the
        default here.
    stats:
        The default :class:`IoStats` instance charged for traffic through
        this pool when no query context is bound.  Callers typically
        snapshot/diff it around a query.
    """

    def __init__(self, capacity_pages: int = 2048, stats: IoStats | None = None):
        if capacity_pages <= 0:
            raise StorageError(f"capacity_pages must be positive, got {capacity_pages}")
        self.capacity_pages = capacity_pages
        self._default_stats = stats if stats is not None else IoStats()
        self._cache: OrderedDict[PageKey, bytes] = OrderedDict()
        self._last_physical: dict[Hashable, int] = {}
        self._lock = threading.RLock()
        self._local = threading.local()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._writes = 0

    # ------------------------------------------------------------------
    # per-query contexts
    # ------------------------------------------------------------------

    def _binding(self) -> _QueryBinding | None:
        return getattr(self._local, "binding", None)

    @property
    def stats(self) -> IoStats:
        """The stats window charged by the current thread.

        The bound per-query :class:`IoStats` inside a
        :meth:`query_context`, the pool-default instance otherwise.
        """
        binding = self._binding()
        return binding.stats if binding is not None else self._default_stats

    @property
    def default_stats(self) -> IoStats:
        """The context-independent default window (the catalog's counters)."""
        return self._default_stats

    @contextmanager
    def query_context(
        self,
        stats: IoStats | None = None,
        *,
        cancel_event: threading.Event | None = None,
        deadline: float | None = None,
    ) -> Iterator[IoStats]:
        """Bind a per-query accounting window to the current thread.

        While active, every charge made from this thread lands on
        *stats* (a fresh :class:`IoStats` when omitted) and
        sequential/random classification runs against a private
        tracker, so interleaved page reads of concurrent queries do not
        turn each other's streams into phantom random I/O.

        *cancel_event* and *deadline* (``time.monotonic()`` scale) make
        the query cooperatively cancellable: the next
        :meth:`read_page` after the event is set / the deadline passes
        raises :class:`~repro.errors.QueryCancelledError` /
        :class:`~repro.errors.QueryTimeoutError`.

        Contexts nest per thread; the previous binding is restored on
        exit.
        """
        binding = _QueryBinding(
            stats if stats is not None else IoStats(), cancel_event, deadline
        )
        previous = self._binding()
        self._local.binding = binding
        try:
            yield binding.stats
        finally:
            self._local.binding = previous

    @staticmethod
    def _check_live(binding: _QueryBinding) -> None:
        if binding.cancel_event is not None and binding.cancel_event.is_set():
            raise QueryCancelledError("query cancelled during page access")
        if binding.deadline is not None and time.monotonic() > binding.deadline:
            raise QueryTimeoutError("query deadline exceeded during page access")

    # ------------------------------------------------------------------
    # page traffic
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._cache)

    def __contains__(self, key: PageKey) -> bool:
        with self._lock:
            return key in self._cache

    def read_page(
        self,
        file_id: Hashable,
        page_no: int,
        loader: Callable[[], bytes],
    ) -> bytes:
        """Return the payload of page *page_no* of file *file_id*.

        On a hit the page moves to the MRU end and a buffer hit is
        charged.  On a miss, *loader* fetches the bytes (inside the pool
        lock — see the module docstring), the read is classified
        sequential or random against the last physical read of the same
        file within the active accounting window, and the LRU page is
        evicted if the pool is full.
        """
        binding = self._binding()
        if binding is not None:
            self._check_live(binding)
        stats = binding.stats if binding is not None else self._default_stats
        key: PageKey = (file_id, page_no)
        with self._lock:
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                stats.buffer_hits += 1
                self._hits += 1
                return cached

            payload = loader()
            tracker = (
                binding.last_physical if binding is not None else self._last_physical
            )
            last = tracker.get(file_id)
            if last is not None and page_no == last + 1:
                stats.sequential_page_reads += 1
            elif last is not None and page_no > last + 1:
                # A forward gap in an otherwise ordered scan: the head skips
                # over unread pages.  Cheaper than a full random access but
                # far dearer than streaming — this is what makes the paper's
                # Figure 5 break-even shape emerge (scattered ambivalent
                # buckets cost skip latency each).
                stats.skip_page_reads += 1
            else:
                stats.random_page_reads += 1
            tracker[file_id] = page_no
            self._misses += 1

            self._cache[key] = payload
            if len(self._cache) > self.capacity_pages:
                self._cache.popitem(last=False)
                self._evictions += 1
            return payload

    def note_write(self, file_id: Hashable, page_no: int, payload: bytes) -> None:
        """Record a page write: charge the write and refresh the cache.

        The freshly written page is installed in the pool (write-through)
        so a subsequent read is a hit, as it would be in a real system.
        """
        self.stats.page_writes += 1
        key: PageKey = (file_id, page_no)
        with self._lock:
            self._writes += 1
            self._cache[key] = payload
            self._cache.move_to_end(key)
            if len(self._cache) > self.capacity_pages:
                self._cache.popitem(last=False)
                self._evictions += 1

    # ------------------------------------------------------------------
    # cumulative counters
    # ------------------------------------------------------------------

    def counters(self) -> BufferCounters:
        """Snapshot the cumulative hit/miss/eviction/write counters.

        These accrue across every thread and query context for the
        lifetime of the pool; diff two snapshots to get the traffic of a
        window.  Per-query :class:`IoStats` deltas partition this total:
        the sum of all bound windows' ``buffer_hits`` equals the growth
        of ``hits``, and their physical ``page_reads`` the growth of
        ``misses``.
        """
        with self._lock:
            return BufferCounters(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                writes=self._writes,
            )

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def invalidate(self, file_id: Hashable, page_no: int | None = None) -> None:
        """Drop one page, or every page of a file when *page_no* is None."""
        with self._lock:
            if page_no is not None:
                self._cache.pop((file_id, page_no), None)
                return
            doomed = [key for key in self._cache if key[0] == file_id]
            for key in doomed:
                del self._cache[key]
            self._last_physical.pop(file_id, None)

    def clear(self) -> None:
        """Empty the pool — the 'cold' switch for cold/warm experiments."""
        with self._lock:
            self._cache.clear()
            self._last_physical.clear()

    def reset_sequence_tracking(self) -> None:
        """Forget read positions so the next read of each file is random.

        Used between queries: the first page a fresh scan touches costs a
        seek even if the previous query happened to end right before it.
        Inside a query context only the context's private tracker is
        reset.
        """
        binding = self._binding()
        if binding is not None:
            binding.last_physical.clear()
            return
        with self._lock:
            self._last_physical.clear()
