"""Striped, thread-safe LRU buffer pool with single-flight page loads.

All page traffic in the system goes through a :class:`BufferPool`.  The
pool serves four purposes:

* it is the *warm vs cold* switch — the paper's Section 2.4 reports both
  cold and warm runs of Query 1, which we reproduce by clearing the pool;
* it classifies every physical read as sequential or random (a read is
  sequential when it targets the page directly after the previous
  physical read of the same file), feeding the simulated disk model;
* it caps memory like the paper's 8 MB intertransaction buffer;
* it is the concurrency core of the query service: the page map and LRU
  lists are *striped* across N independent locks, physical loads run
  outside every lock behind per-page single-flight latches, and
  per-thread *query contexts* give each in-flight query its own
  :class:`IoStats` window and its own sequential-read tracker so
  concurrent queries cannot corrupt each other's cost accounting.

Concurrency model
-----------------
The cache is partitioned into ``stripes`` shards, each with its own lock,
its own LRU ``OrderedDict`` and its own share of the page capacity.  A
page's stripe is a deterministic function of its key, chosen so that
consecutive pages of one file land on *different* stripes — a scan's
page stream spreads across every lock instead of hammering one.

Disk reads never happen under a stripe lock.  On a miss the reading
thread becomes the page's *load leader*: it publishes a latch in the
stripe's in-flight table, drops the lock, runs ``loader()``, then
re-acquires the lock to install the page and wake any *followers* that
arrived while the load was in progress.  Followers block on the latch
(holding no locks), so concurrent readers of one missing page coalesce
onto a single physical read instead of duplicating I/O — and readers of
*other* pages are never serialized behind it.

Counter semantics under single-flight (see also
:mod:`repro.storage.stats`): the leader charges the one physical read
(miss, classified sequential/skip/random against its own tracker); every
follower charges a buffer hit, because its bytes came from memory.  Per
logical access exactly one charge is made, so per-query windows still
partition the cumulative :meth:`counters` exactly.

``invalidate``/``clear``/``note_write`` are stripe-aware and bump a
per-stripe *generation*; a leader only installs its payload if the
stripe generation is unchanged since the load began, so an invalidated
page can never be resurrected by an in-flight read that started before
the invalidation.

``pool.stats`` is a property.  Outside a query context it resolves to
the pool's default :class:`IoStats` (the catalog-wide counters — fully
backward compatible; charges to it are serialized on a dedicated lock).
Inside ``with pool.query_context(stats):`` it resolves, *for the current
thread only*, to the bound per-query stats.  All charging code in the
system reads ``pool.stats`` at operation time, so the whole execution
stack is per-query isolated without touching any operator.

A query context may also carry a cancellation event and a monotonic
deadline; :meth:`read_page` checks them on every call, so a running
query is cancelled cooperatively at its next page access — the natural
quantum, since all I/O funnels through here.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Hashable, Iterator

from repro.errors import (
    QueryCancelledError,
    QueryTimeoutError,
    StorageError,
    TransientIOError,
)
from repro.storage.faults import RetryPolicy
from repro.storage.stats import IoStats

PageKey = tuple[Hashable, int]

#: Auto-striping granularity: one stripe per this many capacity pages,
#: capped at :data:`MAX_AUTO_STRIPES`.  Small pools (unit-test sized)
#: resolve to a single stripe, which preserves exact global LRU order.
PAGES_PER_AUTO_STRIPE = 128
MAX_AUTO_STRIPES = 16


@dataclass
class BufferCounters:
    """Cumulative pool-lifetime counters (snapshot; see :meth:`BufferPool.counters`).

    Unlike :class:`IoStats` windows, these accrue across *all* queries and
    threads — the per-query deltas of every context-bound execution sum
    exactly to the growth of these counters.  Under single-flight loading
    a coalesced follower counts as a *hit* (its bytes came from memory);
    only the load leader counts the miss.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writes: int = 0
    #: transient-fault read retries performed by load leaders; grows in
    #: lockstep with the summed ``read_retries`` of all stats windows.
    retries: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of logical reads served from the pool (0.0 when idle)."""
        accesses = self.accesses
        return self.hits / accesses if accesses else 0.0

    def __sub__(self, other: "BufferCounters") -> "BufferCounters":
        if not isinstance(other, BufferCounters):
            return NotImplemented
        return BufferCounters(
            hits=self.hits - other.hits,
            misses=self.misses - other.misses,
            evictions=self.evictions - other.evictions,
            writes=self.writes - other.writes,
            retries=self.retries - other.retries,
        )


class _QueryBinding:
    """Thread-local accounting window for one in-flight query."""

    __slots__ = ("stats", "last_physical", "cancel_event", "deadline")

    def __init__(
        self,
        stats: IoStats,
        cancel_event: threading.Event | None,
        deadline: float | None,
    ):
        self.stats = stats
        self.last_physical: dict[Hashable, int] = {}
        self.cancel_event = cancel_event
        self.deadline = deadline


class _PageLoad:
    """Single-flight latch for one in-flight physical page load."""

    __slots__ = ("event", "payload", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.payload: bytes | None = None
        self.error: BaseException | None = None


class _Stripe:
    """One shard of the pool: a lock, an LRU map, in-flight loads, counters."""

    __slots__ = (
        "lock", "cache", "capacity", "loads", "generation",
        "hits", "misses", "evictions", "writes",
    )

    def __init__(self, capacity: int):
        self.lock = threading.Lock()
        self.cache: OrderedDict[PageKey, bytes] = OrderedDict()
        self.capacity = capacity
        self.loads: dict[PageKey, _PageLoad] = {}
        self.generation = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writes = 0


class BufferPool:
    """A fixed-capacity, thread-safe, lock-striped LRU cache of page payloads.

    Parameters
    ----------
    capacity_pages:
        Maximum number of pages held.  The paper configured AODB with an
        8 MB intertransaction buffer — 2048 4 KB pages — which is the
        default here.
    stats:
        The default :class:`IoStats` instance charged for traffic through
        this pool when no query context is bound.  Callers typically
        snapshot/diff it around a query.
    stripes:
        Number of lock stripes.  ``None`` (the default) picks one stripe
        per :data:`PAGES_PER_AUTO_STRIPE` capacity pages, capped at
        :data:`MAX_AUTO_STRIPES` — production-sized pools stripe, tiny
        test pools keep a single stripe and therefore exact global LRU
        behaviour.  An explicit value is clamped so every stripe owns at
        least one page.
    """

    def __init__(
        self,
        capacity_pages: int = 2048,
        stats: IoStats | None = None,
        *,
        stripes: int | None = None,
    ):
        if capacity_pages <= 0:
            raise StorageError(f"capacity_pages must be positive, got {capacity_pages}")
        if stripes is not None and stripes <= 0:
            raise StorageError(f"stripes must be positive, got {stripes}")
        self.capacity_pages = capacity_pages
        if stripes is None:
            stripes = max(1, min(MAX_AUTO_STRIPES, capacity_pages // PAGES_PER_AUTO_STRIPE))
        stripes = min(stripes, capacity_pages)
        base, extra = divmod(capacity_pages, stripes)
        self._stripes = [
            _Stripe(base + (1 if i < extra else 0)) for i in range(stripes)
        ]
        self._default_stats = stats if stats is not None else IoStats()
        # Serializes charges to the default window and the shared
        # sequential-read tracker (per-context windows/trackers are
        # thread-private and need no lock).
        self._default_lock = threading.Lock()
        self._last_physical: dict[Hashable, int] = {}
        self._local = threading.local()
        #: Optional :class:`~repro.storage.faults.FaultInjector` consulted
        #: by HeapFile/SmaFile on every physical read/write through this
        #: pool.  None in production; set by tests, ``--faults``, and the
        #: workload driver.
        self.fault_injector = None
        #: Backoff schedule for transient read faults inside the
        #: single-flight leader (and SmaFile's open-time body read).
        self.retry_policy = RetryPolicy()
        #: Optional callback ``(file_id, page_no, attempt, error)`` fired
        #: on each retry — the serve CLI wires this to the event log.
        self.on_retry: Callable[[Hashable, int, int, BaseException], None] | None = None
        self._retries = 0

    # ------------------------------------------------------------------
    # striping
    # ------------------------------------------------------------------

    @property
    def num_stripes(self) -> int:
        return len(self._stripes)

    def _stripe_for(self, key: PageKey) -> _Stripe:
        # Mix the file identity with the raw page number so consecutive
        # pages of one file round-robin across stripes — a sequential
        # scan spreads over every lock instead of convoying on one.
        file_id, page_no = key
        return self._stripes[(hash(file_id) + page_no) % len(self._stripes)]

    def stripe_lengths(self) -> list[int]:
        """Pages currently held per stripe (diagnostics and tests)."""
        out = []
        for stripe in self._stripes:
            with stripe.lock:
                out.append(len(stripe.cache))
        return out

    def stripe_capacities(self) -> list[int]:
        """Per-stripe page capacity; sums to ``capacity_pages``."""
        return [stripe.capacity for stripe in self._stripes]

    # ------------------------------------------------------------------
    # per-query contexts
    # ------------------------------------------------------------------

    def _binding(self) -> _QueryBinding | None:
        return getattr(self._local, "binding", None)

    @property
    def stats(self) -> IoStats:
        """The stats window charged by the current thread.

        The bound per-query :class:`IoStats` inside a
        :meth:`query_context`, the pool-default instance otherwise.
        """
        binding = self._binding()
        return binding.stats if binding is not None else self._default_stats

    @property
    def default_stats(self) -> IoStats:
        """The context-independent default window (the catalog's counters)."""
        return self._default_stats

    @contextmanager
    def query_context(
        self,
        stats: IoStats | None = None,
        *,
        cancel_event: threading.Event | None = None,
        deadline: float | None = None,
    ) -> Iterator[IoStats]:
        """Bind a per-query accounting window to the current thread.

        While active, every charge made from this thread lands on
        *stats* (a fresh :class:`IoStats` when omitted) and
        sequential/random classification runs against a private
        tracker, so interleaved page reads of concurrent queries do not
        turn each other's streams into phantom random I/O.

        *cancel_event* and *deadline* (``time.monotonic()`` scale) make
        the query cooperatively cancellable: the next
        :meth:`read_page` after the event is set / the deadline passes
        raises :class:`~repro.errors.QueryCancelledError` /
        :class:`~repro.errors.QueryTimeoutError`.

        Contexts nest per thread; the previous binding is restored on
        exit.  Morsel scan workers bind their *own* window (merged into
        the parent query's window by the dispatcher) with the parent's
        cancel event and deadline — see :meth:`binding_controls`.
        """
        binding = _QueryBinding(
            stats if stats is not None else IoStats(), cancel_event, deadline
        )
        previous = self._binding()
        self._local.binding = binding
        try:
            yield binding.stats
        finally:
            self._local.binding = previous

    def binding_controls(self) -> tuple[threading.Event | None, float | None]:
        """The (cancel_event, deadline) of the current thread's context.

        ``(None, None)`` outside any context.  Scan-parallel dispatchers
        propagate these to worker threads so a cancelled or timed-out
        query stops all its morsel workers at their next page access.
        """
        binding = self._binding()
        if binding is None:
            return None, None
        return binding.cancel_event, binding.deadline

    @staticmethod
    def _check_live(binding: _QueryBinding) -> None:
        if binding.cancel_event is not None and binding.cancel_event.is_set():
            raise QueryCancelledError("query cancelled during page access")
        if binding.deadline is not None and time.monotonic() > binding.deadline:
            raise QueryTimeoutError("query deadline exceeded during page access")

    # ------------------------------------------------------------------
    # charging (window side; cumulative counters live on the stripes)
    # ------------------------------------------------------------------

    def _charge_hit(self, binding: _QueryBinding | None, stats: IoStats) -> None:
        if binding is None:
            with self._default_lock:
                stats.buffer_hits += 1
        else:
            stats.buffer_hits += 1

    def _classify_physical(
        self,
        binding: _QueryBinding | None,
        stats: IoStats,
        file_id: Hashable,
        page_no: int,
        kind: str,
    ) -> None:
        """Charge one physical read, classified against the right tracker."""
        if binding is None:
            with self._default_lock:
                self._classify_into(stats, self._last_physical, file_id, page_no, kind)
        else:
            self._classify_into(stats, binding.last_physical, file_id, page_no, kind)

    @staticmethod
    def _classify_into(
        stats: IoStats,
        tracker: dict[Hashable, int],
        file_id: Hashable,
        page_no: int,
        kind: str,
    ) -> None:
        last = tracker.get(file_id)
        if last is not None and page_no == last + 1:
            stats.sequential_page_reads += 1
        elif last is not None and page_no > last + 1:
            # A forward gap in an otherwise ordered scan: the head skips
            # over unread pages.  Cheaper than a full random access but
            # far dearer than streaming — this is what makes the paper's
            # Figure 5 break-even shape emerge (scattered ambivalent
            # buckets cost skip latency each).
            stats.skip_page_reads += 1
        else:
            stats.random_page_reads += 1
        if kind == "sma":
            stats.sma_page_reads += 1
        else:
            stats.heap_page_reads += 1
        tracker[file_id] = page_no

    # ------------------------------------------------------------------
    # page traffic
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return sum(self.stripe_lengths())

    def __contains__(self, key: PageKey) -> bool:
        stripe = self._stripe_for(key)
        with stripe.lock:
            return key in stripe.cache

    def read_page(
        self,
        file_id: Hashable,
        page_no: int,
        loader: Callable[[], bytes],
        *,
        kind: str = "heap",
    ) -> bytes:
        """Return the payload of page *page_no* of file *file_id*.

        On a hit the page moves to the MRU end of its stripe and a buffer
        hit is charged.  On a miss, the calling thread either becomes the
        page's load leader — running *loader* outside every lock, then
        installing the page (evicting its stripe's LRU page if the stripe
        is full) — or coalesces onto an in-flight load of the same page
        and charges a buffer hit once the leader's bytes arrive.

        *kind* labels the backing file (``"heap"`` or ``"sma"``) so
        physical reads split into ``heap_page_reads``/``sma_page_reads``
        — the paper's "SMA pages vs relation pages" ratio.
        """
        binding = self._binding()
        if binding is not None:
            self._check_live(binding)
        stats = binding.stats if binding is not None else self._default_stats
        key: PageKey = (file_id, page_no)
        stripe = self._stripe_for(key)

        while True:
            load: _PageLoad | None = None
            with stripe.lock:
                cached = stripe.cache.get(key)
                if cached is not None:
                    stripe.cache.move_to_end(key)
                    stripe.hits += 1
                    self._charge_hit(binding, stats)
                    return cached
                load = stripe.loads.get(key)
                if load is None:
                    load = _PageLoad()
                    stripe.loads[key] = load
                    generation = stripe.generation
                    leader = True
                else:
                    leader = False

            if not leader:
                # Follower: wait latch-only (no locks held), then account
                # the access as a hit — the bytes came from memory.
                load.event.wait()
                if load.error is not None:
                    # The leader's load failed; retry from the top (this
                    # thread may become the new leader).
                    continue
                with stripe.lock:
                    stripe.hits += 1
                    if key in stripe.cache:
                        stripe.cache.move_to_end(key)
                self._charge_hit(binding, stats)
                payload = load.payload
                assert payload is not None
                return payload

            # Leader: physical load outside every lock, with bounded
            # retry-with-backoff for transient faults.  Followers wait on
            # the latch and never double-charge — retries are the
            # leader's alone.
            try:
                payload = self._run_loader(loader, file_id, page_no)
            except BaseException as exc:
                with stripe.lock:
                    if stripe.loads.get(key) is load:
                        del stripe.loads[key]
                    load.error = exc
                    load.event.set()
                raise

            self._classify_physical(binding, stats, file_id, page_no, kind)
            with stripe.lock:
                stripe.misses += 1
                if stripe.loads.get(key) is load:
                    del stripe.loads[key]
                if stripe.generation == generation:
                    # Install only if no invalidate/clear/write raced the
                    # load — a stale payload must not resurrect.
                    stripe.cache[key] = payload
                    stripe.cache.move_to_end(key)
                    while len(stripe.cache) > stripe.capacity:
                        stripe.cache.popitem(last=False)
                        stripe.evictions += 1
                load.payload = payload
                load.event.set()
            return payload

    def _run_loader(
        self, loader: Callable[[], bytes], file_id: Hashable, page_no: int
    ) -> bytes:
        """Run a physical load, retrying transient faults with backoff.

        Each retry is charged to the caller's window *immediately* (and
        to the pool's cumulative retry counter), so accounting reconciles
        exactly even when the load ultimately fails.
        """
        policy = self.retry_policy
        attempt = 1
        while True:
            try:
                return loader()
            except TransientIOError as exc:
                if attempt >= policy.max_attempts:
                    raise
                self.note_retry()
                if self.on_retry is not None:
                    try:
                        self.on_retry(file_id, page_no, attempt, exc)
                    except Exception:
                        pass  # observability must never fail the read
                time.sleep(policy.backoff_s(attempt))
                attempt += 1

    def note_retry(self) -> None:
        """Charge one transient-read retry to the current window.

        Also bumps the pool's cumulative retry counter, keeping the
        window-partitioning invariant: summed window ``read_retries``
        always equal the growth of ``counters().retries``.
        """
        binding = self._binding()
        if binding is not None:
            binding.stats.read_retries += 1
            with self._default_lock:
                self._retries += 1
        else:
            with self._default_lock:
                self._default_stats.read_retries += 1
                self._retries += 1

    def note_write(self, file_id: Hashable, page_no: int, payload: bytes) -> None:
        """Record a page write: charge the write and refresh the cache.

        The freshly written page is installed in the pool (write-through)
        so a subsequent read is a hit, as it would be in a real system.
        Any in-flight load of this stripe is denied installation (its
        payload may predate the write).
        """
        binding = self._binding()
        stats = binding.stats if binding is not None else self._default_stats
        if binding is None:
            with self._default_lock:
                stats.page_writes += 1
        else:
            stats.page_writes += 1
        key: PageKey = (file_id, page_no)
        stripe = self._stripe_for(key)
        with stripe.lock:
            stripe.writes += 1
            stripe.generation += 1
            stripe.cache[key] = payload
            stripe.cache.move_to_end(key)
            while len(stripe.cache) > stripe.capacity:
                stripe.cache.popitem(last=False)
                stripe.evictions += 1

    # ------------------------------------------------------------------
    # cumulative counters
    # ------------------------------------------------------------------

    def counters(self) -> BufferCounters:
        """Snapshot the cumulative hit/miss/eviction/write counters.

        These accrue across every thread, stripe and query context for
        the lifetime of the pool; diff two snapshots to get the traffic
        of a window.  Per-query :class:`IoStats` deltas partition this
        total: the sum of all bound windows' ``buffer_hits`` equals the
        growth of ``hits``, and their physical ``page_reads`` the growth
        of ``misses``.  (The snapshot locks stripes one at a time; take
        it at a quiescent point for an exact cut.)
        """
        totals = BufferCounters()
        for stripe in self._stripes:
            with stripe.lock:
                totals.hits += stripe.hits
                totals.misses += stripe.misses
                totals.evictions += stripe.evictions
                totals.writes += stripe.writes
        with self._default_lock:
            totals.retries = self._retries
        return totals

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def invalidate(self, file_id: Hashable, page_no: int | None = None) -> None:
        """Drop one page, or every page of a file when *page_no* is None.

        Bumps the generation of every touched stripe so concurrent loads
        that started before the invalidation cannot install stale bytes.
        """
        if page_no is not None:
            key: PageKey = (file_id, page_no)
            stripe = self._stripe_for(key)
            with stripe.lock:
                stripe.cache.pop(key, None)
                stripe.generation += 1
            return
        for stripe in self._stripes:
            with stripe.lock:
                doomed = [key for key in stripe.cache if key[0] == file_id]
                for key in doomed:
                    del stripe.cache[key]
                stripe.generation += 1
        with self._default_lock:
            self._last_physical.pop(file_id, None)

    def clear(self) -> None:
        """Empty the pool — the 'cold' switch for cold/warm experiments."""
        for stripe in self._stripes:
            with stripe.lock:
                stripe.cache.clear()
                stripe.generation += 1
        with self._default_lock:
            self._last_physical.clear()

    def reset_sequence_tracking(self) -> None:
        """Forget read positions so the next read of each file is random.

        Used between queries: the first page a fresh scan touches costs a
        seek even if the previous query happened to end right before it.
        Inside a query context only the context's private tracker is
        reset.
        """
        binding = self._binding()
        if binding is not None:
            binding.last_physical.clear()
            return
        with self._default_lock:
            self._last_physical.clear()
