"""Storage substrate: types, schemas, pages, heap files, buffering, cost model.

This package is the from-scratch DBMS layer the paper's AODB system
provided: fixed-width records on 4 KB pages grouped into buckets, an LRU
buffer pool with sequential/random I/O accounting, and a calibrated
1998-era disk model that converts I/O counts into simulated seconds.
"""

from repro.storage.buffer import BufferPool
from repro.storage.catalog import Catalog
from repro.storage.disk import DiskModel, MODERN_DISK, PAPER_DISK
from repro.storage.heapfile import HeapFile
from repro.storage.page import BucketLayout, DEFAULT_PAGE_HEADER, DEFAULT_PAGE_SIZE
from repro.storage.schema import Column, Schema
from repro.storage.stats import CostBreakdown, IoStats
from repro.storage.table import Table
from repro.storage.types import (
    BOOL,
    DATE,
    DataType,
    FLOAT64,
    INT32,
    INT64,
    TypeKind,
    char,
    coerce_value,
    date_to_int,
    int_to_date,
    python_value,
)

__all__ = [
    "BOOL",
    "BucketLayout",
    "BufferPool",
    "Catalog",
    "Column",
    "CostBreakdown",
    "DATE",
    "DEFAULT_PAGE_HEADER",
    "DEFAULT_PAGE_SIZE",
    "DataType",
    "DiskModel",
    "FLOAT64",
    "HeapFile",
    "INT32",
    "INT64",
    "IoStats",
    "MODERN_DISK",
    "PAPER_DISK",
    "Schema",
    "Table",
    "TypeKind",
    "char",
    "coerce_value",
    "date_to_int",
    "int_to_date",
    "python_value",
]
