"""SQL front-end: the ``define sma`` DSL and the SELECT subset."""

from repro.sql.lexer import Token, TokenKind, tokenize
from repro.sql.parser import parse_definitions, parse_statement

__all__ = ["Token", "TokenKind", "parse_definitions", "parse_statement", "tokenize"]
