"""Recursive-descent parser for the paper's SQL surface.

Two statement forms are supported:

* ``define sma <name> select <agg> from <relation> [group by ...]`` —
  produces an :class:`~repro.core.definition.SmaDefinition`, enforcing
  the paper's restrictions (single select entry, single relation, no
  order specification);
* ``select ... from <relation> [where ...] [group by ...] [order by
  ...]`` — produces an :class:`~repro.query.query.AggregateQuery` when
  the select list contains aggregates, or a
  :class:`~repro.query.query.ScanQuery` otherwise.

Date literals (``DATE '1998-12-01'``) and interval arithmetic
(``DATE '1998-12-01' - INTERVAL '90' DAY``) fold to date constants at
parse time, exactly what Query 1 needs.
"""

from __future__ import annotations

import datetime

from repro.core.aggregates import (
    AggregateKind,
    AggregateSpec,
)
from repro.core.definition import SmaDefinition
from repro.errors import ParseError, SmaDefinitionError
from repro.lang.expr import (
    ArithOp,
    BinOp,
    ColumnRef,
    Const,
    Neg,
    ScalarExpr,
)
from repro.lang.predicate import (
    CmpOp,
    Predicate,
    TruePredicate,
    and_,
    cmp,
    not_,
    or_,
)
from repro.query.query import (
    AggregateQuery,
    DeleteStatement,
    ExplainQuery,
    InsertStatement,
    OutputAggregate,
    ScanQuery,
    UpdateStatement,
)
from repro.sql.lexer import Token, TokenKind, tokenize

_AGG_KEYWORDS = {
    "MIN": AggregateKind.MIN,
    "MAX": AggregateKind.MAX,
    "SUM": AggregateKind.SUM,
    "COUNT": AggregateKind.COUNT,
    "AVG": AggregateKind.AVG,
}

_CMP_SYMBOLS = {"=", "<>", "!=", "<", "<=", ">", ">="}


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.position = 0

    # ------------------------------------------------------------------
    # token plumbing
    # ------------------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.current
        if token.kind is not TokenKind.END:
            self.position += 1
        return token

    def expect_keyword(self, word: str) -> Token:
        if not self.current.is_keyword(word):
            raise ParseError(
                f"expected {word}, found {self.current}", self.current.position
            )
        return self.advance()

    def expect_symbol(self, symbol: str) -> Token:
        if not self.current.is_symbol(symbol):
            raise ParseError(
                f"expected {symbol!r}, found {self.current}", self.current.position
            )
        return self.advance()

    def expect_ident(self) -> str:
        if self.current.kind is not TokenKind.IDENT:
            raise ParseError(
                f"expected an identifier, found {self.current}",
                self.current.position,
            )
        return self.advance().text

    def expect_name(self) -> str:
        """An identifier, or a keyword used as a name.

        The paper names SMAs ``min``, ``max`` and ``count`` — reserved
        words in this grammar — so name positions accept keywords too.
        """
        if self.current.kind is TokenKind.KEYWORD:
            return self.advance().text.lower()
        return self.expect_ident()

    def accept_keyword(self, *words: str) -> Token | None:
        if self.current.is_keyword(*words):
            return self.advance()
        return None

    def accept_symbol(self, *symbols: str) -> Token | None:
        if self.current.is_symbol(*symbols):
            return self.advance()
        return None

    def at_end(self) -> bool:
        if self.current.is_symbol(";"):
            self.advance()
        return self.current.kind is TokenKind.END

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def parse_statement(self):
        if self.current.is_keyword("DEFINE"):
            statement = self.parse_define_sma()
        elif self.current.is_keyword("EXPLAIN"):
            statement = self.parse_explain()
        elif self.current.is_keyword("SELECT"):
            statement = self.parse_select()
        elif self.current.is_keyword("INSERT"):
            statement = self.parse_insert()
        elif self.current.is_keyword("UPDATE"):
            statement = self.parse_update()
        elif self.current.is_keyword("DELETE"):
            statement = self.parse_delete()
        else:
            raise ParseError(
                "expected DEFINE, EXPLAIN, SELECT, INSERT, UPDATE or "
                f"DELETE, found {self.current}",
                self.current.position,
            )
        if not self.at_end():
            raise ParseError(
                f"trailing input at {self.current}", self.current.position
            )
        return statement

    def parse_define_sma(self) -> SmaDefinition:
        self.expect_keyword("DEFINE")
        self.expect_keyword("SMA")
        name = self.expect_name()
        self.expect_keyword("SELECT")
        spec, _ = self.parse_aggregate_call()
        if self.accept_symbol(","):
            raise SmaDefinitionError(
                "the select clause of an SMA definition may contain only "
                "a single entry (Section 2.1)"
            )
        self.expect_keyword("FROM")
        table = self.expect_ident()
        if self.accept_symbol(","):
            raise SmaDefinitionError(
                "an SMA definition allows only a single relation in its "
                "from clause (no joins, Section 2.1)"
            )
        group_by: tuple[str, ...] = ()
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by = self.parse_column_list()
        if self.current.is_keyword("ORDER"):
            raise SmaDefinitionError(
                "an SMA definition does not allow an order specification "
                "(Section 2.1)"
            )
        if spec.kind is AggregateKind.AVG:
            raise SmaDefinitionError(
                "avg cannot be materialized; define sum and count instead"
            )
        return SmaDefinition(name, table, spec, group_by)

    def parse_explain(self) -> ExplainQuery:
        """``EXPLAIN SELECT ...`` — plan the statement without running it."""
        self.expect_keyword("EXPLAIN")
        if not self.current.is_keyword("SELECT"):
            raise ParseError(
                f"EXPLAIN supports only SELECT statements, found {self.current}",
                self.current.position,
            )
        return ExplainQuery(self.parse_select())

    def parse_select(self):
        self.expect_keyword("SELECT")
        star = False
        plain_columns: list[str] = []
        aggregates: list[OutputAggregate] = []
        auto_names = 0
        while True:
            if self.accept_symbol("*"):
                star = True
            elif self.current.is_keyword(*_AGG_KEYWORDS):
                spec, default_name = self.parse_aggregate_call()
                name = default_name
                if self.accept_keyword("AS"):
                    name = self.expect_ident()
                else:
                    auto_names += 1
                    name = f"{default_name}_{auto_names}" if any(
                        a.name == default_name for a in aggregates
                    ) else default_name
                aggregates.append(OutputAggregate(name, spec))
            else:
                plain_columns.append(self.expect_ident())
                if self.accept_keyword("AS"):
                    self.expect_ident()  # aliases on plain columns: ignored
            if not self.accept_symbol(","):
                break
        self.expect_keyword("FROM")
        table = self.expect_ident()
        where: Predicate = TruePredicate()
        if self.accept_keyword("WHERE"):
            where = self.parse_predicate()
        group_by: tuple[str, ...] = ()
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by = self.parse_column_list()
        order_by: tuple[str, ...] = ()
        order_desc: frozenset[str] = frozenset()
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by, order_desc = self.parse_order_list()

        if aggregates:
            unexpected = [c for c in plain_columns if c not in group_by]
            if star or unexpected:
                raise ParseError(
                    "plain select columns must appear in GROUP BY "
                    f"(offending: {unexpected or ['*']})"
                )
            return AggregateQuery(
                table=table,
                aggregates=tuple(aggregates),
                where=where,
                group_by=group_by,
                order_by=order_by,
                order_desc=order_desc,
            )
        if group_by or order_by:
            raise ParseError(
                "GROUP BY / ORDER BY require aggregates in this subset"
            )
        return ScanQuery(
            table=table,
            where=where,
            columns=() if star else tuple(plain_columns),
        )

    # ------------------------------------------------------------------
    # DML statements
    # ------------------------------------------------------------------

    def parse_insert(self) -> InsertStatement:
        """``INSERT INTO t [(c1, ...)] VALUES (v1, ...) [, (..)]``."""
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_ident()
        columns: tuple[str, ...] = ()
        if self.accept_symbol("("):
            names = [self.expect_ident()]
            while self.accept_symbol(","):
                names.append(self.expect_ident())
            self.expect_symbol(")")
            columns = tuple(names)
        self.expect_keyword("VALUES")
        rows: list[tuple] = [self.parse_value_row()]
        while self.accept_symbol(","):
            rows.append(self.parse_value_row())
        return InsertStatement(table=table, rows=tuple(rows), columns=columns)

    def parse_value_row(self) -> tuple:
        self.expect_symbol("(")
        values = [self.parse_literal()]
        while self.accept_symbol(","):
            values.append(self.parse_literal())
        self.expect_symbol(")")
        return tuple(values)

    def parse_literal(self) -> object:
        """One constant value: number, string or (interval-folded) date."""
        token = self.current
        expr = self.parse_expression()
        if not isinstance(expr, Const):
            raise ParseError(
                "DML values must be literal constants", token.position
            )
        return expr.value

    def parse_update(self) -> UpdateStatement:
        """``UPDATE t SET c = const [, ...] [WHERE ...]``."""
        self.expect_keyword("UPDATE")
        table = self.expect_ident()
        self.expect_keyword("SET")

        def one_assignment() -> tuple[str, object]:
            column = self.expect_ident()
            self.expect_symbol("=")
            return column, self.parse_literal()

        assignments = [one_assignment()]
        while self.accept_symbol(","):
            assignments.append(one_assignment())
        where: Predicate = TruePredicate()
        if self.accept_keyword("WHERE"):
            where = self.parse_predicate()
        return UpdateStatement(
            table=table, assignments=tuple(assignments), where=where
        )

    def parse_delete(self) -> DeleteStatement:
        """``DELETE FROM t [WHERE ...]``."""
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.expect_ident()
        where: Predicate = TruePredicate()
        if self.accept_keyword("WHERE"):
            where = self.parse_predicate()
        return DeleteStatement(table=table, where=where)

    # ------------------------------------------------------------------
    # clauses
    # ------------------------------------------------------------------

    def parse_column_list(self) -> tuple[str, ...]:
        columns = [self.expect_ident()]
        while self.accept_symbol(","):
            columns.append(self.expect_ident())
        return tuple(columns)

    def parse_order_list(self) -> tuple[tuple[str, ...], frozenset[str]]:
        """ORDER BY items with optional ASC/DESC per column."""
        columns: list[str] = []
        descending: set[str] = set()

        def one() -> None:
            name = self.expect_ident()
            columns.append(name)
            direction = self.accept_keyword("ASC", "DESC")
            if direction is not None and direction.text == "DESC":
                descending.add(name)

        one()
        while self.accept_symbol(","):
            one()
        return tuple(columns), frozenset(descending)

    def parse_aggregate_call(self) -> tuple[AggregateSpec, str]:
        token = self.current
        if not token.is_keyword(*_AGG_KEYWORDS):
            raise ParseError(
                f"expected an aggregate function, found {token}", token.position
            )
        kind = _AGG_KEYWORDS[self.advance().text]
        self.expect_symbol("(")
        if kind is AggregateKind.COUNT:
            self.expect_symbol("*")
            self.expect_symbol(")")
            return AggregateSpec(kind, None), "COUNT"
        argument = self.parse_expression()
        self.expect_symbol(")")
        return AggregateSpec(kind, argument), kind.value.upper()

    # ------------------------------------------------------------------
    # scalar expressions
    # ------------------------------------------------------------------

    def parse_expression(self) -> ScalarExpr:
        left = self.parse_term()
        while True:
            if self.accept_symbol("+"):
                left = BinOp(ArithOp.ADD, left, self.parse_term())
            elif self.current.is_symbol("-") and not self._minus_is_interval():
                self.advance()
                left = BinOp(ArithOp.SUB, left, self.parse_term())
            else:
                return left

    def _minus_is_interval(self) -> bool:
        """``DATE '..' - INTERVAL '..' DAY`` folds inside parse_factor."""
        return False

    def parse_term(self) -> ScalarExpr:
        left = self.parse_factor()
        while True:
            if self.accept_symbol("*"):
                left = BinOp(ArithOp.MUL, left, self.parse_factor())
            elif self.accept_symbol("/"):
                left = BinOp(ArithOp.DIV, left, self.parse_factor())
            else:
                return left

    def parse_factor(self) -> ScalarExpr:
        if self.accept_symbol("-"):
            inner = self.parse_factor()
            # Fold negative literals so `a = -1` compares against the
            # constant -1 (an atomic Section 3.1 form), not -(1).
            if isinstance(inner, Const) and isinstance(inner.value, (int, float)):
                return Const(-inner.value)
            return Neg(inner)
        if self.accept_symbol("("):
            inner = self.parse_expression()
            self.expect_symbol(")")
            return inner
        token = self.current
        if token.kind is TokenKind.NUMBER:
            self.advance()
            value = float(token.text) if "." in token.text else int(token.text)
            return Const(value)
        if token.kind is TokenKind.STRING:
            self.advance()
            return Const(token.text)
        if token.is_keyword("DATE"):
            return Const(self.parse_date_value())
        if token.kind is TokenKind.IDENT:
            self.advance()
            return ColumnRef(token.text)
        raise ParseError(f"unexpected {token} in expression", token.position)

    def parse_date_value(self) -> datetime.date:
        """``DATE 'iso'`` optionally followed by ± INTERVAL 'n' DAY."""
        self.expect_keyword("DATE")
        literal = self.current
        if literal.kind is not TokenKind.STRING:
            raise ParseError(
                f"expected a date string, found {literal}", literal.position
            )
        self.advance()
        try:
            value = datetime.date.fromisoformat(literal.text)
        except ValueError:
            raise ParseError(
                f"invalid date literal {literal.text!r}", literal.position
            ) from None
        while self.current.is_symbol("+", "-") and self.tokens[
            self.position + 1
        ].is_keyword("INTERVAL"):
            sign = -1 if self.advance().text == "-" else 1
            self.expect_keyword("INTERVAL")
            amount = self.current
            if amount.kind is not TokenKind.STRING:
                raise ParseError(
                    f"expected a quoted interval, found {amount}", amount.position
                )
            self.advance()
            self.expect_keyword("DAY")
            try:
                days = int(amount.text)
            except ValueError:
                raise ParseError(
                    f"invalid interval {amount.text!r}", amount.position
                ) from None
            value = value + datetime.timedelta(days=sign * days)
        return value

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------

    def parse_predicate(self) -> Predicate:
        return self.parse_or()

    def parse_or(self) -> Predicate:
        operands = [self.parse_and()]
        while self.accept_keyword("OR"):
            operands.append(self.parse_and())
        return or_(*operands) if len(operands) > 1 else operands[0]

    def parse_and(self) -> Predicate:
        operands = [self.parse_not()]
        while self.accept_keyword("AND"):
            operands.append(self.parse_not())
        return and_(*operands) if len(operands) > 1 else operands[0]

    def parse_not(self) -> Predicate:
        if self.accept_keyword("NOT"):
            return not_(self.parse_not())
        if self.current.is_symbol("("):
            # Could be a parenthesised predicate or expression; try the
            # predicate reading first (backtracking on failure).
            saved = self.position
            try:
                self.advance()
                inner = self.parse_predicate()
                self.expect_symbol(")")
                return inner
            except ParseError:
                self.position = saved
        return self.parse_comparison()

    def parse_comparison(self) -> Predicate:
        left = self.parse_expression()
        if self.accept_keyword("BETWEEN"):
            low = self.parse_expression()
            self.expect_keyword("AND")
            high = self.parse_expression()
            return and_(
                self._build_cmp(left, CmpOp.GE, low),
                self._build_cmp(left, CmpOp.LE, high),
            )
        token = self.current
        if not token.is_symbol(*_CMP_SYMBOLS):
            raise ParseError(
                f"expected a comparison operator, found {token}", token.position
            )
        self.advance()
        op = CmpOp.NE if token.text == "!=" else CmpOp(token.text)
        right = self.parse_expression()
        return self._build_cmp(left, op, right)

    @staticmethod
    def _build_cmp(left: ScalarExpr, op: CmpOp, right: ScalarExpr) -> Predicate:
        if isinstance(left, ColumnRef) and isinstance(right, Const):
            return cmp(left.name, op, right.value)
        if isinstance(left, Const) and isinstance(right, ColumnRef):
            return cmp(right.name, op.flipped, left.value)
        if isinstance(left, ColumnRef) and isinstance(right, ColumnRef):
            return cmp(left.name, op, right)
        raise ParseError(
            "comparisons must involve a column and a constant, or two "
            "columns (the Section 3.1 atomic forms)"
        )


def parse_statement(text: str):
    """Parse one SQL statement.

    Returns an :class:`SmaDefinition`, :class:`AggregateQuery`,
    :class:`ScanQuery`, :class:`ExplainQuery` or a DML statement
    (:class:`InsertStatement`/:class:`UpdateStatement`/
    :class:`DeleteStatement`) depending on the statement form.
    """
    return _Parser(text).parse_statement()


def parse_definitions(text: str) -> list[SmaDefinition]:
    """Parse a script of semicolon-separated ``define sma`` statements."""
    definitions = []
    for piece in text.split(";"):
        if piece.strip():
            statement = parse_statement(piece)
            if not isinstance(statement, SmaDefinition):
                raise ParseError("expected only define sma statements")
            definitions.append(statement)
    return definitions
