"""SQL lexer for the ``define sma`` DSL and the SELECT subset.

Keywords are case-insensitive; identifiers keep their original case.
String literals use single quotes with ``''`` escaping.  Dates are a
two-token construct (``DATE '1998-12-01'``) handled by the parser.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ParseError


class TokenKind(enum.Enum):
    IDENT = "ident"
    KEYWORD = "keyword"
    NUMBER = "number"
    STRING = "string"
    SYMBOL = "symbol"
    END = "end"


KEYWORDS = frozenset(
    {
        "DEFINE", "SMA", "SELECT", "FROM", "WHERE", "GROUP", "ORDER", "BY",
        "AND", "OR", "NOT", "AS", "MIN", "MAX", "SUM", "COUNT", "AVG",
        "DATE", "INTERVAL", "DAY", "BETWEEN", "DESC", "ASC", "EXPLAIN",
        "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE",
    }
)

_SYMBOLS = ("<=", ">=", "<>", "!=", "(", ")", ",", "*", "+", "-", "/", "<", ">", "=", ";")


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    position: int

    def is_keyword(self, *words: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text in words

    def is_symbol(self, *symbols: str) -> bool:
        return self.kind is TokenKind.SYMBOL and self.text in symbols

    def __str__(self) -> str:
        if self.kind is TokenKind.END:
            return "<end of input>"
        return repr(self.text)


def tokenize(text: str) -> list[Token]:
    """Split *text* into tokens; raises :class:`ParseError` on bad input."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and text[i : i + 2] == "--":  # line comment
            newline = text.find("\n", i)
            i = n if newline < 0 else newline + 1
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenKind.KEYWORD, upper, start))
            else:
                tokens.append(Token(TokenKind.IDENT, word, start))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            start = i
            seen_dot = False
            while i < n and (text[i].isdigit() or (text[i] == "." and not seen_dot)):
                if text[i] == ".":
                    seen_dot = True
                i += 1
            tokens.append(Token(TokenKind.NUMBER, text[start:i], start))
            continue
        if ch == "'":
            start = i
            i += 1
            parts: list[str] = []
            while True:
                if i >= n:
                    raise ParseError("unterminated string literal", start)
                if text[i] == "'":
                    if text[i : i + 2] == "''":
                        parts.append("'")
                        i += 2
                        continue
                    i += 1
                    break
                parts.append(text[i])
                i += 1
            tokens.append(Token(TokenKind.STRING, "".join(parts), start))
            continue
        for symbol in _SYMBOLS:
            if text[i : i + len(symbol)] == symbol:
                tokens.append(Token(TokenKind.SYMBOL, symbol, i))
                i += len(symbol)
                break
        else:
            raise ParseError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenKind.END, "", n))
    return tokens
