"""Selection predicate AST with vectorised evaluation.

The atomic forms mirror Section 3.1 of the paper exactly:

* ``A = c`` (and the ``A <> c`` complement),
* ``A <= c`` / ``A < c``,
* ``A >= c`` / ``A > c``,
* ``A <= B`` / ``A < B`` (two attributes of the same relation),

combined with ``and``, ``or`` and ``not``.  The SMA grading rules in
:mod:`repro.core.grade` pattern-match on these node types.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.errors import SchemaError
from repro.lang.expr import ColumnRef
from repro.lang.values import display_constant, storage_constant
from repro.storage.schema import Schema


class CmpOp(enum.Enum):
    """Comparison operators of atomic predicates."""

    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    @property
    def flipped(self) -> "CmpOp":
        """The operator with sides swapped (``a < b`` ⇔ ``b > a``)."""
        return _FLIP[self]

    @property
    def negated(self) -> "CmpOp":
        """The complementary operator (``not (a < b)`` ⇔ ``a >= b``)."""
        return _NEGATE[self]


_FLIP = {
    CmpOp.EQ: CmpOp.EQ,
    CmpOp.NE: CmpOp.NE,
    CmpOp.LT: CmpOp.GT,
    CmpOp.LE: CmpOp.GE,
    CmpOp.GT: CmpOp.LT,
    CmpOp.GE: CmpOp.LE,
}

_NEGATE = {
    CmpOp.EQ: CmpOp.NE,
    CmpOp.NE: CmpOp.EQ,
    CmpOp.LT: CmpOp.GE,
    CmpOp.LE: CmpOp.GT,
    CmpOp.GT: CmpOp.LE,
    CmpOp.GE: CmpOp.LT,
}

_NUMPY_CMP = {
    CmpOp.EQ: np.equal,
    CmpOp.NE: np.not_equal,
    CmpOp.LT: np.less,
    CmpOp.LE: np.less_equal,
    CmpOp.GT: np.greater,
    CmpOp.GE: np.greater_equal,
}


class Predicate:
    """Base class of all predicate nodes."""

    def evaluate(self, batch: np.ndarray) -> np.ndarray:
        """Vectorised evaluation: a boolean array over the batch."""
        raise NotImplementedError

    def columns(self) -> frozenset[str]:
        raise NotImplementedError

    def bind(self, schema: Schema) -> "Predicate":
        """Validate against *schema*, coercing constants; returns a bound copy."""
        raise NotImplementedError


@dataclass(frozen=True)
class TruePredicate(Predicate):
    """The always-true predicate (query with no WHERE clause)."""

    def evaluate(self, batch: np.ndarray) -> np.ndarray:
        return np.ones(len(batch), dtype=bool)

    def columns(self) -> frozenset[str]:
        return frozenset()

    def bind(self, schema: Schema) -> "TruePredicate":
        return self

    def __str__(self) -> str:
        return "TRUE"


@dataclass(frozen=True)
class ColumnConstCmp(Predicate):
    """Atomic predicate ``A θ c`` for a column A and constant c."""

    column: str
    op: CmpOp
    constant: object

    def evaluate(self, batch: np.ndarray) -> np.ndarray:
        return _NUMPY_CMP[self.op](batch[self.column], self.constant)

    def columns(self) -> frozenset[str]:
        return frozenset((self.column,))

    def bind(self, schema: Schema) -> "ColumnConstCmp":
        dtype = schema.dtype_of(self.column)
        if not dtype.is_orderable and self.op not in (CmpOp.EQ, CmpOp.NE):
            raise SchemaError(f"{dtype} supports only =/<> comparisons")
        coerced = storage_constant(dtype, self.constant)
        return ColumnConstCmp(self.column, self.op, coerced)

    def __str__(self) -> str:
        return f"{self.column} {self.op.value} {display_constant(self.constant)}"


@dataclass(frozen=True)
class ColumnColumnCmp(Predicate):
    """Atomic predicate ``A θ B`` for two columns of the same relation."""

    left: str
    op: CmpOp
    right: str

    def evaluate(self, batch: np.ndarray) -> np.ndarray:
        return _NUMPY_CMP[self.op](batch[self.left], batch[self.right])

    def columns(self) -> frozenset[str]:
        return frozenset((self.left, self.right))

    def bind(self, schema: Schema) -> "ColumnColumnCmp":
        left_t = schema.dtype_of(self.left)
        right_t = schema.dtype_of(self.right)
        comparable = (
            left_t == right_t
            or (left_t.is_numeric and right_t.is_numeric)
        )
        if not comparable:
            raise SchemaError(f"cannot compare {left_t} with {right_t}")
        return self

    def __str__(self) -> str:
        return f"{self.left} {self.op.value} {self.right}"


@dataclass(frozen=True)
class And(Predicate):
    """Conjunction of two or more predicates."""

    operands: tuple[Predicate, ...]

    def __post_init__(self) -> None:
        if len(self.operands) < 2:
            raise SchemaError("AND needs at least two operands")

    def evaluate(self, batch: np.ndarray) -> np.ndarray:
        result = self.operands[0].evaluate(batch)
        for operand in self.operands[1:]:
            result = result & operand.evaluate(batch)
        return result

    def columns(self) -> frozenset[str]:
        return frozenset().union(*(p.columns() for p in self.operands))

    def bind(self, schema: Schema) -> "And":
        return And(tuple(p.bind(schema) for p in self.operands))

    def __str__(self) -> str:
        return "(" + " AND ".join(str(p) for p in self.operands) + ")"


@dataclass(frozen=True)
class Or(Predicate):
    """Disjunction of two or more predicates."""

    operands: tuple[Predicate, ...]

    def __post_init__(self) -> None:
        if len(self.operands) < 2:
            raise SchemaError("OR needs at least two operands")

    def evaluate(self, batch: np.ndarray) -> np.ndarray:
        result = self.operands[0].evaluate(batch)
        for operand in self.operands[1:]:
            result = result | operand.evaluate(batch)
        return result

    def columns(self) -> frozenset[str]:
        return frozenset().union(*(p.columns() for p in self.operands))

    def bind(self, schema: Schema) -> "Or":
        return Or(tuple(p.bind(schema) for p in self.operands))

    def __str__(self) -> str:
        return "(" + " OR ".join(str(p) for p in self.operands) + ")"


@dataclass(frozen=True)
class Not(Predicate):
    """Negation of a predicate."""

    operand: Predicate

    def evaluate(self, batch: np.ndarray) -> np.ndarray:
        return ~self.operand.evaluate(batch)

    def columns(self) -> frozenset[str]:
        return self.operand.columns()

    def bind(self, schema: Schema) -> "Not":
        return Not(self.operand.bind(schema))

    def __str__(self) -> str:
        return f"(NOT {self.operand})"


# ----------------------------------------------------------------------
# constructors
# ----------------------------------------------------------------------


def cmp(column: str | ColumnRef, op: CmpOp | str, value: object) -> Predicate:
    """Build an atomic comparison; dispatches on the right-hand side.

    ``cmp("a", "<=", 5)`` builds a column/constant comparison;
    ``cmp("a", "<=", col("b"))`` builds a column/column comparison.
    """
    if isinstance(column, ColumnRef):
        column = column.name
    if isinstance(op, str):
        op = CmpOp(op)
    if isinstance(value, ColumnRef):
        return ColumnColumnCmp(column, op, value.name)
    return ColumnConstCmp(column, op, value)


def and_(*operands: Predicate) -> Predicate:
    """N-ary AND, flattening nested ANDs; one operand returns itself."""
    flat: list[Predicate] = []
    for operand in operands:
        if isinstance(operand, And):
            flat.extend(operand.operands)
        else:
            flat.append(operand)
    if not flat:
        return TruePredicate()
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def or_(*operands: Predicate) -> Predicate:
    """N-ary OR, flattening nested ORs; one operand returns itself."""
    flat: list[Predicate] = []
    for operand in operands:
        if isinstance(operand, Or):
            flat.extend(operand.operands)
        else:
            flat.append(operand)
    if not flat:
        raise SchemaError("OR of zero operands")
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def not_(operand: Predicate) -> Predicate:
    """Negation, simplifying atomic comparisons into their complements."""
    if isinstance(operand, ColumnConstCmp):
        return ColumnConstCmp(operand.column, operand.op.negated, operand.constant)
    if isinstance(operand, ColumnColumnCmp):
        return ColumnColumnCmp(operand.left, operand.op.negated, operand.right)
    if isinstance(operand, Not):
        return operand.operand
    return Not(operand)


def atoms(predicate: Predicate) -> Iterable[Predicate]:
    """Yield every atomic comparison in a predicate tree."""
    stack = [predicate]
    while stack:
        node = stack.pop()
        if isinstance(node, (And, Or)):
            stack.extend(node.operands)
        elif isinstance(node, Not):
            stack.append(node.operand)
        elif isinstance(node, (ColumnConstCmp, ColumnColumnCmp)):
            yield node
