"""Scalar expression AST with vectorised evaluation over record batches.

Expressions appear in two places:

* inside aggregate arguments — TPC-D Query 1 aggregates derived values
  such as ``L_EXTENDEDPRICE * (1 - L_DISCOUNT)``;
* inside SMA definitions, where the *same* expression tree must be
  recognisable so the planner can match a query's aggregate to a
  materialized SMA.  All node classes are frozen dataclasses, so
  structural equality (and hashing) is free and exact.

Evaluation is numpy-vectorised: :meth:`ScalarExpr.evaluate` maps a
structured record batch to a value array, never looping per tuple
(the scan-speed-critical path of this reproduction).
"""

from __future__ import annotations

import datetime
import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import SchemaError
from repro.lang.values import display_constant, storage_constant
from repro.storage.schema import Schema
from repro.storage.types import DataType, FLOAT64, INT64, TypeKind


class ScalarExpr:
    """Base class for scalar expressions; subclasses are frozen dataclasses."""

    def evaluate(self, batch: np.ndarray) -> np.ndarray:
        """Evaluate over a structured record batch, vectorised."""
        raise NotImplementedError

    def columns(self) -> frozenset[str]:
        """Names of all columns the expression references."""
        raise NotImplementedError

    def result_type(self, schema: Schema) -> DataType:
        """Static result type against *schema*; raises on type errors."""
        raise NotImplementedError

    def bind(self, schema: Schema) -> "ScalarExpr":
        """Validate against *schema* and coerce constants; returns self-like."""
        self.result_type(schema)
        return self


@dataclass(frozen=True)
class ColumnRef(ScalarExpr):
    """Reference to a named column of the input relation."""

    name: str

    def evaluate(self, batch: np.ndarray) -> np.ndarray:
        return batch[self.name]

    def columns(self) -> frozenset[str]:
        return frozenset((self.name,))

    def result_type(self, schema: Schema) -> DataType:
        return schema.dtype_of(self.name)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const(ScalarExpr):
    """A literal constant (int, float, date, or string)."""

    value: object

    def evaluate(self, batch: np.ndarray) -> np.ndarray:
        value = self.value
        if isinstance(value, datetime.date):
            value = storage_constant(DataType(TypeKind.DATE), value)
        return np.full(len(batch), value)

    def columns(self) -> frozenset[str]:
        return frozenset()

    def result_type(self, schema: Schema) -> DataType:
        if isinstance(self.value, bool):
            raise SchemaError("boolean literals are not scalar expressions")
        if isinstance(self.value, int):
            return INT64
        if isinstance(self.value, float):
            return FLOAT64
        if isinstance(self.value, datetime.date):
            return DataType(TypeKind.DATE)
        if isinstance(self.value, str):
            return DataType(TypeKind.CHAR, max(len(self.value), 1))
        raise SchemaError(f"unsupported literal {self.value!r}")

    def __str__(self) -> str:
        return display_constant(self.value)


class ArithOp(enum.Enum):
    """Binary arithmetic operators."""

    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"


_NUMPY_OP = {
    ArithOp.ADD: np.add,
    ArithOp.SUB: np.subtract,
    ArithOp.MUL: np.multiply,
    ArithOp.DIV: np.divide,
}


@dataclass(frozen=True)
class BinOp(ScalarExpr):
    """Binary arithmetic over two sub-expressions."""

    op: ArithOp
    left: ScalarExpr
    right: ScalarExpr

    def evaluate(self, batch: np.ndarray) -> np.ndarray:
        lhs = self.left.evaluate(batch)
        rhs = self.right.evaluate(batch)
        if self.op is ArithOp.DIV:
            lhs = np.asarray(lhs, dtype=np.float64)
            rhs = np.asarray(rhs, dtype=np.float64)
        return _NUMPY_OP[self.op](lhs, rhs)

    def columns(self) -> frozenset[str]:
        return self.left.columns() | self.right.columns()

    def result_type(self, schema: Schema) -> DataType:
        left_t = self.left.result_type(schema)
        right_t = self.right.result_type(schema)
        date_kinds = (TypeKind.DATE,)
        # DATE arithmetic: date - date -> int days; date +/- int -> date.
        if left_t.kind in date_kinds or right_t.kind in date_kinds:
            if self.op in (ArithOp.ADD, ArithOp.SUB) and (
                left_t.kind is TypeKind.DATE
                and right_t.kind in (TypeKind.INT32, TypeKind.INT64)
            ):
                return left_t
            if self.op is ArithOp.SUB and (
                left_t.kind is TypeKind.DATE and right_t.kind is TypeKind.DATE
            ):
                return INT64
            raise SchemaError(
                f"unsupported date arithmetic: {left_t} {self.op.value} {right_t}"
            )
        if not (left_t.is_numeric and right_t.is_numeric):
            raise SchemaError(
                f"arithmetic requires numeric operands, got {left_t} and {right_t}"
            )
        if self.op is ArithOp.DIV:
            return FLOAT64
        if left_t.kind is TypeKind.FLOAT64 or right_t.kind is TypeKind.FLOAT64:
            return FLOAT64
        return INT64

    def __str__(self) -> str:
        return f"({self.left} {self.op.value} {self.right})"


@dataclass(frozen=True)
class Neg(ScalarExpr):
    """Unary negation."""

    operand: ScalarExpr

    def evaluate(self, batch: np.ndarray) -> np.ndarray:
        return np.negative(self.operand.evaluate(batch))

    def columns(self) -> frozenset[str]:
        return self.operand.columns()

    def result_type(self, schema: Schema) -> DataType:
        inner = self.operand.result_type(schema)
        if not inner.is_numeric:
            raise SchemaError(f"cannot negate {inner}")
        return inner

    def __str__(self) -> str:
        return f"(-{self.operand})"


def col(name: str) -> ColumnRef:
    """Shorthand constructor for a column reference."""
    return ColumnRef(name)


def const(value: object) -> Const:
    """Shorthand constructor for a literal."""
    return Const(value)


def add(left: ScalarExpr, right: ScalarExpr) -> BinOp:
    return BinOp(ArithOp.ADD, left, right)


def sub(left: ScalarExpr, right: ScalarExpr) -> BinOp:
    return BinOp(ArithOp.SUB, left, right)


def mul(left: ScalarExpr, right: ScalarExpr) -> BinOp:
    return BinOp(ArithOp.MUL, left, right)


def div(left: ScalarExpr, right: ScalarExpr) -> BinOp:
    return BinOp(ArithOp.DIV, left, right)
