"""Constant handling for the expression language.

Query constants arrive as Python values (ints, floats, dates, strings)
and must be compared against stored representations (day numbers, padded
bytes).  :func:`storage_constant` performs that coercion given the column
type a constant is compared with.
"""

from __future__ import annotations

import datetime

import numpy as np

from repro.storage.types import DataType, TypeKind, coerce_value


def storage_constant(dtype: DataType, value: object) -> object:
    """Coerce *value* to the storable domain of *dtype* for comparison.

    Unlike :func:`repro.storage.types.coerce_value` this is permissive
    about numeric widths (an int constant may be compared with a FLOAT64
    column and vice versa) because predicates compare, not store.
    """
    if dtype.kind is TypeKind.FLOAT64 and isinstance(value, (int, np.integer)):
        return float(value)
    if (
        dtype.kind in (TypeKind.INT32, TypeKind.INT64)
        and isinstance(value, (float, np.floating))
        and float(value).is_integer()
    ):
        return int(value)
    return coerce_value(dtype, value)


def display_constant(value: object) -> str:
    """Human-readable rendering of a constant for plan/SQL display."""
    if isinstance(value, datetime.date):
        return f"DATE '{value.isoformat()}'"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    if isinstance(value, bytes):
        return "'" + value.decode("ascii", errors="replace") + "'"
    return str(value)
