"""JSON (de)serialization of expressions, predicates and group keys.

SMA sets persist their definitions next to their SMA-files so a catalog
can re-open them in a later process; that requires round-tripping the
expression ASTs.  The format is a small tagged-node JSON tree.
"""

from __future__ import annotations

import datetime

from repro.errors import SchemaError
from repro.lang.expr import (
    ArithOp,
    BinOp,
    ColumnRef,
    Const,
    Neg,
    ScalarExpr,
)
from repro.lang.predicate import (
    And,
    CmpOp,
    ColumnColumnCmp,
    ColumnConstCmp,
    Not,
    Or,
    Predicate,
    TruePredicate,
)


def _value_to_json(value: object) -> dict:
    if isinstance(value, bool):
        return {"t": "bool", "v": value}
    if isinstance(value, datetime.date):
        return {"t": "date", "v": value.isoformat()}
    if isinstance(value, bytes):
        return {"t": "bytes", "v": value.decode("latin-1")}
    if isinstance(value, int):
        return {"t": "int", "v": value}
    if isinstance(value, float):
        return {"t": "float", "v": value}
    if isinstance(value, str):
        return {"t": "str", "v": value}
    raise SchemaError(f"cannot serialize constant {value!r}")


def _value_from_json(node: dict) -> object:
    tag, raw = node["t"], node["v"]
    if tag == "bool":
        return bool(raw)
    if tag == "date":
        return datetime.date.fromisoformat(raw)
    if tag == "bytes":
        return raw.encode("latin-1")
    if tag == "int":
        return int(raw)
    if tag == "float":
        return float(raw)
    if tag == "str":
        return str(raw)
    raise SchemaError(f"unknown constant tag {tag!r}")


def expr_to_json(expr: ScalarExpr) -> dict:
    """Serialize a scalar expression tree."""
    if isinstance(expr, ColumnRef):
        return {"node": "col", "name": expr.name}
    if isinstance(expr, Const):
        return {"node": "const", "value": _value_to_json(expr.value)}
    if isinstance(expr, BinOp):
        return {
            "node": "bin",
            "op": expr.op.value,
            "left": expr_to_json(expr.left),
            "right": expr_to_json(expr.right),
        }
    if isinstance(expr, Neg):
        return {"node": "neg", "operand": expr_to_json(expr.operand)}
    raise SchemaError(f"cannot serialize expression {expr!r}")


def expr_from_json(node: dict) -> ScalarExpr:
    """Rebuild a scalar expression tree from :func:`expr_to_json` output."""
    kind = node["node"]
    if kind == "col":
        return ColumnRef(node["name"])
    if kind == "const":
        return Const(_value_from_json(node["value"]))
    if kind == "bin":
        return BinOp(
            ArithOp(node["op"]),
            expr_from_json(node["left"]),
            expr_from_json(node["right"]),
        )
    if kind == "neg":
        return Neg(expr_from_json(node["operand"]))
    raise SchemaError(f"unknown expression node {kind!r}")


def predicate_to_json(predicate: Predicate) -> dict:
    """Serialize a predicate tree."""
    if isinstance(predicate, TruePredicate):
        return {"node": "true"}
    if isinstance(predicate, ColumnConstCmp):
        return {
            "node": "cmp_const",
            "column": predicate.column,
            "op": predicate.op.value,
            "constant": _value_to_json(predicate.constant),
        }
    if isinstance(predicate, ColumnColumnCmp):
        return {
            "node": "cmp_col",
            "left": predicate.left,
            "op": predicate.op.value,
            "right": predicate.right,
        }
    if isinstance(predicate, And):
        return {"node": "and", "operands": [predicate_to_json(p) for p in predicate.operands]}
    if isinstance(predicate, Or):
        return {"node": "or", "operands": [predicate_to_json(p) for p in predicate.operands]}
    if isinstance(predicate, Not):
        return {"node": "not", "operand": predicate_to_json(predicate.operand)}
    raise SchemaError(f"cannot serialize predicate {predicate!r}")


def predicate_from_json(node: dict) -> Predicate:
    """Rebuild a predicate tree from :func:`predicate_to_json` output."""
    kind = node["node"]
    if kind == "true":
        return TruePredicate()
    if kind == "cmp_const":
        return ColumnConstCmp(
            node["column"], CmpOp(node["op"]), _value_from_json(node["constant"])
        )
    if kind == "cmp_col":
        return ColumnColumnCmp(node["left"], CmpOp(node["op"]), node["right"])
    if kind == "and":
        return And(tuple(predicate_from_json(p) for p in node["operands"]))
    if kind == "or":
        return Or(tuple(predicate_from_json(p) for p in node["operands"]))
    if kind == "not":
        return Not(predicate_from_json(node["operand"]))
    raise SchemaError(f"unknown predicate node {kind!r}")


def group_key_to_json(key: tuple) -> list:
    """Serialize a group key (tuple of primitive values)."""
    return [_value_to_json(v) for v in key]


def group_key_from_json(items: list) -> tuple:
    """Rebuild a group key from :func:`group_key_to_json` output."""
    return tuple(_value_from_json(v) for v in items)
