"""JSON (de)serialization of expressions, predicates and group keys.

SMA sets persist their definitions next to their SMA-files so a catalog
can re-open them in a later process; that requires round-tripping the
expression ASTs.  The format is a small tagged-node JSON tree.
"""

from __future__ import annotations

import datetime

from repro.errors import SchemaError
from repro.lang.expr import (
    ArithOp,
    BinOp,
    ColumnRef,
    Const,
    Neg,
    ScalarExpr,
)
from repro.lang.predicate import (
    And,
    CmpOp,
    ColumnColumnCmp,
    ColumnConstCmp,
    Not,
    Or,
    Predicate,
    TruePredicate,
)


def _value_to_json(value: object) -> dict:
    if isinstance(value, bool):
        return {"t": "bool", "v": value}
    if isinstance(value, datetime.date):
        return {"t": "date", "v": value.isoformat()}
    if isinstance(value, bytes):
        return {"t": "bytes", "v": value.decode("latin-1")}
    if isinstance(value, int):
        return {"t": "int", "v": value}
    if isinstance(value, float):
        return {"t": "float", "v": value}
    if isinstance(value, str):
        return {"t": "str", "v": value}
    raise SchemaError(f"cannot serialize constant {value!r}")


def _value_from_json(node: dict) -> object:
    tag, raw = node["t"], node["v"]
    if tag == "bool":
        return bool(raw)
    if tag == "date":
        return datetime.date.fromisoformat(raw)
    if tag == "bytes":
        return raw.encode("latin-1")
    if tag == "int":
        return int(raw)
    if tag == "float":
        return float(raw)
    if tag == "str":
        return str(raw)
    raise SchemaError(f"unknown constant tag {tag!r}")


def expr_to_json(expr: ScalarExpr) -> dict:
    """Serialize a scalar expression tree."""
    if isinstance(expr, ColumnRef):
        return {"node": "col", "name": expr.name}
    if isinstance(expr, Const):
        return {"node": "const", "value": _value_to_json(expr.value)}
    if isinstance(expr, BinOp):
        return {
            "node": "bin",
            "op": expr.op.value,
            "left": expr_to_json(expr.left),
            "right": expr_to_json(expr.right),
        }
    if isinstance(expr, Neg):
        return {"node": "neg", "operand": expr_to_json(expr.operand)}
    raise SchemaError(f"cannot serialize expression {expr!r}")


def expr_from_json(node: dict) -> ScalarExpr:
    """Rebuild a scalar expression tree from :func:`expr_to_json` output."""
    kind = node["node"]
    if kind == "col":
        return ColumnRef(node["name"])
    if kind == "const":
        return Const(_value_from_json(node["value"]))
    if kind == "bin":
        return BinOp(
            ArithOp(node["op"]),
            expr_from_json(node["left"]),
            expr_from_json(node["right"]),
        )
    if kind == "neg":
        return Neg(expr_from_json(node["operand"]))
    raise SchemaError(f"unknown expression node {kind!r}")


def predicate_to_json(predicate: Predicate) -> dict:
    """Serialize a predicate tree."""
    if isinstance(predicate, TruePredicate):
        return {"node": "true"}
    if isinstance(predicate, ColumnConstCmp):
        return {
            "node": "cmp_const",
            "column": predicate.column,
            "op": predicate.op.value,
            "constant": _value_to_json(predicate.constant),
        }
    if isinstance(predicate, ColumnColumnCmp):
        return {
            "node": "cmp_col",
            "left": predicate.left,
            "op": predicate.op.value,
            "right": predicate.right,
        }
    if isinstance(predicate, And):
        return {"node": "and", "operands": [predicate_to_json(p) for p in predicate.operands]}
    if isinstance(predicate, Or):
        return {"node": "or", "operands": [predicate_to_json(p) for p in predicate.operands]}
    if isinstance(predicate, Not):
        return {"node": "not", "operand": predicate_to_json(predicate.operand)}
    raise SchemaError(f"cannot serialize predicate {predicate!r}")


def predicate_from_json(node: dict) -> Predicate:
    """Rebuild a predicate tree from :func:`predicate_to_json` output."""
    kind = node["node"]
    if kind == "true":
        return TruePredicate()
    if kind == "cmp_const":
        return ColumnConstCmp(
            node["column"], CmpOp(node["op"]), _value_from_json(node["constant"])
        )
    if kind == "cmp_col":
        return ColumnColumnCmp(node["left"], CmpOp(node["op"]), node["right"])
    if kind == "and":
        return And(tuple(predicate_from_json(p) for p in node["operands"]))
    if kind == "or":
        return Or(tuple(predicate_from_json(p) for p in node["operands"]))
    if kind == "not":
        return Not(predicate_from_json(node["operand"]))
    raise SchemaError(f"unknown predicate node {kind!r}")


def group_key_to_json(key: tuple) -> list:
    """Serialize a group key (tuple of primitive values)."""
    return [_value_to_json(v) for v in key]


def group_key_from_json(items: list) -> tuple:
    """Rebuild a group key from :func:`group_key_to_json` output."""
    return tuple(_value_from_json(v) for v in items)


# ----------------------------------------------------------------------
# aggregate specs and whole queries (the shard wire format)
# ----------------------------------------------------------------------


def aggregate_spec_to_json(spec) -> dict:
    """Serialize an :class:`~repro.core.aggregates.AggregateSpec`."""
    return {
        "kind": spec.kind.value,
        "argument": (
            None if spec.argument is None else expr_to_json(spec.argument)
        ),
    }


def aggregate_spec_from_json(node: dict):
    """Rebuild an :class:`~repro.core.aggregates.AggregateSpec`."""
    from repro.core.aggregates import AggregateKind, AggregateSpec

    argument = (
        None if node["argument"] is None else expr_from_json(node["argument"])
    )
    return AggregateSpec(AggregateKind(node["kind"]), argument)


def query_to_json(query) -> dict:
    """Serialize a query or DML statement for the shard protocol.

    Deserializing on the far side rebuilds a structurally *equal* query
    (all parts are frozen dataclasses), which is what lets per-shard
    :class:`~repro.query.aggregation.AggregationState` partials merge.
    DML statements round-trip their literal values through the same
    tagged-value encoding as predicate constants.
    """
    from repro.query.query import (
        AggregateQuery,
        DeleteStatement,
        InsertStatement,
        ScanQuery,
        UpdateStatement,
    )

    if isinstance(query, InsertStatement):
        return {
            "type": "insert",
            "table": query.table,
            "columns": list(query.columns),
            "rows": [
                [_value_to_json(value) for value in row] for row in query.rows
            ],
        }
    if isinstance(query, UpdateStatement):
        return {
            "type": "update",
            "table": query.table,
            "assignments": [
                [name, _value_to_json(value)]
                for name, value in query.assignments
            ],
            "where": predicate_to_json(query.where),
        }
    if isinstance(query, DeleteStatement):
        return {
            "type": "delete",
            "table": query.table,
            "where": predicate_to_json(query.where),
        }
    if isinstance(query, AggregateQuery):
        return {
            "type": "aggregate",
            "table": query.table,
            "aggregates": [
                {"name": a.name, "spec": aggregate_spec_to_json(a.spec)}
                for a in query.aggregates
            ],
            "where": predicate_to_json(query.where),
            "group_by": list(query.group_by),
            "order_by": list(query.order_by),
            "order_desc": sorted(query.order_desc),
        }
    if isinstance(query, ScanQuery):
        return {
            "type": "scan",
            "table": query.table,
            "where": predicate_to_json(query.where),
            "columns": list(query.columns),
        }
    raise SchemaError(f"cannot serialize query {query!r}")


def query_from_json(node: dict):
    """Rebuild a query or DML statement from :func:`query_to_json` output."""
    from repro.query.query import (
        AggregateQuery,
        DeleteStatement,
        InsertStatement,
        OutputAggregate,
        ScanQuery,
        UpdateStatement,
    )

    kind = node["type"]
    if kind == "insert":
        return InsertStatement(
            table=node["table"],
            rows=tuple(
                tuple(_value_from_json(value) for value in row)
                for row in node["rows"]
            ),
            columns=tuple(node["columns"]),
        )
    if kind == "update":
        return UpdateStatement(
            table=node["table"],
            assignments=tuple(
                (name, _value_from_json(value))
                for name, value in node["assignments"]
            ),
            where=predicate_from_json(node["where"]),
        )
    if kind == "delete":
        return DeleteStatement(
            table=node["table"],
            where=predicate_from_json(node["where"]),
        )
    if kind == "aggregate":
        return AggregateQuery(
            table=node["table"],
            aggregates=tuple(
                OutputAggregate(a["name"], aggregate_spec_from_json(a["spec"]))
                for a in node["aggregates"]
            ),
            where=predicate_from_json(node["where"]),
            group_by=tuple(node["group_by"]),
            order_by=tuple(node["order_by"]),
            order_desc=frozenset(node["order_desc"]),
        )
    if kind == "scan":
        return ScanQuery(
            table=node["table"],
            where=predicate_from_json(node["where"]),
            columns=tuple(node["columns"]),
        )
    raise SchemaError(f"unknown query type {kind!r}")
