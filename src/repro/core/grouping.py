"""Group-key machinery shared by the SMA builder and the GAggr operators.

A *group key* is a tuple of user-facing Python values (strings, ints,
floats, dates) — one per group-by column — e.g. ``("A", "F")`` for
TPC-D Query 1's L_RETURNFLAG/L_LINESTATUS grouping.  Keys are hashable
and appear in SMA-set metadata, query results and experiment output.
"""

from __future__ import annotations

import numpy as np

from repro.storage.schema import Schema
from repro.storage.types import python_value

GroupKey = tuple


def bucket_groups(
    batch: np.ndarray,
    group_by: tuple[str, ...],
    schema: Schema,
) -> tuple[list[GroupKey], np.ndarray]:
    """Split one record batch by its group-by columns, vectorised.

    Returns ``(keys, inverse)`` where ``keys[j]`` is the j-th distinct
    group key (in lexicographic order) and ``inverse[t] == j`` says tuple
    t belongs to group j.  An empty *group_by* yields the single key
    ``()`` covering the whole batch.
    """
    if not group_by:
        return [()], np.zeros(len(batch), dtype=np.intp)
    if len(batch) == 0:
        return [], np.zeros(0, dtype=np.intp)
    sub = batch[list(group_by)]
    unique, inverse = np.unique(sub, return_inverse=True)
    dtypes = [schema.dtype_of(name) for name in group_by]
    keys = [
        tuple(python_value(dtype, record[name]) for name, dtype in zip(group_by, dtypes))
        for record in unique
    ]
    return keys, inverse


def group_key_label(key: GroupKey) -> str:
    """A short human-readable label for one group key."""
    if not key:
        return "<all>"
    return "/".join(str(part) for part in key)
