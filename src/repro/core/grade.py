"""The grading rules of Section 3.1, vectorised over all buckets.

Given per-bucket ``min_i(A)`` / ``max_i(A)`` vectors and an atomic
predicate, these functions compute the (qualifying, disqualifying)
partitioning in one numpy pass.  The rules are the paper's, verbatim:

* ``A = c``:  d when ``c < min_i(A)`` or ``c > max_i(A)``; else a.
  (We add the sound refinement q when ``min_i = max_i = c`` — every
  tuple then equals c.  The paper's rule set omits it; it can only turn
  ambivalent buckets into qualifying ones, never change results.)
* ``A <= c``: q when ``max_i <= c``;  d when ``min_i > c``;  else a.
* ``A >= c``: q when ``min_i >= c``;  d when ``max_i < c``;  else a.
* ``A <= B``: q when ``max_i(A) <= min_i(B)``; d when
  ``min_i(A) > max_i(B)``; else a.
* strict variants (<, >) analogously.
* "The else case is also applied if the max/min aggregates are not
  defined" — handled by the ``valid`` masks and by tolerating a missing
  side entirely (e.g. only a max SMA exists: the q-rule of ``A <= c``
  still applies, the d-rule simply yields no information).

Additionally, buckets known to be **empty** disqualify under every
predicate — an empty bucket contributes no tuples, so skipping it is
always sound.  The paper never materializes empty buckets, but
maintenance (deletions) can produce them.

The count-SMA rules (grouping on the restricted attribute A) are also
implemented: a bucket qualifies when every *present* value of A
satisfies the predicate (and at least one tuple is present), and
disqualifies when no present value satisfies it.  This is the intended
semantics of the paper's per-value partitionings BUˣ; the literal
``else BUᵢ ∈ BUˣ_d`` text would file value-absent buckets as
per-value-disqualifying, which works for BU_d = ∩ₓ BUˣ_d but makes
BU_q = ∩ₓ BUˣ_q unachievable for any bucket not containing *all*
domain values — a formalisation slip we correct (documented deviation).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SmaStateError
from repro.lang.predicate import CmpOp
from repro.core.partition import BucketPartitioning


def _false_like(reference: np.ndarray | None, num_buckets: int) -> np.ndarray:
    if reference is not None and len(reference) != num_buckets:
        raise SmaStateError(
            f"SMA vector length {len(reference)} != bucket count {num_buckets}"
        )
    return np.zeros(num_buckets, dtype=bool)


def partition_column_const(
    op: CmpOp,
    constant: object,
    num_buckets: int,
    *,
    mins: np.ndarray | None = None,
    maxs: np.ndarray | None = None,
    valid: np.ndarray | None = None,
    empty: np.ndarray | None = None,
) -> BucketPartitioning:
    """Grade all buckets for ``A op constant`` from min/max SMA vectors.

    Either *mins* or *maxs* (or both) must be given.  *valid* marks
    entries where the aggregates are defined (None means all defined);
    invalid entries grade ambivalent per the paper's else-case unless
    the bucket is *empty*, in which case it disqualifies.
    """
    if mins is None and maxs is None:
        raise SmaStateError("need at least one of mins/maxs")
    q = _false_like(mins if mins is not None else maxs, num_buckets)
    d = q.copy()
    c = constant

    if op is CmpOp.EQ:
        if mins is not None:
            d |= np.asarray(c < mins)
        if maxs is not None:
            d |= np.asarray(c > maxs)
        if mins is not None and maxs is not None:
            q |= np.asarray(mins == maxs) & np.asarray(mins == c)
    elif op is CmpOp.NE:
        if mins is not None:
            q |= np.asarray(c < mins)
        if maxs is not None:
            q |= np.asarray(c > maxs)
        if mins is not None and maxs is not None:
            d |= np.asarray(mins == maxs) & np.asarray(mins == c)
    elif op is CmpOp.LE:
        if maxs is not None:
            q |= np.asarray(maxs <= c)
        if mins is not None:
            d |= np.asarray(mins > c)
    elif op is CmpOp.LT:
        if maxs is not None:
            q |= np.asarray(maxs < c)
        if mins is not None:
            d |= np.asarray(mins >= c)
    elif op is CmpOp.GE:
        if mins is not None:
            q |= np.asarray(mins >= c)
        if maxs is not None:
            d |= np.asarray(maxs < c)
    elif op is CmpOp.GT:
        if mins is not None:
            q |= np.asarray(mins > c)
        if maxs is not None:
            d |= np.asarray(maxs <= c)
    else:  # pragma: no cover - CmpOp is exhaustive
        raise SmaStateError(f"unknown operator {op}")

    return _apply_validity(q, d, valid, empty)


def partition_column_column(
    op: CmpOp,
    num_buckets: int,
    *,
    mins_a: np.ndarray | None = None,
    maxs_a: np.ndarray | None = None,
    mins_b: np.ndarray | None = None,
    maxs_b: np.ndarray | None = None,
    valid: np.ndarray | None = None,
    empty: np.ndarray | None = None,
) -> BucketPartitioning:
    """Grade all buckets for ``A op B`` (both columns of one relation)."""
    reference = next(
        (v for v in (mins_a, maxs_a, mins_b, maxs_b) if v is not None), None
    )
    if reference is None:
        raise SmaStateError("need at least one SMA vector")
    q = _false_like(reference, num_buckets)
    d = q.copy()

    def have(*vectors: np.ndarray | None) -> bool:
        return all(v is not None for v in vectors)

    if op is CmpOp.LE:
        if have(maxs_a, mins_b):
            q |= np.asarray(maxs_a <= mins_b)
        if have(mins_a, maxs_b):
            d |= np.asarray(mins_a > maxs_b)
    elif op is CmpOp.LT:
        if have(maxs_a, mins_b):
            q |= np.asarray(maxs_a < mins_b)
        if have(mins_a, maxs_b):
            d |= np.asarray(mins_a >= maxs_b)
    elif op is CmpOp.GE:
        if have(mins_a, maxs_b):
            q |= np.asarray(mins_a >= maxs_b)
        if have(maxs_a, mins_b):
            d |= np.asarray(maxs_a < mins_b)
    elif op is CmpOp.GT:
        if have(mins_a, maxs_b):
            q |= np.asarray(mins_a > maxs_b)
        if have(maxs_a, mins_b):
            d |= np.asarray(maxs_a <= mins_b)
    elif op is CmpOp.EQ:
        if have(mins_a, maxs_b):
            d |= np.asarray(mins_a > maxs_b)
        if have(maxs_a, mins_b):
            d |= np.asarray(maxs_a < mins_b)
        if have(mins_a, maxs_a, mins_b, maxs_b):
            q |= (
                np.asarray(mins_a == maxs_a)
                & np.asarray(mins_b == maxs_b)
                & np.asarray(mins_a == mins_b)
            )
    elif op is CmpOp.NE:
        if have(mins_a, maxs_b):
            q |= np.asarray(mins_a > maxs_b)
        if have(maxs_a, mins_b):
            q |= np.asarray(maxs_a < mins_b)
        if have(mins_a, maxs_a, mins_b, maxs_b):
            d |= (
                np.asarray(mins_a == maxs_a)
                & np.asarray(mins_b == maxs_b)
                & np.asarray(mins_a == mins_b)
            )
    else:  # pragma: no cover - CmpOp is exhaustive
        raise SmaStateError(f"unknown operator {op}")

    return _apply_validity(q, d, valid, empty)


def _compare_scalar(op: CmpOp, x: object, c: object) -> bool:
    """Scalar comparison used by the count-SMA rules."""
    if op is CmpOp.EQ:
        return x == c
    if op is CmpOp.NE:
        return x != c
    if op is CmpOp.LT:
        return x < c
    if op is CmpOp.LE:
        return x <= c
    if op is CmpOp.GT:
        return x > c
    if op is CmpOp.GE:
        return x >= c
    raise SmaStateError(f"unknown operator {op}")  # pragma: no cover


def partition_count_sma(
    op: CmpOp,
    constant: object,
    num_buckets: int,
    value_counts: dict[object, np.ndarray],
) -> BucketPartitioning:
    """Grade buckets for ``A op c`` from a count SMA grouped solely by A.

    *value_counts* maps each value x of A to its per-bucket count vector
    ``count_{A,i}[x]``.  A bucket qualifies when at least one tuple is
    present and every present value satisfies the predicate; it
    disqualifies when no present value satisfies it (including empty
    buckets).
    """
    any_present = np.zeros(num_buckets, dtype=bool)
    any_satisfying = np.zeros(num_buckets, dtype=bool)
    any_violating = np.zeros(num_buckets, dtype=bool)
    for value, counts in value_counts.items():
        if len(counts) != num_buckets:
            raise SmaStateError(
                f"count vector for {value!r} has length {len(counts)}, "
                f"expected {num_buckets}"
            )
        present = np.asarray(counts) > 0
        any_present |= present
        if _compare_scalar(op, value, constant):
            any_satisfying |= present
        else:
            any_violating |= present
    qualifying = any_present & ~any_violating
    disqualifying = ~any_satisfying
    return BucketPartitioning(qualifying, disqualifying)


def _apply_validity(
    q: np.ndarray,
    d: np.ndarray,
    valid: np.ndarray | None,
    empty: np.ndarray | None,
) -> BucketPartitioning:
    """Demote undefined-aggregate buckets to ambivalent; empty ones to d."""
    if valid is not None:
        undefined = ~np.asarray(valid, dtype=bool)
        q = q & ~undefined
        d = d & ~undefined
    if empty is not None:
        is_empty = np.asarray(empty, dtype=bool)
        q = q & ~is_empty
        d = d | is_empty
    return BucketPartitioning(q, d)
