"""Bucket partitionings: qualifying / disqualifying / ambivalent.

Section 3.1 of the paper partitions the buckets BU of a relation into
BU_q (every tuple satisfies the predicate), BU_d (no tuple satisfies)
and BU_a = BU \\ (BU_q ∪ BU_d).  :class:`BucketPartitioning` represents
one such partitioning as two boolean vectors and implements the paper's
combination algebra:

=============  =======================  =======================
connective     qualifying               disqualifying
=============  =======================  =======================
``p1 and p2``  BU¹_q ∩ BU²_q            BU¹_d ∪ BU²_d
``p1 or p2``   BU¹_q ∪ BU²_q            BU¹_d ∩ BU²_d
``not p``      BU_d                     BU_q
=============  =======================  =======================

plus *refinement*: two sound partitionings of the *same* predicate
(derived from different SMAs) merge by unioning both their qualifying
and their disqualifying sets.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.errors import SmaStateError


class Grade(enum.Enum):
    """The paper's three-way bucket grade (result of ``grade()``)."""

    QUALIFIES = "qualifies"
    DISQUALIFIES = "disqualifies"
    AMBIVALENT = "ambivalent"


class BucketPartitioning:
    """An exact, immutable-by-convention (q, d) pair of bucket vectors."""

    __slots__ = ("qualifying", "disqualifying")

    def __init__(self, qualifying: np.ndarray, disqualifying: np.ndarray):
        qualifying = np.asarray(qualifying, dtype=bool)
        disqualifying = np.asarray(disqualifying, dtype=bool)
        if qualifying.shape != disqualifying.shape or qualifying.ndim != 1:
            raise SmaStateError("partition vectors must be equal-length 1-D")
        if bool(np.any(qualifying & disqualifying)):
            raise SmaStateError("a bucket cannot both qualify and disqualify")
        self.qualifying = qualifying
        self.disqualifying = disqualifying

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def all_ambivalent(cls, num_buckets: int) -> "BucketPartitioning":
        """The no-information partitioning (no applicable SMA)."""
        zeros = np.zeros(num_buckets, dtype=bool)
        return cls(zeros, zeros.copy())

    @classmethod
    def all_qualifying(cls, num_buckets: int) -> "BucketPartitioning":
        """Everything qualifies (the TRUE predicate)."""
        return cls(np.ones(num_buckets, dtype=bool), np.zeros(num_buckets, dtype=bool))

    @classmethod
    def all_disqualifying(cls, num_buckets: int) -> "BucketPartitioning":
        """Nothing qualifies (the FALSE predicate)."""
        return cls(np.zeros(num_buckets, dtype=bool), np.ones(num_buckets, dtype=bool))

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    @property
    def num_buckets(self) -> int:
        return len(self.qualifying)

    @property
    def ambivalent(self) -> np.ndarray:
        """BU_a = BU \\ (BU_q ∪ BU_d)."""
        return ~(self.qualifying | self.disqualifying)

    @property
    def num_qualifying(self) -> int:
        return int(self.qualifying.sum())

    @property
    def num_disqualifying(self) -> int:
        return int(self.disqualifying.sum())

    @property
    def num_ambivalent(self) -> int:
        return self.num_buckets - self.num_qualifying - self.num_disqualifying

    @property
    def fraction_ambivalent(self) -> float:
        if self.num_buckets == 0:
            return 0.0
        return self.num_ambivalent / self.num_buckets

    def grade(self, bucket_no: int) -> Grade:
        """The paper's ``grade(bucket, pred)`` function for one bucket."""
        if not 0 <= bucket_no < self.num_buckets:
            raise SmaStateError(
                f"bucket {bucket_no} out of range [0, {self.num_buckets})"
            )
        if self.qualifying[bucket_no]:
            return Grade.QUALIFIES
        if self.disqualifying[bucket_no]:
            return Grade.DISQUALIFIES
        return Grade.AMBIVALENT

    # ------------------------------------------------------------------
    # the combination algebra of Section 3.1
    # ------------------------------------------------------------------

    def _check_compatible(self, other: "BucketPartitioning") -> None:
        if self.num_buckets != other.num_buckets:
            raise SmaStateError(
                f"cannot combine partitionings over {self.num_buckets} "
                f"and {other.num_buckets} buckets"
            )

    def __and__(self, other: "BucketPartitioning") -> "BucketPartitioning":
        """Conjunction of the two underlying predicates."""
        self._check_compatible(other)
        return BucketPartitioning(
            self.qualifying & other.qualifying,
            self.disqualifying | other.disqualifying,
        )

    def __or__(self, other: "BucketPartitioning") -> "BucketPartitioning":
        """Disjunction of the two underlying predicates."""
        self._check_compatible(other)
        return BucketPartitioning(
            self.qualifying | other.qualifying,
            self.disqualifying & other.disqualifying,
        )

    def invert(self) -> "BucketPartitioning":
        """Negation of the underlying predicate (q and d swap roles)."""
        return BucketPartitioning(self.disqualifying, self.qualifying)

    def refine(self, other: "BucketPartitioning") -> "BucketPartitioning":
        """Merge two sound partitionings of the *same* predicate.

        Knowledge from independent SMAs accumulates: a bucket qualifies
        if either source proves it qualifies, and disqualifies if either
        proves it disqualifies.  Sound sources never conflict; a conflict
        raises, as it indicates a stale SMA.
        """
        self._check_compatible(other)
        qualifying = self.qualifying | other.qualifying
        disqualifying = self.disqualifying | other.disqualifying
        if bool(np.any(qualifying & disqualifying)):
            raise SmaStateError(
                "conflicting partitionings — an SMA is out of sync with its table"
            )
        return BucketPartitioning(qualifying, disqualifying)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BucketPartitioning):
            return NotImplemented
        return bool(
            np.array_equal(self.qualifying, other.qualifying)
            and np.array_equal(self.disqualifying, other.disqualifying)
        )

    def __repr__(self) -> str:
        return (
            f"BucketPartitioning(q={self.num_qualifying}, "
            f"d={self.num_disqualifying}, a={self.num_ambivalent})"
        )
