"""Semi-join SMAs — Section 4.

For queries of the pattern::

    select R.*
    from R, S
    where R.A theta S.B

"If we can associate a minimax value of the S.B values with each bucket
of R, SMAs can be used to decrease the input to the semi-join."

The reduction works by turning the join condition into an equivalent
*selection* on R.A using the global bounds of S.B — a tuple r has a
partner s with ``r.A < s.B`` iff ``r.A < max(S.B)``, and so on — which
the ordinary Section 3.1 grading machinery then evaluates against R's
min/max SMAs.  For θ = '=' the bounds only give a necessary range; an
exact membership check against a hash set of S.B values finishes the
job on the reduced input.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PlanningError
from repro.lang.predicate import CmpOp, Predicate, and_, cmp
from repro.storage.table import Table


@dataclass
class SemiJoinBounds:
    """Global min/max (and optional exact value set) of S.B."""

    column: str
    low: object
    high: object
    values: frozenset | None = None
    tuples_seen: int = 0

    @property
    def is_empty(self) -> bool:
        return self.tuples_seen == 0


def collect_bounds(
    s_table: Table, column: str, *, keep_values: bool = False
) -> SemiJoinBounds:
    """Scan S once to compute the bounds of S.B (charged as a scan).

    ``keep_values=True`` also retains the distinct values — needed for
    exact '=' semi-joins after the SMA reduction.
    """
    s_table.schema.column(column)
    stats = s_table.heap.pool.stats
    low = None
    high = None
    values: set | None = set() if keep_values else None
    seen = 0
    for _, records in s_table.iter_buckets():
        stats.tuples_scanned += len(records)
        if len(records) == 0:
            continue
        seen += len(records)
        column_values = records[column]
        bucket_low = column_values.min()
        bucket_high = column_values.max()
        if low is None or bucket_low < low:
            low = bucket_low
        if high is None or bucket_high > high:
            high = bucket_high
        if values is not None:
            values.update(np.unique(column_values).tolist())
    from repro.storage.types import python_value

    dtype = s_table.schema.dtype_of(column)
    return SemiJoinBounds(
        column=column,
        low=None if low is None else python_value(dtype, low),
        high=None if high is None else python_value(dtype, high),
        values=frozenset(values) if values is not None else None,
        tuples_seen=seen,
    )


def reduction_predicate(
    r_column: str, op: CmpOp | str, bounds: SemiJoinBounds
) -> Predicate:
    """The selection on R.A equivalent to ``∃s : R.A op s.B``.

    ========  =======================================
    operator  reduction
    ========  =======================================
    ``<``     ``R.A <  max(S.B)``
    ``<=``    ``R.A <= max(S.B)``
    ``>``     ``R.A >  min(S.B)``
    ``>=``    ``R.A >= min(S.B)``
    ``=``     ``min(S.B) <= R.A <= max(S.B)`` (necessary only)
    ========  =======================================
    """
    if isinstance(op, str):
        op = CmpOp(op)
    if bounds.is_empty:
        raise PlanningError(
            f"semi-join against an empty relation: no {bounds.column} values"
        )
    if op is CmpOp.LT:
        return cmp(r_column, "<", bounds.high)
    if op is CmpOp.LE:
        return cmp(r_column, "<=", bounds.high)
    if op is CmpOp.GT:
        return cmp(r_column, ">", bounds.low)
    if op is CmpOp.GE:
        return cmp(r_column, ">=", bounds.low)
    if op is CmpOp.EQ:
        return and_(
            cmp(r_column, ">=", bounds.low),
            cmp(r_column, "<=", bounds.high),
        )
    raise PlanningError(f"semi-join reduction does not support {op.value!r}")


def semijoin(
    r_table: Table,
    r_column: str,
    op: CmpOp | str,
    s_table: Table,
    s_column: str,
    *,
    sma_set=None,
) -> tuple[np.ndarray, Predicate]:
    """Evaluate ``R ⋉ (R.A op S.B)`` with SMA input reduction.

    Returns ``(matching R records, the reduction predicate used)``.
    When *sma_set* is given, R's buckets are graded with it and only
    non-disqualifying buckets are fetched; otherwise R is scanned fully.
    The exact check (needed for '=') runs on the reduced input.
    """
    if isinstance(op, str):
        op = CmpOp(op)
    exact = op is CmpOp.EQ
    bounds = collect_bounds(s_table, s_column, keep_values=exact)
    if bounds.is_empty:
        return r_table.schema.empty_batch(), cmp(r_column, "=", 0)
    predicate = reduction_predicate(r_column, op, bounds).bind(r_table.schema)

    stats = r_table.heap.pool.stats
    pieces: list[np.ndarray] = []
    if sma_set is not None:
        partitioning = sma_set.partition(predicate)
        bucket_numbers = np.flatnonzero(~partitioning.disqualifying)
        stats.buckets_skipped += partitioning.num_disqualifying
    else:
        bucket_numbers = np.arange(r_table.num_buckets)

    values = (
        np.array(sorted(bounds.values)) if exact and bounds.values else None
    )
    for bucket_no in bucket_numbers:
        records = r_table.read_bucket(int(bucket_no))
        stats.buckets_fetched += 1
        stats.tuples_scanned += len(records)
        mask = predicate.evaluate(records)
        if exact and values is not None:
            mask &= np.isin(records[r_column], values)
        if mask.any():
            pieces.append(records[mask])
    if not pieces:
        return r_table.schema.empty_batch(), predicate
    return np.concatenate(pieces), predicate
