"""Aggregate functions materializable in SMAs.

The paper allows ``min``, ``max``, ``sum`` and ``count`` in the select
clause of an SMA definition (Section 2.1).  ``avg`` is never
materialized: query processing computes it as sum/count in the last
phase of SMA_GAggr (Section 3.3), which is why :class:`AggregateKind`
includes AVG but :func:`check_materializable` rejects it.

Storage widths follow the paper's accounting: "For counts and dates,
4 bytes are needed.  For all other aggregate values we used 8 bytes."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import SmaDefinitionError
from repro.lang.expr import ScalarExpr
from repro.storage.schema import Schema
from repro.storage.types import TypeKind


class AggregateKind(enum.Enum):
    """Aggregate functions known to the system."""

    MIN = "min"
    MAX = "max"
    SUM = "sum"
    COUNT = "count"
    AVG = "avg"


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate call: a kind plus its argument expression.

    ``count(*)`` is represented with ``argument=None``.  Frozen so that
    structural equality lets the planner match query aggregates against
    materialized SMA definitions.
    """

    kind: AggregateKind
    argument: ScalarExpr | None = None

    def __post_init__(self) -> None:
        if self.kind is AggregateKind.COUNT:
            if self.argument is not None:
                raise SmaDefinitionError("only count(*) is supported, not count(expr)")
        elif self.argument is None:
            raise SmaDefinitionError(f"{self.kind.value} requires an argument")

    def columns(self) -> frozenset[str]:
        if self.argument is None:
            return frozenset()
        return self.argument.columns()

    def validate(self, schema: Schema) -> None:
        """Type-check the argument against *schema*."""
        if self.argument is None:
            return
        result = self.argument.result_type(schema)
        if self.kind is AggregateKind.SUM or self.kind is AggregateKind.AVG:
            if not result.is_numeric:
                raise SmaDefinitionError(
                    f"{self.kind.value}({self.argument}) needs a numeric "
                    f"argument, got {result}"
                )
        elif self.kind in (AggregateKind.MIN, AggregateKind.MAX):
            if not result.is_orderable:
                raise SmaDefinitionError(
                    f"{self.kind.value}({self.argument}) needs an orderable "
                    f"argument, got {result}"
                )

    def value_dtype(self, schema: Schema) -> np.dtype:
        """The numpy dtype one materialized value of this aggregate uses."""
        if self.kind is AggregateKind.COUNT:
            return np.dtype("<i4")  # paper: counts take 4 bytes
        if self.kind is AggregateKind.AVG:
            raise SmaDefinitionError("avg is never materialized; use sum and count")
        assert self.argument is not None
        result = self.argument.result_type(schema)
        if self.kind in (AggregateKind.MIN, AggregateKind.MAX):
            return np.dtype(result.numpy_dtype)
        # SUM: 8 bytes, integer-summing promotes to int64.
        if result.kind in (TypeKind.INT32, TypeKind.INT64):
            return np.dtype("<i8")
        return np.dtype("<f8")

    def compute(self, values: np.ndarray) -> object:
        """Reduce a (non-empty unless COUNT) value vector to one aggregate."""
        if self.kind is AggregateKind.COUNT:
            return len(values)
        if len(values) == 0:
            raise SmaDefinitionError(
                f"{self.kind.value} of an empty vector is undefined"
            )
        if self.kind is AggregateKind.MIN:
            return values.min()
        if self.kind is AggregateKind.MAX:
            return values.max()
        if self.kind is AggregateKind.SUM:
            return values.sum(dtype=np.float64 if values.dtype.kind == "f" else np.int64)
        raise SmaDefinitionError(f"cannot materialize {self.kind.value}")

    def __str__(self) -> str:
        if self.kind is AggregateKind.COUNT:
            return "count(*)"
        return f"{self.kind.value}({self.argument})"


def check_materializable(spec: AggregateSpec) -> None:
    """Reject aggregate kinds that cannot appear in an SMA definition."""
    if spec.kind is AggregateKind.AVG:
        raise SmaDefinitionError(
            "avg cannot be materialized in an SMA; define sum and count "
            "instead (the paper computes averages in SMA_GAggr's last phase)"
        )


def minimum(argument: ScalarExpr) -> AggregateSpec:
    return AggregateSpec(AggregateKind.MIN, argument)


def maximum(argument: ScalarExpr) -> AggregateSpec:
    return AggregateSpec(AggregateKind.MAX, argument)


def total(argument: ScalarExpr) -> AggregateSpec:
    return AggregateSpec(AggregateKind.SUM, argument)


def count_star() -> AggregateSpec:
    return AggregateSpec(AggregateKind.COUNT, None)


def average(argument: ScalarExpr) -> AggregateSpec:
    return AggregateSpec(AggregateKind.AVG, argument)
