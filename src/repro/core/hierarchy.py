"""Hierarchical (two-level) SMAs — Section 4.

"Every SMA-file is again partitioned into buckets and for each bucket a
second level SMA is computed. ... If a second level bucket qualifies or
disqualifies, the first level SMA-file need not to have to be accessed,
which saves some I/O."

A :class:`HierarchicalMinMax` wraps the first-level min/max SMA-files of
one column with second-level files of min-of-mins / max-of-maxs, one
entry per *page* of the first-level file.  Grading consults level 2
first and drills into level 1 only for ambivalent second-level buckets.
The resulting partitioning is bit-identical to flat grading — only the
I/O differs — which the tests assert.

The paper stops at two levels ("Since second level SMA-files will be
very small we do not think that higher levels are useful"); so do we.
"""

from __future__ import annotations

import os

import numpy as np

from repro.core.grade import partition_column_const
from repro.core.partition import BucketPartitioning
from repro.core.sma_file import SmaFile
from repro.errors import SmaStateError
from repro.lang.predicate import CmpOp, ColumnConstCmp
from repro.storage.buffer import BufferPool


def _reduce_blocks(
    values: np.ndarray,
    valid: np.ndarray | None,
    block: int,
    take_min: bool,
) -> tuple[np.ndarray, np.ndarray | None]:
    """Per-block min or max of a 1-D array, honouring a validity mask.

    Returns ``(block_values, block_valid)``; block_valid is None when
    every block has at least one defined entry.
    """
    num_blocks = (len(values) + block - 1) // block
    out = np.zeros(num_blocks, dtype=values.dtype)
    out_valid = np.ones(num_blocks, dtype=bool)
    for i in range(num_blocks):
        chunk = values[i * block : (i + 1) * block]
        if valid is not None:
            chunk = chunk[valid[i * block : (i + 1) * block]]
        if len(chunk) == 0:
            out_valid[i] = False
            continue
        out[i] = chunk.min() if take_min else chunk.max()
    return out, (None if out_valid.all() else out_valid)


class HierarchicalMinMax:
    """Two-level min/max SMA on one column."""

    def __init__(
        self,
        column: str,
        level1_min: SmaFile,
        level1_max: SmaFile,
        level2_min: SmaFile,
        level2_max: SmaFile,
        entries_per_block: int,
        complete_blocks: np.ndarray | None = None,
    ):
        self.column = column
        self.level1_min = level1_min
        self.level1_max = level1_max
        self.level2_min = level2_min
        self.level2_max = level2_max
        self.entries_per_block = entries_per_block
        #: blocks whose first-level entries are all defined may settle
        #: their base buckets from level 2 alone; incomplete blocks must
        #: drill down so undefined buckets grade ambivalent, exactly as
        #: flat grading would.  None means every block is complete.
        self.complete_blocks = complete_blocks

    @classmethod
    def build(
        cls,
        column: str,
        level1_min: SmaFile,
        level1_max: SmaFile,
        pool: BufferPool,
        directory: str,
        *,
        entries_per_block: int | None = None,
    ) -> "HierarchicalMinMax":
        """Derive the second level from existing first-level files.

        The default block is one *page* of the first-level file — the
        paper's "the SMA-file is again partitioned into buckets" with
        bucket = page.
        """
        if level1_min.num_entries != level1_max.num_entries:
            raise SmaStateError("first-level min/max files disagree on length")
        block = (
            entries_per_block
            if entries_per_block is not None
            else level1_min.entries_per_page
        )
        if block <= 0:
            raise SmaStateError(f"entries_per_block must be positive, got {block}")
        os.makedirs(directory, exist_ok=True)
        mins, mins_valid = _reduce_blocks(
            level1_min.values(charge=False),
            level1_min.valid_mask(),
            block,
            take_min=True,
        )
        maxs, maxs_valid = _reduce_blocks(
            level1_max.values(charge=False),
            level1_max.valid_mask(),
            block,
            take_min=False,
        )
        level2_min = SmaFile.build(
            os.path.join(directory, f"{column}__l2min.sma"),
            mins,
            pool,
            valid=mins_valid,
            page_size=level1_min.page_size,
        )
        level2_max = SmaFile.build(
            os.path.join(directory, f"{column}__l2max.sma"),
            maxs,
            pool,
            valid=maxs_valid,
            page_size=level1_max.page_size,
        )
        complete = _complete_blocks(
            _combine_valid(level1_min.valid_mask(), level1_max.valid_mask()),
            len(mins),
            block,
            level1_min.num_entries,
        )
        return cls(
            column, level1_min, level1_max, level2_min, level2_max, block, complete
        )

    # ------------------------------------------------------------------
    # grading
    # ------------------------------------------------------------------

    def partition(
        self, predicate: ColumnConstCmp, num_buckets: int, *, charge: bool = True
    ) -> BucketPartitioning:
        """Grade all base buckets, reading level-1 pages only when needed.

        Level-2 grading uses the same Section 3.1 rules (a second-level
        block's min/max bound every base bucket underneath).  Qualifying
        or disqualifying blocks settle all their base buckets at once;
        ambivalent blocks drill into the first-level range.
        """
        if predicate.column != self.column:
            raise SmaStateError(
                f"hierarchy indexes {self.column!r}, not {predicate.column!r}"
            )
        if num_buckets != self.level1_min.num_entries:
            raise SmaStateError(
                f"{num_buckets} buckets but {self.level1_min.num_entries} "
                f"first-level entries"
            )
        l2_mins = self.level2_min.values(charge=charge)
        l2_maxs = self.level2_max.values(charge=charge)
        l2_valid = _combine_valid(
            self.level2_min.valid_mask(), self.level2_max.valid_mask()
        )
        coarse = partition_column_const(
            predicate.op,
            predicate.constant,
            len(l2_mins),
            mins=l2_mins,
            maxs=l2_maxs,
            valid=l2_valid,
        )
        qualifying = np.zeros(num_buckets, dtype=bool)
        disqualifying = np.zeros(num_buckets, dtype=bool)
        block = self.entries_per_block
        for block_no in range(len(l2_mins)):
            first = block_no * block
            last = min(first + block, num_buckets) - 1
            complete = (
                self.complete_blocks is None or self.complete_blocks[block_no]
            )
            if complete and coarse.qualifying[block_no]:
                qualifying[first : last + 1] = True
            elif complete and coarse.disqualifying[block_no]:
                disqualifying[first : last + 1] = True
            else:
                fine = partition_column_const(
                    predicate.op,
                    predicate.constant,
                    last - first + 1,
                    mins=self.level1_min.read_range(first, last, charge=charge),
                    maxs=self.level1_max.read_range(first, last, charge=charge),
                    valid=_combine_valid(
                        self.level1_min.valid_range(first, last),
                        self.level1_max.valid_range(first, last),
                    ),
                )
                qualifying[first : last + 1] = fine.qualifying
                disqualifying[first : last + 1] = fine.disqualifying
        return BucketPartitioning(qualifying, disqualifying)

    def flat_partition(
        self, predicate: ColumnConstCmp, num_buckets: int, *, charge: bool = True
    ) -> BucketPartitioning:
        """Grade using the first level only (the comparison baseline)."""
        return partition_column_const(
            predicate.op,
            predicate.constant,
            num_buckets,
            mins=self.level1_min.values(charge=charge),
            maxs=self.level1_max.values(charge=charge),
            valid=_combine_valid(
                self.level1_min.valid_mask(), self.level1_max.valid_mask()
            ),
        )

    @property
    def level2_pages(self) -> int:
        return self.level2_min.num_pages + self.level2_max.num_pages

    def delete_files(self) -> None:
        self.level2_min.delete_files()
        self.level2_max.delete_files()


def _complete_blocks(
    level1_valid: np.ndarray | None,
    num_blocks: int,
    block: int,
    num_entries: int,
) -> np.ndarray | None:
    """Per-block flag: every first-level entry in the block is defined."""
    if level1_valid is None:
        return None
    complete = np.ones(num_blocks, dtype=bool)
    for i in range(num_blocks):
        chunk = level1_valid[i * block : min((i + 1) * block, num_entries)]
        complete[i] = bool(chunk.all())
    return complete


def _combine_valid(
    first: np.ndarray | None, second: np.ndarray | None
) -> np.ndarray | None:
    """Intersection of two optional validity masks."""
    if first is None:
        return second
    if second is None:
        return first
    return first & second


def cmp_op(op: str) -> CmpOp:
    """Tiny helper so experiments can pass operator strings."""
    return CmpOp(op)
