"""Bulkloading SMA-files from a relation.

"For every bucket the aggregate can easily be computed and storing this
aggregate is cheap: only one page access is needed for 1000 pages of
tuples."  (Section 2.1)

The builder makes one sequential pass over the heap file, computes every
definition's per-bucket (per-group) aggregate, and materializes one
:class:`~repro.core.sma_file.SmaFile` per (definition, group).  Two
modes exist:

* ``separate_scans=False`` (default): one shared pass builds all
  definitions — what a production system would do;
* ``separate_scans=True``: one pass *per definition*, mirroring how the
  paper reports per-SMA creation times in Section 2.4 (their eight SMAs
  each took ~100 s ≈ one scan of LINEITEM each).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.aggregates import AggregateKind
from repro.core.definition import SmaDefinition
from repro.core.grouping import GroupKey, bucket_groups
from repro.core.sma_file import SmaFile
from repro.core.sma_set import SmaSet
from repro.errors import SmaDefinitionError
from repro.storage.stats import IoStats
from repro.storage.table import Table


@dataclass
class SmaBuildReport:
    """Cost accounting for building one SMA definition."""

    definition_name: str
    wall_seconds: float
    stats: IoStats
    num_files: int
    pages: int
    size_bytes: int
    shared_scan: bool = False


@dataclass
class _Accumulator:
    """Per-definition builder state: one value/valid array pair per group."""

    definition: SmaDefinition
    value_dtype: np.dtype
    num_buckets: int
    groups: dict[GroupKey, tuple[np.ndarray, np.ndarray]] = field(default_factory=dict)

    def arrays_for(self, key: GroupKey) -> tuple[np.ndarray, np.ndarray]:
        arrays = self.groups.get(key)
        if arrays is None:
            values = np.zeros(self.num_buckets, dtype=self.value_dtype)
            valid = np.zeros(self.num_buckets, dtype=bool)
            arrays = (values, valid)
            self.groups[key] = arrays
        return arrays


def _accumulate(
    table: Table,
    definitions: list[SmaDefinition],
) -> dict[str, _Accumulator]:
    """One sequential pass over *table* filling every accumulator."""
    schema = table.schema
    num_buckets = table.num_buckets
    accumulators = {
        d.name: _Accumulator(d, d.aggregate.value_dtype(schema), num_buckets)
        for d in definitions
    }
    by_grouping: dict[tuple[str, ...], list[SmaDefinition]] = {}
    for definition in definitions:
        by_grouping.setdefault(definition.group_by, []).append(definition)

    stats = table.heap.pool.stats
    for bucket_no, records in table.iter_buckets():
        stats.tuples_built += len(records)
        for group_by, group_defs in by_grouping.items():
            keys, inverse = bucket_groups(records, group_by, schema)
            masks = None
            if group_by and len(keys) > 1:
                masks = [inverse == j for j in range(len(keys))]
            for definition in group_defs:
                acc = accumulators[definition.name]
                spec = definition.aggregate
                arg_values = (
                    None
                    if spec.argument is None
                    else spec.argument.evaluate(records)
                )
                for j, key in enumerate(keys):
                    if masks is None:
                        group_values = arg_values
                        group_size = len(records)
                    else:
                        mask = masks[j]
                        group_values = None if arg_values is None else arg_values[mask]
                        group_size = int(mask.sum())
                    values, valid = acc.arrays_for(key)
                    if spec.kind is AggregateKind.COUNT:
                        values[bucket_no] = group_size
                        valid[bucket_no] = True
                    elif group_size:
                        assert group_values is not None
                        values[bucket_no] = spec.compute(group_values)
                        valid[bucket_no] = True
    return accumulators


def _materialize(
    sma_set: SmaSet,
    accumulator: _Accumulator,
    page_size: int,
) -> dict[GroupKey, SmaFile]:
    """Write one definition's accumulated arrays to SMA-files."""
    definition = accumulator.definition
    pool = sma_set.table.heap.pool
    files: dict[GroupKey, SmaFile] = {}
    groups = accumulator.groups or {(): accumulator.arrays_for(())}
    for key in sorted(groups, key=repr):
        values, valid = groups[key]
        # Count and sum SMAs default missing groups to 0 — for counts
        # that *means* absent, for sums 0 is the additive identity the
        # aggregation phases rely on, so neither needs a validity
        # vector (and file sizes match the paper's accounting).  Min/max
        # keep one only when some entry is genuinely undefined.
        keep_valid: np.ndarray | None = None
        if definition.aggregate.kind in (AggregateKind.COUNT, AggregateKind.SUM):
            keep_valid = None
        elif not valid.all():
            keep_valid = valid
        path = sma_set.file_path(definition.name, key)
        files[key] = SmaFile.build(
            path, values, pool, valid=keep_valid, page_size=page_size
        )
    return files


def build_sma_set(
    table: Table,
    definitions: list[SmaDefinition],
    *,
    directory: str,
    name: str = "default",
    separate_scans: bool = False,
    page_size: int | None = None,
) -> tuple[SmaSet, list[SmaBuildReport]]:
    """Build all *definitions* on *table* into a new :class:`SmaSet`.

    Returns the set plus one :class:`SmaBuildReport` per definition with
    wall-clock time and the I/O-counter delta attributable to it.
    """
    if not definitions:
        raise SmaDefinitionError("no SMA definitions given")
    names = [d.name for d in definitions]
    if len(set(names)) != len(names):
        raise SmaDefinitionError(f"duplicate SMA names in {names}")
    for definition in definitions:
        if definition.table_name != table.name:
            raise SmaDefinitionError(
                f"SMA {definition.name!r} is defined on "
                f"{definition.table_name!r}, not {table.name!r}"
            )
        definition.validate(table.schema)

    page_size = page_size if page_size is not None else table.layout.page_size
    sma_set = SmaSet(name, table, directory)
    reports: list[SmaBuildReport] = []
    stats = table.heap.pool.stats

    if separate_scans:
        for definition in definitions:
            before = stats.snapshot()
            started = time.perf_counter()
            accumulators = _accumulate(table, [definition])
            files = _materialize(sma_set, accumulators[definition.name], page_size)
            elapsed = time.perf_counter() - started
            sma_set.add_materialized(definition, files)
            reports.append(
                SmaBuildReport(
                    definition_name=definition.name,
                    wall_seconds=elapsed,
                    stats=stats.snapshot() - before,
                    num_files=len(files),
                    pages=sum(f.num_pages for f in files.values()),
                    size_bytes=sum(f.size_bytes for f in files.values()),
                )
            )
    else:
        before = stats.snapshot()
        started = time.perf_counter()
        accumulators = _accumulate(table, definitions)
        scan_elapsed = time.perf_counter() - started
        scan_stats = stats.snapshot() - before
        for definition in definitions:
            before = stats.snapshot()
            started = time.perf_counter()
            files = _materialize(sma_set, accumulators[definition.name], page_size)
            elapsed = time.perf_counter() - started
            sma_set.add_materialized(definition, files)
            # Attribute a proportional share of the shared scan to each
            # definition so report totals remain meaningful.
            share = 1.0 / len(definitions)
            scan_share = IoStats(
                **{
                    f: int(getattr(scan_stats, f) * share)
                    for f in (
                        "sequential_page_reads",
                        "skip_page_reads",
                        "random_page_reads",
                        "page_writes",
                        "buffer_hits",
                        "tuples_built",
                    )
                }
            )
            reports.append(
                SmaBuildReport(
                    definition_name=definition.name,
                    wall_seconds=elapsed + scan_elapsed * share,
                    stats=(stats.snapshot() - before) + scan_share,
                    num_files=len(files),
                    pages=sum(f.num_pages for f in files.values()),
                    size_bytes=sum(f.size_bytes for f in files.values()),
                    shared_scan=True,
                )
            )

    sma_set.save()
    return sma_set, reports
