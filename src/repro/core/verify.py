"""Offline integrity verification and repair (``repro verify``).

SMA-files are *derived* data: everything in them can be recomputed from
the heap.  So the verifier's contract is asymmetric —

* heap pages are ground truth: a page failing its CRC is reported as
  **unrepairable** (restore from backup; we will not guess at bytes);
* SMA damage of any kind (bad body checksum, truncated file, entry
  count drifting from the bucket count, values disagreeing with a fresh
  recompute) is **repairable**: ``--repair`` rebuilds the definition
  from the heap via the bulkload path and re-verifies it.

Verification recomputes every definition with the same accumulator the
builder uses, so "verified" means *byte-for-byte what a fresh build
would produce*, not merely "checksums match".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.aggregates import AggregateKind
from repro.core.builder import _accumulate, _materialize
from repro.errors import ChecksumError
from repro.storage.catalog import Catalog

__all__ = ["VerifyIssue", "VerifyReport", "verify_catalog"]


@dataclass
class VerifyIssue:
    """One detected integrity problem."""

    kind: str  #: heap_page | heap_unchecksummed | sma_corrupt | ...
    table: str
    target: str  #: file path or definition name the issue is about
    detail: str
    repairable: bool
    repaired: bool = False

    def render(self) -> str:
        if self.repaired:
            status = "REPAIRED"
        elif self.repairable:
            status = "repairable"
        else:
            status = "UNREPAIRABLE"
        return (
            f"[{status}] {self.kind} {self.table}/{self.target}: {self.detail}"
        )


@dataclass
class VerifyReport:
    """Everything one ``verify_catalog`` pass found (and fixed)."""

    issues: list[VerifyIssue] = field(default_factory=list)
    tables_checked: int = 0
    heap_pages_checked: int = 0
    sma_files_checked: int = 0
    definitions_checked: int = 0

    @property
    def ok(self) -> bool:
        """True when nothing is outstanding (clean, or fully repaired)."""
        return all(issue.repaired for issue in self.issues)

    @property
    def repaired_count(self) -> int:
        return sum(1 for issue in self.issues if issue.repaired)

    def render(self) -> str:
        lines = [
            f"checked {self.tables_checked} table(s), "
            f"{self.heap_pages_checked} heap page(s), "
            f"{self.definitions_checked} SMA definition(s), "
            f"{self.sma_files_checked} SMA-file(s)"
        ]
        for issue in self.issues:
            lines.append(issue.render())
        if not self.issues:
            lines.append("no integrity issues found")
        elif self.ok:
            lines.append(f"all {len(self.issues)} issue(s) repaired")
        else:
            outstanding = len(self.issues) - self.repaired_count
            lines.append(f"{outstanding} issue(s) outstanding")
        return "\n".join(lines)


def _emit(events, issue: VerifyIssue) -> None:
    if events is not None:
        events.emit(
            "verify_issue",
            kind=issue.kind,
            table=issue.table,
            target=issue.target,
            detail=issue.detail,
            repairable=issue.repairable,
            repaired=issue.repaired,
        )


def _verify_intents(
    catalog: Catalog, report: VerifyReport, events, *, repair: bool
) -> None:
    """Settle pending write-ahead intents before anything else runs.

    A pending intent sidecar means a DML batch died between its intent
    append and retire.  Resolution must precede the heap sweep (an
    interrupted insert's torn trailing page would otherwise be reported
    as an unrepairable CRC failure — rolling back restores the clean
    pre-image) and the SMA recompute (which must compare against the
    settled heap).
    """
    from repro.storage.intents import intent_path, load_intent, resolve_intent

    for table in catalog.tables():
        intent = load_intent(table.heap.path)
        if intent is None:
            continue
        issue = VerifyIssue(
            kind="heap_intent",
            table=table.name,
            target=intent_path(table.heap.path),
            detail=(
                f"pending {intent.op} intent at epoch {intent.epoch} "
                f"({intent.before_buckets}->{intent.after_buckets} buckets)"
            ),
            repairable=True,
        )
        report.issues.append(issue)
        if repair:
            action = resolve_intent(table.heap, intent)
            if (
                action == "replayed"
                and catalog.ingest_epoch(table.name) < intent.epoch
            ):
                catalog.bump_ingest_epoch(table.name)
            issue.repaired = True
            issue.detail += f" — {action}"
            catalog.integrity.record_intent_resolution(
                table=table.name,
                op=intent.op,
                epoch=intent.epoch,
                action=action,
            )
            if events is not None:
                events.emit(
                    "intent_replayed",
                    table=table.name,
                    op=intent.op,
                    epoch=intent.epoch,
                    action=action,
                )
        _emit(events, issue)


def _verify_heap(catalog: Catalog, report: VerifyReport, events) -> None:
    for table in catalog.tables():
        heap = table.heap
        if heap.checksum_algo is None:
            issue = VerifyIssue(
                kind="heap_unchecksummed",
                table=table.name,
                target=heap.path,
                detail="format v1 heap file has no page checksums "
                "(repair migrates it in place)",
                repairable=True,
            )
            report.issues.append(issue)
            _emit(events, issue)
            continue
        for page_no in range(heap.num_pages):
            report.heap_pages_checked += 1
            try:
                heap.read_page_raw(page_no)
            except ChecksumError as exc:
                issue = VerifyIssue(
                    kind="heap_page",
                    table=table.name,
                    target=f"{heap.path}:{page_no}",
                    detail=str(exc),
                    repairable=False,
                )
                report.issues.append(issue)
                _emit(events, issue)


def _expected_groups(accumulator) -> dict:
    """Mirror ``_materialize``: an empty table still gets the () group."""
    return accumulator.groups or {(): accumulator.arrays_for(())}


def _group_is_trivial(kind: AggregateKind, sma) -> bool:
    """A group file a fresh build would not create, holding no data.

    The maintainer can leave behind a group whose entries were all
    withdrawn: count/sum files of zeros, or min/max files with every
    entry invalid.  Those are harmless — they contribute nothing to any
    query — so verification tolerates them.
    """
    values = sma.values(charge=False)
    if kind in (AggregateKind.COUNT, AggregateKind.SUM):
        return not np.any(values)
    mask = sma.valid_mask()
    return mask is not None and not mask.any()


def _compare_definition(
    table, definition, files, accumulator
) -> str | None:
    """Why *files* differ from a fresh recompute, or None when they agree."""
    expected = _expected_groups(accumulator)
    kind = definition.aggregate.kind
    num_buckets = table.num_buckets
    for key, sma in files.items():
        if sma.num_entries != num_buckets:
            return (
                f"group {key!r} has {sma.num_entries} entries, "
                f"table has {num_buckets} buckets"
            )
        if key not in expected:
            if _group_is_trivial(kind, sma):
                continue
            return f"group {key!r} holds data but no heap tuple produces it"
    for key, (exp_values, exp_valid) in expected.items():
        sma = files.get(key)
        if sma is None:
            return f"group {key!r} is missing"
        values = sma.values(charge=False)
        mask = sma.valid_mask()
        actual_valid = (
            np.ones(sma.num_entries, dtype=bool) if mask is None else mask
        )
        if kind in (AggregateKind.COUNT, AggregateKind.SUM):
            # The builder drops validity for count/sum (0 is absent /
            # the additive identity), so only values matter.
            if not np.array_equal(values, exp_values):
                return f"group {key!r} values differ from recompute"
        else:
            if not np.array_equal(actual_valid, exp_valid):
                return f"group {key!r} validity differs from recompute"
            if not np.array_equal(
                values[exp_valid], exp_values[exp_valid]
            ):
                return f"group {key!r} values differ from recompute"
    return None


def _verify_sma_sets(
    catalog: Catalog, report: VerifyReport, events, *, repair: bool
) -> None:
    from repro.errors import SmaIntegrityError

    for table in catalog.tables():
        report.tables_checked += 1
        for sma_set in catalog.sma_sets(table.name):
            definitions = list(sma_set.definitions.values())
            if not definitions:
                continue
            accumulators = _accumulate(table, definitions)
            to_rebuild: list[str] = []
            for definition in definitions:
                report.definitions_checked += 1
                files = sma_set.files_of(definition.name)
                report.sma_files_checked += len(files)
                detail: str | None = None
                kind = "sma_content"
                corrupt = [
                    sma for sma in files.values() if sma.is_corrupt
                ]
                if corrupt:
                    kind = "sma_corrupt"
                    detail = "; ".join(
                        str(sma.corrupt_reason) for sma in corrupt
                    )
                else:
                    try:
                        detail = _compare_definition(
                            table,
                            definition,
                            files,
                            accumulators[definition.name],
                        )
                    except SmaIntegrityError as exc:
                        kind = "sma_corrupt"
                        detail = str(exc)
                if detail is None:
                    continue
                issue = VerifyIssue(
                    kind=kind,
                    table=table.name,
                    target=f"{sma_set.name}/{definition.name}",
                    detail=detail,
                    repairable=True,
                )
                report.issues.append(issue)
                if repair:
                    to_rebuild.append(definition.name)
                    issue.repaired = True  # rebuilt + re-verified below
                _emit(events, issue)
            if repair and to_rebuild:
                _rebuild(catalog, table, sma_set, to_rebuild, report, events)


def _rebuild(
    catalog: Catalog, table, sma_set, names: list[str], report, events
) -> None:
    """Rebuild *names* from the heap, swap them in, re-verify."""
    for name in names:
        definition = sma_set.definitions[name]
        old_files = sma_set.files_of(name)
        page_size = next(
            (sma.page_size for sma in old_files.values()),
            table.layout.page_size,
        )
        for sma in old_files.values():
            sma.delete_files()
        accumulator = _accumulate(table, [definition])[name]
        files = _materialize(sma_set, accumulator, page_size)
        sma_set.replace_files(name, files)
        detail = _compare_definition(table, definition, files, accumulator)
        if detail is not None:  # pragma: no cover - rebuild must verify
            for issue in report.issues:
                if issue.target.endswith(f"/{name}"):
                    issue.repaired = False
            continue
        catalog.integrity.record_repair(
            table=table.name, sma_set=sma_set.name, definition=name
        )
        if events is not None:
            events.emit(
                "verify_repair",
                table=table.name,
                sma_set=sma_set.name,
                definition=name,
            )
    sma_set.save()


def verify_catalog(
    catalog: Catalog, *, repair: bool = False, events=None
) -> VerifyReport:
    """Sweep every heap page and SMA definition of *catalog*.

    Pending write-ahead intents are settled first (with ``repair=True``
    they are replayed or rolled back, restoring a clean epoch boundary).
    With ``repair=True``, rebuildable damage (any SMA issue, v1 heap
    files lacking checksums) is fixed in place; heap pages failing their
    CRC are ground truth and stay unrepairable.
    """
    report = VerifyReport()
    _verify_intents(catalog, report, events, repair=repair)
    _verify_heap(catalog, report, events)
    if repair:
        for issue in report.issues:
            if issue.kind == "heap_unchecksummed":
                catalog.table(issue.table).heap.migrate_to_checksums()
                issue.repaired = True
    _verify_sma_sets(catalog, report, events, repair=repair)
    return report
