"""Incremental SMA maintenance (Section 2.1).

"Due to the direct correspondance between SMA-file entries and buckets
(via the order), SMA-files are easy to update.  The algorithms behind
are simple and very efficient.  At most one additional page access is
needed for an updated tuple."

:class:`SmaMaintainer` keeps one or more SMA sets in sync with their
table across inserts, updates and deletes:

* **insert** — new tuples append to the trailing bucket (time-of-creation
  clustering falls out of this) and then into fresh buckets.  min, max,
  sum and count are all *advanceable* from the new tuples alone, so no
  base bucket needs re-reading; each touched SMA entry costs one page
  write — the paper's "at most one additional page access".
* **update / delete** — min/max are not subtractable, so the affected
  bucket's aggregates are recomputed from the bucket the operation has
  already read and rewritten anyway; again one SMA page access per
  touched entry.
"""

from __future__ import annotations

import numpy as np

from repro.core.aggregates import AggregateKind
from repro.core.definition import SmaDefinition
from repro.core.grouping import GroupKey, bucket_groups
from repro.core.sma_file import SmaFile
from repro.core.sma_set import SmaSet
from repro.errors import SmaStateError
from repro.lang.predicate import Predicate
from repro.storage.table import Table


def compute_bucket_entry(
    definition: SmaDefinition,
    records: np.ndarray,
    schema,
) -> dict[GroupKey, tuple[object, bool]]:
    """Per-group ``(value, valid)`` of one definition over one bucket."""
    spec = definition.aggregate
    keys, inverse = bucket_groups(records, definition.group_by, schema)
    argument_values = (
        None if spec.argument is None else spec.argument.evaluate(records)
    )
    result: dict[GroupKey, tuple[object, bool]] = {}
    for j, key in enumerate(keys):
        if definition.group_by:
            mask = inverse == j
            values = None if argument_values is None else argument_values[mask]
            size = int(mask.sum())
        else:
            values = argument_values
            size = len(records)
        if spec.kind is AggregateKind.COUNT:
            result[key] = (size, True)
        elif size:
            assert values is not None
            result[key] = (spec.compute(values), True)
    return result


class SmaMaintainer:
    """Keeps SMA sets consistent with their base table under DML."""

    def __init__(self, table: Table, sma_sets: list[SmaSet]):
        for sma_set in sma_sets:
            if sma_set.table is not table:
                raise SmaStateError(
                    f"SMA set {sma_set.name!r} does not index table {table.name!r}"
                )
        self.table = table
        self.sma_sets = list(sma_sets)

    # ------------------------------------------------------------------
    # inserts
    # ------------------------------------------------------------------

    def _before_mutation(self) -> None:
        """Hierarchies are derived from the first-level files; drop them
        before any DML so stale second levels can never mis-grade."""
        for sma_set in self.sma_sets:
            sma_set.invalidate_hierarchies()

    def insert(self, records: np.ndarray) -> None:
        """Append *records* and advance every SMA file incrementally."""
        if len(records) == 0:
            return
        self._before_mutation()
        schema = self.table.schema
        per_bucket = self.table.layout.tuples_per_bucket
        old_buckets = self.table.num_buckets
        trailing_room = 0
        if old_buckets:
            trailing_room = per_bucket - self.table.heap.bucket_count(
                old_buckets - 1
            )

        self.table.append_batch(records)

        # Split the inserted records by destination bucket.
        cursor = 0
        if trailing_room and old_buckets:
            take = min(trailing_room, len(records))
            self._advance_existing_bucket(
                old_buckets - 1, records[:take], schema, file_length=old_buckets
            )
            cursor = take
        new_entries_start = old_buckets
        bucket_no = new_entries_start
        per_definition_new: dict[tuple[str, str], list[dict]] = {}
        while cursor < len(records):
            chunk = records[cursor : cursor + per_bucket]
            for sma_set in self.sma_sets:
                for definition in sma_set.definitions.values():
                    entries = compute_bucket_entry(definition, chunk, schema)
                    key = (sma_set.name, definition.name)
                    per_definition_new.setdefault(key, []).append(entries)
            bucket_no += 1
            cursor += len(chunk)

        num_new = bucket_no - new_entries_start
        if num_new:
            self._append_new_entries(per_definition_new, num_new, old_buckets)

    def _advance_existing_bucket(
        self, bucket_no: int, new_records: np.ndarray, schema, file_length: int
    ) -> None:
        """Advance the trailing bucket's entries from the new tuples only."""
        for sma_set in self.sma_sets:
            for definition in sma_set.definitions.values():
                fresh = compute_bucket_entry(definition, new_records, schema)
                for key, (value, _) in fresh.items():
                    sma = self._ensure_group_file(
                        sma_set, definition, key, length=file_length
                    )
                    self._advance_entry(
                        sma, definition.aggregate.kind, bucket_no, value
                    )

    @staticmethod
    def _advance_entry(
        sma: SmaFile, kind: AggregateKind, index: int, value: object
    ) -> None:
        valid = sma.valid_mask()
        defined = valid is None or bool(valid[index])
        current = sma.value_at(index, charge=False)
        if kind is AggregateKind.COUNT or kind is AggregateKind.SUM:
            base = current if defined else 0
            sma.set_entry(index, base + value)
        elif kind is AggregateKind.MIN:
            if not defined or value < current:
                sma.set_entry(index, value)
        elif kind is AggregateKind.MAX:
            if not defined or value > current:
                sma.set_entry(index, value)

    def _append_new_entries(
        self,
        per_definition_new: dict[tuple[str, str], list[dict]],
        num_new: int,
        old_buckets: int,
    ) -> None:
        for sma_set in self.sma_sets:
            for definition in sma_set.definitions.values():
                key = (sma_set.name, definition.name)
                bucket_entries = per_definition_new.get(key, [])
                files = sma_set.files_of(definition.name)
                # Every known group (old or new) must get `num_new` entries.
                group_keys = set(files)
                for entries in bucket_entries:
                    group_keys.update(entries)
                for group_key in group_keys:
                    sma = self._ensure_group_file(
                        sma_set, definition, group_key, length=old_buckets
                    )
                    values = np.zeros(num_new, dtype=sma.values(charge=False).dtype)
                    valid = np.zeros(num_new, dtype=bool)
                    for offset, entries in enumerate(bucket_entries):
                        if group_key in entries:
                            values[offset], valid[offset] = entries[group_key]
                    if definition.aggregate.kind in (
                        AggregateKind.COUNT,
                        AggregateKind.SUM,
                    ):
                        valid = np.ones(num_new, dtype=bool)
                    sma.append_entries(values, valid)

    def _ensure_group_file(
        self,
        sma_set: SmaSet,
        definition: SmaDefinition,
        group_key: GroupKey,
        *,
        length: int | None = None,
    ) -> SmaFile:
        """Fetch (or create, for a never-seen group) the group's SMA-file.

        A fresh file gets *length* all-zero/invalid entries (default: the
        table's current bucket count; inserts pass the pre-append count
        because the new buckets' entries are appended separately).
        """
        files = sma_set.files_of(definition.name)
        sma = files.get(group_key)
        if sma is not None:
            return sma
        dtype = definition.aggregate.value_dtype(self.table.schema)
        existing = length if length is not None else self.table.num_buckets
        values = np.zeros(existing, dtype=dtype)
        if definition.aggregate.kind in (AggregateKind.COUNT, AggregateKind.SUM):
            valid = None
        else:
            valid = np.zeros(existing, dtype=bool)
        sma = SmaFile.build(
            sma_set.file_path(definition.name, group_key),
            values,
            self.table.heap.pool,
            valid=valid,
        )
        files[group_key] = sma
        sma_set.save()
        return sma

    # ------------------------------------------------------------------
    # updates and deletes
    # ------------------------------------------------------------------

    def _recompute_bucket(self, bucket_no: int, records: np.ndarray) -> None:
        """Recompute every SMA entry of one bucket from its new contents."""
        schema = self.table.schema
        for sma_set in self.sma_sets:
            for definition in sma_set.definitions.values():
                fresh = compute_bucket_entry(definition, records, schema)
                files = sma_set.files_of(definition.name)
                seen = set(fresh)
                for group_key, (value, _) in fresh.items():
                    sma = self._ensure_group_file(sma_set, definition, group_key)
                    sma.set_entry(bucket_no, value, valid=True)
                kind = definition.aggregate.kind
                for group_key, sma in files.items():
                    if group_key in seen:
                        continue
                    if kind in (AggregateKind.COUNT, AggregateKind.SUM):
                        zero = 0 if kind is AggregateKind.COUNT else sma.values(
                            charge=False
                        ).dtype.type(0)
                        sma.set_entry(bucket_no, zero, valid=True)
                    else:
                        sma.set_entry(
                            bucket_no,
                            sma.value_at(bucket_no, charge=False),
                            valid=False,
                        )

    def update_where(
        self, predicate: Predicate, assignments: dict[str, object]
    ) -> int:
        """SET col = value on every tuple matching *predicate*.

        Returns the number of updated tuples.  Buckets whose tuples
        change are rewritten and their SMA entries recomputed.
        """
        from repro.storage.types import coerce_value

        self._before_mutation()
        bound = predicate.bind(self.table.schema)
        stored = {
            name: coerce_value(self.table.schema.dtype_of(name), value)
            for name, value in assignments.items()
        }
        touched = 0
        for bucket_no in range(self.table.num_buckets):
            records = self.table.read_bucket(bucket_no)
            mask = bound.evaluate(records)
            hits = int(mask.sum())
            if not hits:
                continue
            updated = records.copy()
            for name, value in stored.items():
                updated[name][mask] = value
            self.table.heap.write_bucket(bucket_no, updated)
            self._recompute_bucket(bucket_no, updated)
            touched += hits
        return touched

    def delete_where(self, predicate: Predicate) -> int:
        """Delete every tuple matching *predicate*; returns the count.

        Tuples are removed within their bucket (buckets never merge —
        the SMA entry order must keep mirroring the physical order).
        """
        self._before_mutation()
        bound = predicate.bind(self.table.schema)
        removed = 0
        for bucket_no in range(self.table.num_buckets):
            records = self.table.read_bucket(bucket_no)
            mask = bound.evaluate(records)
            hits = int(mask.sum())
            if not hits:
                continue
            survivors = records[~mask].copy()
            self.table.heap.write_bucket(bucket_no, survivors)
            self._recompute_bucket(bucket_no, survivors)
            removed += hits
        return removed
