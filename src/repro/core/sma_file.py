"""SMA-files: flat sequential files of per-bucket aggregate values.

"For all buckets, the resulting values are materialized in a separate
SMA-file.  The SMA-file is sequentially organized: the value for the
first bucket is the first value in the SMA-file, the second value is the
second value in the SMA-file and so on.  Contrary to traditional index
structures, a SMA-file does not contain any other additional
information."  (Section 2.1)

The on-disk layout honours that: the data file is the packed value
array, optionally followed by a one-byte-per-entry validity vector (only
grouped min/max SMAs need it — a bucket may simply contain no tuple of
some group, leaving that entry undefined; the paper's grading rules have
an explicit "the max/min aggregates are not defined" case for this).

I/O accounting: SMA entries are value-cached in memory for speed, but
every scan *charges* the buffer pool page-by-page, so cold/warm behaviour
and sequential-read counts are exactly what a paged implementation would
show.  One page holds ``page_size // value_width`` entries — e.g. 1024
4-byte dates per 4 KB page, giving the paper's 1/1000 size ratio.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.errors import (
    SmaIntegrityError,
    SmaStateError,
    StorageError,
    TornWriteError,
    TransientIOError,
)
from repro.storage.buffer import BufferPool
from repro.storage.checksum import checksum as compute_checksum
from repro.storage.checksum import default_algorithm
from repro.storage.page import DEFAULT_PAGE_SIZE

_META_SUFFIX = ".meta.json"
#: Current SMA-file meta format: v2 adds a whole-body checksum.
FORMAT_VERSION = 2


class SmaFile:
    """One sequential file of per-bucket aggregate values."""

    def __init__(
        self,
        path: str,
        values: np.ndarray,
        valid: np.ndarray | None,
        pool: BufferPool,
        page_size: int,
        checksum_algo: str | None = None,
    ):
        if values.ndim != 1:
            raise StorageError("SMA values must be a 1-D array")
        if valid is not None and len(valid) != len(values):
            raise StorageError("validity vector length mismatch")
        self.path = path
        self.pool = pool
        self.page_size = page_size
        #: Body-checksum algorithm, or None for legacy/unchecksummed files.
        self.checksum_algo = checksum_algo
        #: Why the file failed verification at :meth:`open`, or None when
        #: healthy.  A corrupt file keeps its declared geometry (entry
        #: count, page count) so planning can cost it, but every value
        #: access raises :class:`~repro.errors.SmaIntegrityError` — the
        #: planner then quarantines the definition and falls back to the
        #: heap scan.  SMA-files are derived data; a wrong answer is the
        #: only unacceptable outcome.
        self.corrupt_reason: str | None = None
        self.file_id = os.path.abspath(path)
        self._values = values
        self._valid = valid
        self._closed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        path: str,
        values: np.ndarray,
        pool: BufferPool,
        *,
        valid: np.ndarray | None = None,
        page_size: int = DEFAULT_PAGE_SIZE,
    ) -> "SmaFile":
        """Materialize *values* (and optional validity) to a new SMA-file.

        Charges one page write per page of the file — this is the cheap
        bulkload the paper advertises ("only one page access is needed
        for 1000 pages of tuples").
        """
        if os.path.exists(path):
            raise StorageError(f"{path} already exists")
        sma = cls(
            path,
            np.ascontiguousarray(values),
            None if valid is None else np.ascontiguousarray(valid, dtype=bool),
            pool,
            page_size,
            checksum_algo=default_algorithm(),
        )
        sma._write_all()
        sma._save_meta()
        return sma

    @classmethod
    def open(cls, path: str, pool: BufferPool) -> "SmaFile":
        """Open an SMA-file previously created by :meth:`build`.

        Integrity-tolerant: a body that fails its checksum or is shorter
        than the declared entry count still opens — with placeholder
        values, ``corrupt_reason`` set, and every value access raising
        :class:`~repro.errors.SmaIntegrityError` — so the catalog stays
        usable and the planner can quarantine + fall back.  A garbled
        meta sidecar still fails loudly (there is no declared geometry
        to preserve).
        """
        with open(path + _META_SUFFIX, "r", encoding="utf-8") as f:
            meta = json.load(f)
        dtype = np.dtype(meta["dtype"])
        count = meta["num_entries"]
        page_size = meta["page_size"]
        algo = meta.get("checksum_algo")
        stored = meta.get("checksum")
        raw = cls._read_body(path, pool, page_size)
        corrupt: str | None = None
        if algo is not None and stored is not None:
            actual = compute_checksum(raw, algo)
            if actual != stored:
                corrupt = (
                    f"body checksum mismatch: stored {stored:#010x}, "
                    f"computed {actual:#010x} ({algo})"
                )
        expected_len = count * dtype.itemsize + (count if meta["has_validity"] else 0)
        if len(raw) < expected_len:
            corrupt = corrupt or (
                f"truncated body: {len(raw)}/{expected_len} bytes "
                f"for {count} declared entries"
            )
            # Pad so the declared geometry survives; the garbage values
            # are unreachable behind the corrupt gate.
            raw = raw.ljust(expected_len, b"\x00")
        values = np.frombuffer(raw[: count * dtype.itemsize], dtype=dtype).copy()
        valid = None
        if meta["has_validity"]:
            valid_offset = count * dtype.itemsize
            valid = np.frombuffer(
                raw[valid_offset : valid_offset + count], dtype=np.bool_
            ).copy()
        sma = cls(path, values, valid, pool, page_size, checksum_algo=algo)
        sma.corrupt_reason = corrupt
        return sma

    @staticmethod
    def _read_body(path: str, pool: BufferPool, page_size: int) -> bytes:
        """Physically read the body, page-wise under the fault injector.

        Transient faults are retried with the pool's retry policy,
        charging ``read_retries`` exactly like the buffer pool's
        single-flight leader does for heap pages.
        """
        injector = pool.fault_injector
        with open(path, "rb") as f:
            raw = f.read()
        if injector is None:
            return raw
        num_pages = max(1, (len(raw) + page_size - 1) // page_size)
        policy = pool.retry_policy
        pages: list[bytes] = []
        for page_no in range(num_pages):
            attempt = 1
            while True:
                try:
                    injector.before_read(path, page_no, "sma")
                    break
                except TransientIOError:
                    if attempt >= policy.max_attempts:
                        raise
                    pool.note_retry()
                    time.sleep(policy.backoff_s(attempt))
                    attempt += 1
            chunk = raw[page_no * page_size : (page_no + 1) * page_size]
            pages.append(injector.filter_read(path, page_no, chunk))
        return b"".join(pages)

    def _serialize(self) -> bytes:
        body = self._values.tobytes()
        if self._valid is not None:
            body += self._valid.tobytes()
        return body

    def _write_body(self, body: bytes) -> None:
        """Persist the full body, honouring injected torn writes."""
        injector = self.pool.fault_injector
        if injector is not None:
            cut = injector.torn_write_length(self.path, 0, len(body))
            if cut is not None:
                with open(self.path, "wb") as f:
                    f.write(body[:cut])
                self.pool.invalidate(self.file_id)
                raise TornWriteError(
                    f"injected torn write: {cut}/{len(body)} bytes of "
                    f"SMA body reached {self.path}",
                    path=self.path, page_no=0,
                )
        with open(self.path, "wb") as f:
            f.write(body)

    def _write_all(self) -> None:
        body = self._serialize()
        self._write_body(body)
        for page_no in range(self.num_pages):
            self.pool.stats.page_writes += 1
            self.pool.invalidate(self.file_id, page_no)

    def _save_meta(self) -> None:
        meta = {
            "dtype": self._values.dtype.str,
            "num_entries": int(len(self._values)),
            "has_validity": self._valid is not None,
            "page_size": self.page_size,
            "format_version": FORMAT_VERSION if self.checksum_algo else 1,
        }
        if self.checksum_algo:
            meta["checksum_algo"] = self.checksum_algo
            meta["checksum"] = compute_checksum(self._serialize(), self.checksum_algo)
        # Atomic (tmp + replace): the DML maintainer rewrites metas on
        # every batch, and a crash mid-write must never leave a garbled
        # sidecar — ``open`` has no tolerant path for those.
        meta_path = self.path + _META_SUFFIX
        tmp = meta_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as f:
            json.dump(meta, f)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, meta_path)

    def close(self) -> None:
        self._closed = True

    def delete_files(self) -> None:
        self.pool.invalidate(self.file_id)
        for suffix in ("", _META_SUFFIX):
            target = self.path + suffix
            if os.path.exists(target):
                os.remove(target)
        self._closed = True

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------

    @property
    def num_entries(self) -> int:
        return len(self._values)

    @property
    def value_width(self) -> int:
        return self._values.dtype.itemsize

    @property
    def size_bytes(self) -> int:
        """Payload bytes: packed values plus validity vector if present."""
        size = self.num_entries * self.value_width
        if self._valid is not None:
            size += self.num_entries
        return size

    @property
    def num_pages(self) -> int:
        """Pages the file occupies (what the paper's size table reports)."""
        if self.size_bytes == 0:
            return 0
        return (self.size_bytes + self.page_size - 1) // self.page_size

    @property
    def entries_per_page(self) -> int:
        return self.page_size // self.value_width

    # ------------------------------------------------------------------
    # integrity gate
    # ------------------------------------------------------------------

    @property
    def is_corrupt(self) -> bool:
        return self.corrupt_reason is not None

    def _check_integrity(self) -> None:
        if self.corrupt_reason is not None:
            raise SmaIntegrityError(
                f"SMA-file {self.path} failed verification: "
                f"{self.corrupt_reason}",
                path=self.path,
            )

    def ensure_readable(self) -> None:
        """Raise :class:`~repro.errors.SmaIntegrityError` if corrupt.

        The planner probes required SMA-files with this before binding a
        plan to them, so a damaged file causes heap fallback at planning
        time instead of a failure mid-execution.
        """
        self._check_integrity()

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def _charge_pages(self, first_page: int, last_page: int) -> None:
        """Account buffer traffic for pages [first_page, last_page]."""
        for page_no in range(first_page, last_page + 1):
            self.pool.read_page(self.file_id, page_no, lambda: b"", kind="sma")

    def values(self, *, charge: bool = True) -> np.ndarray:
        """The full per-bucket value vector (a sequential SMA-file scan).

        Charges a sequential read of every page plus one SMA-entry CPU
        unit per entry unless ``charge=False`` (used by the planner for
        free re-reads it has already accounted, and by tests).
        """
        self._check_integrity()
        if charge and self.num_pages:
            self._charge_pages(0, self.num_pages - 1)
            self.pool.stats.sma_entries_read += self.num_entries
        view = self._values.view()
        view.flags.writeable = False
        return view

    def valid_mask(self, *, charge: bool = False) -> np.ndarray | None:
        """Validity vector, or None when every entry is defined."""
        self._check_integrity()
        if self._valid is None:
            return None
        if charge:
            self.pool.stats.sma_entries_read += self.num_entries
        view = self._valid.view()
        view.flags.writeable = False
        return view

    def value_at(self, index: int, *, charge: bool = True) -> object:
        """Random access to one entry (charges a single-page access)."""
        self._check_integrity()
        if not 0 <= index < self.num_entries:
            raise SmaStateError(f"entry {index} out of range [0, {self.num_entries})")
        if charge:
            page_no = index * self.value_width // self.page_size
            self._charge_pages(page_no, page_no)
            self.pool.stats.sma_entries_read += 1
        return self._values[index]

    def read_range(self, first: int, last: int, *, charge: bool = True) -> np.ndarray:
        """Entries [first, last] inclusive (hierarchical SMAs drill down)."""
        self._check_integrity()
        if not 0 <= first <= last < self.num_entries:
            raise SmaStateError(
                f"range [{first}, {last}] out of [0, {self.num_entries})"
            )
        if charge:
            first_page = first * self.value_width // self.page_size
            last_page = last * self.value_width // self.page_size
            self._charge_pages(first_page, last_page)
            self.pool.stats.sma_entries_read += last - first + 1
        view = self._values[first : last + 1].view()
        view.flags.writeable = False
        return view

    def valid_range(self, first: int, last: int) -> np.ndarray | None:
        """Validity of entries [first, last], or None if all defined."""
        self._check_integrity()
        if self._valid is None:
            return None
        if not 0 <= first <= last < self.num_entries:
            raise SmaStateError(
                f"range [{first}, {last}] out of [0, {self.num_entries})"
            )
        view = self._valid[first : last + 1].view()
        view.flags.writeable = False
        return view

    # ------------------------------------------------------------------
    # maintenance writes (Section 2.1: "At most one additional page
    # access is needed for an updated tuple.")
    # ------------------------------------------------------------------

    def _rewrite_entry_on_disk(self, index: int) -> None:
        with open(self.path, "r+b") as f:
            f.seek(index * self.value_width)
            f.write(self._values[index : index + 1].tobytes())
            if self._valid is not None:
                f.seek(self.num_entries * self.value_width + index)
                f.write(self._valid[index : index + 1].tobytes())
        page_no = index * self.value_width // self.page_size
        self.pool.stats.page_writes += 1
        self.pool.invalidate(self.file_id, page_no)

    def set_entry(self, index: int, value: object, valid: bool = True) -> None:
        """Overwrite one entry in place — the one-page update of §2.1."""
        self._check_integrity()
        if not 0 <= index < self.num_entries:
            raise SmaStateError(f"entry {index} out of range [0, {self.num_entries})")
        self._values[index] = value
        if self._valid is not None:
            self._valid[index] = valid
        elif not valid:
            self._valid = np.ones(self.num_entries, dtype=bool)
            self._valid[index] = False
        self._rewrite_entry_on_disk(index)
        self._save_meta()

    def append_entries(
        self, values: np.ndarray, valid: np.ndarray | None = None
    ) -> None:
        """Extend the file when new buckets are appended to the relation.

        The body rewrite happens *before* the meta sidecar update, so a
        crash (or injected torn write) in between leaves the old
        checksum against the new partial body — detectable on reopen and
        repairable by rebuilding from the heap.
        """
        self._check_integrity()
        if values.dtype != self._values.dtype:
            raise SmaStateError(
                f"appended dtype {values.dtype} != file dtype {self._values.dtype}"
            )
        had_valid = self._valid is not None
        if had_valid and valid is None:
            valid = np.ones(len(values), dtype=bool)
        if not had_valid and valid is not None and not valid.all():
            self._valid = np.ones(self.num_entries, dtype=bool)
            had_valid = True
        self._values = np.concatenate([self._values, values])
        if self._valid is not None:
            appended = (
                np.ones(len(values), dtype=bool) if valid is None else valid.astype(bool)
            )
            self._valid = np.concatenate([self._valid, appended])
        # Rewrite the whole file: validity sits after the values, so an
        # append moves it.  Charge only the genuinely touched tail pages
        # for the values (the paper's cheap-append), plus the tiny
        # validity region when present.
        old_pages = self.num_pages
        body = self._serialize()
        self._write_body(body)
        first_touched = max(0, old_pages - 1)
        for page_no in range(first_touched, self.num_pages):
            self.pool.stats.page_writes += 1
            self.pool.invalidate(self.file_id, page_no)
        self._save_meta()

    def __repr__(self) -> str:
        return (
            f"SmaFile({os.path.basename(self.path)!r}, "
            f"entries={self.num_entries}, dtype={self._values.dtype}, "
            f"pages={self.num_pages})"
        )
