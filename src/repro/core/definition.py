"""SMA definitions — the ``define sma`` statement of Section 2.1.

A definition is a named, single-aggregate, single-relation query with an
optional ``group by`` clause:

.. code-block:: sql

    define sma qty
    select sum(L_QUANTITY)
    from LINEITEM
    group by L_RETURNFLAG, L_LINESTATUS

The paper's restrictions are enforced here:

* the select clause contains exactly one entry (one aggregate);
* the from clause names exactly one relation (no joins — relaxed only by
  the dedicated semi-join SMAs of Section 4);
* no order specification;
* the aggregate is one of min, max, sum, count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SmaDefinitionError
from repro.core.aggregates import AggregateSpec, check_materializable
from repro.storage.schema import Schema


@dataclass(frozen=True)
class SmaDefinition:
    """One ``define sma`` statement."""

    name: str
    table_name: str
    aggregate: AggregateSpec
    group_by: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise SmaDefinitionError(f"invalid SMA name {self.name!r}")
        check_materializable(self.aggregate)
        if len(set(self.group_by)) != len(self.group_by):
            raise SmaDefinitionError(
                f"duplicate group-by columns in {self.group_by}"
            )

    def validate(self, schema: Schema) -> None:
        """Check every referenced column against the relation's schema."""
        self.aggregate.validate(schema)
        for column in self.aggregate.columns():
            schema.column(column)
        for column in self.group_by:
            schema.column(column)

    @property
    def grouped(self) -> bool:
        return bool(self.group_by)

    def matches(self, aggregate: AggregateSpec, group_by: tuple[str, ...]) -> bool:
        """True when this definition materializes exactly that aggregate.

        Matching is structural: the aggregate kind and argument expression
        tree must be equal, and the group-by column tuples identical.  A
        finer-grouped SMA could in principle serve a coarser query (cf.
        the paper's citation of [10]); that roll-up generalization lives
        in the planner, not here.
        """
        return self.aggregate == aggregate and self.group_by == group_by

    def sql(self) -> str:
        """Render back to the paper's ``define sma`` syntax."""
        lines = [
            f"define sma {self.name}",
            f"select {self.aggregate}",
            f"from {self.table_name}",
        ]
        if self.group_by:
            lines.append("group by " + ", ".join(self.group_by))
        return "\n".join(lines)

    def __str__(self) -> str:
        grouped = f" group by {', '.join(self.group_by)}" if self.group_by else ""
        return f"sma {self.name}: {self.aggregate} on {self.table_name}{grouped}"
