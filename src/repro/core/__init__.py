"""The paper's contribution: Small Materialized Aggregates.

Definitions, SMA-files, bulkloading, the Section 3.1 grading rules,
incremental maintenance, hierarchical SMAs and semi-join SMAs.
"""

from repro.core.aggregates import (
    AggregateKind,
    AggregateSpec,
    average,
    count_star,
    maximum,
    minimum,
    total,
)
from repro.core.builder import SmaBuildReport, build_sma_set
from repro.core.definition import SmaDefinition
from repro.core.grade import (
    partition_column_column,
    partition_column_const,
    partition_count_sma,
)
from repro.core.grouping import GroupKey, bucket_groups, group_key_label
from repro.core.hierarchy import HierarchicalMinMax
from repro.core.maintenance import SmaMaintainer, compute_bucket_entry
from repro.core.partition import BucketPartitioning, Grade
from repro.core.semijoin import (
    SemiJoinBounds,
    collect_bounds,
    reduction_predicate,
    semijoin,
)
from repro.core.sma_file import SmaFile
from repro.core.sma_set import SmaSet

__all__ = [
    "AggregateKind",
    "AggregateSpec",
    "BucketPartitioning",
    "Grade",
    "GroupKey",
    "HierarchicalMinMax",
    "SemiJoinBounds",
    "SmaBuildReport",
    "SmaDefinition",
    "SmaFile",
    "SmaMaintainer",
    "SmaSet",
    "collect_bounds",
    "compute_bucket_entry",
    "reduction_predicate",
    "semijoin",
    "average",
    "bucket_groups",
    "build_sma_set",
    "count_star",
    "group_key_label",
    "maximum",
    "minimum",
    "partition_column_column",
    "partition_column_const",
    "partition_count_sma",
    "total",
]
