"""Applying DML batches: serialization, intents, epochs (the write path).

:func:`apply_dml` is the single choke point every INSERT/UPDATE/DELETE
goes through — the SQL layer, the query service's write queue and the
shard workers' ``execute_dml`` frames all land here.  One application
follows the write-ahead protocol of :mod:`repro.storage.intents` under
the table's ingest lock:

1. take the catalog's per-table **ingest lock** (DML batches on one
   table apply strictly one at a time; readers never block);
2. append the **write-ahead intent** sidecar (pre-image geometry plus,
   for inserts, the trailing bucket's raw bytes);
3. write the data pages and advance/recompute the **SMA entries**
   through :class:`~repro.core.maintenance.SmaMaintainer` — the paper's
   "at most one additional page access" incremental maintenance;
4. flush the heap sidecars, bump the table's **ingest epoch** — the
   moment new readers see the batch — and only then **retire the
   intent** (so a crash before the epoch persists still leaves the
   intent behind to tell recovery a bump is owed).

Readers admitted before step 4 hold a :class:`~repro.storage.table.
TableView` pinned at the previous epoch: appends only grow the heap and
the view bounds every bucket read to its frozen geometry, so in-flight
scans never observe the new rows (and never see a torn trailing
bucket).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.maintenance import SmaMaintainer
from repro.errors import PlanningError
from repro.query.query import (
    DeleteStatement,
    DmlStatement,
    InsertStatement,
    UpdateStatement,
)
from repro.storage.catalog import Catalog
from repro.storage.intents import (
    insert_intent,
    load_intent,
    mutation_intent,
    resolve_intent,
    retire_intent,
    write_intent,
)


@dataclass(frozen=True)
class DmlOutcome:
    """What one applied DML batch did: rows touched, epoch produced."""

    op: str  # "insert" | "update" | "delete"
    table: str
    rows_affected: int
    epoch: int


def build_insert_batch(statement: InsertStatement, schema) -> np.ndarray:
    """Coerce an INSERT's literal rows into a schema-ordered record batch."""
    statement.validate(schema)
    if statement.columns and tuple(statement.columns) != tuple(schema.names):
        order = [statement.columns.index(name) for name in schema.names]
        rows = [tuple(row[i] for i in order) for row in statement.rows]
    else:
        rows = list(statement.rows)
    return schema.batch_from_rows(rows)


def apply_dml(catalog: Catalog, statement: DmlStatement) -> DmlOutcome:
    """Apply one DML statement crash-consistently; returns its outcome.

    Serialized per table via the catalog's ingest lock; the intent
    sidecar brackets the data + SMA writes so ``repro verify --repair``
    can replay or roll back a batch interrupted at any point.
    """
    if not isinstance(
        statement, (InsertStatement, UpdateStatement, DeleteStatement)
    ):
        raise PlanningError(
            f"cannot apply {type(statement).__name__} as DML"
        )
    table = catalog.table(statement.table)
    with catalog.ingest_lock(statement.table):
        # Self-heal: a pending intent means an earlier batch died between
        # its intent append and retire (crash, or an exception mid-apply).
        # Resolve its heap geometry before stacking a new intent on top;
        # ``repro verify --repair`` then settles any SMA entry drift.
        pending = load_intent(table.heap.path)
        if pending is not None:
            action = resolve_intent(table.heap, pending)
            catalog.integrity.record_intent_resolution(
                table=statement.table,
                op=pending.op,
                epoch=pending.epoch,
                action=action,
            )
            if (
                action == "replayed"
                and catalog.ingest_epoch(statement.table) < pending.epoch
            ):
                catalog.bump_ingest_epoch(statement.table)
        maintainer = SmaMaintainer(table, catalog.sma_sets(statement.table))
        next_epoch = catalog.ingest_epoch(statement.table) + 1
        if isinstance(statement, InsertStatement):
            batch = build_insert_batch(statement, table.schema)
            intent = insert_intent(
                table.heap, statement.table, next_epoch, len(batch)
            )
            write_intent(table.heap, intent)
            maintainer.insert(batch)
            affected = len(batch)
            op = "insert"
        elif isinstance(statement, UpdateStatement):
            statement.validate(table.schema)
            intent = mutation_intent(
                table.heap, statement.table, next_epoch, "update"
            )
            write_intent(table.heap, intent)
            affected = maintainer.update_where(
                statement.where, dict(statement.assignments)
            )
            op = "update"
        else:
            statement.validate(table.schema)
            intent = mutation_intent(
                table.heap, statement.table, next_epoch, "delete"
            )
            write_intent(table.heap, intent)
            affected = maintainer.delete_where(statement.where)
            op = "delete"
        # Durability point: data + SMA sidecars down, then the epoch
        # advances (readers switch snapshots), then the intent retires.
        # The bump MUST precede the retire: a crash after retiring but
        # before the manifest write would leave a fully-applied batch
        # with no intent to tell recovery the epoch is owed a bump.
        # With this order a pending intent always covers the gap, and
        # replay only bumps when the recorded epoch is still ahead.
        table.heap.flush()
        epoch = catalog.bump_ingest_epoch(statement.table)
        retire_intent(table.heap.path)
    return DmlOutcome(
        op=op, table=statement.table, rows_affected=affected, epoch=epoch
    )


__all__ = ["DmlOutcome", "apply_dml", "build_insert_batch"]
