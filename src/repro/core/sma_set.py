"""SMA sets: the collection of SMA-files that serves queries on a table.

"A single SMA is rarely useful, but in most situations a set of SMAs is
required to answer a query efficiently."  A :class:`SmaSet` groups the
materialized definitions (each expanded into one SMA-file per group),
answers the planner's two questions —

* *partition*: grade every bucket against a selection predicate using
  whatever min/max/count SMAs apply (Section 3.1, including grouped
  min/max and count-SMA grading), and
* *aggregate lookup*: find the SMA-files materializing a query
  aggregate so SMA_GAggr can take qualifying buckets' values straight
  from them —

and handles persistence of the whole set next to its SMA-files.
"""

from __future__ import annotations

import json
import os
import re

import numpy as np

from repro.errors import CatalogError, SmaStateError
from repro.core.aggregates import AggregateKind, AggregateSpec
from repro.core.definition import SmaDefinition
from repro.core.grade import (
    partition_column_column,
    partition_column_const,
    partition_count_sma,
)
from repro.core.grouping import GroupKey
from repro.core.partition import BucketPartitioning
from repro.core.sma_file import SmaFile
from repro.lang.expr import ColumnRef
from repro.lang.predicate import (
    And,
    ColumnColumnCmp,
    ColumnConstCmp,
    Not,
    Or,
    Predicate,
    TruePredicate,
)
from repro.lang.serde import (
    expr_from_json,
    expr_to_json,
    group_key_from_json,
    group_key_to_json,
)
from repro.storage.table import Table

_META_FILE = "smaset.json"


def _safe_fragment(text: str) -> str:
    """File-name-safe rendering of a group key part."""
    return re.sub(r"[^A-Za-z0-9_.-]", "_", text)


class SmaSet:
    """All SMA-files materialized under one name for one table."""

    def __init__(self, name: str, table: Table, directory: str):
        self.name = name
        self.table = table
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.definitions: dict[str, SmaDefinition] = {}
        self._files: dict[str, dict[GroupKey, SmaFile]] = {}
        #: optional second-level SMAs by column (Section 4); consulted
        #: by partition() before falling back to the flat min/max files.
        self._hierarchies: dict[str, object] = {}
        #: definitions withdrawn from service after failing integrity
        #: verification (name -> reason).  Quarantined definitions are
        #: skipped by every grading/lookup path — queries degrade to the
        #: heap scan — until ``repro verify --repair`` rebuilds them.
        self.quarantined: dict[str, str] = {}

    # ------------------------------------------------------------------
    # registration & persistence
    # ------------------------------------------------------------------

    def add_materialized(
        self, definition: SmaDefinition, files: dict[GroupKey, SmaFile]
    ) -> None:
        """Attach a freshly built definition with its per-group files."""
        if definition.name in self.definitions:
            raise CatalogError(
                f"SMA {definition.name!r} already in set {self.name!r}"
            )
        if definition.table_name != self.table.name:
            raise CatalogError(
                f"SMA on {definition.table_name!r} cannot join a set on "
                f"{self.table.name!r}"
            )
        self.definitions[definition.name] = definition
        self._files[definition.name] = dict(files)

    def file_path(self, definition_name: str, group_key: GroupKey) -> str:
        """Canonical path of one SMA-file inside this set's directory."""
        if group_key:
            suffix = "__" + "_".join(_safe_fragment(str(p)) for p in group_key)
        else:
            suffix = ""
        return os.path.join(self.directory, f"{definition_name}{suffix}.sma")

    def save(self) -> None:
        """Persist set metadata (definitions + file map) as JSON."""
        definitions = []
        for name, definition in self.definitions.items():
            files = [
                {
                    "group_key": group_key_to_json(key),
                    "path": os.path.relpath(sma.path, self.directory),
                }
                for key, sma in self._files[name].items()
            ]
            definitions.append(
                {
                    "name": name,
                    "kind": definition.aggregate.kind.value,
                    "argument": (
                        None
                        if definition.aggregate.argument is None
                        else expr_to_json(definition.aggregate.argument)
                    ),
                    "group_by": list(definition.group_by),
                    "files": files,
                }
            )
        meta = {"name": self.name, "table": self.table.name, "definitions": definitions}
        # Atomic (tmp + replace): the DML maintainer saves after every
        # batch; a crash mid-write must not garble the set manifest.
        meta_path = os.path.join(self.directory, _META_FILE)
        tmp = meta_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as f:
            json.dump(meta, f, indent=1)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, meta_path)

    @classmethod
    def open(cls, directory: str, table: Table) -> "SmaSet":
        """Re-open a persisted set; *table* must be the same relation."""
        with open(os.path.join(directory, _META_FILE), "r", encoding="utf-8") as f:
            meta = json.load(f)
        if meta["table"] != table.name:
            raise CatalogError(
                f"SMA set at {directory} belongs to table {meta['table']!r}, "
                f"not {table.name!r}"
            )
        sma_set = cls(meta["name"], table, directory)
        for entry in meta["definitions"]:
            argument = (
                None if entry["argument"] is None else expr_from_json(entry["argument"])
            )
            definition = SmaDefinition(
                entry["name"],
                table.name,
                AggregateSpec(AggregateKind(entry["kind"]), argument),
                tuple(entry["group_by"]),
            )
            files = {
                group_key_from_json(f["group_key"]): SmaFile.open(
                    os.path.join(directory, f["path"]), table.heap.pool
                )
                for f in entry["files"]
            }
            sma_set.add_materialized(definition, files)
        return sma_set

    def close(self) -> None:
        for files in self._files.values():
            for sma in files.values():
                sma.close()

    def delete_files(self) -> None:
        for files in self._files.values():
            for sma in files.values():
                sma.delete_files()
        meta_path = os.path.join(self.directory, _META_FILE)
        if os.path.exists(meta_path):
            os.remove(meta_path)

    # ------------------------------------------------------------------
    # inventory
    # ------------------------------------------------------------------

    def files_of(self, definition_name: str) -> dict[GroupKey, SmaFile]:
        try:
            return self._files[definition_name]
        except KeyError:
            raise CatalogError(
                f"no SMA {definition_name!r} in set {self.name!r}"
            ) from None

    def all_files(self) -> list[SmaFile]:
        return [sma for files in self._files.values() for sma in files.values()]

    # ------------------------------------------------------------------
    # quarantine (integrity degradation)
    # ------------------------------------------------------------------

    def quarantine(self, definition_name: str, reason: str) -> None:
        """Withdraw a definition from service until it is rebuilt."""
        if definition_name not in self.definitions:
            raise CatalogError(
                f"no SMA {definition_name!r} in set {self.name!r}"
            )
        self.quarantined.setdefault(definition_name, reason)

    def is_quarantined(self, definition_name: str) -> bool:
        return definition_name in self.quarantined

    def definition_for_path(self, path: str | None) -> str | None:
        """Which definition owns the SMA-file at *path* (None if unknown)."""
        if path is None:
            return None
        target = os.path.abspath(path)
        for name, files in self._files.items():
            for sma in files.values():
                if os.path.abspath(sma.path) == target:
                    return name
        return None

    def replace_files(self, definition_name: str, files: dict[GroupKey, SmaFile]) -> None:
        """Swap in freshly rebuilt files and lift any quarantine."""
        if definition_name not in self.definitions:
            raise CatalogError(
                f"no SMA {definition_name!r} in set {self.name!r}"
            )
        self._files[definition_name] = dict(files)
        self.quarantined.pop(definition_name, None)

    @property
    def num_files(self) -> int:
        return len(self.all_files())

    @property
    def total_pages(self) -> int:
        return sum(sma.num_pages for sma in self.all_files())

    @property
    def total_bytes(self) -> int:
        return sum(sma.size_bytes for sma in self.all_files())

    def definition_pages(self, definition_name: str) -> int:
        return sum(sma.num_pages for sma in self.files_of(definition_name).values())

    # ------------------------------------------------------------------
    # aggregate lookup (for SMA_GAggr)
    # ------------------------------------------------------------------

    def aggregate_files(
        self, spec: AggregateSpec, group_by: tuple[str, ...]
    ) -> dict[GroupKey, SmaFile] | None:
        """SMA-files materializing *spec* under exactly *group_by*, or None.

        Quarantined definitions are invisible here (and in every other
        lookup): a damaged SMA must never serve a query.
        """
        for name, definition in self.definitions.items():
            if name in self.quarantined:
                continue
            if definition.matches(spec, group_by):
                return self._files[name]
        return None

    def rollup_aggregate_files(
        self, spec: AggregateSpec, group_by: tuple[str, ...]
    ) -> tuple[dict[GroupKey, SmaFile], tuple[int, ...]] | None:
        """SMA-files for *spec* under *group_by* **or any finer grouping**.

        "In order to be useful, a SMA has to reflect the grouping of the
        query or a finer grouping" (Section 2.3, after [10]).  A finer
        SMA — grouped by a superset of the query's columns — serves the
        query by *rolling up*: every finer group key projects onto a
        coarse key and its per-bucket values aggregate into it (sums and
        counts add; mins/maxs combine by min/max).

        Returns ``(files, projection)`` where ``projection`` holds the
        positions of the query's group-by columns inside the
        definition's group-by tuple (empty for an exact match of an
        ungrouped query).  Exact matches are preferred (no roll-up
        work); among finer candidates the one with the fewest extra
        columns wins (fewest files to read).
        """
        exact = self.aggregate_files(spec, group_by)
        if exact is not None:
            return exact, tuple(range(len(group_by)))
        candidates: list[SmaDefinition] = []
        for definition in self.definitions.values():
            if definition.name in self.quarantined:
                continue
            if definition.aggregate != spec:
                continue
            if set(group_by) <= set(definition.group_by):
                candidates.append(definition)
        if not candidates:
            return None
        chosen = min(candidates, key=lambda d: len(d.group_by))
        projection = tuple(chosen.group_by.index(c) for c in group_by)
        return self._files[chosen.name], projection

    @staticmethod
    def project_group_key(key: GroupKey, projection: tuple[int, ...]) -> GroupKey:
        """Roll a finer group key up to the query's grouping."""
        return tuple(key[i] for i in projection)

    def find_definition(
        self, spec: AggregateSpec, group_by: tuple[str, ...]
    ) -> SmaDefinition | None:
        for definition in self.definitions.values():
            if definition.name in self.quarantined:
                continue
            if definition.matches(spec, group_by):
                return definition
        return None

    # ------------------------------------------------------------------
    # hierarchical SMAs (Section 4)
    # ------------------------------------------------------------------

    def build_hierarchy(
        self, column: str, *, entries_per_block: int | None = None
    ):
        """Derive and attach a two-level SMA for *column*.

        Requires ungrouped min and max definitions on the column.  Once
        attached, :meth:`partition` grades atoms on this column through
        the hierarchy: qualifying/disqualifying second-level blocks skip
        their first-level pages entirely.
        """
        from repro.core.hierarchy import HierarchicalMinMax

        min_files = self.aggregate_files(
            AggregateSpec(AggregateKind.MIN, ColumnRef(column)), ()
        )
        max_files = self.aggregate_files(
            AggregateSpec(AggregateKind.MAX, ColumnRef(column)), ()
        )
        if not min_files or not max_files:
            raise SmaStateError(
                f"a hierarchy on {column!r} needs ungrouped min and max SMAs"
            )
        hierarchy = HierarchicalMinMax.build(
            column,
            min_files[()],
            max_files[()],
            self.table.heap.pool,
            os.path.join(self.directory, "hierarchy"),
            entries_per_block=entries_per_block,
        )
        self._hierarchies[column] = hierarchy
        return hierarchy

    def hierarchy_for(self, column: str):
        """The attached hierarchy on *column*, or None."""
        return self._hierarchies.get(column)

    def drop_hierarchy(self, column: str) -> None:
        hierarchy = self._hierarchies.pop(column, None)
        if hierarchy is not None:
            hierarchy.delete_files()

    def invalidate_hierarchies(self) -> None:
        """Drop all hierarchies (DML changed the first-level files).

        Called by :class:`~repro.core.maintenance.SmaMaintainer` before
        any mutation; hierarchies are cheap to rebuild in bulk but are
        not incrementally maintained (the paper leaves them to bulk
        environments)."""
        for column in list(self._hierarchies):
            self.drop_hierarchy(column)

    # ------------------------------------------------------------------
    # predicate grading (Section 3.1)
    # ------------------------------------------------------------------

    def partition(
        self, predicate: Predicate, *, charge: bool = True
    ) -> BucketPartitioning:
        """Grade every bucket of the table against *predicate*.

        Every SMA-file consulted is charged exactly once per call (the
        operators scan all SMAs sequentially, in sync — Section 2.3),
        regardless of how many atoms reference the same column.
        """
        bound = predicate.bind(self.table.schema)
        used: set[int] = set()
        charged_files: list[SmaFile] = []

        def remember(sma: SmaFile) -> SmaFile:
            if id(sma) not in used:
                used.add(id(sma))
                charged_files.append(sma)
            return sma

        partitioning = self._walk(bound, remember, charge)
        if charge:
            for sma in charged_files:
                sma.values(charge=True)
        return partitioning

    def _walk(
        self, predicate: Predicate, remember, charge: bool
    ) -> BucketPartitioning:
        num_buckets = self.table.num_buckets
        if isinstance(predicate, TruePredicate):
            return BucketPartitioning.all_qualifying(num_buckets)
        if isinstance(predicate, And):
            result = self._walk(predicate.operands[0], remember, charge)
            for operand in predicate.operands[1:]:
                result = result & self._walk(operand, remember, charge)
            return result
        if isinstance(predicate, Or):
            result = self._walk(predicate.operands[0], remember, charge)
            for operand in predicate.operands[1:]:
                result = result | self._walk(operand, remember, charge)
            return result
        if isinstance(predicate, Not):
            return self._walk(predicate.operand, remember, charge).invert()
        if isinstance(predicate, ColumnConstCmp):
            return self._atom_const(predicate, remember, charge)
        if isinstance(predicate, ColumnColumnCmp):
            return self._atom_column(predicate, remember)
        raise SmaStateError(f"cannot grade predicate {predicate!r}")

    def _empty_buckets(self) -> np.ndarray:
        return np.asarray(self.table.heap.bucket_counts()) == 0

    def _atom_const(
        self, predicate: ColumnConstCmp, remember, charge: bool = False
    ) -> BucketPartitioning:
        num_buckets = self.table.num_buckets
        result = BucketPartitioning.all_ambivalent(num_buckets)
        empty = self._empty_buckets()

        hierarchy = self._hierarchies.get(predicate.column)
        if hierarchy is not None:
            # The hierarchy charges exactly the level-2 pages plus the
            # drilled level-1 ranges itself — the Section 4 saving.
            graded = hierarchy.partition(predicate, num_buckets, charge=charge)
            result = result.refine(
                BucketPartitioning(
                    graded.qualifying & ~empty,
                    graded.disqualifying | empty,
                )
            )
        else:
            bounds = self.column_bounds(predicate.column, remember)
            if bounds is not None:
                mins, maxs, valid = bounds
                result = result.refine(
                    partition_column_const(
                        predicate.op,
                        predicate.constant,
                        num_buckets,
                        mins=mins,
                        maxs=maxs,
                        valid=valid,
                        empty=empty,
                    )
                )

        value_counts = self._count_sma_values(predicate.column, remember)
        if value_counts is not None:
            result = result.refine(
                partition_count_sma(
                    predicate.op, predicate.constant, num_buckets, value_counts
                )
            )
        return result

    def _atom_column(
        self, predicate: ColumnColumnCmp, remember
    ) -> BucketPartitioning:
        num_buckets = self.table.num_buckets
        empty = self._empty_buckets()
        bounds_a = self.column_bounds(predicate.left, remember)
        bounds_b = self.column_bounds(predicate.right, remember)
        if bounds_a is None or bounds_b is None:
            return BucketPartitioning.all_ambivalent(num_buckets)
        mins_a, maxs_a, valid_a = bounds_a
        mins_b, maxs_b, valid_b = bounds_b
        valid = None
        if valid_a is not None or valid_b is not None:
            valid = np.ones(num_buckets, dtype=bool)
            if valid_a is not None:
                valid &= valid_a
            if valid_b is not None:
                valid &= valid_b
        return partition_column_column(
            predicate.op,
            num_buckets,
            mins_a=mins_a,
            maxs_a=maxs_a,
            mins_b=mins_b,
            maxs_b=maxs_b,
            valid=valid,
            empty=empty,
        )

    def column_bounds(
        self, column: str, remember=None
    ) -> tuple[np.ndarray | None, np.ndarray | None, np.ndarray | None] | None:
        """Per-bucket (mins, maxs, valid) for *column* from this set.

        Prefers ungrouped min/max SMAs; falls back to reducing grouped
        min/max SMAs over their groups ("we have to consider the maximum
        value of A for all groups", Section 3.1).  Returns None when the
        set materializes neither bound.
        """
        if remember is None:
            remember = lambda sma: sma  # noqa: E731 - trivial identity

        mins, valid_min = self._reduced_bound(column, AggregateKind.MIN, remember)
        maxs, valid_max = self._reduced_bound(column, AggregateKind.MAX, remember)
        if mins is None and maxs is None:
            return None
        valid: np.ndarray | None = None
        if valid_min is not None:
            valid = valid_min
        if valid_max is not None:
            valid = valid_max if valid is None else (valid & valid_max)
        return mins, maxs, valid

    def _reduced_bound(
        self, column: str, kind: AggregateKind, remember
    ) -> tuple[np.ndarray | None, np.ndarray | None]:
        spec = AggregateSpec(kind, ColumnRef(column))
        candidates = [
            name
            for name, definition in self.definitions.items()
            if definition.aggregate == spec and name not in self.quarantined
        ]
        if not candidates:
            return None, None
        # Prefer an ungrouped definition: one file instead of G.
        candidates.sort(key=lambda name: len(self.definitions[name].group_by))
        chosen = candidates[0]
        files = self._files[chosen]
        combined: np.ndarray | None = None
        combined_valid: np.ndarray | None = None
        for sma in files.values():
            remember(sma)
            values = sma.values(charge=False)
            mask = sma.valid_mask()
            valid = np.ones(len(values), dtype=bool) if mask is None else mask
            if combined is None:
                combined = values.copy()
                combined_valid = valid.copy()
                continue
            if kind is AggregateKind.MIN:
                better = values < combined
            else:
                better = values > combined
            take = valid & (~combined_valid | better)
            combined = np.where(take, values, combined)
            combined_valid = combined_valid | valid
        assert combined is not None and combined_valid is not None
        if combined_valid.all():
            return combined, None
        return combined, combined_valid

    def _count_sma_values(
        self, column: str, remember
    ) -> dict[object, np.ndarray] | None:
        """Per-value count vectors from a count SMA grouped solely by *column*."""
        for name, definition in self.definitions.items():
            if name in self.quarantined:
                continue
            if (
                definition.aggregate.kind is AggregateKind.COUNT
                and definition.group_by == (column,)
            ):
                files = self._files[name]
                result: dict[object, np.ndarray] = {}
                for key, sma in files.items():
                    remember(sma)
                    raw = sma.values(charge=False)
                    # Group keys are user-facing; comparisons must happen
                    # in the storage domain, so re-coerce the key value.
                    from repro.lang.values import storage_constant

                    stored = storage_constant(
                        self.table.schema.dtype_of(column), key[0]
                    )
                    result[stored] = raw
                return result
        return None

    def __repr__(self) -> str:
        return (
            f"SmaSet({self.name!r} on {self.table.name!r}: "
            f"{len(self.definitions)} definitions, {self.num_files} files, "
            f"{self.total_pages} pages)"
        )
