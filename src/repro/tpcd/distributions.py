"""Date distributions and physical clustering controls.

Three physical layouts of LINEITEM matter for the paper's experiments:

* ``sorted`` — LINEITEM sorted on L_SHIPDATE, the paper's "optimal case"
  for the headline Query 1 numbers;
* ``toc`` — *time-of-creation* order, the paper's implicit clustering:
  tuples arrive in the warehouse a normally distributed lag after their
  ship date, so physical order is *approximately* shipdate order — the
  diagonal data distribution of Figure 2;
* ``uniform`` — random physical order (no clustering; every bucket spans
  the full date range, the worst case for SMAs).

Plus the Figure 5 knob: :func:`contaminate_buckets` starts from sorted
data and plants one out-of-range tuple into a chosen fraction of
buckets, making *exactly* that fraction ambivalent for any mid-range
shipdate predicate — scattered uniformly, which is what produces the
skip-heavy I/O pattern behind the paper's break-even curve.
"""

from __future__ import annotations

import datetime

import numpy as np

from repro.errors import ReproError
from repro.storage.types import date_to_int

#: TPC-D date window: orders span 1992-01-01 .. 1998-12-01 minus lead time.
START_DATE = datetime.date(1992, 1, 1)
END_DATE = datetime.date(1998, 12, 1)
CURRENT_DATE = datetime.date(1995, 6, 17)

START_INT = date_to_int(START_DATE)
END_INT = date_to_int(END_DATE)
CURRENT_INT = date_to_int(CURRENT_DATE)

#: The paper's data cube arithmetic: "Every date attribute of LINEITEM
#: ... has a range of seven years or 2556 days."
DATE_RANGE_DAYS = 2556

Clustering = str  # "sorted" | "toc" | "uniform"
CLUSTERINGS = ("sorted", "toc", "uniform")


def check_clustering(clustering: str) -> str:
    if clustering not in CLUSTERINGS:
        raise ReproError(
            f"unknown clustering {clustering!r}; pick one of {CLUSTERINGS}"
        )
    return clustering


def introduction_lag_days(
    rng: np.random.Generator, n: int, mean: float = 14.0, std: float = 5.0
) -> np.ndarray:
    """Days between an event and its entry into the warehouse.

    "In practice, there will be an average time needed before the data
    is entered into the database and the real intervals needed will
    exhibit a normal distribution around this average time."  (Section
    2.2).  Negative draws clamp to zero — data cannot be entered before
    it exists.
    """
    lag = rng.normal(mean, std, size=n)
    return np.maximum(lag, 0.0)


def diagonal_distribution(
    rng: np.random.Generator,
    n: int,
    *,
    lag_mean: float = 14.0,
    lag_std: float = 5.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample Figure 2's diagonal data distribution.

    Returns ``(event_dates, introduction_dates)`` as int day numbers:
    event dates uniform over the TPC-D window, introduction dates the
    event date plus a normal lag.  All points lie on or right of the
    diagonal; physical (introduction) order approximates event order.
    """
    events = rng.integers(START_INT, END_INT + 1, size=n)
    intro = events + np.round(introduction_lag_days(rng, n, lag_mean, lag_std))
    return events.astype(np.int64), intro.astype(np.int64)


def physical_order(
    records: np.ndarray,
    clustering: str,
    rng: np.random.Generator,
    *,
    date_column: str = "L_SHIPDATE",
    lag_mean: float = 14.0,
    lag_std: float = 5.0,
) -> np.ndarray:
    """Reorder a record batch into the requested physical layout."""
    check_clustering(clustering)
    if clustering == "sorted":
        order = np.argsort(records[date_column], kind="stable")
    elif clustering == "toc":
        lag = np.round(introduction_lag_days(rng, len(records), lag_mean, lag_std))
        introduction = records[date_column].astype(np.int64) + lag.astype(np.int64)
        order = np.argsort(introduction, kind="stable")
    else:  # uniform
        order = rng.permutation(len(records))
    return records[order]


def contaminate_buckets(
    records: np.ndarray,
    tuples_per_bucket: int,
    fraction: float,
    rng: np.random.Generator,
    *,
    date_column: str = "L_SHIPDATE",
) -> tuple[np.ndarray, int]:
    """Plant one far-away tuple into ``fraction`` of the buckets.

    *records* must already be sorted on *date_column* and is modified as
    a copy: the chosen buckets are paired up and the first tuple of each
    pair member is swapped, so each receives a date from the other end
    of the file.  For any predicate constant well inside the date range,
    exactly the contaminated buckets grade ambivalent (plus at most one
    boundary bucket).  Returns ``(new_records, buckets_contaminated)``.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ReproError(f"fraction must be in [0, 1], got {fraction}")
    records = records.copy()
    num_buckets = (len(records) + tuples_per_bucket - 1) // tuples_per_bucket
    k = int(round(num_buckets * fraction))
    if k < 2:
        return records, 0
    chosen = np.sort(rng.choice(num_buckets, size=k, replace=False))
    # Pair the first half with the second half so every swap crosses a
    # large date distance (sorted input ⇒ far buckets have far dates).
    half = k // 2
    for low, high in zip(chosen[:half], chosen[k - half :]):
        i = int(low) * tuples_per_bucket
        j = int(high) * tuples_per_bucket
        records[[i, j]] = records[[j, i]]
    # With an odd k the middle bucket is swapped against the last one.
    if k % 2 == 1:
        middle = int(chosen[half]) * tuples_per_bucket
        last = int(chosen[-1]) * tuples_per_bucket + 1
        if last < len(records):
            records[[middle, last]] = records[[last, middle]]
    return records, k
