"""TPC-D data generation (dbgen re-implementation, vectorised).

Generates all eight TPC-D relations at a configurable scale factor with
numpy, matching the schema, key structure, value ranges and date windows
the paper's arithmetic depends on.  Text columns draw from small word
pools — their *content* is irrelevant to every experiment, their *width*
is honoured by the schemas.

Determinism: everything flows from one ``numpy.random.Generator`` seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError
from repro.tpcd import schema as tpcd_schema
from repro.tpcd.distributions import CURRENT_INT, END_INT, START_INT

_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECI", "5-LOW"]
_INSTRUCTIONS = ["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"]
_MODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
_CONTAINERS = ["SM CASE", "LG BOX", "MED BAG", "JUMBO JAR", "WRAP PKG"]
_TYPES = ["STANDARD ANODIZED TIN", "SMALL PLATED COPPER", "ECONOMY BRUSHED STEEL"]
_NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]
_REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
_WORDS = [
    "final", "pending", "express", "regular", "quick", "bold", "even",
    "silent", "ironic", "careful", "furious", "blithe", "special", "dogged",
]

#: Maximum lead time between order date and ship/receipt dates; orders
#: are drawn so every derived date stays inside the TPC-D window.
_MAX_LEAD_DAYS = 152


@dataclass(frozen=True)
class GenConfig:
    """Scale and seed for one generated database instance."""

    scale_factor: float = 0.01
    seed: int = 42

    def __post_init__(self) -> None:
        if self.scale_factor <= 0:
            raise ReproError(f"scale_factor must be positive, got {self.scale_factor}")

    def cardinality(self, table: str) -> int:
        base = tpcd_schema.BASE_CARDINALITIES[table]
        if table in ("NATION", "REGION"):
            return base
        return max(1, int(round(base * self.scale_factor)))


def _comments(rng: np.random.Generator, n: int, width: int) -> np.ndarray:
    """Fixed-width pseudo comments from the word pool."""
    first = rng.integers(0, len(_WORDS), size=n)
    second = rng.integers(0, len(_WORDS), size=n)
    pool = np.array(
        [f"{a} {b} requests" for a in _WORDS for b in _WORDS], dtype=f"S{width}"
    )
    return pool[first * len(_WORDS) + second]


def _pick(rng: np.random.Generator, pool: list[str], n: int, width: int) -> np.ndarray:
    values = np.array(pool, dtype=f"S{width}")
    return values[rng.integers(0, len(pool), size=n)]


def generate_region(config: GenConfig, rng: np.random.Generator) -> np.ndarray:
    n = len(_REGIONS)
    return tpcd_schema.REGION.batch_from_columns(
        R_REGIONKEY=np.arange(n, dtype=np.int32),
        R_NAME=np.array(_REGIONS, dtype="S25"),
        R_COMMENT=_comments(rng, n, 20),
    )


def generate_nation(config: GenConfig, rng: np.random.Generator) -> np.ndarray:
    n = len(_NATIONS)
    return tpcd_schema.NATION.batch_from_columns(
        N_NATIONKEY=np.arange(n, dtype=np.int32),
        N_NAME=np.array([name for name, _ in _NATIONS], dtype="S25"),
        N_REGIONKEY=np.array([region for _, region in _NATIONS], dtype=np.int32),
        N_COMMENT=_comments(rng, n, 20),
    )


def generate_supplier(config: GenConfig, rng: np.random.Generator) -> np.ndarray:
    n = config.cardinality("SUPPLIER")
    keys = np.arange(1, n + 1, dtype=np.int32)
    return tpcd_schema.SUPPLIER.batch_from_columns(
        S_SUPPKEY=keys,
        S_NAME=np.char.add(b"Supplier#", keys.astype("S16")).astype("S25"),
        S_ADDRESS=_comments(rng, n, 20),
        S_NATIONKEY=rng.integers(0, len(_NATIONS), size=n).astype(np.int32),
        S_PHONE=np.array([b"11-123-456-7890"] * n, dtype="S15"),
        S_ACCTBAL=rng.uniform(-999.99, 9999.99, size=n),
        S_COMMENT=_comments(rng, n, 20),
    )


def generate_customer(config: GenConfig, rng: np.random.Generator) -> np.ndarray:
    n = config.cardinality("CUSTOMER")
    keys = np.arange(1, n + 1, dtype=np.int32)
    return tpcd_schema.CUSTOMER.batch_from_columns(
        C_CUSTKEY=keys,
        C_NAME=np.char.add(b"Customer#", keys.astype("S9")).astype("S18"),
        C_ADDRESS=_comments(rng, n, 20),
        C_NATIONKEY=rng.integers(0, len(_NATIONS), size=n).astype(np.int32),
        C_PHONE=np.array([b"22-123-456-7890"] * n, dtype="S15"),
        C_ACCTBAL=rng.uniform(-999.99, 9999.99, size=n),
        C_MKTSEGMENT=_pick(rng, _SEGMENTS, n, 10),
        C_COMMENT=_comments(rng, n, 20),
    )


def generate_part(config: GenConfig, rng: np.random.Generator) -> np.ndarray:
    n = config.cardinality("PART")
    keys = np.arange(1, n + 1, dtype=np.int32)
    return tpcd_schema.PART.batch_from_columns(
        P_PARTKEY=keys,
        P_NAME=_comments(rng, n, 33),
        P_MFGR=_pick(rng, [f"Manufacturer#{i}" for i in range(1, 6)], n, 25),
        P_BRAND=_pick(rng, [f"Brand#{i}{j}" for i in range(1, 6) for j in range(1, 6)], n, 10),
        P_TYPE=_pick(rng, _TYPES, n, 25),
        P_SIZE=rng.integers(1, 51, size=n).astype(np.int32),
        P_CONTAINER=_pick(rng, _CONTAINERS, n, 10),
        P_RETAILPRICE=900.0 + (keys % 1000) * 1.0 + rng.uniform(0, 100, size=n),
        P_COMMENT=_comments(rng, n, 14),
    )


def generate_partsupp(config: GenConfig, rng: np.random.Generator) -> np.ndarray:
    num_parts = config.cardinality("PART")
    per_part = 4
    n = num_parts * per_part
    part_keys = np.repeat(np.arange(1, num_parts + 1, dtype=np.int32), per_part)
    num_suppliers = config.cardinality("SUPPLIER")
    supp_keys = (
        rng.integers(1, num_suppliers + 1, size=n).astype(np.int32)
    )
    return tpcd_schema.PARTSUPP.batch_from_columns(
        PS_PARTKEY=part_keys,
        PS_SUPPKEY=supp_keys,
        PS_AVAILQTY=rng.integers(1, 10_000, size=n).astype(np.int32),
        PS_SUPPLYCOST=rng.uniform(1.0, 1000.0, size=n),
        PS_COMMENT=_comments(rng, n, 20),
    )


def generate_orders(config: GenConfig, rng: np.random.Generator) -> np.ndarray:
    n = config.cardinality("ORDERS")
    keys = np.arange(1, n + 1, dtype=np.int32)
    num_customers = config.cardinality("CUSTOMER")
    order_dates = rng.integers(
        START_INT, END_INT - _MAX_LEAD_DAYS + 1, size=n
    ).astype(np.int32)
    return tpcd_schema.ORDERS.batch_from_columns(
        O_ORDERKEY=keys,
        O_CUSTKEY=rng.integers(1, num_customers + 1, size=n).astype(np.int32),
        O_ORDERSTATUS=_pick(rng, ["F", "O", "P"], n, 1),
        O_TOTALPRICE=rng.uniform(1000.0, 450_000.0, size=n),
        O_ORDERDATE=order_dates,
        O_ORDERPRIORITY=_pick(rng, _PRIORITIES, n, 15),
        O_CLERK=_pick(rng, [f"Clerk#{i:09d}" for i in range(1, 101)], n, 15),
        O_SHIPPRIORITY=np.zeros(n, dtype=np.int32),
        O_COMMENT=_comments(rng, n, 23),
    )


def generate_lineitem(
    config: GenConfig,
    rng: np.random.Generator,
    orders: np.ndarray | None = None,
) -> np.ndarray:
    """LINEITEM derived from ORDERS (1–7 lines per order, avg 4).

    If *orders* is None a fresh ORDERS batch is generated internally
    (and discarded) so LINEITEM can be produced standalone.
    """
    if orders is None:
        orders = generate_orders(config, rng)
    per_order = rng.integers(1, 8, size=len(orders))
    n = int(per_order.sum())
    order_keys = np.repeat(orders["O_ORDERKEY"], per_order)
    order_dates = np.repeat(orders["O_ORDERDATE"], per_order).astype(np.int64)

    starts = np.concatenate([[0], np.cumsum(per_order)[:-1]])
    line_numbers = (np.arange(n) - np.repeat(starts, per_order) + 1).astype(np.int32)

    quantity = rng.integers(1, 51, size=n).astype(np.float64)
    unit_price = rng.uniform(900.0, 2100.0, size=n)
    ship_date = order_dates + rng.integers(1, 122, size=n)
    commit_date = order_dates + rng.integers(30, 91, size=n)
    receipt_date = ship_date + rng.integers(1, 31, size=n)

    # Return flag per TPC-D: 'R' or 'A' when the item was received
    # before the current date, 'N' otherwise.
    received = receipt_date <= CURRENT_INT
    returnflag = np.where(
        received,
        np.where(rng.random(n) < 0.5, b"R", b"A"),
        b"N",
    ).astype("S1")
    linestatus = np.where(ship_date > CURRENT_INT, b"O", b"F").astype("S1")

    num_parts = config.cardinality("PART")
    num_suppliers = config.cardinality("SUPPLIER")
    return tpcd_schema.LINEITEM.batch_from_columns(
        L_ORDERKEY=order_keys,
        L_PARTKEY=rng.integers(1, num_parts + 1, size=n).astype(np.int32),
        L_SUPPKEY=rng.integers(1, num_suppliers + 1, size=n).astype(np.int32),
        L_LINENUMBER=line_numbers,
        L_QUANTITY=quantity,
        L_EXTENDEDPRICE=np.round(quantity * unit_price, 2),
        L_DISCOUNT=rng.integers(0, 11, size=n) / 100.0,
        L_TAX=rng.integers(0, 9, size=n) / 100.0,
        L_RETURNFLAG=returnflag,
        L_LINESTATUS=linestatus,
        L_SHIPDATE=ship_date.astype(np.int32),
        L_COMMITDATE=commit_date.astype(np.int32),
        L_RECEIPTDATE=receipt_date.astype(np.int32),
        L_SHIPINSTRUCT=_pick(rng, _INSTRUCTIONS, n, 25),
        L_SHIPMODE=_pick(rng, _MODES, n, 10),
        L_COMMENT=_comments(rng, n, 27),
    )


_GENERATORS = {
    "REGION": generate_region,
    "NATION": generate_nation,
    "SUPPLIER": generate_supplier,
    "CUSTOMER": generate_customer,
    "PART": generate_part,
    "PARTSUPP": generate_partsupp,
    "ORDERS": generate_orders,
}


def generate_tables(
    config: GenConfig, tables: tuple[str, ...]
) -> dict[str, np.ndarray]:
    """Generate the requested tables, sharing ORDERS with LINEITEM."""
    rng = np.random.default_rng(config.seed)
    batches: dict[str, np.ndarray] = {}
    want_lineitem = "LINEITEM" in tables
    for name in tables:
        if name == "LINEITEM":
            continue
        try:
            batches[name] = _GENERATORS[name](config, rng)
        except KeyError:
            raise ReproError(f"unknown TPC-D table {name!r}") from None
    if want_lineitem:
        orders = batches.get("ORDERS")
        batches["LINEITEM"] = generate_lineitem(config, rng, orders)
    return batches
