"""The paper's workloads: TPC-D Query 1 (Figure 3), its eight SMA
definitions (Figure 4), and TPC-D Query 6 as a second, selection-heavy
workload exercising multi-SMA conjunctive grading.

Expression trees for the derived sums are built by shared helpers so the
query side and the SMA-definition side are *structurally identical* —
that is how the planner matches them.
"""

from __future__ import annotations

import datetime

from repro.core.aggregates import average, count_star, maximum, minimum, total
from repro.core.definition import SmaDefinition
from repro.lang.expr import ScalarExpr, col, const, mul, sub, add
from repro.lang.predicate import and_, cmp
from repro.query.query import AggregateQuery, OutputAggregate

#: The fixed date of Query 1's WHERE clause: DATE '1998-12-01'.
QUERY1_BASE_DATE = datetime.date(1998, 12, 1)


def disc_price_expr() -> ScalarExpr:
    """``L_EXTENDEDPRICE * (1 - L_DISCOUNT)``"""
    return mul(col("L_EXTENDEDPRICE"), sub(const(1), col("L_DISCOUNT")))


def charge_expr() -> ScalarExpr:
    """``L_EXTENDEDPRICE * (1 - L_DISCOUNT) * (1 + L_TAX)``"""
    return mul(disc_price_expr(), add(const(1), col("L_TAX")))


def revenue_expr() -> ScalarExpr:
    """``L_EXTENDEDPRICE * L_DISCOUNT`` (Query 6's aggregate)."""
    return mul(col("L_EXTENDEDPRICE"), col("L_DISCOUNT"))


def query1(
    delta: int = 90,
    table: str = "LINEITEM",
    cutoff: datetime.date | None = None,
) -> AggregateQuery:
    """TPC-D Query 1 exactly as in Figure 3, parameterized by [delta].

    An explicit *cutoff* overrides the delta arithmetic — the Figure 5
    sweep uses this to place the predicate at a chosen quantile.
    """
    if cutoff is None:
        cutoff = QUERY1_BASE_DATE - datetime.timedelta(days=delta)
    return AggregateQuery(
        table=table,
        aggregates=(
            OutputAggregate("SUM_QTY", total(col("L_QUANTITY"))),
            OutputAggregate("SUM_BASE_PRICE", total(col("L_EXTENDEDPRICE"))),
            OutputAggregate("SUM_DISC_PRICE", total(disc_price_expr())),
            OutputAggregate("SUM_CHARGE", total(charge_expr())),
            OutputAggregate("AVG_QTY", average(col("L_QUANTITY"))),
            OutputAggregate("AVG_PRICE", average(col("L_EXTENDEDPRICE"))),
            OutputAggregate("AVG_DISC", average(col("L_DISCOUNT"))),
            OutputAggregate("COUNT_ORDER", count_star()),
        ),
        where=cmp("L_SHIPDATE", "<=", cutoff),
        group_by=("L_RETURNFLAG", "L_LINESTATUS"),
        order_by=("L_RETURNFLAG", "L_LINESTATUS"),
    )


#: Query 1's grouping, abbreviated L_RETFLAG / L_LINESTAT in Figure 4.
QUERY1_GROUPING = ("L_RETURNFLAG", "L_LINESTATUS")


def query1_sma_definitions(table: str = "LINEITEM") -> list[SmaDefinition]:
    """The eight SMA definitions of Figure 4, verbatim.

    ``min`` and ``max`` on L_SHIPDATE are ungrouped (selection SMAs);
    the six others group by L_RETURNFLAG, L_LINESTATUS and expand into
    four SMA-files each — 26 SMA-files total, as the paper counts.
    """
    grouping = QUERY1_GROUPING
    return [
        SmaDefinition("max", table, maximum(col("L_SHIPDATE"))),
        SmaDefinition("min", table, minimum(col("L_SHIPDATE"))),
        SmaDefinition("count", table, count_star(), grouping),
        SmaDefinition("qty", table, total(col("L_QUANTITY")), grouping),
        SmaDefinition("dis", table, total(col("L_DISCOUNT")), grouping),
        SmaDefinition("ext", table, total(col("L_EXTENDEDPRICE")), grouping),
        SmaDefinition("extdis", table, total(disc_price_expr()), grouping),
        SmaDefinition("extdistax", table, total(charge_expr()), grouping),
    ]


def query6(
    *,
    from_date: datetime.date = datetime.date(1994, 1, 1),
    discount: float = 0.06,
    quantity: float = 24.0,
    table: str = "LINEITEM",
) -> AggregateQuery:
    """TPC-D Query 6: forecasting revenue change.

    A selection on three attributes with an ungrouped sum — the
    conjunctive-grading showcase: every atom contributes its own bucket
    partitioning and they combine with the Section 3.1 ``and`` algebra.
    """
    to_date = datetime.date(from_date.year + 1, from_date.month, from_date.day)
    return AggregateQuery(
        table=table,
        aggregates=(
            OutputAggregate("REVENUE", total(revenue_expr())),
            OutputAggregate("MATCHES", count_star()),
        ),
        where=and_(
            cmp("L_SHIPDATE", ">=", from_date),
            cmp("L_SHIPDATE", "<", to_date),
            cmp("L_DISCOUNT", ">=", round(discount - 0.01, 2)),
            cmp("L_DISCOUNT", "<=", round(discount + 0.01, 2)),
            cmp("L_QUANTITY", "<", quantity),
        ),
    )


def query6_sma_definitions(table: str = "LINEITEM") -> list[SmaDefinition]:
    """SMAs serving Query 6: bounds on all three restricted attributes
    plus the ungrouped revenue sum and count."""
    return [
        SmaDefinition("ship_min", table, minimum(col("L_SHIPDATE"))),
        SmaDefinition("ship_max", table, maximum(col("L_SHIPDATE"))),
        SmaDefinition("disc_min", table, minimum(col("L_DISCOUNT"))),
        SmaDefinition("disc_max", table, maximum(col("L_DISCOUNT"))),
        SmaDefinition("qty_min", table, minimum(col("L_QUANTITY"))),
        SmaDefinition("qty_max", table, maximum(col("L_QUANTITY"))),
        SmaDefinition("revenue", table, total(revenue_expr())),
        SmaDefinition("cnt", table, count_star()),
    ]
