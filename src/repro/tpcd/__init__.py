"""TPC-D substrate: schemas, dbgen, clustering layouts, paper workloads."""

from repro.tpcd.dbgen import GenConfig, generate_tables
from repro.tpcd.distributions import (
    CLUSTERINGS,
    CURRENT_DATE,
    DATE_RANGE_DAYS,
    END_DATE,
    START_DATE,
    contaminate_buckets,
    diagonal_distribution,
    physical_order,
)
from repro.tpcd.loader import LoadedLineitem, load_lineitem, load_table, load_tpcd
from repro.tpcd.queries import (
    QUERY1_BASE_DATE,
    QUERY1_GROUPING,
    charge_expr,
    disc_price_expr,
    query1,
    query1_sma_definitions,
    query6,
    query6_sma_definitions,
    revenue_expr,
)
from repro.tpcd.schema import ALL_SCHEMAS, BASE_CARDINALITIES, LINEITEM, ORDERS

__all__ = [
    "ALL_SCHEMAS",
    "BASE_CARDINALITIES",
    "CLUSTERINGS",
    "CURRENT_DATE",
    "DATE_RANGE_DAYS",
    "END_DATE",
    "GenConfig",
    "LINEITEM",
    "LoadedLineitem",
    "ORDERS",
    "QUERY1_BASE_DATE",
    "QUERY1_GROUPING",
    "START_DATE",
    "charge_expr",
    "contaminate_buckets",
    "diagonal_distribution",
    "disc_price_expr",
    "generate_tables",
    "load_lineitem",
    "load_table",
    "load_tpcd",
    "physical_order",
    "query1",
    "query1_sma_definitions",
    "query6",
    "query6_sma_definitions",
    "revenue_expr",
]
