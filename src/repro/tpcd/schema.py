"""TPC-D table schemas (fixed-width adaptation).

All eight TPC-D relations, with column types chosen so the byte
arithmetic the paper relies on comes out right.  Text columns are
fixed-width CHAR (the storage engine stores fixed-width records); the
LINEITEM comment is CHAR(27), tuned so the record is 124 bytes wide and
a 4 KB page holds 32 tuples — matching the paper's ≈ 733.33 MB LINEITEM
at SF = 1 (6.0 M tuples / 32 per page ≈ 187.7 k pages).  This width
substitution is documented in DESIGN.md; none of the experiments read
comment *content*.
"""

from __future__ import annotations

from repro.storage.schema import Schema
from repro.storage.types import DATE, FLOAT64, INT32, char

LINEITEM = Schema.of(
    ("L_ORDERKEY", INT32),
    ("L_PARTKEY", INT32),
    ("L_SUPPKEY", INT32),
    ("L_LINENUMBER", INT32),
    ("L_QUANTITY", FLOAT64),
    ("L_EXTENDEDPRICE", FLOAT64),
    ("L_DISCOUNT", FLOAT64),
    ("L_TAX", FLOAT64),
    ("L_RETURNFLAG", char(1)),
    ("L_LINESTATUS", char(1)),
    ("L_SHIPDATE", DATE),
    ("L_COMMITDATE", DATE),
    ("L_RECEIPTDATE", DATE),
    ("L_SHIPINSTRUCT", char(25)),
    ("L_SHIPMODE", char(10)),
    ("L_COMMENT", char(27)),
)

ORDERS = Schema.of(
    ("O_ORDERKEY", INT32),
    ("O_CUSTKEY", INT32),
    ("O_ORDERSTATUS", char(1)),
    ("O_TOTALPRICE", FLOAT64),
    ("O_ORDERDATE", DATE),
    ("O_ORDERPRIORITY", char(15)),
    ("O_CLERK", char(15)),
    ("O_SHIPPRIORITY", INT32),
    ("O_COMMENT", char(23)),
)

CUSTOMER = Schema.of(
    ("C_CUSTKEY", INT32),
    ("C_NAME", char(18)),
    ("C_ADDRESS", char(20)),
    ("C_NATIONKEY", INT32),
    ("C_PHONE", char(15)),
    ("C_ACCTBAL", FLOAT64),
    ("C_MKTSEGMENT", char(10)),
    ("C_COMMENT", char(20)),
)

PART = Schema.of(
    ("P_PARTKEY", INT32),
    ("P_NAME", char(33)),
    ("P_MFGR", char(25)),
    ("P_BRAND", char(10)),
    ("P_TYPE", char(25)),
    ("P_SIZE", INT32),
    ("P_CONTAINER", char(10)),
    ("P_RETAILPRICE", FLOAT64),
    ("P_COMMENT", char(14)),
)

SUPPLIER = Schema.of(
    ("S_SUPPKEY", INT32),
    ("S_NAME", char(25)),
    ("S_ADDRESS", char(20)),
    ("S_NATIONKEY", INT32),
    ("S_PHONE", char(15)),
    ("S_ACCTBAL", FLOAT64),
    ("S_COMMENT", char(20)),
)

PARTSUPP = Schema.of(
    ("PS_PARTKEY", INT32),
    ("PS_SUPPKEY", INT32),
    ("PS_AVAILQTY", INT32),
    ("PS_SUPPLYCOST", FLOAT64),
    ("PS_COMMENT", char(20)),
)

NATION = Schema.of(
    ("N_NATIONKEY", INT32),
    ("N_NAME", char(25)),
    ("N_REGIONKEY", INT32),
    ("N_COMMENT", char(20)),
)

REGION = Schema.of(
    ("R_REGIONKEY", INT32),
    ("R_NAME", char(25)),
    ("R_COMMENT", char(20)),
)

#: All eight relations by their TPC-D names.
ALL_SCHEMAS: dict[str, Schema] = {
    "LINEITEM": LINEITEM,
    "ORDERS": ORDERS,
    "CUSTOMER": CUSTOMER,
    "PART": PART,
    "SUPPLIER": SUPPLIER,
    "PARTSUPP": PARTSUPP,
    "NATION": NATION,
    "REGION": REGION,
}

#: Base cardinalities at scale factor 1 (TPC-D 1.x).
BASE_CARDINALITIES: dict[str, int] = {
    "CUSTOMER": 150_000,
    "ORDERS": 1_500_000,
    "LINEITEM": 6_001_215,  # approximate: ~4 lineitems per order
    "PART": 200_000,
    "SUPPLIER": 10_000,
    "PARTSUPP": 800_000,
    "NATION": 25,
    "REGION": 5,
}
