"""One-call TPC-D loading: generate → physically order → load → index.

The loader is what examples, tests and every experiment use to stand up
a database instance.  It owns the physical-layout knobs (clustering
strategy, bucket size, Figure 5 contamination) so experiments stay
declarative.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.core.builder import SmaBuildReport, build_sma_set
from repro.core.definition import SmaDefinition
from repro.core.sma_set import SmaSet
from repro.storage.catalog import Catalog
from repro.storage.table import Table
from repro.tpcd import schema as tpcd_schema
from repro.tpcd.dbgen import GenConfig, generate_tables
from repro.tpcd.distributions import contaminate_buckets, physical_order
from repro.tpcd.queries import query1_sma_definitions

#: Append granularity: bounds builder memory without affecting layout.
_CHUNK_RECORDS = 262_144


@dataclass
class LoadedLineitem:
    """A loaded LINEITEM with its (optionally) built SMA set."""

    table: Table
    sma_set: SmaSet | None = None
    build_reports: list[SmaBuildReport] = field(default_factory=list)
    contaminated_buckets: int = 0


def load_table(
    catalog: Catalog,
    name: str,
    records: np.ndarray,
    *,
    pages_per_bucket: int = 1,
    clustered_on: str | None = None,
) -> Table:
    """Create *name* in *catalog* and bulk-append *records* in chunks."""
    schema = tpcd_schema.ALL_SCHEMAS[name]
    table = catalog.create_table(
        name,
        schema,
        pages_per_bucket=pages_per_bucket,
        clustered_on=clustered_on,
    )
    for start in range(0, len(records), _CHUNK_RECORDS):
        table.append_batch(records[start : start + _CHUNK_RECORDS])
    table.heap.flush()
    return table


def load_lineitem(
    catalog: Catalog,
    *,
    scale_factor: float = 0.01,
    clustering: str = "sorted",
    seed: int = 42,
    pages_per_bucket: int = 1,
    contaminate_fraction: float = 0.0,
    sma_definitions: list[SmaDefinition] | None = None,
    sma_set_name: str = "q1",
    build_smas: bool = True,
    separate_scans: bool = False,
    table_name: str = "LINEITEM",
    lag_mean: float = 14.0,
    lag_std: float = 5.0,
) -> LoadedLineitem:
    """Generate, order, load and (optionally) SMA-index LINEITEM.

    ``contaminate_fraction > 0`` requires ``clustering="sorted"`` and
    plants foreign tuples into that fraction of buckets (the Figure 5
    knob).  ``lag_mean``/``lag_std`` shape the time-of-creation lag for
    ``clustering="toc"``.  Default SMA definitions are the paper's
    Figure 4 set.
    """
    config = GenConfig(scale_factor=scale_factor, seed=seed)
    rng = np.random.default_rng(seed + 1)
    records = generate_tables(config, ("LINEITEM",))["LINEITEM"]
    records = physical_order(
        records, clustering, rng, lag_mean=lag_mean, lag_std=lag_std
    )

    contaminated = 0
    if contaminate_fraction > 0.0:
        schema = tpcd_schema.LINEITEM
        from repro.storage.page import BucketLayout

        layout = BucketLayout(
            record_width=schema.record_width, pages_per_bucket=pages_per_bucket
        )
        records, contaminated = contaminate_buckets(
            records, layout.tuples_per_bucket, contaminate_fraction, rng
        )

    table = load_table(
        catalog,
        table_name,
        records,
        pages_per_bucket=pages_per_bucket,
        clustered_on="L_SHIPDATE" if clustering in ("sorted", "toc") else None,
    )

    loaded = LoadedLineitem(table=table, contaminated_buckets=contaminated)
    if build_smas:
        definitions = (
            sma_definitions
            if sma_definitions is not None
            else query1_sma_definitions(table_name)
        )
        directory = os.path.join(catalog.sma_dir(table_name), sma_set_name)
        sma_set, reports = build_sma_set(
            table,
            definitions,
            directory=directory,
            name=sma_set_name,
            separate_scans=separate_scans,
        )
        catalog.register_sma_set(table_name, sma_set)
        loaded.sma_set = sma_set
        loaded.build_reports = reports
    return loaded


def load_tpcd(
    catalog: Catalog,
    *,
    scale_factor: float = 0.01,
    seed: int = 42,
    tables: tuple[str, ...] = ("ORDERS", "LINEITEM"),
    clustering: str = "sorted",
) -> dict[str, Table]:
    """Load several TPC-D tables (LINEITEM gets the clustering layout)."""
    config = GenConfig(scale_factor=scale_factor, seed=seed)
    rng = np.random.default_rng(seed + 1)
    batches = generate_tables(config, tables)
    loaded: dict[str, Table] = {}
    for name, records in batches.items():
        clustered_on = None
        if name == "LINEITEM":
            records = physical_order(records, clustering, rng)
            if clustering in ("sorted", "toc"):
                clustered_on = "L_SHIPDATE"
        elif name == "ORDERS" and clustering in ("sorted", "toc"):
            order = np.argsort(records["O_ORDERDATE"], kind="stable")
            records = records[order]
            clustered_on = "O_ORDERDATE"
        loaded[name] = load_table(
            catalog, name, records, clustered_on=clustered_on
        )
    return loaded
