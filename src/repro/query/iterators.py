"""Physical operators: the iterator concept over record batches.

The paper's operators implement the classic open/next/close iterator
concept [Graefe 7]; a Python reproduction that called ``next()`` per
tuple would drown the measurement in interpreter overhead, so operators
here iterate *bucket-sized record batches* (vectorised Volcano).  The
per-tuple accounting still happens — through the
:class:`~repro.storage.stats.IoStats` counters — so simulated times are
per-tuple faithful even though control flow is per batch.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core.partition import BucketPartitioning
from repro.core.sma_set import SmaSet
from repro.errors import ExecutionError
from repro.lang.predicate import Predicate
from repro.obs.trace import NO_TRACER
from repro.query.parallel import ScanParallelism, make_morsels, run_morsels
from repro.storage.schema import Schema
from repro.storage.table import Table


class Operator:
    """Base class: an iterable of numpy record batches."""

    @property
    def schema(self) -> Schema:
        raise NotImplementedError

    def batches(self) -> Iterator[np.ndarray]:
        raise NotImplementedError

    def rows(self) -> Iterator[tuple]:
        """Per-tuple convenience used by tests and small examples."""
        for batch in self.batches():
            for record in batch:
                yield tuple(record)


class SeqScan(Operator):
    """Plain sequential scan of every bucket — the paper's baseline.

    Charges one per-tuple CPU unit for every tuple delivered (downstream
    predicate evaluation/aggregation is included in that charge; see the
    calibration notes in :mod:`repro.storage.disk`).
    """

    def __init__(self, table: Table):
        self.table = table

    @property
    def schema(self) -> Schema:
        return self.table.schema

    def batches(self) -> Iterator[np.ndarray]:
        stats = self.table.heap.pool.stats
        for _, records in self.table.iter_buckets():
            stats.tuples_scanned += len(records)
            stats.buckets_fetched += 1
            yield records


class Filter(Operator):
    """Apply a predicate to the child's batches (no extra CPU charge —
    the scan's per-tuple charge already covers predicate evaluation)."""

    def __init__(self, child: Operator, predicate: Predicate):
        self.child = child
        self.predicate = predicate.bind(child.schema)

    @property
    def schema(self) -> Schema:
        return self.child.schema

    def batches(self) -> Iterator[np.ndarray]:
        for batch in self.child.batches():
            mask = self.predicate.evaluate(batch)
            if mask.all():
                yield batch
            else:
                yield batch[mask]


class Project(Operator):
    """Keep only the named columns, in order."""

    def __init__(self, child: Operator, columns: tuple[str, ...]):
        if not columns:
            raise ExecutionError("projection needs at least one column")
        self.child = child
        self.columns = columns
        self._schema = child.schema.project(columns)

    @property
    def schema(self) -> Schema:
        return self._schema

    def batches(self) -> Iterator[np.ndarray]:
        names = list(self.columns)
        for batch in self.child.batches():
            projected = np.zeros(len(batch), dtype=self._schema.record_dtype)
            for name in names:
                projected[name] = batch[name]
            yield projected


class SmaScan(Operator):
    """The SMA_Scan operator of Figure 6.

    Partitions the buckets via the selection SMAs, then iterates:
    disqualifying buckets are skipped entirely, qualifying buckets are
    returned without evaluating the predicate, ambivalent buckets are
    fetched and filtered tuple-wise.  The relation and all SMA-files are
    scanned "in sync" — the partitioning is computed once up front from
    the sequentially read SMA-files, which is I/O-equivalent.
    """

    def __init__(
        self,
        table: Table,
        predicate: Predicate,
        sma_set: SmaSet,
        partitioning: BucketPartitioning | None = None,
    ):
        self.table = table
        self.predicate = predicate.bind(table.schema)
        self.sma_set = sma_set
        self._partitioning = partitioning

    @property
    def schema(self) -> Schema:
        return self.table.schema

    @property
    def partitioning(self) -> BucketPartitioning:
        if self._partitioning is None:
            self._partitioning = self.sma_set.partition(self.predicate)
        return self._partitioning

    def batches(self) -> Iterator[np.ndarray]:
        partitioning = self.partitioning
        stats = self.table.heap.pool.stats
        qualifying = partitioning.qualifying
        disqualifying = partitioning.disqualifying
        for bucket_no in range(self.table.num_buckets):
            if disqualifying[bucket_no]:
                stats.buckets_skipped += 1
                continue
            records = self.table.read_bucket(bucket_no)
            stats.buckets_fetched += 1
            stats.tuples_scanned += len(records)
            if qualifying[bucket_no]:
                yield records
            else:
                mask = self.predicate.evaluate(records)
                yield records[mask]


class MorselScan(Operator):
    """Morsel-parallel selection scan, batch-equivalent to the serial plans.

    Covers both shapes the planner builds for tuple-returning queries:
    without a partitioning it behaves like ``Filter(SeqScan(table))``;
    with one it behaves like :class:`SmaScan` (disqualifying buckets
    skipped, qualifying buckets returned unfiltered, ambivalent buckets
    filtered tuple-wise).  The bucket list is chunked into morsels that
    scan workers fetch and filter concurrently; batches are yielded in
    bucket order, so downstream results are byte-identical to serial.
    """

    def __init__(
        self,
        table: Table,
        predicate: Predicate,
        parallelism: ScanParallelism,
        partitioning: BucketPartitioning | None = None,
        tracer=NO_TRACER,
    ):
        self.table = table
        self.predicate = predicate.bind(table.schema)
        self.parallelism = parallelism
        self.partitioning = partitioning
        self.tracer = tracer

    @property
    def schema(self) -> Schema:
        return self.table.schema

    def _morsel_task(self, morsel: list[int]):
        qualifying = (
            self.partitioning.qualifying if self.partitioning is not None else None
        )

        def task() -> list[np.ndarray]:
            # pool.stats must resolve on the *worker* thread: inside the
            # dispatcher it is the worker's private child window.
            stats = self.table.heap.pool.stats
            out: list[np.ndarray] = []
            for bucket_no in morsel:
                records = self.table.read_bucket(bucket_no)
                stats.buckets_fetched += 1
                stats.tuples_scanned += len(records)
                if qualifying is not None and qualifying[bucket_no]:
                    out.append(records)
                else:
                    mask = self.predicate.evaluate(records)
                    out.append(records if mask.all() else records[mask])
            return out

        return task

    def batches(self) -> Iterator[np.ndarray]:
        pool = self.table.heap.pool
        if self.partitioning is None:
            bucket_nos = list(range(self.table.num_buckets))
        else:
            fetched = ~self.partitioning.disqualifying
            # The skip charge lands on the calling thread, so it needs
            # its own io-carrying span (worker spans only see fetches).
            with self.tracer.span(
                "bucket_select",
                stats=pool.stats,
                attrs={"skipped": self.partitioning.num_disqualifying},
            ):
                pool.stats.buckets_skipped += self.partitioning.num_disqualifying
            bucket_nos = [int(b) for b in np.flatnonzero(fetched)]
        morsels = make_morsels(bucket_nos, self.parallelism.morsel_buckets)
        if self.parallelism.use_processes and len(morsels) > 1:
            parts = self._process_parts(morsels)
            if parts is not None:
                for part in parts:
                    yield from part
                return
        tasks = [self._morsel_task(morsel) for morsel in morsels]
        for part in run_morsels(
            pool,
            tasks,
            self.parallelism.workers,
            tracer=self.tracer,
            span_name="scan_morsel",
        ):
            yield from part

    def _process_parts(self, morsels) -> list[list[np.ndarray]] | None:
        """Filtered morsel batches via the process pool (None = fall back).

        Batches travel back pickled — numpy record arrays round-trip
        bit-exactly, so downstream results match the thread/serial scan
        byte for byte.
        """
        from repro.query import procpool

        qualifying = (
            self.partitioning.qualifying if self.partitioning is not None else None
        )
        payloads = []
        for morsel in morsels:
            flags = [
                bool(qualifying[b]) if qualifying is not None else False
                for b in morsel
            ]
            payloads.append(
                procpool.scan_task(self.table, self.predicate, morsel, flags)
            )
        try:
            results = procpool.run_process_morsels(
                self.table,
                payloads,
                self.parallelism.workers,
                tracer=self.tracer,
                span_name="scan_morsel",
            )
        except procpool.ProcPoolBrokenError:
            procpool.note_fallback()
            return None
        return [result["batches"] for result in results]
