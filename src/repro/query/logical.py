"""The logical plan layer: normalized query descriptions before costing.

:class:`LogicalPlan` is what the access-path enumerator consumes — one
normalized shape for both query classes, built from
:class:`~repro.query.query.AggregateQuery` / :class:`ScanQuery` (and
therefore from the SQL parser) by :func:`build_logical`.  Building a
logical plan applies the rule-based rewrites that must run *before*
grading:

* **predicate normalization** — negations pushed down to the atomic
  comparisons (the grading rules of Section 3.1 are stated on atoms and
  their complements), AND/OR trees flattened, ``TRUE`` operands folded
  away, duplicate operands removed;
* **bound tightening** (constant-fold) — redundant same-column range
  atoms inside a conjunction collapse to the strongest bound
  (``a < 5 AND a <= 7`` → ``a < 5``), so grading consults each SMA once
  with the tightest constant;
* **projection pushdown** — the minimal column set execution must read
  (selected columns plus predicate columns) is computed here and carried
  on the plan, so physical operators and EXPLAIN agree on what a scan
  actually needs.

All rewrites are semantics-preserving: ``evaluate()`` results, grading
outcomes and I/O charges are identical before and after (grading charges
per consulted SMA-file per column, which none of the rules change).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PlanningError
from repro.lang.predicate import (
    And,
    ColumnConstCmp,
    CmpOp,
    Not,
    Or,
    Predicate,
    TruePredicate,
    and_,
    not_,
    or_,
)
from repro.query.query import (
    AggregateQuery,
    DeleteStatement,
    DmlStatement,
    InsertStatement,
    OutputAggregate,
    ScanQuery,
    UpdateStatement,
)
from repro.storage.schema import Schema


@dataclass(frozen=True)
class LogicalPlan:
    """A validated, normalized logical query — input to the enumerator."""

    kind: str  # "aggregate" | "scan"
    table: str
    predicate: Predicate  # bound to the table schema, normalized
    group_by: tuple[str, ...] = ()
    aggregates: tuple[OutputAggregate, ...] = ()
    columns: tuple[str, ...] = ()  # scan projection; empty means all
    order_by: tuple[str, ...] = ()
    order_desc: frozenset[str] = frozenset()
    #: projection pushdown result: every column execution must read
    required_columns: frozenset[str] = frozenset()
    #: the original query object (execution parameters live here)
    source: AggregateQuery | ScanQuery | None = field(compare=False, default=None)

    def render(self) -> str:
        """A SQL-ish one-line rendering for EXPLAIN output."""
        if self.kind == "aggregate":
            select = ", ".join(
                list(self.group_by) + [str(a) for a in self.aggregates]
            )
        else:
            select = ", ".join(self.columns) if self.columns else "*"
        parts = [f"SELECT {select} FROM {self.table}"]
        if not isinstance(self.predicate, TruePredicate):
            parts.append(f"WHERE {self.predicate}")
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(self.group_by))
        if self.order_by:
            rendered = [
                name + (" DESC" if name in self.order_desc else "")
                for name in self.order_by
            ]
            parts.append("ORDER BY " + ", ".join(rendered))
        return " ".join(parts)

    def __str__(self) -> str:
        return self.render()


# ----------------------------------------------------------------------
# predicate rewrites
# ----------------------------------------------------------------------


def to_nnf(predicate: Predicate) -> Predicate:
    """Push negations down to the atoms (negation normal form).

    Atomic complements come from :func:`~repro.lang.predicate.not_`
    (``not (a < c)`` ⇔ ``a >= c``); AND/OR distribute by De Morgan.
    """
    if isinstance(predicate, Not):
        inner = predicate.operand
        if isinstance(inner, And):
            return or_(*(to_nnf(not_(op)) for op in inner.operands))
        if isinstance(inner, Or):
            return and_(*(to_nnf(not_(op)) for op in inner.operands))
        # not_ simplifies atoms and double negation; anything left (e.g.
        # NOT TRUE) stays as an explicit Not node.
        simplified = not_(inner)
        if isinstance(simplified, Not):
            return simplified
        return to_nnf(simplified)
    if isinstance(predicate, And):
        return and_(*(to_nnf(op) for op in predicate.operands))
    if isinstance(predicate, Or):
        return or_(*(to_nnf(op) for op in predicate.operands))
    return predicate


def _dedup(operands: tuple[Predicate, ...]) -> list[Predicate]:
    seen: list[Predicate] = []
    for operand in operands:
        if operand not in seen:
            seen.append(operand)
    return seen


_UPPER_OPS = (CmpOp.LT, CmpOp.LE)
_LOWER_OPS = (CmpOp.GT, CmpOp.GE)


def _tighten_bounds(operands: list[Predicate]) -> list[Predicate]:
    """Collapse redundant same-column range atoms inside a conjunction.

    Among upper bounds on one column the smallest constant wins (ties
    break toward the strict operator); symmetrically for lower bounds.
    Incomparable constants (mixed types) leave both atoms in place.
    """
    kept: list[Predicate] = []
    best: dict[tuple[str, str], int] = {}  # (column, side) -> index in kept

    def side_of(op: CmpOp) -> str | None:
        if op in _UPPER_OPS:
            return "upper"
        if op in _LOWER_OPS:
            return "lower"
        return None

    def stronger(new: ColumnConstCmp, old: ColumnConstCmp, side: str) -> bool:
        if new.constant == old.constant:
            return new.op in (CmpOp.LT, CmpOp.GT)  # strict beats inclusive
        if side == "upper":
            return bool(new.constant < old.constant)
        return bool(new.constant > old.constant)

    for operand in operands:
        side = (
            side_of(operand.op)
            if isinstance(operand, ColumnConstCmp)
            else None
        )
        if side is None:
            kept.append(operand)
            continue
        key = (operand.column, side)
        existing = best.get(key)
        if existing is None:
            best[key] = len(kept)
            kept.append(operand)
            continue
        try:
            if stronger(operand, kept[existing], side):
                kept[existing] = operand
        except TypeError:
            kept.append(operand)  # incomparable constants: keep both
    return kept


def normalize_predicate(predicate: Predicate) -> Predicate:
    """Apply every rewrite rule: NNF, flattening, folding, tightening."""
    normalized = to_nnf(predicate)
    return _simplify(normalized)


def _simplify(predicate: Predicate) -> Predicate:
    if isinstance(predicate, And):
        flat: list[Predicate] = []
        for operand in predicate.operands:
            simplified = _simplify(operand)
            if isinstance(simplified, TruePredicate):
                continue  # TRUE is the AND identity
            if isinstance(simplified, And):
                flat.extend(simplified.operands)
            else:
                flat.append(simplified)
        return and_(*_tighten_bounds(_dedup(tuple(flat))))
    if isinstance(predicate, Or):
        flat = []
        for operand in predicate.operands:
            simplified = _simplify(operand)
            if isinstance(simplified, TruePredicate):
                return TruePredicate()  # TRUE absorbs the whole OR
            if isinstance(simplified, Or):
                flat.extend(simplified.operands)
            else:
                flat.append(simplified)
        return or_(*_dedup(tuple(flat)))
    return predicate


# ----------------------------------------------------------------------
# building
# ----------------------------------------------------------------------


def build_logical(
    query: AggregateQuery | ScanQuery, schema: Schema
) -> LogicalPlan:
    """Validate *query* against *schema* and build its logical plan."""
    if not isinstance(query, (AggregateQuery, ScanQuery)):
        raise PlanningError(
            f"cannot build a logical plan for {type(query).__name__}"
        )
    query.validate(schema)
    predicate = normalize_predicate(query.where.bind(schema))
    if isinstance(query, AggregateQuery):
        required = set(predicate.columns()) | set(query.group_by)
        for aggregate in query.aggregates:
            required |= set(aggregate.spec.columns())
        return LogicalPlan(
            kind="aggregate",
            table=query.table,
            predicate=predicate,
            group_by=query.group_by,
            aggregates=query.aggregates,
            order_by=query.order_by,
            order_desc=query.order_desc,
            required_columns=frozenset(required),
            source=query,
        )
    if isinstance(query, ScanQuery):
        selected = query.columns if query.columns else tuple(schema.names)
        required = set(predicate.columns()) | set(selected)
        return LogicalPlan(
            kind="scan",
            table=query.table,
            predicate=predicate,
            columns=query.columns,
            required_columns=frozenset(required),
            source=query,
        )


# ----------------------------------------------------------------------
# DML logical plans
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class LogicalDml:
    """A validated, normalized DML statement — input to the DML binder.

    The same predicate rewrites that serve grading serve the write path:
    UPDATE/DELETE partition their victim set with the normalized
    predicate, so bound tightening narrows the buckets the maintainer
    must rewrite.
    """

    op: str  # "insert" | "update" | "delete"
    table: str
    predicate: Predicate = field(default_factory=TruePredicate)
    assignments: tuple[tuple[str, object], ...] = ()
    rows: tuple[tuple, ...] = ()
    columns: tuple[str, ...] = ()
    source: DmlStatement | None = field(compare=False, default=None)

    def render(self) -> str:
        """A SQL-ish one-line rendering for EXPLAIN output."""
        if self.op == "insert":
            cols = f" ({', '.join(self.columns)})" if self.columns else ""
            return (
                f"INSERT INTO {self.table}{cols} VALUES "
                f"<{len(self.rows)} rows>"
            )
        if self.op == "update":
            sets = ", ".join(f"{c} = {v!r}" for c, v in self.assignments)
            parts = [f"UPDATE {self.table} SET {sets}"]
        else:
            parts = [f"DELETE FROM {self.table}"]
        if not isinstance(self.predicate, TruePredicate):
            parts.append(f"WHERE {self.predicate}")
        return " ".join(parts)

    def __str__(self) -> str:
        return self.render()


def build_logical_dml(statement: DmlStatement, schema: Schema) -> LogicalDml:
    """Validate *statement* against *schema* and build its logical form."""
    if not isinstance(
        statement, (InsertStatement, UpdateStatement, DeleteStatement)
    ):
        raise PlanningError(
            f"cannot build a DML plan for {type(statement).__name__}"
        )
    statement.validate(schema)
    if isinstance(statement, InsertStatement):
        return LogicalDml(
            op="insert",
            table=statement.table,
            rows=statement.rows,
            columns=statement.columns,
            source=statement,
        )
    predicate = normalize_predicate(statement.where.bind(schema))
    if isinstance(statement, UpdateStatement):
        return LogicalDml(
            op="update",
            table=statement.table,
            predicate=predicate,
            assignments=statement.assignments,
            source=statement,
        )
    return LogicalDml(
        op="delete",
        table=statement.table,
        predicate=predicate,
        source=statement,
    )
