"""Cooperative scan sharing: one bucket pass, many consumers.

Dashboard bursts issue *different* aggregate queries over the *same*
table.  Each solo execution pays a full bucket pass; the
:class:`SharedScanDispatcher` coalesces them — the first query over a
``(table, ingest epoch)`` pair becomes the pass **leader**, queries that
arrive during the leader's short gather window **attach** as followers,
and the leader runs exactly one bucket pass that decodes every bucket
once and grades it with *every* consumer's predicate.  This generalizes
the buffer pool's single-flight page loads (PR 2) from pages to whole
scans, in the spirit of cooperative scans (Zukowski et al.) and shared
aggregation in factorised databases.

Byte-identity is the design constraint, exactly as for the morsel
operators: per consumer, the shared pass consumes the same filtered
batches in the same bucket order as a solo ``GAggr(Filter(SeqScan))``,
and morsel partials merge in morsel order per consumer (see
:meth:`~repro.query.aggregation.AggregationState.merge`), so each
follower's rows are bit-identical to what its own solo execution would
have produced at the same epoch.

Groups are keyed on ``(table, epoch)``: a concurrent DML batch bumps
the epoch, so queries admitted after the write can never attach to a
pass over the old snapshot.  SMA quarantine :meth:`poison`\\ s pending
groups — their consumers (leader included) raise
:class:`SharedScanDetached` and the service re-executes each solo,
where the planner's quarantine fallback routes them to the heap.  A
pass already running is unaffected: the shared pass never consults SMA
files, so a mid-pass quarantine cannot corrupt it.

Both scan backends work: the thread backend fans morsels out via
:func:`~repro.query.parallel.run_morsels`; the process backend ships a
``shared_gaggr`` task (all consumer plans + a bucket morsel) to the
worker-process pool and rebuilds the per-consumer partial states from
the wire, falling back to threads when the pool breaks — mirroring
:class:`~repro.query.gaggr.ParallelGAggr`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.errors import ExecutionError
from repro.obs.trace import NO_TRACER
from repro.query.aggregation import AggregationState
from repro.query.logical import normalize_predicate
from repro.query.parallel import ScanParallelism, make_morsels, run_morsels
from repro.query.planner import PlanInfo
from repro.query.query import AggregateQuery

#: How long a follower waits for its leader before detaching (a backstop;
#: the leader wakes everyone in ``finally``, so this only fires when the
#: leader thread was killed outright).
DEFAULT_FOLLOW_TIMEOUT_S = 60.0

#: Leader gather window: how long the leader lingers after enrolling so
#: a burst scheduled across executor workers can coalesce before the
#: consumer list seals.  Milliseconds — dwarfed by a bucket pass, and
#: only paid by queries that take the shared-scan path at all.
DEFAULT_GATHER_WINDOW_S = 0.0025


class SharedScanDetached(ExecutionError):
    """This consumer lost its shared pass (quarantine poison, leader
    failure, or follow timeout); the caller must re-execute solo."""


@dataclass
class SharedScanOutcome:
    """One consumer's finalized slice of a shared pass."""

    columns: list[str]
    rows: list[tuple]
    info: PlanInfo
    role: str  # "lead" | "follow"
    fan_in: int


@dataclass
class _Consumer:
    query: AggregateQuery
    predicate: object  # bound, normalized predicate
    event: threading.Event = field(default_factory=threading.Event)
    state: AggregationState | None = None
    error: BaseException | None = None
    fan_in: int = 0


class _Group:
    """One pending shared pass: the consumers gathered so far."""

    __slots__ = ("table", "epoch", "consumers", "sealed", "poisoned")

    def __init__(self, table: str, epoch: int):
        self.table = table
        self.epoch = epoch
        self.consumers: list[_Consumer] = []
        self.sealed = False
        self.poisoned: str | None = None


class SharedScanDispatcher:
    """Attach-or-lead coordination for shared bucket passes.

    Thread-safe; one instance per serving tier.  The dispatcher holds no
    storage handles of its own — the leader's pinned
    :class:`~repro.storage.table.TableView` drives the pass, so every
    consumer reads the leader's epoch snapshot (group keys guarantee the
    epochs match).
    """

    def __init__(
        self,
        *,
        gather_window_s: float = DEFAULT_GATHER_WINDOW_S,
        follow_timeout_s: float = DEFAULT_FOLLOW_TIMEOUT_S,
    ):
        self.gather_window_s = float(gather_window_s)
        self.follow_timeout_s = float(follow_timeout_s)
        self._lock = threading.Lock()
        self._groups: dict[tuple[str, int], _Group] = {}
        self.leads = 0
        self.attaches = 0
        self.detaches = 0
        self.fan_in_total = 0
        self.fan_in_max = 0

    # ------------------------------------------------------------------
    # the attach-or-lead protocol
    # ------------------------------------------------------------------

    def run(
        self,
        view,
        query: AggregateQuery,
        *,
        parallelism: ScanParallelism | None = None,
        tracer=NO_TRACER,
        timeout_s: float | None = None,
    ) -> SharedScanOutcome:
        """Execute *query* against the pinned *view*, sharing the pass.

        Leads when no compatible pass is pending, attaches otherwise.
        Raises :class:`SharedScanDetached` when this consumer must fall
        back to a solo execution (poisoned group, failed leader, or
        follow timeout) — the shared path never silently degrades into
        a wrong answer, it always either serves byte-identical rows or
        detaches loudly.
        """
        query.validate(view.schema)
        predicate = normalize_predicate(query.where.bind(view.schema))
        consumer = _Consumer(query=query, predicate=predicate)
        key = (query.table, int(view.epoch))
        with self._lock:
            group = self._groups.get(key)
            if group is None:
                group = _Group(query.table, int(view.epoch))
                self._groups[key] = group
                group.consumers.append(consumer)
                lead = True
                self.leads += 1
            else:
                group.consumers.append(consumer)
                lead = False
                self.attaches += 1
        if lead:
            return self._lead(key, group, consumer, view, parallelism, tracer)
        return self._follow(consumer, timeout_s)

    def _lead(
        self, key, group: _Group, consumer: _Consumer, view, parallelism, tracer
    ) -> SharedScanOutcome:
        if self.gather_window_s > 0:
            time.sleep(self.gather_window_s)
        with self._lock:
            group.sealed = True
            if self._groups.get(key) is group:
                del self._groups[key]
            consumers = list(group.consumers)
            poisoned = group.poisoned
            fan_in = len(consumers)
            self.fan_in_total += fan_in
            if fan_in > self.fan_in_max:
                self.fan_in_max = fan_in
        for member in consumers:
            member.fan_in = fan_in
        if poisoned is not None:
            detach = SharedScanDetached(
                f"shared scan over {group.table!r} poisoned: {poisoned}"
            )
            with self._lock:
                self.detaches += 1  # the leader; followers count themselves
            self._finish(consumers, error=detach)
            raise detach
        try:
            states = self._run_pass(view, consumers, parallelism, tracer)
        except BaseException as exc:
            self._finish(consumers, error=exc)
            raise
        for member, state in zip(consumers, states):
            member.state = state
        self._finish(consumers)
        return self._finalize(consumer, role="lead")

    def _follow(
        self, consumer: _Consumer, timeout_s: float | None
    ) -> SharedScanOutcome:
        wait_s = timeout_s if timeout_s is not None else self.follow_timeout_s
        if not consumer.event.wait(wait_s):
            with self._lock:
                self.detaches += 1
            raise SharedScanDetached(
                f"shared-scan follower timed out after {wait_s:.3f}s"
            )
        if consumer.error is not None or consumer.state is None:
            with self._lock:
                self.detaches += 1
            raise SharedScanDetached(
                f"shared-scan leader failed: {consumer.error!r}"
            )
        return self._finalize(consumer, role="follow")

    def _finish(
        self, consumers: list[_Consumer], error: BaseException | None = None
    ) -> None:
        for member in consumers:
            if error is not None and member.state is None:
                member.error = error
            member.event.set()

    def _finalize(self, consumer: _Consumer, *, role: str) -> SharedScanOutcome:
        columns, rows = consumer.state.finalize()
        strategy = (
            f"shared_scan(lead[{consumer.fan_in}])"
            if role == "lead"
            else "shared_scan(follow)"
        )
        info = PlanInfo(
            strategy=strategy,
            reason=(
                f"cooperative bucket pass shared by {consumer.fan_in} "
                f"consumer(s) at one epoch snapshot"
            ),
            table=consumer.query.table,
        )
        return SharedScanOutcome(
            columns=columns, rows=rows, info=info, role=role,
            fan_in=consumer.fan_in,
        )

    # ------------------------------------------------------------------
    # the shared pass itself
    # ------------------------------------------------------------------

    def _run_pass(
        self, view, consumers: list[_Consumer], parallelism, tracer
    ) -> list[AggregationState]:
        parallelism = parallelism or ScanParallelism.serial()
        states = [
            AggregationState(
                view.schema, member.query.group_by, member.query.aggregates
            )
            for member in consumers
        ]
        morsels = make_morsels(
            range(view.num_buckets), parallelism.morsel_buckets
        )
        if not morsels:
            return states
        if parallelism.use_processes and len(morsels) > 1:
            partial_lists = self._process_pass(
                view, consumers, morsels, parallelism, tracer
            )
            if partial_lists is not None:
                for partials in partial_lists:
                    for state, partial in zip(states, partials):
                        state.merge(partial)
                return states
        tasks = [
            self._morsel_task(view, consumers, morsel) for morsel in morsels
        ]
        partial_lists = run_morsels(
            view.heap.pool,
            tasks,
            parallelism.workers,
            tracer=tracer,
            span_name="shared_morsel",
        )
        with tracer.span("merge", attrs={"partials": len(partial_lists)}):
            for partials in partial_lists:
                for state, partial in zip(states, partials):
                    state.merge(partial)
        return states

    def _morsel_task(self, view, consumers: list[_Consumer], morsel):
        def task() -> list[AggregationState]:
            stats = view.heap.pool.stats  # worker's child window
            partials = [
                AggregationState(
                    view.schema, member.query.group_by, member.query.aggregates
                )
                for member in consumers
            ]
            for bucket_no in morsel:
                records = view.read_bucket(bucket_no)
                stats.buckets_fetched += 1
                stats.tuples_scanned += len(records)
                for member, partial in zip(consumers, partials):
                    mask = member.predicate.evaluate(records)
                    partial.consume_batch(
                        records if mask.all() else records[mask]
                    )
            return partials

        return task

    def _process_pass(
        self, view, consumers, morsels, parallelism, tracer
    ) -> list[list[AggregationState]] | None:
        """Per-morsel consumer partials via the process pool (None = fall
        back to the thread pass)."""
        from repro.query import procpool

        payloads = [
            procpool.shared_gaggr_task(view, consumers, morsel)
            for morsel in morsels
        ]
        try:
            results = procpool.run_process_morsels(
                view,
                payloads,
                parallelism.workers,
                tracer=tracer,
                span_name="shared_morsel",
            )
        except procpool.ProcPoolBrokenError:
            procpool.note_fallback()
            return None
        return [
            [
                procpool.partial_from_wire(
                    wire, member.query.aggregates, member.query.group_by
                )
                for member, wire in zip(consumers, reply["states"])
            ]
            for reply in results
        ]

    # ------------------------------------------------------------------
    # invalidation / observation
    # ------------------------------------------------------------------

    def poison(self, table: str, reason: str) -> int:
        """Quarantine hook: doom every *pending* group over *table*.

        Their consumers detach (the leader wakes, sees the poison, and
        fails everyone with :class:`SharedScanDetached`); the service
        re-executes each solo against the quarantine-aware planner.
        Returns how many groups were poisoned.
        """
        with self._lock:
            doomed = [
                key for key in self._groups if key[0] == table
            ]
            for key in doomed:
                group = self._groups.pop(key)
                group.poisoned = reason
            return len(doomed)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "leads": self.leads,
                "attaches": self.attaches,
                "detaches": self.detaches,
                "fan_in_total": self.fan_in_total,
                "fan_in_max": self.fan_in_max,
                "pending_groups": len(self._groups),
                "mean_fan_in": (
                    self.fan_in_total / self.leads if self.leads else 0.0
                ),
            }
