"""GAggr — grouping with aggregation, after Dayal [4].

The plain (SMA-less) pipeline breaker: consume the child operator fully,
group tuples, advance aggregates, finalize averages.  Used as the
baseline side of every runtime experiment.
"""

from __future__ import annotations

from repro.query.aggregation import AggregationState
from repro.query.iterators import Operator
from repro.query.query import OutputAggregate


class GAggr:
    """Hash grouping-aggregation over a child operator."""

    def __init__(
        self,
        child: Operator,
        group_by: tuple[str, ...],
        aggregates: tuple[OutputAggregate, ...],
    ):
        self.child = child
        self.group_by = group_by
        self.aggregates = aggregates

    def execute(self) -> tuple[list[str], list[tuple]]:
        """Compute the full result (the operator's init phase)."""
        state = AggregationState(self.child.schema, self.group_by, self.aggregates)
        for batch in self.child.batches():
            state.consume_batch(batch)
        return state.finalize()
