"""GAggr — grouping with aggregation, after Dayal [4].

The plain (SMA-less) pipeline breaker: consume the child operator fully,
group tuples, advance aggregates, finalize averages.  Used as the
baseline side of every runtime experiment.  :class:`ParallelGAggr` is
the morsel-driven variant the planner builds when scan parallelism is
enabled: workers fold disjoint bucket ranges into partial
:class:`AggregationState` instances that merge deterministically, so the
result is byte-identical to the serial fold.
"""

from __future__ import annotations

from repro.lang.predicate import Predicate
from repro.obs.trace import NO_TRACER
from repro.query.aggregation import AggregationState
from repro.query.iterators import Operator
from repro.query.parallel import ScanParallelism, make_morsels, run_morsels
from repro.query.query import OutputAggregate, QueryRows
from repro.storage.table import Table


class GAggr:
    """Hash grouping-aggregation over a child operator."""

    def __init__(
        self,
        child: Operator,
        group_by: tuple[str, ...],
        aggregates: tuple[OutputAggregate, ...],
    ):
        self.child = child
        self.group_by = group_by
        self.aggregates = aggregates

    def collect_state(self) -> AggregationState:
        """Advance a full :class:`AggregationState` without finalizing."""
        state = AggregationState(self.child.schema, self.group_by, self.aggregates)
        for batch in self.child.batches():
            state.consume_batch(batch)
        return state

    def execute(self) -> QueryRows:
        """Compute the full result (the operator's init phase)."""
        return self.collect_state().finalize()


class ParallelGAggr:
    """Morsel-parallel grouping-aggregation over a full-table scan.

    Result-equivalent to ``GAggr(Filter(SeqScan(table), predicate))``:
    each worker scans a morsel of buckets in order, filters, and folds
    into a partial state; partials merge in morsel order (see
    :meth:`AggregationState.merge` for why that is byte-exact).
    """

    def __init__(
        self,
        table: Table,
        predicate: Predicate,
        group_by: tuple[str, ...],
        aggregates: tuple[OutputAggregate, ...],
        parallelism: ScanParallelism,
        tracer=NO_TRACER,
    ):
        self.table = table
        self.predicate = predicate.bind(table.schema)
        self.group_by = group_by
        self.aggregates = aggregates
        self.parallelism = parallelism
        self.tracer = tracer

    def _morsel_task(self, morsel: list[int]):
        def task() -> AggregationState:
            stats = self.table.heap.pool.stats  # worker's child window
            partial = AggregationState(
                self.table.schema, self.group_by, self.aggregates
            )
            for bucket_no in morsel:
                records = self.table.read_bucket(bucket_no)
                stats.buckets_fetched += 1
                stats.tuples_scanned += len(records)
                mask = self.predicate.evaluate(records)
                partial.consume_batch(records if mask.all() else records[mask])
            return partial

        return task

    def collect_state(self) -> AggregationState:
        """Advance a full :class:`AggregationState` without finalizing."""
        state = AggregationState(self.table.schema, self.group_by, self.aggregates)
        morsels = make_morsels(
            range(self.table.num_buckets), self.parallelism.morsel_buckets
        )
        if self.parallelism.use_processes and len(morsels) > 1:
            partials = self._process_partials(morsels)
            if partials is not None:
                with self.tracer.span("merge", attrs={"partials": len(partials)}):
                    for partial in partials:
                        state.merge(partial)
                return state
        tasks = [self._morsel_task(morsel) for morsel in morsels]
        pool = self.table.heap.pool
        partials = run_morsels(
            pool,
            tasks,
            self.parallelism.workers,
            tracer=self.tracer,
            span_name="scan_morsel",
        )
        with self.tracer.span("merge", attrs={"partials": len(partials)}):
            for partial in partials:
                state.merge(partial)
        return state

    def _process_partials(self, morsels) -> list[AggregationState] | None:
        """Morsel partials via the worker-process pool (None = fall back)."""
        from repro.query import procpool

        payloads = [
            procpool.gaggr_task(
                self.table, self.predicate, self.group_by, self.aggregates, morsel
            )
            for morsel in morsels
        ]
        try:
            results = procpool.run_process_morsels(
                self.table,
                payloads,
                self.parallelism.workers,
                tracer=self.tracer,
                span_name="scan_morsel",
            )
        except procpool.ProcPoolBrokenError:
            procpool.note_fallback()
            return None
        return [
            procpool.partial_from_wire(r["state"], self.aggregates, self.group_by)
            for r in results
        ]

    def execute(self) -> QueryRows:
        return self.collect_state().finalize()
