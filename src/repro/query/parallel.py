"""Morsel-driven intra-query scan parallelism.

A query's bucket list — *after* SMA grading, so disqualifying buckets
are already gone and qualifying buckets never touch the heap — is split
into fixed-size *morsels* (contiguous runs of bucket numbers) dispatched
to a small worker pool, in the spirit of morsel-driven parallelism
(Leis et al., SIGMOD 2014) adapted to this engine's bucket-batch
iterators.

Determinism is the design constraint: every morsel produces a *partial*
result (filtered batches, or partial per-group aggregates) and the
dispatcher merges partials **in morsel order**, so the parallel plan is
byte-identical to the serial plan — same rows, same floating-point
aggregate bits (see :meth:`AggregationState.merge`).

Accounting: each worker runs inside its own
:meth:`~repro.storage.buffer.BufferPool.query_context` child window
carrying the parent query's cancel event and deadline.  After all
morsels settle, the dispatcher merges every child window into the
calling thread's window in morsel order — the per-query
:class:`~repro.storage.stats.IoStats` delta stays exact, and windows of
concurrent queries keep partitioning the pool's cumulative counters.
Sequential/skip/random classification runs per worker context, which
models each worker as its own disk stream: a morsel's first page costs
one positioning access, the rest of the morsel streams.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Sequence, TypeVar

from repro.errors import ExecutionError
from repro.obs.trace import NO_TRACER
from repro.storage.buffer import BufferPool
from repro.storage.stats import IoStats

T = TypeVar("T")

#: Buckets per morsel.  Small enough to load-balance skewed bucket
#: costs across workers, large enough that each worker's page stream
#: is mostly sequential.
DEFAULT_MORSEL_BUCKETS = 8

#: Supported scan backends: "thread" dispatches morsels to an in-process
#: thread pool; "process" ships them to a persistent worker-process pool
#: (see :mod:`repro.query.procpool`) that sidesteps the GIL.
SCAN_BACKENDS = ("thread", "process")


@dataclass(frozen=True)
class ScanParallelism:
    """Knobs for morsel-driven scans: workers, morsel size, backend."""

    workers: int = 1
    morsel_buckets: int = DEFAULT_MORSEL_BUCKETS
    backend: str = "thread"

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ExecutionError(f"scan workers must be >= 1, got {self.workers}")
        if self.morsel_buckets < 1:
            raise ExecutionError(
                f"morsel_buckets must be >= 1, got {self.morsel_buckets}"
            )
        if self.backend not in SCAN_BACKENDS:
            raise ExecutionError(
                f"scan backend must be one of {SCAN_BACKENDS}, got {self.backend!r}"
            )

    @property
    def enabled(self) -> bool:
        return self.workers > 1

    @property
    def use_processes(self) -> bool:
        return self.enabled and self.backend == "process"

    @classmethod
    def serial(cls) -> "ScanParallelism":
        return cls(workers=1)


def resolve_parallelism(
    value: "ScanParallelism | int | None",
) -> ScanParallelism | None:
    """Normalize a workers-count / config / None into a config or None."""
    if value is None:
        return None
    if isinstance(value, int):
        return ScanParallelism(workers=value)
    return value


def make_morsels(
    bucket_nos: Sequence[int], morsel_buckets: int = DEFAULT_MORSEL_BUCKETS
) -> list[list[int]]:
    """Chunk *bucket_nos* (already in scan order) into fixed-size morsels."""
    if morsel_buckets < 1:
        raise ExecutionError(f"morsel_buckets must be >= 1, got {morsel_buckets}")
    buckets = [int(b) for b in bucket_nos]
    return [
        buckets[start : start + morsel_buckets]
        for start in range(0, len(buckets), morsel_buckets)
    ]


def run_morsels(
    pool: BufferPool,
    tasks: Sequence[Callable[[], T]],
    workers: int,
    *,
    name: str = "repro-scan",
    tracer=NO_TRACER,
    span_name: str = "morsel",
) -> list[T]:
    """Run *tasks* (one per morsel) on *workers* threads; results in order.

    Each task executes inside its own buffer-pool query context (a fresh
    :class:`IoStats` child window, inheriting the calling context's
    cancel event and deadline).  Once every task has settled, the child
    windows are merged into the calling thread's window **in task
    order** — including windows of failed tasks, whose physical reads
    already reached the pool's cumulative counters and must not escape
    the query's delta.  The first exception in task order is re-raised.

    With an enabled *tracer*, every task gets a ``span_name`` span
    parented to the span current on the *calling* thread at dispatch
    time — this is the cross-thread propagation seam for the scan pool.
    A parallel task's span takes its private child window as its I/O
    delta (exact: nobody else charges that window), so the dispatcher
    itself must never be wrapped in an io-carrying span — the merge
    below would double-count.
    """
    if not tasks:
        return []
    parent_span = tracer.current() if tracer.enabled else None
    if workers <= 1 or len(tasks) == 1:
        # Serial degenerate case: run inline on the caller's own window.
        if parent_span is None:
            return [task() for task in tasks]
        out = []
        for index, task in enumerate(tasks):
            with tracer.span(
                span_name,
                parent=parent_span,
                stats=pool.stats,
                attrs={"morsel": index, "mode": "serial"},
            ):
                out.append(task())
        return out

    cancel_event, deadline = pool.binding_controls()
    parent = pool.stats
    windows = [IoStats() for _ in tasks]
    results: list[T | None] = [None] * len(tasks)
    errors: list[BaseException | None] = [None] * len(tasks)

    def run_one(index: int) -> None:
        task = tasks[index]
        try:
            with pool.query_context(
                windows[index], cancel_event=cancel_event, deadline=deadline
            ):
                if parent_span is not None:
                    with tracer.span(
                        span_name,
                        parent=parent_span,
                        stats=windows[index],
                        attrs={"morsel": index},
                    ):
                        results[index] = task()
                else:
                    results[index] = task()
        except BaseException as exc:  # noqa: BLE001 - re-raised in order below
            errors[index] = exc

    with ThreadPoolExecutor(
        max_workers=min(workers, len(tasks)), thread_name_prefix=name
    ) as executor:
        futures = [executor.submit(run_one, i) for i in range(len(tasks))]
        for future in futures:
            future.result()  # run_one never raises; this is just a join

    for window in windows:
        parent.merge(window)
    for error in errors:
        if error is not None:
            raise error
    return [result for result in results]  # all set: no error, every task ran
