"""Plan-fingerprint result cache with single-flight fill.

Dashboard-style traffic repeats the same handful of logical plans
against slowly-changing tables.  The :class:`ResultCache` memoizes
finalized :class:`~repro.query.session.QueryResult` payloads under a
*plan fingerprint*: a SHA-256 over the canonical serialized logical
plan, the per-table ingest epoch, the planner mode / SMA-set pin, and
the scan-parallelism configuration.  Because the ingest epoch is part
of the key, a DML batch (which bumps the epoch) makes every stale entry
unreachable — epoch advance *is* the invalidation — while quarantine
and ``go_cold()`` evict eagerly via :meth:`ResultCache.invalidate_table`
and :meth:`ResultCache.clear`.

Canonicalization makes semantically identical queries collide:

* whitespace / formatting differences disappear at SQL parse time —
  the fingerprint hangs off the logical query, not its text;
* commutative ``AND`` / ``OR`` predicates are order-normalized by
  sorting each ``operands`` list by its own canonical serialization;
* serde round-trips are stable because
  :func:`repro.lang.serde.query_from_json` rebuilds structurally equal
  queries, so ``canonical_plan`` is a fixed point of the round-trip.

Any differing literal, column, table, epoch or mode lands in the JSON
document and therefore in the hash — distinct queries never collide
(modulo SHA-256).

Concurrency follows the single-flight discipline of the buffer pool's
page loads (PR 2), lifted from pages to whole results: the first miss
for a key becomes the *leader* and computes; concurrent requests for
the same key park on an event and are served the leader's result.  A
leader that fails or abandons wakes the waiters empty-handed and each
recomputes solo — waiters never re-enroll, so a crashing leader cannot
wedge the herd.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.lang.serde import query_to_json
from repro.query.query import AggregateQuery, ScanQuery

#: acquire() verdicts: served from cache / this caller computes and may
#: publish.  A "lead" after a failed single-flight wait recomputes solo
#: but still publishes through :meth:`ResultCache.complete`.
HIT = "hit"
LEAD = "lead"


def canonical_plan(query: AggregateQuery | ScanQuery) -> dict:
    """Canonical JSON document for a logical read query.

    Starts from :func:`repro.lang.serde.query_to_json` and sorts every
    commutative ``and`` / ``or`` ``operands`` list by the operand's own
    sorted-key serialization, bottom-up, so operand order never reaches
    the fingerprint.  Dict key order is irrelevant — hashing always
    dumps with ``sort_keys=True``.
    """
    return _canonical(query_to_json(query))


def _canonical(node):
    if isinstance(node, dict):
        out = {key: _canonical(value) for key, value in node.items()}
        if out.get("node") in ("and", "or"):
            out["operands"] = sorted(
                out["operands"], key=lambda op: json.dumps(op, sort_keys=True)
            )
        return out
    if isinstance(node, (list, tuple)):
        return [_canonical(value) for value in node]
    return node


def plan_fingerprint(
    query: AggregateQuery | ScanQuery,
    *,
    epochs: dict[str, int],
    mode: str = "auto",
    sma_set: str | None = None,
    scan: dict | None = None,
) -> str:
    """SHA-256 fingerprint of (logical plan, table epochs, scan params).

    *epochs* maps every table the plan reads to its ingest epoch at
    lookup time; *scan* carries the backend configuration dict
    (``{"workers", "morsel_buckets", "backend"}``) or ``None`` for a
    serial session.
    """
    document = {
        "plan": canonical_plan(query),
        "epochs": {str(name): int(epoch) for name, epoch in epochs.items()},
        "mode": mode,
        "sma_set": sma_set,
        "scan": scan,
    }
    payload = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def query_tables(query: AggregateQuery | ScanQuery) -> frozenset[str]:
    """The set of tables a logical read query touches (single-table today)."""
    return frozenset((query.table,))


@dataclass
class _Entry:
    result: object
    tables: frozenset[str]


@dataclass
class _Fill:
    """One in-flight single-flight computation."""

    event: threading.Event = field(default_factory=threading.Event)
    result: object | None = None


class ResultCache:
    """Bounded-LRU fingerprint → finalized-result cache, single-flight fill.

    Thread-safe.  Entries are immutable from the cache's point of view;
    callers must not mutate a served result (the service hands out
    shallow copies with per-request wall times).
    """

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, _Entry] = OrderedDict()
        self._fills: dict[str, _Fill] = {}
        self.hits = 0
        self.misses = 0
        self.flight_hits = 0
        self.stores = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------
    # the single-flight protocol
    # ------------------------------------------------------------------

    def acquire(self, key: str, timeout_s: float | None = None):
        """Look *key* up, parking on an in-flight fill when one exists.

        Returns ``(HIT, result)`` when served (from the cache or from a
        concurrent leader's fresh fill) or ``(LEAD, None)`` when this
        caller must compute — either as the first leader or solo after
        a leader failed.  A LEAD caller should finish with
        :meth:`complete` (success) or :meth:`abandon` (failure).
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return HIT, entry.result
            fill = self._fills.get(key)
            if fill is None:
                self._fills[key] = _Fill()
                self.misses += 1
                return LEAD, None
        fill.event.wait(timeout_s)
        with self._lock:
            if fill.result is not None:
                self.flight_hits += 1
                return HIT, fill.result
            # Leader failed, abandoned, or overran the wait: compute
            # solo without re-enrolling (no second herd forms behind a
            # wedged fill).
            self.misses += 1
            return LEAD, None

    def complete(self, key: str, result, tables) -> None:
        """Publish a LEAD caller's finished result and wake any waiters."""
        with self._lock:
            self._entries[key] = _Entry(result, frozenset(tables))
            self._entries.move_to_end(key)
            self.stores += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
            fill = self._fills.pop(key, None)
            if fill is not None:
                fill.result = result
                fill.event.set()

    def abandon(self, key: str) -> None:
        """A LEAD caller failed (or its result no longer matches the
        key's epoch); wake waiters empty-handed so they recompute."""
        with self._lock:
            fill = self._fills.pop(key, None)
            if fill is not None:
                fill.event.set()

    # ------------------------------------------------------------------
    # invalidation
    # ------------------------------------------------------------------

    def invalidate_table(self, table: str) -> int:
        """Drop every entry whose plan reads *table* (quarantine path);
        returns how many entries were evicted."""
        with self._lock:
            doomed = [
                key
                for key, entry in self._entries.items()
                if table in entry.tables
            ]
            for key in doomed:
                del self._entries[key]
            self.invalidations += len(doomed)
            return len(doomed)

    def clear(self) -> int:
        """Drop everything (the ``go_cold()`` path); returns the count."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self.invalidations += dropped
            return dropped

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        with self._lock:
            lookups = self.hits + self.flight_hits + self.misses
            return {
                "capacity": self.capacity,
                "entries": len(self._entries),
                "hits": self.hits,
                "flight_hits": self.flight_hits,
                "misses": self.misses,
                "stores": self.stores,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "hit_rate": (
                    (self.hits + self.flight_hits) / lookups if lookups else 0.0
                ),
            }
