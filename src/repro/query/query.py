"""Logical query descriptions the planner accepts.

Two shapes cover the paper's workloads:

* :class:`AggregateQuery` — single-table selection + grouping +
  aggregation (TPC-D Query 1 and 6 are instances);
* :class:`ScanQuery` — single-table selection returning tuples
  (the SMA_Scan use case, including the semi-join reduction of §4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.aggregates import AggregateSpec
from repro.errors import PlanningError
from repro.lang.predicate import Predicate, TruePredicate
from repro.storage.schema import Schema

#: The shape every executed plan produces: (column names, result rows).
QueryRows = tuple[list[str], list[tuple]]

#: A bound, zero-argument plan executor.  Physical operators expose their
#: ``execute`` method with this signature and :class:`PhysicalPlan` wraps
#: exactly one of them as its runner.
PlanRunner = Callable[[], QueryRows]


@dataclass(frozen=True)
class OutputAggregate:
    """One aggregate in the select clause, with its output column name."""

    name: str
    spec: AggregateSpec

    def __str__(self) -> str:
        return f"{self.spec} AS {self.name}"


@dataclass(frozen=True)
class AggregateQuery:
    """``SELECT <group_by>, <aggregates> FROM t WHERE .. GROUP BY .. ORDER BY ..``"""

    table: str
    aggregates: tuple[OutputAggregate, ...]
    where: Predicate = field(default_factory=TruePredicate)
    group_by: tuple[str, ...] = ()
    order_by: tuple[str, ...] = ()
    #: subset of order_by sorted descending (the rest sort ascending)
    order_desc: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        if not self.aggregates:
            raise PlanningError("an aggregate query needs at least one aggregate")
        names = [a.name for a in self.aggregates]
        if len(set(names)) != len(names):
            raise PlanningError(f"duplicate output names {names}")
        stray = set(self.order_desc) - set(self.order_by)
        if stray:
            raise PlanningError(
                f"order_desc columns {sorted(stray)} not in order_by"
            )

    @property
    def output_columns(self) -> tuple[str, ...]:
        return self.group_by + tuple(a.name for a in self.aggregates)

    def validate(self, schema: Schema) -> None:
        self.where.bind(schema)
        for column in self.group_by:
            schema.column(column)
        for aggregate in self.aggregates:
            aggregate.spec.validate(schema)
            for column in aggregate.spec.columns():
                schema.column(column)
        for column in self.order_by:
            if column not in self.output_columns:
                raise PlanningError(
                    f"order-by column {column!r} is not in the output "
                    f"{self.output_columns}"
                )


@dataclass(frozen=True)
class ScanQuery:
    """``SELECT <columns|*> FROM t WHERE ..`` returning base tuples."""

    table: str
    where: Predicate = field(default_factory=TruePredicate)
    columns: tuple[str, ...] = ()  # empty means all columns

    def validate(self, schema: Schema) -> None:
        self.where.bind(schema)
        for column in self.columns:
            schema.column(column)

    def output_schema(self, schema: Schema) -> Schema:
        if not self.columns:
            return schema
        return schema.project(self.columns)


@dataclass(frozen=True)
class ExplainQuery:
    """``EXPLAIN SELECT ...`` — plan the wrapped query without running it."""

    query: AggregateQuery | ScanQuery


# ----------------------------------------------------------------------
# DML statements (the write path)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class InsertStatement:
    """``INSERT INTO t [(c1, ...)] VALUES (v1, ...), (v2, ...)``.

    ``rows`` hold Python values in ``columns`` order (or full schema
    order when ``columns`` is empty); coercion to the storage domain
    happens at apply time against the table's schema.
    """

    table: str
    rows: tuple[tuple, ...]
    columns: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.rows:
            raise PlanningError("INSERT needs at least one VALUES row")
        widths = {len(row) for row in self.rows}
        if len(widths) != 1:
            raise PlanningError(f"INSERT rows have mixed widths {sorted(widths)}")
        if self.columns and len(self.columns) != len(self.rows[0]):
            raise PlanningError(
                f"INSERT names {len(self.columns)} columns but rows have "
                f"{len(self.rows[0])} values"
            )

    def validate(self, schema: Schema) -> None:
        names = self.columns or tuple(schema.names)
        for column in names:
            schema.column(column)
        if set(names) != set(schema.names):
            missing = sorted(set(schema.names) - set(names))
            raise PlanningError(
                f"INSERT must supply every column; missing {missing}"
            )
        if len(self.rows[0]) != len(schema.names):
            raise PlanningError(
                f"INSERT rows have {len(self.rows[0])} values; table "
                f"{self.table!r} has {len(schema.names)} columns"
            )


@dataclass(frozen=True)
class UpdateStatement:
    """``UPDATE t SET c = const [, ...] [WHERE ...]``.

    Assignments are restricted to literal constants — the incremental
    maintainer recomputes the touched buckets' SMA entries from the
    rewritten tuples, which only needs the new stored values.
    """

    table: str
    assignments: tuple[tuple[str, object], ...]
    where: Predicate = field(default_factory=TruePredicate)

    def __post_init__(self) -> None:
        if not self.assignments:
            raise PlanningError("UPDATE needs at least one SET assignment")
        names = [name for name, _ in self.assignments]
        if len(set(names)) != len(names):
            raise PlanningError(f"duplicate SET columns {names}")

    def validate(self, schema: Schema) -> None:
        self.where.bind(schema)
        for column, _ in self.assignments:
            schema.column(column)


@dataclass(frozen=True)
class DeleteStatement:
    """``DELETE FROM t [WHERE ...]``."""

    table: str
    where: Predicate = field(default_factory=TruePredicate)

    def validate(self, schema: Schema) -> None:
        self.where.bind(schema)


#: Union of the write-path statements the planner and service route.
DmlStatement = InsertStatement | UpdateStatement | DeleteStatement
